// Throughput benchmark of the full pipeline (baseline replay, gear
// assignment, rescale, scaled replay, energy), built on the pals::obs
// profiling harness. Prints the phase breakdown and writes the
// machine-readable report to BENCH_replay.json (events_per_second,
// scenarios_per_second, per-phase seconds) for cross-commit tracking.
//
//   bench_replay_profile [--workload CG-32] [--repeat N] [--jobs N]
//                        [--controller static|dynamic_max|...]
//                        [--out BENCH_replay.json]
//
// --controller routes the pipeline through the online-controller path
// (core/controller_pipeline.hpp), so the per-iteration observe/re-solve
// loop shows up in the phase breakdown; BENCH_controllers.json at the
// repo root tracks the slack controller on a drifting workload.
#include <iostream>

#include "analysis/profile.hpp"
#include "analysis/sweep.hpp"
#include "core/controllers.hpp"
#include "power/gearset.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("workload", "registry instance or inline spec", "CG-32");
  cli.add_option("repeat", "pipeline repetitions", "16");
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("controller", "online DVFS controller policy", "static");
  cli.add_option("out", "report path", "BENCH_replay.json");
  cli.parse(argc, argv);

  const WorkloadRef ref = resolve_workload(cli.get("workload"), 10);
  const Trace trace = ref.build();

  ProfileOptions options;
  options.repeat = static_cast<int>(cli.get_int("repeat", 16));
  options.jobs = static_cast<int>(cli.get_int("jobs", 0));
  options.config = default_pipeline_config(paper_uniform(6));
  options.config.controller.kind = controller_by_name(cli.get("controller"));

  const ProfileReport report = profile_pipeline(trace, options);

  std::cout << "bench_replay_profile: " << ref.display << ", controller "
            << cli.get("controller") << ", " << report.pipelines
            << " pipeline run(s), " << report.jobs << " job(s)\n"
            << "  wall time:      " << format_fixed(report.wall_seconds, 3)
            << " s\n"
            << "  scenarios/sec:  "
            << format_fixed(report.pipelines_per_second, 1) << '\n'
            << "  events/sec:     "
            << format_fixed(report.events_per_second / 1e6, 2) << " M\n";
  for (const PhaseProfile& phase : report.phases)
    std::cout << "  phase " << phase.name << ": "
              << format_fixed(phase.seconds * 1e3, 3) << " ms over "
              << phase.count << " span(s)\n";

  atomic_write_file(cli.get("out"), report.bench_json());
  std::cout << "report written to " << cli.get("out") << '\n';
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
