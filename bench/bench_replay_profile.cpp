// Throughput benchmark of the full pipeline (baseline replay, gear
// assignment, rescale, scaled replay, energy), built on the pals::obs
// profiling harness. Prints the phase breakdown and writes a
// pals::obs::bench report (docs/bench.md) to BENCH_replay.json for
// cross-commit tracking; pals_bench --compare gates two such reports.
//
//   bench_replay_profile [--workload CG-32] [--repeat N] [--jobs N]
//                        [--controller static|dynamic_max|...]
//                        [--warmup N] [--repetitions N]
//                        [--out BENCH_replay.json]
//
// --controller routes the pipeline through the online-controller path
// (core/controller_pipeline.hpp), so the per-iteration observe/re-solve
// loop shows up in the phase breakdown; BENCH_controllers.json at the
// repo root tracks the slack controller on a drifting workload.
#include <iostream>

#include "analysis/profile.hpp"
#include "analysis/sweep.hpp"
#include "core/controllers.hpp"
#include "obs/bench.hpp"
#include "power/gearset.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

namespace bench = obs::bench;

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("workload", "registry instance or inline spec", "CG-32");
  cli.add_option("repeat", "pipeline repetitions per measurement", "16");
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("controller", "online DVFS controller policy", "static");
  cli.add_option("warmup", "discarded measurements", "1");
  cli.add_option("repetitions", "recorded measurements", "3");
  cli.add_option("out", "report path", "BENCH_replay.json");
  cli.parse(argc, argv);

  const WorkloadRef ref = resolve_workload(cli.get("workload"), 10);
  const Trace trace = ref.build();

  ProfileOptions options;
  options.repeat = static_cast<int>(cli.get_int("repeat", 16));
  options.jobs = static_cast<int>(cli.get_int("jobs", 0));
  options.config = default_pipeline_config(paper_uniform(6));
  options.config.controller.kind = controller_by_name(cli.get("controller"));

  // One bench case wrapping the profiling harness: the obs runner times
  // each measurement, snapshots the work counters, and collects the
  // harness's own throughput numbers as extra metrics.
  ProfileReport last;
  const bench::Case profile_case{
      "replay.profile." + cli.get("controller"), [&](bench::Sink& sink) {
        last = profile_pipeline(trace, options);
        sink.sample("scenarios_per_second", last.pipelines_per_second);
        sink.sample("events_per_second", last.events_per_second);
      }};

  bench::RunOptions run_options;
  run_options.methodology.warmup = static_cast<int>(cli.get_int("warmup", 1));
  run_options.methodology.repetitions =
      static_cast<int>(cli.get_int("repetitions", 3));
  const bench::Report report =
      bench::run_suite("replay", {profile_case}, run_options);

  std::cout << "bench_replay_profile: " << ref.display << ", controller "
            << cli.get("controller") << ", " << last.pipelines
            << " pipeline run(s), " << last.jobs << " job(s)\n"
            << "  wall time:      " << format_fixed(last.wall_seconds, 3)
            << " s\n"
            << "  scenarios/sec:  "
            << format_fixed(last.pipelines_per_second, 1) << '\n'
            << "  events/sec:     "
            << format_fixed(last.events_per_second / 1e6, 2) << " M\n";
  for (const PhaseProfile& phase : last.phases)
    std::cout << "  phase " << phase.name << ": "
              << format_fixed(phase.seconds * 1e3, 3) << " ms over "
              << phase.count << " span(s)\n";

  atomic_write_file(cli.get("out"), report.to_json());
  std::cout << "report written to " << cli.get("out") << '\n';
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
