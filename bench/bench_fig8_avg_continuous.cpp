// Figure 8 of the paper: the AVG algorithm with the limited continuous
// frequency set, allowing the top frequency to be exceeded by 10 % and
// 20 % (over-clocking). Energy drops for every application by an amount
// that depends on the load balance degree (0.5 % for CG-32 up to ~63 %
// for BT-MZ in the paper).
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(pals::figure8_rows(cache),
                   "Figure 8: AVG algorithm with continuous set",
                   "fig8_avg_continuous.csv");
  return 0;
}
