// Figure 2 of the paper: normalized CPU energy and EDP under the MAX
// algorithm for the unlimited/limited continuous sets and evenly
// distributed discrete sets with 2..15 gears, for the five applications
// the paper shows (space-limited subset). Runs on the parallel sweep
// engine; pass --jobs=N to use N worker threads (same output for all N).
#include <iostream>

#include "analysis/figures.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  try {
    pals::CliParser cli;
    cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "1");
    cli.parse(argc, argv);
    pals::TraceCache cache;
    pals::print_rows(
        pals::figure2_rows(cache, static_cast<int>(cli.get_int("jobs", 1))),
        "Figure 2: normalized energy and EDP vs gear set (MAX)",
        "fig2_gearset_size.csv");
    return 0;
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
