// Figure 2 of the paper: normalized CPU energy and EDP under the MAX
// algorithm for the unlimited/limited continuous sets and evenly
// distributed discrete sets with 2..15 gears, for the five applications
// the paper shows (space-limited subset).
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(pals::figure2_rows(cache),
                   "Figure 2: normalized energy and EDP vs gear set (MAX)",
                   "fig2_gearset_size.csv");
  return 0;
}
