// Figure 10 of the paper: comparison of the MAX and AVG algorithms
// (energy, time, EDP). MAX wins on CPU energy; AVG wins on execution
// time, and therefore on whole-system energy potential. Runs on the
// parallel sweep engine; pass --jobs=N to use N worker threads (same
// output for all N).
#include <iostream>

#include "analysis/figures.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  try {
    pals::CliParser cli;
    cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "1");
    cli.parse(argc, argv);
    pals::TraceCache cache;
    pals::print_rows(
        pals::figure10_rows(cache, static_cast<int>(cli.get_int("jobs", 1))),
        "Figure 10: comparison of MAX and AVG algorithms",
        "fig10_max_vs_avg.csv");
    return 0;
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
