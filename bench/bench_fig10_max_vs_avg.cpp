// Figure 10 of the paper: comparison of the MAX and AVG algorithms
// (energy, time, EDP). MAX wins on CPU energy; AVG wins on execution
// time, and therefore on whole-system energy potential.
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(pals::figure10_rows(cache),
                   "Figure 10: comparison of MAX and AVG algorithms",
                   "fig10_max_vs_avg.csv");
  return 0;
}
