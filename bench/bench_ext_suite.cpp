// Extension study: predictions for NAS benchmarks beyond the paper's
// subset (LU's pipelined wavefront, FT's transpose-dominated FFT), plus
// the paper set at a glance — all under the MAX algorithm with the
// uniform 6-gear set. Runs on the parallel sweep engine; pass --jobs=N
// to fan the scenarios across N threads (the output is identical for
// every N).
#include <iostream>

#include "analysis/sweep.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "1");
  cli.add_option("out", "CSV output path", "ext_suite.csv");
  cli.parse(argc, argv);

  SweepGrid grid;
  // LU and FT are not characterized in Table 3; run them at plausible
  // load-balance levels (LU mildly imbalanced from SSOR pivoting noise,
  // FT nearly perfectly balanced). Paper instances for side-by-side
  // context.
  grid.workloads = {"lu:32:0.93:6", "lu:64:0.93:6", "ft:32:0.985:6",
                    "ft:64:0.985:6", "CG-32", "MG-32", "IS-32"};
  grid.gear_sets = {"uniform-6"};

  SweepOptions options;
  options.jobs = static_cast<int>(cli.get_int("jobs", 1));
  const SweepResult result = run_sweep(grid, options);
  print_rows(result.rows,
             "Extension: suite predictions for LU and FT (MAX, uniform-6)",
             cli.get("out"));
  std::cout << "\n# sweep summary\n" << result.stats.to_kv();
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
