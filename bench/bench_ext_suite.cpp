// Extension study: predictions for NAS benchmarks beyond the paper's
// subset (LU's pipelined wavefront, FT's transpose-dominated FFT), plus
// the paper set at a glance — all under the MAX algorithm with the
// uniform 6-gear set.
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "workloads/apps.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run() {
  std::vector<ExperimentRow> rows;
  // LU and FT are not characterized in Table 3; run them at plausible
  // load-balance levels (LU mildly imbalanced from SSOR pivoting noise,
  // FT nearly perfectly balanced).
  for (const auto& [family, lb] :
       {std::pair<const char*, double>{"lu", 0.93},
        std::pair<const char*, double>{"ft", 0.985}}) {
    for (const Rank ranks : {32, 64}) {
      WorkloadConfig config;
      config.ranks = ranks;
      config.iterations = 6;
      config.target_lb = lb;
      const Trace trace = workload_factory(family)(config);
      rows.push_back(run_experiment(
          trace, std::string(family) + "-" + std::to_string(ranks),
          "uniform-6", default_pipeline_config(paper_uniform(6))));
    }
  }
  // Paper instances for side-by-side context.
  TraceCache cache;
  for (const char* name : {"CG-32", "MG-32", "IS-32"}) {
    const auto inst = benchmark_by_name(name);
    rows.push_back(run_experiment(cache.get(*inst), name, "uniform-6",
                                  default_pipeline_config(paper_uniform(6))));
  }
  print_rows(rows,
             "Extension: suite predictions for LU and FT (MAX, uniform-6)",
             "ext_suite.csv");
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
