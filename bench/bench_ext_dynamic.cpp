// Extension study: static whole-run DVFS (the paper's MAX) vs a dynamic
// per-iteration runtime (Jitter-style, the paper's reference [18]).
//
// On steady imbalance the two converge — the paper's premise that a
// static assignment suffices for "regular, iterative behavior". On a
// drifting hot spot (AMR-like), the static algorithm sees balanced totals
// and saves nothing, while the dynamic runtime tracks the drift.
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "core/jitter.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/apps.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

void compare(const std::string& name, const Trace& trace, TextTable& table) {
  const PipelineResult static_result =
      run_pipeline(trace, default_pipeline_config(paper_uniform(6)));
  JitterConfig jitter_config;
  jitter_config.gear_set = paper_uniform(6);
  const JitterResult dynamic = run_jitter(trace, jitter_config);

  table.add_row({name, format_percent(static_result.load_balance),
                 format_percent(static_result.normalized_energy()),
                 format_percent(static_result.normalized_time()),
                 format_percent(dynamic.normalized_energy()),
                 format_percent(dynamic.normalized_time()),
                 std::to_string(dynamic.gear_shifts)});
}

int run() {
  TextTable table({"workload", "total LB", "E(static MAX)", "T(static)",
                   "E(dynamic)", "T(dynamic)", "gear shifts"});

  // Steady imbalance: the paper's benchmark instances.
  TraceCache cache;
  for (const char* name : {"BT-MZ-32", "CG-64", "PEPC-128"}) {
    const auto inst = benchmark_by_name(name, 24);
    compare(name, cache.get(*inst), table);
  }

  // Drifting imbalance: per-iteration LB 0.5, balanced totals. The hot
  // spot completes one revolution per run, so more iterations = slower
  // drift. Fast drift exposes the reactive runtime's observation lag (a
  // newly-hot rank runs one iteration at a low gear); slow drift is the
  // quasi-steady regime where it adapts almost for free.
  for (const Rank ranks : {16, 32, 64}) {
    for (const auto& [label, iterations] :
         {std::pair<const char*, int>{"fast", 24},
          std::pair<const char*, int>{"slow", 96}}) {
      WorkloadConfig config;
      config.ranks = ranks;
      config.iterations = iterations;
      config.target_lb = 0.5;
      compare("AMR-" + std::to_string(ranks) + "-" + label,
              make_amr_drift(config), table);
    }
  }

  std::cout << "== Extension: static MAX vs dynamic (Jitter-style) runtime "
               "==\n";
  table.print(std::cout);
  std::cout << "\nSteady imbalance: dynamic ~= static (the paper's premise "
               "for static assignment).\nDrifting imbalance: static sees "
               "balanced totals and saves ~nothing; the dynamic runtime "
               "adapts,\npaying an observation-lag time penalty that "
               "shrinks as the drift slows.\n";

  // How expensive may a gear switch be before the dynamic runtime stops
  // paying off? (The paper assumes free switching; real voltage
  // regulators stall the core for tens of microseconds.)
  TextTable penalty_table(
      {"transition penalty", "energy", "time", "EDP"});
  WorkloadConfig drift;
  drift.ranks = 32;
  drift.iterations = 96;
  drift.target_lb = 0.5;
  const Trace drift_trace = make_amr_drift(drift);
  for (const double penalty_us : {0.0, 50.0, 500.0, 5000.0}) {
    JitterConfig config;
    config.gear_set = paper_uniform(6);
    config.transition_penalty = penalty_us * 1e-6;
    const JitterResult r = run_jitter(drift_trace, config);
    penalty_table.add_row({format_fixed(penalty_us, 0) + " us",
                           format_percent(r.normalized_energy()),
                           format_percent(r.normalized_time()),
                           format_percent(r.normalized_edp())});
  }
  std::cout << "\n== Gear-transition cost sweep (AMR-32, slow drift) ==\n";
  penalty_table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
