// Figure 1 of the paper: visualization of a part of BT-MZ's execution
// before and after the MAX algorithm (continuous frequency set). In the
// original run most ranks spend long stretches waiting for communication;
// after frequency scaling almost all time is computation.
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/gantt.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run() {
  const auto inst = benchmark_by_name("BT-MZ-32", 2);
  if (!inst) return 1;
  const Trace trace = inst->make();
  // The paper's Figure 1 assumes continuous frequency scaling; BT-MZ's
  // extreme imbalance needs frequencies below 0.8 GHz, so use the
  // unlimited set to show the fully balanced execution.
  const PipelineResult result = run_pipeline(
      trace, default_pipeline_config(paper_unlimited_continuous()));

  GanttOptions options;
  options.width = 110;
  options.max_ranks = 16;  // sample half the ranks for readability

  std::cout << "== Figure 1(a): original BT-MZ-32 execution ==\n";
  std::cout << render_gantt(result.baseline_replay.timeline, options);
  std::cout << "\n== Figure 1(b): after the MAX algorithm (continuous set) "
               "==\n";
  std::cout << render_gantt(result.scaled_replay.timeline, options);

  std::cout << "\noriginal time " << result.baseline_time * 1e3
            << " ms, after MAX " << result.scaled_time * 1e3
            << " ms; normalized energy "
            << result.normalized_energy() * 100.0 << "%\n";

  std::cout << "\ncritical path of the original execution:\n"
            << render_critical_path(
                   critical_path(result.baseline_replay), 6);

  // Quantify the visual claim: computation share of total CPU time.
  const auto share = [](const Timeline& tl) {
    double compute = 0.0;
    double total = 0.0;
    for (Rank r = 0; r < tl.n_ranks(); ++r) {
      compute += tl.compute_time(r);
      total += tl.makespan();
    }
    return compute / total;
  };
  std::cout << "compute share: original "
            << share(result.baseline_replay.timeline) * 100.0
            << "%, after MAX "
            << share(result.scaled_replay.timeline) * 100.0 << "%\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
