// Figure 5 of the paper: impact of the beta (memory-boundedness)
// parameter, swept 0.3..1.0, with the evenly distributed 6-gear set (MAX).
// Lower beta = more memory bound = deeper frequency reduction for the same
// target time = more savings — unless the application is clamped at the
// lowest gear (BT-MZ, IS) or too balanced to exploit it.
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(pals::figure5_rows(cache),
                   "Figure 5: impact of the beta parameter (uniform-6, MAX)",
                   "fig5_beta.csv");
  return 0;
}
