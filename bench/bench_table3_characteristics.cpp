// Table 3 of the paper: load balance and parallel efficiency of every
// benchmark instance, measured by replaying the generated traces on the
// default platform model.
#include <iostream>

#include "core/pipeline.hpp"
#include "replay/replay.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run() {
  std::cout << "== Table 3: Application characteristics ==\n";
  TextTable table({"Application", "Load balance", "Parallel efficiency",
                   "paper LB", "paper PE"});
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace trace = inst.make();
    const ReplayResult r = replay(trace, ReplayConfig{});
    const double lb = load_balance(r.compute_time);
    const double pe = parallel_efficiency(r.compute_time, r.makespan);
    table.add_row({inst.name, format_percent(lb), format_percent(pe),
                   format_percent(inst.paper_lb),
                   format_percent(inst.paper_pe)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
