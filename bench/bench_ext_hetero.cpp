// Extension study: DVFS as heterogeneity compensation. A perfectly
// balanced application on a machine with mixed CPU speeds behaves exactly
// like an imbalanced application on a homogeneous machine — the slow
// nodes define the critical path and the fast nodes idle in MPI waits.
// The MAX algorithm then down-clocks the *fast* nodes to the slow nodes'
// pace, recovering the energy their headroom wastes.
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

int run() {
  TextTable table({"machine", "observed LB", "PE", "energy", "time"});
  // A balanced CG-like workload.
  WorkloadConfig workload;
  workload.ranks = 32;
  workload.iterations = 4;
  workload.target_lb = 0.99;
  const Trace trace = make_cg(workload);

  for (const auto& [label, slow_fraction, slow_speed] :
       {std::tuple<const char*, int, double>{"homogeneous", 0, 1.0},
        std::tuple<const char*, int, double>{"1/8 nodes at 0.7x", 4, 0.7},
        std::tuple<const char*, int, double>{"1/4 nodes at 0.7x", 8, 0.7},
        std::tuple<const char*, int, double>{"1/4 nodes at 0.5x", 8, 0.5}}) {
    PipelineConfig config = default_pipeline_config(paper_uniform(6));
    config.replay.relative_speed.assign(32, 1.0);
    for (int i = 0; i < slow_fraction; ++i) {
      // Spread the slow nodes through the rank space.
      config.replay.relative_speed[static_cast<std::size_t>(
          i * 32 / std::max(slow_fraction, 1))] = slow_speed;
    }
    const PipelineResult r = run_pipeline(trace, config);
    table.add_row({label, format_percent(r.load_balance),
                   format_percent(r.parallel_efficiency),
                   format_percent(r.normalized_energy()),
                   format_percent(r.normalized_time())});
  }
  std::cout << "== Extension: DVFS on a heterogeneous machine (balanced "
               "CG-32, MAX uniform-6) ==\n";
  table.print(std::cout);
  std::cout << "\nSlow nodes manufacture load imbalance; the MAX algorithm "
               "recovers the fast nodes'\nwasted headroom as energy "
               "savings without extending the critical path.\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
