// Micro-benchmarks of the simulation infrastructure itself
// (google-benchmark): replay throughput, frequency assignment, energy
// integration, trace generation and serialization.
#include <benchmark/benchmark.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "power/power_model.hpp"
#include "replay/replay.hpp"
#include "analysis/critical_path.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

const Trace& cached_trace(const char* name) {
  static std::map<std::string, Trace> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    const auto inst = benchmark_by_name(name, 4);
    it = cache.emplace(name, inst->make()).first;
  }
  return it->second;
}

void BM_ReplayWrf128(benchmark::State& state) {
  const Trace& trace = cached_trace("WRF-128");
  std::size_t events = 0;
  for (auto _ : state) {
    const ReplayResult r = replay(trace, ReplayConfig{});
    benchmark::DoNotOptimize(r.makespan);
    events = r.simulated_events;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ReplayWrf128)->Unit(benchmark::kMillisecond);

void BM_ReplayIs64(benchmark::State& state) {
  const Trace& trace = cached_trace("IS-64");
  for (auto _ : state) {
    const ReplayResult r = replay(trace, ReplayConfig{});
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ReplayIs64)->Unit(benchmark::kMillisecond);

void BM_FullPipelinePepc128(benchmark::State& state) {
  const Trace& trace = cached_trace("PEPC-128");
  const PipelineConfig config = [] {
    PipelineConfig c;
    c.algorithm.gear_set = paper_uniform(6);
    return c;
  }();
  for (auto _ : state) {
    const PipelineResult r = run_pipeline(trace, config);
    benchmark::DoNotOptimize(r.scaled_energy);
  }
}
BENCHMARK(BM_FullPipelinePepc128)->Unit(benchmark::kMillisecond);

void BM_FrequencyAssignment(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  std::vector<Seconds> times(n);
  for (auto& t : times) t = rng.uniform(0.1, 1.0);
  AlgorithmConfig config;
  config.gear_set = paper_uniform(6);
  for (auto _ : state) {
    const FrequencyAssignment a = assign_frequencies(times, config);
    benchmark::DoNotOptimize(a.gears.data());
  }
}
BENCHMARK(BM_FrequencyAssignment)->Range(32, 8192);

void BM_EnergyIntegration(benchmark::State& state) {
  const Trace& trace = cached_trace("WRF-128");
  const ReplayResult r = replay(trace, ReplayConfig{});
  const PowerModel pm(PowerModelConfig{});
  const std::vector<Gear> gears(static_cast<std::size_t>(r.timeline.n_ranks()),
                                Gear{2.3, 1.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.total_energy(r.timeline, gears));
  }
}
BENCHMARK(BM_EnergyIntegration)->Unit(benchmark::kMicrosecond);

void BM_TraceGeneration(benchmark::State& state) {
  const auto inst = benchmark_by_name("MG-64", 4);
  for (auto _ : state) {
    const Trace t = inst->make();
    benchmark::DoNotOptimize(t.total_events());
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_TraceSerialization(benchmark::State& state) {
  const Trace& trace = cached_trace("CG-32");
  for (auto _ : state) {
    std::stringstream buffer;
    write_trace(trace, buffer);
    const Trace restored = read_trace(buffer);
    benchmark::DoNotOptimize(restored.total_events());
  }
}
BENCHMARK(BM_TraceSerialization)->Unit(benchmark::kMillisecond);

void BM_TraceSerializationBinary(benchmark::State& state) {
  const Trace& trace = cached_trace("CG-32");
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buffer = write_trace_binary(trace);
    bytes = buffer.size();
    const Trace restored = read_trace_binary(buffer);
    benchmark::DoNotOptimize(restored.total_events());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TraceSerializationBinary)->Unit(benchmark::kMillisecond);

void BM_CriticalPath(benchmark::State& state) {
  const Trace& trace = cached_trace("PEPC-128");
  const ReplayResult r = replay(trace, ReplayConfig{});
  for (auto _ : state) {
    const CriticalPath path = critical_path(r);
    benchmark::DoNotOptimize(path.segments.size());
  }
}
BENCHMARK(BM_CriticalPath)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pals

BENCHMARK_MAIN();
