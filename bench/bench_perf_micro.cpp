// Micro-benchmarks of the simulation infrastructure itself, on the
// shared pals::obs::bench runner (docs/bench.md): replay throughput,
// frequency assignment, energy integration, trace generation,
// serialization and critical-path extraction.
//
//   bench_perf_micro [--warmup N] [--repetitions N] [--filter SUBSTR]
//                    [--out BENCH_micro.json]
//
// Emits the same schema-versioned report as pals_bench, so two runs
// gate against each other with `pals_bench --compare`.
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "core/pipeline.hpp"
#include "obs/bench.hpp"
#include "power/power_model.hpp"
#include "replay/replay.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

namespace bench = obs::bench;

const Trace& cached_trace(const char* name) {
  static std::map<std::string, Trace> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    const auto inst = benchmark_by_name(name, 4);
    it = cache.emplace(name, inst->make()).first;
  }
  return it->second;
}

std::vector<bench::Case> build_cases() {
  std::vector<bench::Case> cases;

  cases.push_back({"micro.replay.wrf128", [](bench::Sink&) {
    const ReplayResult r = replay(cached_trace("WRF-128"), ReplayConfig{});
    if (r.makespan <= 0.0) throw Error("empty replay");
  }});

  cases.push_back({"micro.replay.is64", [](bench::Sink&) {
    const ReplayResult r = replay(cached_trace("IS-64"), ReplayConfig{});
    if (r.makespan <= 0.0) throw Error("empty replay");
  }});

  cases.push_back({"micro.pipeline.pepc128", [](bench::Sink&) {
    PipelineConfig config;
    config.algorithm.gear_set = paper_uniform(6);
    const PipelineResult r = run_pipeline(cached_trace("PEPC-128"), config);
    if (r.scaled_energy <= 0.0) throw Error("empty pipeline result");
  }});

  cases.push_back({"micro.assignment.4096", [](bench::Sink&) {
    Rng rng(42);
    std::vector<Seconds> times(4096);
    for (auto& t : times) t = rng.uniform(0.1, 1.0);
    AlgorithmConfig config;
    config.gear_set = paper_uniform(6);
    const FrequencyAssignment a = assign_frequencies(times, config);
    if (a.gears.empty()) throw Error("empty assignment");
  }});

  cases.push_back({"micro.energy.wrf128", [](bench::Sink&) {
    const ReplayResult r = replay(cached_trace("WRF-128"), ReplayConfig{});
    const PowerModel pm(PowerModelConfig{});
    const std::vector<Gear> gears(
        static_cast<std::size_t>(r.timeline.n_ranks()), Gear{2.3, 1.5});
    if (pm.total_energy(r.timeline, gears) <= 0.0) throw Error("zero energy");
  }});

  cases.push_back({"micro.tracegen.mg64", [](bench::Sink&) {
    const auto inst = benchmark_by_name("MG-64", 4);
    const Trace t = inst->make();
    if (t.total_events() == 0) throw Error("empty trace");
  }});

  cases.push_back({"micro.serialize.text", [](bench::Sink&) {
    const Trace& trace = cached_trace("CG-32");
    std::stringstream buffer;
    write_trace(trace, buffer);
    const Trace restored = read_trace(buffer);
    if (restored.total_events() != trace.total_events())
      throw Error("text round trip lost events");
  }});

  cases.push_back({"micro.serialize.binary", [](bench::Sink& sink) {
    const Trace& trace = cached_trace("CG-32");
    reset_trace_io_stats();
    const auto buffer = write_trace_binary(trace);
    const Trace restored = read_trace_binary(buffer);
    if (restored.total_events() != trace.total_events())
      throw Error("binary round trip lost events");
    sink.sample("buffer_bytes", static_cast<double>(buffer.size()));
  }});

  cases.push_back({"micro.critical_path.pepc128", [](bench::Sink&) {
    const ReplayResult r = replay(cached_trace("PEPC-128"), ReplayConfig{});
    const CriticalPath path = critical_path(r);
    if (path.segments.empty()) throw Error("empty critical path");
  }});

  return cases;
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("warmup", "discarded repetitions per case", "1");
  cli.add_option("repetitions", "measured repetitions per case", "3");
  cli.add_option("filter", "run only cases whose name contains this");
  cli.add_option("out", "report path", "BENCH_micro.json");
  cli.parse(argc, argv);

  std::vector<bench::Case> cases = build_cases();
  const std::string needle = cli.get_or("filter", "");
  if (!needle.empty()) {
    std::vector<bench::Case> kept;
    for (auto& c : cases)
      if (c.name.find(needle) != std::string::npos)
        kept.push_back(std::move(c));
    PALS_CHECK_MSG(!kept.empty(),
                   "--filter '" << needle << "' matches no case");
    cases = std::move(kept);
  }

  bench::RunOptions options;
  options.methodology.warmup = static_cast<int>(cli.get_int("warmup", 1));
  options.methodology.repetitions =
      static_cast<int>(cli.get_int("repetitions", 3));
  options.log = [](const std::string& line) {
    std::cerr << "bench_perf_micro: " << line << '\n';
  };

  const bench::Report report = bench::run_suite("micro", cases, options);
  for (const bench::CaseResult& c : report.cases) {
    const bench::MetricStats* wall = c.find_timing("wall_seconds");
    std::cout << c.name << ": median " << format_fixed(wall->median * 1e3, 3)
              << " ms (CV " << format_fixed(wall->cv, 3) << ")\n";
  }
  atomic_write_file(cli.get("out"), report.to_json());
  std::cout << "report written to " << cli.get("out") << '\n';
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
