// Extension study: whole-system energy. The paper's conclusion argues AVG
// "has a higher potential to save overall system energy because it
// reduces the execution time" — here quantified with the CPU at 45-55 %
// of node power and the rest drawn for the whole execution.
#include <iostream>

#include "analysis/experiments.hpp"
#include "core/system_energy.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run() {
  TraceCache cache;
  TextTable table({"instance", "cpu share", "cpuE MAX", "sysE MAX",
                   "cpuE AVG", "sysE AVG", "system winner"});
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    const PipelineResult max_result =
        run_pipeline(trace, default_pipeline_config(paper_uniform(6)));
    const PipelineResult avg_result = run_pipeline(
        trace, default_pipeline_config(paper_avg_discrete(), Algorithm::kAvg));
    for (const double fraction : {0.45, 0.55}) {
      SystemEnergyConfig config;
      config.cpu_fraction = fraction;
      const SystemView max_view = system_view(max_result, config);
      const SystemView avg_view = system_view(avg_result, config);
      table.add_row(
          {inst.name, format_percent(fraction, 0),
           format_percent(max_view.normalized_cpu_energy),
           format_percent(max_view.normalized_system_energy),
           format_percent(avg_view.normalized_cpu_energy),
           format_percent(avg_view.normalized_system_energy),
           avg_view.normalized_system_energy <
                   max_view.normalized_system_energy
               ? "AVG"
               : "MAX"});
    }
  }
  std::cout << "== Extension: whole-system energy (CPU = 45-55 % of node "
               "power) ==\n";
  table.print(std::cout);
  std::cout << "\nMAX always wins on CPU energy; at the system level AVG's "
               "shorter execution time\nclaws the difference back for many "
               "applications.\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
