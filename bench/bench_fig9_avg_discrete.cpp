// Figure 9 of the paper: the AVG algorithm with the discrete evenly
// distributed 6-gear set extended by the (2.6 GHz, 1.6 V) over-clock
// gear. Reports normalized time, energy, EDP and the percentage of
// processors that need over-clocking: very imbalanced applications need
// only a few over-clocked CPUs, well-balanced ones (e.g. SPECFEM3D-32)
// over half.
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(pals::figure9_rows(cache),
                   "Figure 9: AVG algorithm with discrete set",
                   "fig9_avg_discrete.csv");
  return 0;
}
