// Figure 4 of the paper: normalized energy and EDP with exponentially
// distributed gear sets of 3..7 gears (MAX algorithm), all applications.
// Exponential sets concentrate gears near fmax, so well-balanced codes
// (SPECFEM3D, WRF, MG) save energy with fewer gears than uniform sets.
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(pals::figure4_rows(cache),
                   "Figure 4: results for exponential gear sets (MAX)",
                   "fig4_exponential.csv");
  return 0;
}
