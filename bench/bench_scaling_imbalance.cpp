// Section 1 claim of the paper: load imbalance — and therefore the
// potential for DVFS energy savings — grows with cluster size. We sweep
// each application family from 8 to 128 ranks using the family's
// characteristic imbalance growth (interpolated from Table 3 endpoints)
// and report LB, PE and the MAX-algorithm energy on the unlimited
// continuous set.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "workloads/apps.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

struct FamilySpec {
  const char* family;
  double lb_at_32;
  double lb_slope_per_doubling;  // LB change per rank-count doubling
};

// Slopes estimated from the paper's Table 3 pairs (CG 32->64: -4.4 pts,
// MG: -3.1, IS: +5.8 (bucket skew softens), SPECFEM3D 32->96: -8.7/1.58
// doublings, WRF 32->128: +1.5/2 doublings).
constexpr FamilySpec kFamilies[] = {
    {"cg", 0.9782, -0.0436},      {"mg", 0.9455, -0.0305},
    {"specfem3d", 0.9280, -0.0551}, {"wrf", 0.9060, 0.0153},
    {"pepc", 0.8200, -0.0294},
};

int run() {
  TraceCache cache;
  std::vector<ExperimentRow> rows;
  for (const FamilySpec& family : kFamilies) {
    const auto factory = workload_factory(family.family);
    for (const Rank ranks : {8, 16, 32, 64, 128}) {
      const double doublings = std::log2(static_cast<double>(ranks) / 32.0);
      const double lb = std::clamp(
          family.lb_at_32 + family.lb_slope_per_doubling * doublings, 0.3,
          0.995);
      WorkloadConfig config;
      config.ranks = ranks;
      config.iterations = 4;
      config.target_lb = lb;
      const Trace trace = factory(config);
      rows.push_back(run_experiment(
          trace,
          std::string(family.family) + "-" + std::to_string(ranks),
          "continuous-unlimited",
          default_pipeline_config(paper_unlimited_continuous())));
    }
  }
  print_rows(rows,
             "Scaling study: imbalance and energy savings vs cluster size",
             "scaling_imbalance.csv");
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
