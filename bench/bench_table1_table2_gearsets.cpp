// Tables 1 and 2 of the paper: the 6-gear evenly distributed and the
// 6-gear exponential frequency/voltage sets derived from the linear DVFS
// model through (0.8 GHz, 1.0 V) and (2.3 GHz, 1.5 V).
#include <iostream>

#include "power/gearset.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

void print_set(const std::string& title, const GearSet& set) {
  std::cout << "\n== " << title << " ==\n";
  TextTable table({"Frequency (GHz)", "Voltage (V)"});
  for (const Gear& g : set.gears())
    table.add_row({format_fixed(g.frequency_ghz, 2),
                   format_fixed(g.voltage_v, 2)});
  table.print(std::cout);
}

int run() {
  print_set("Table 1: 6 gear evenly distributed set", paper_uniform(6));
  print_set("Table 2: 6 gear exponential set", paper_exponential(6));
  print_set("AVG discrete set (uniform-6 + over-clock gear)",
            paper_avg_discrete());
  std::cout << "\nContinuous sets: " << paper_unlimited_continuous().describe()
            << " GHz and " << paper_limited_continuous().describe()
            << " GHz\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
