// Figure 3 of the paper: normalized energy as a function of the
// application's load balance, for the unlimited continuous set and the
// 2- and 6-gear evenly distributed sets (MAX algorithm). More imbalance
// (lower LB) means more energy saved; two gears already help very
// imbalanced codes, while the most balanced (CG-32) saves nothing.
#include <iostream>
#include <map>

#include "analysis/figures.hpp"
#include "analysis/svg_chart.hpp"

int main() {
  pals::TraceCache cache;
  const auto rows = pals::figure3_rows(cache);
  pals::print_rows(rows,
                   "Figure 3: energy as a function of load balance (MAX)",
                   "fig3_energy_vs_lb.csv");

  // Render the scatter like the paper's figure: one series per gear set.
  std::map<std::string, pals::ChartSeries> by_variant;
  for (const pals::ExperimentRow& row : rows) {
    pals::ChartSeries& s = by_variant[row.variant];
    s.label = row.variant;
    s.connect = true;  // rows come LB-sorted, so lines read as trends
    s.x.push_back(row.load_balance * 100.0);
    s.y.push_back(row.normalized_energy * 100.0);
  }
  std::vector<pals::ChartSeries> series;
  for (auto& [variant, s] : by_variant) series.push_back(std::move(s));
  pals::ChartOptions chart;
  chart.title = "Figure 3: energy as a function of load balance";
  chart.x_label = "load balance (%)";
  chart.y_label = "normalized energy (%)";
  pals::write_chart_file(series, "fig3_energy_vs_lb.svg", chart);
  std::cout << "chart written to fig3_energy_vs_lb.svg\n";
  return 0;
}
