// Figure 7 of the paper: impact of the computation-to-communication
// activity factor ratio, swept 1.5..3.0 (uniform 6-gear set, MAX). The
// effect depends on the load balance degree: imbalanced applications have
// much baseline wait time whose cost shrinks as the ratio grows.
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(
      pals::figure7_rows(cache),
      "Figure 7: impact of the activity factor (uniform-6, MAX)",
      "fig7_activity.csv");
  return 0;
}
