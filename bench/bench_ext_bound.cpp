// Extension study: how close do the realizable algorithms get to the
// energy-saving *bound* (continuous per-rank frequencies, perfect
// balance, Rountree-style allowable-delay formulation)?
#include <iostream>

#include "analysis/experiments.hpp"
#include "core/bound.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run() {
  TraceCache cache;
  TextTable table({"instance", "LB", "bound d=0%", "bound d=5%",
                   "MAX unlimited", "MAX uniform-6", "gap to bound"});
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    const PipelineResult unlimited = run_pipeline(
        trace, default_pipeline_config(paper_unlimited_continuous()));
    const PipelineResult uniform6 =
        run_pipeline(trace, default_pipeline_config(paper_uniform(6)));

    EnergyBoundConfig bound_config;
    const EnergyBound tight = energy_saving_bound(
        unlimited.computation_time, unlimited.baseline_time, 0.0,
        bound_config);
    const EnergyBound relaxed = energy_saving_bound(
        unlimited.computation_time, unlimited.baseline_time, 0.05,
        bound_config);

    table.add_row(
        {inst.name, format_percent(unlimited.load_balance),
         format_percent(tight.normalized_energy),
         format_percent(relaxed.normalized_energy),
         format_percent(unlimited.normalized_energy()),
         format_percent(uniform6.normalized_energy()),
         format_percent(unlimited.normalized_energy() -
                        tight.normalized_energy)});
  }
  std::cout << "== Extension: energy-saving bound vs realizable algorithms "
               "==\n";
  table.print(std::cout);
  std::cout << "\nThe MAX algorithm with the unlimited continuous set "
               "tracks the zero-delay bound closely;\nthe residual gap is "
               "per-iteration slack a single whole-run frequency cannot "
               "recover.\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
