// Figure 6 of the paper: total energy as a function of the static power
// fraction, swept 0..90 % (uniform 6-gear set, MAX algorithm). When
// static power dominates, down-clocking saves little: at 70 %+ static the
// savings are roughly half of the 20 % baseline case, with steeper slopes
// for more imbalanced applications.
#include "analysis/figures.hpp"

int main() {
  pals::TraceCache cache;
  pals::print_rows(
      pals::figure6_rows(cache),
      "Figure 6: energy as a function of static power (uniform-6, MAX)",
      "fig6_static_power.csv");
  return 0;
}
