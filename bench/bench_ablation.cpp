// Ablation studies of design choices called out in DESIGN.md:
//
//  1. Snap policy: the paper snaps the ideal frequency *up* to the next
//     gear (never slower than the target allows). Nearest snapping saves
//     more energy but stretches the critical path.
//  2. Per-phase frequencies: PEPC has two computation phases with
//     different imbalance; one DVFS setting per rank (the paper's choice)
//     causes its slowdown. A per-phase assignment removes most of it.
//  3. Bus contention: how sensitive the results are to the platform's
//     shared-bus count.
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run() {
  TraceCache cache;

  {
    std::vector<ExperimentRow> rows;
    for (const char* name : {"BT-MZ-32", "MG-32", "WRF-128", "PEPC-128"}) {
      const auto inst = benchmark_by_name(name);
      const Trace& trace = cache.get(*inst);
      PipelineConfig up = default_pipeline_config(paper_uniform(6));
      rows.push_back(run_experiment(trace, name, "snap-up", up));
      PipelineConfig nearest = default_pipeline_config(paper_uniform(6));
      nearest.algorithm.snap_policy = SnapPolicy::kNearest;
      rows.push_back(run_experiment(trace, name, "snap-nearest", nearest));
    }
    print_rows(rows, "Ablation 1: gear snap policy (uniform-6, MAX)",
               "ablation_snap.csv");
  }

  {
    std::vector<ExperimentRow> rows;
    const auto inst = benchmark_by_name("PEPC-128");
    const Trace& trace = cache.get(*inst);
    PipelineConfig single = default_pipeline_config(paper_uniform(6));
    rows.push_back(
        run_experiment(trace, "PEPC-128", "single-setting", single));
    PipelineConfig per_phase = default_pipeline_config(paper_uniform(6));
    per_phase.per_phase = true;
    rows.push_back(run_experiment(trace, "PEPC-128", "per-phase", per_phase));
    print_rows(rows,
               "Ablation 2: one frequency per rank vs per phase (PEPC)",
               "ablation_per_phase.csv");
  }

  {
    // MAX picks the lowest feasible gear — provably energy-optimal under
    // the paper's model where waiting CPUs stay fully powered. With
    // C-states (idle_scale < 1) and real static power, race-to-idle wins
    // and the energy-optimal refinement diverges from MAX.
    std::vector<ExperimentRow> rows;
    const auto inst = benchmark_by_name("BT-MZ-32");
    const Trace& trace = cache.get(*inst);
    for (const double idle : {1.0, 0.3, 0.05}) {
      for (const Algorithm algorithm :
           {Algorithm::kMax, Algorithm::kEnergyOptimalMax}) {
        PipelineConfig config =
            default_pipeline_config(paper_uniform(6), algorithm);
        config.power.static_fraction = 0.6;
        config.power.idle_scale = idle;
        rows.push_back(run_experiment(
            trace, "BT-MZ-32",
            to_string(algorithm) + " idle=" + format_fixed(idle, 2),
            config));
      }
    }
    print_rows(rows,
               "Ablation 4: MAX vs energy-optimal gear choice under "
               "C-states (static 0.6)",
               "ablation_energy_optimal.csv");
  }

  {
    // Collective implementation choice: IS is all-to-all bound, so a
    // Bruck-style logarithmic alltoall (tree) instead of pairwise
    // exchange changes its efficiency — and thereby how much slack DVFS
    // can harvest.
    std::vector<ExperimentRow> rows;
    const auto inst = benchmark_by_name("IS-64");
    const Trace& trace = cache.get(*inst);
    for (const CollectiveAlgo algo :
         {CollectiveAlgo::kDefault, CollectiveAlgo::kTree}) {
      PipelineConfig config = default_pipeline_config(paper_uniform(6));
      config.replay.platform.collective_algorithms[CollectiveOp::kAlltoall] =
          algo;
      rows.push_back(run_experiment(trace, "IS-64",
                                    "alltoall=" + to_string(algo), config));
    }
    print_rows(rows, "Ablation 5: collective algorithm choice (IS-64, MAX)",
               "ablation_collective_algo.csv");
  }

  {
    // CG-64 is point-to-point heavy (collectives use closed-form costs and
    // never touch the buses), so it exposes the contention model.
    std::vector<ExperimentRow> rows;
    const auto inst = benchmark_by_name("CG-64");
    const Trace& trace = cache.get(*inst);
    for (const int buses : {0, 64, 16, 4}) {
      PipelineConfig config = default_pipeline_config(paper_uniform(6));
      config.replay.platform.buses = buses;
      rows.push_back(run_experiment(
          trace, "CG-64",
          buses == 0 ? "buses=unlimited" : "buses=" + std::to_string(buses),
          config));
    }
    print_rows(rows, "Ablation 3: shared-bus contention (CG-64, MAX)",
               "ablation_buses.csv");
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
