#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, a static-lint pass over
# the shipped example traces, then the parallel-sweep determinism test
# again under AddressSanitizer + UBSan and (when supported) under
# ThreadSanitizer — data races in the sweep engine show up as sanitizer
# reports long before they corrupt a CSV.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir] [tsan-build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
ASAN_DIR=${2:-build-asan}
TSAN_DIR=${3:-build-tsan}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== tier 1: build + full test suite (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== tier 1: static lint of the shipped example traces =="
for trace in examples/traces/*.palst; do
  "${BUILD_DIR}/tools/pals_lint" --strict --quiet "${trace}"
done

echo "== tier 1: clang-tidy over src/lint + src/analysis =="
# The static-analysis subsystem itself gets the static-analysis pass;
# restricted to the two directories so the leg stays fast. Degrades to a
# notice when the toolchain does not ship clang-tidy.
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p "${BUILD_DIR}" --quiet \
      src/lint/*.cpp src/analysis/*.cpp
else
  echo "clang-tidy not installed; skipping the leg"
fi

echo "== tier 1: observability artifacts (pals_profile) =="
OBS_DIR="${BUILD_DIR}/Testing/tier1-obs"
mkdir -p "${OBS_DIR}"
# Two runs at different thread counts: the full metrics snapshot must
# carry the replay / thread-pool / span keys, and the simulation-only
# metrics and simulated Chrome trace must be byte-identical across runs.
"${BUILD_DIR}/tools/pals_profile" --trace=examples/traces/ring.palst \
    --repeat=4 --jobs=1 --quiet \
    --metrics="${OBS_DIR}/metrics_j1.json" \
    --sim-metrics="${OBS_DIR}/sim_metrics_j1.json" \
    --sim-trace="${OBS_DIR}/sim_trace_j1.json" \
    --bench-json="${OBS_DIR}/BENCH_replay.json"
"${BUILD_DIR}/tools/pals_profile" --trace=examples/traces/ring.palst \
    --repeat=4 --jobs=4 --quiet \
    --sim-metrics="${OBS_DIR}/sim_metrics_j4.json" \
    --sim-trace="${OBS_DIR}/sim_trace_j4.json"
"${BUILD_DIR}/tools/pals_json_check" --quiet "${OBS_DIR}/metrics_j1.json" \
    --require=replay.events,replay.messages_matched,pool.tasks_executed,span.pipeline.scaled_replay.wall_ns
"${BUILD_DIR}/tools/pals_json_check" --quiet "${OBS_DIR}/BENCH_replay.json" \
    --require=events_per_second,scenarios_per_second
cmp "${OBS_DIR}/sim_metrics_j1.json" "${OBS_DIR}/sim_metrics_j4.json"
cmp "${OBS_DIR}/sim_trace_j1.json" "${OBS_DIR}/sim_trace_j4.json"
diff golden/ring_chrome_trace.json "${OBS_DIR}/sim_trace_j1.json"

echo "== tier 1: bench observatory (pals_bench) =="
BENCH_DIR="${BUILD_DIR}/Testing/tier1-bench"
rm -rf "${BENCH_DIR}"
mkdir -p "${BENCH_DIR}"
# A reduced suite (1 repetition, no warmup) three times — twice at
# --jobs=1 and once at --jobs=4. The deterministic-counter sections must
# be byte-identical across runs and thread counts; the counters are
# per-repetition absolutes, so the reduced run also compares cleanly
# against the committed full-methodology baseline in counters-only mode.
"${BUILD_DIR}/tools/pals_bench" --suite --warmup=0 --repetitions=1 \
    --jobs=1 --quiet --out="${BENCH_DIR}/suite_a.json" \
    --counters-out="${BENCH_DIR}/counters_a.json"
"${BUILD_DIR}/tools/pals_bench" --suite --warmup=0 --repetitions=1 \
    --jobs=1 --quiet --out="${BENCH_DIR}/suite_b.json" \
    --counters-out="${BENCH_DIR}/counters_b.json"
"${BUILD_DIR}/tools/pals_bench" --suite --warmup=0 --repetitions=1 \
    --jobs=4 --quiet --out="${BENCH_DIR}/suite_j4.json" \
    --counters-out="${BENCH_DIR}/counters_j4.json"
cmp "${BENCH_DIR}/counters_a.json" "${BENCH_DIR}/counters_b.json"
cmp "${BENCH_DIR}/counters_a.json" "${BENCH_DIR}/counters_j4.json"
"${BUILD_DIR}/tools/pals_json_check" --quiet --bench "${BENCH_DIR}/suite_a.json"
"${BUILD_DIR}/tools/pals_json_check" --quiet --bench "${BENCH_DIR}/counters_a.json"
# Self-compare exercises the full timing gate (must pass trivially);
# cross-run and baseline compares gate counters only — 1-rep timing is
# noise, but the work counters never are.
"${BUILD_DIR}/tools/pals_bench" --compare \
    "${BENCH_DIR}/suite_a.json" "${BENCH_DIR}/suite_a.json"
"${BUILD_DIR}/tools/pals_bench" --compare --counters-only \
    "${BENCH_DIR}/suite_a.json" "${BENCH_DIR}/suite_b.json"
"${BUILD_DIR}/tools/pals_bench" --compare --counters-only \
    BENCH_suite.json "${BENCH_DIR}/suite_a.json"

echo "== tier 1: sweep determinism under ASan/UBSan (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S . -DPALS_SANITIZE="address;undefined"
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_sweep
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'SweepDeterminism|SweepGridFile|SweepErrors'

echo "== tier 1: fault injection + corrupt-trace corpus under ASan/UBSan =="
# The fault suite (plan grammar, retry/quarantine, injected-sweep
# determinism) and the corrupted-fixture torture corpus both probe
# error paths — exactly where sanitizers find the out-of-bounds reads
# and leaks that a passing exit code would hide.
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_fault test_trace
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'FaultPlan|Injector|Campaign|Classify|RetryPolicy|RunGuarded|FaultSweep|CorruptCorpus'

echo "== tier 1: online-controller suite under ASan/UBSan =="
# The controller battery drives per-iteration observe/re-solve loops,
# the golden schedule comparison and the gear_stuck pinning path —
# index-heavy code over per-rank vectors where an off-by-one reads out
# of bounds silently in a plain build.
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_controller
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'Controller|Pareto|GoldenSchedules'

echo "== tier 1: bounds oracle + pruning under ASan/UBSan =="
# The static bounds analyzer (docs/bounds.md) re-derives the controller
# schedule and budgets the serialization bound with index arithmetic over
# per-rank/per-slot vectors; the oracle leg replays every example trace
# and the shipped Pareto grid with the soundness check armed, so an
# unsound interval or an out-of-bounds read fails here.
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target \
      test_bounds pals_lint_tool pals_check
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'BoundsAnalyzer|BoundsOracle|BoundsRendering|PruneBounds|LintCodeDrift'
for trace in examples/traces/*.palst; do
  "${ASAN_DIR}/tools/pals_check" --quiet "${trace}"
done
"${ASAN_DIR}/tools/pals_sweep" --grid=configs/dynamic_pareto.grid \
    --prune-bounds --quiet

echo "== tier 1: crash-safe resume (kill/resume, journal) under ASan/UBSan =="
# The resume suite SIGKILLs pals_sweep mid-journal and stitches the run
# back together — recovery and journal-parsing paths full of manual fd
# handling and error unwinding, where sanitizers earn their keep. The
# journal of the smoke run-dir must also pass the structural checker.
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target \
      test_resume pals_sweep pals_json_check
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'Journal|ResumeSweep|KillResume|Watchdog|AtomicWriteFile|DurableFile|Checksums'
RESUME_DIR="${ASAN_DIR}/Testing/tier1-resume"
rm -rf "${RESUME_DIR}"
"${ASAN_DIR}/tools/pals_sweep" --grid=configs/lint_smoke.grid --quiet \
    --run-dir="${RESUME_DIR}"
"${ASAN_DIR}/tools/pals_json_check" --journal "${RESUME_DIR}/journal.palsj"

echo "== tier 1: shard supervisor (pals_shepherd) under ASan/UBSan =="
# The supervisor is fork/exec/waitpid plus signal plumbing — leak- and
# lifetime-sensitive code a passing exit hides. The leg runs the shard
# partition/merge/torture suite sanitized, then drives the smoke grid
# through pals_shepherd with an injected mid-run SIGKILL and requires
# the merged artifacts byte-identical to an unsharded --jobs=1 run.
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_shard pals_shepherd
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'ShardSpec|Partition|ShardMerge|ShepherdTorture'
SHARD_DIR="${ASAN_DIR}/Testing/tier1-shard"
rm -rf "${SHARD_DIR}"
"${ASAN_DIR}/tools/pals_sweep" --grid=configs/shard_smoke.grid --jobs=1 \
    --quiet --run-dir="${SHARD_DIR}/reference"
"${ASAN_DIR}/tools/pals_shepherd" --grid=configs/shard_smoke.grid \
    --shards=3 --jobs=1 --quiet --heartbeat=0.05 \
    --chaos-kill=1:1 --max-shard-restarts=2 \
    --backoff-base=0.01 --backoff-cap=0.05 \
    --run-dir="${SHARD_DIR}/sharded"
cmp "${SHARD_DIR}/reference/results.csv" "${SHARD_DIR}/sharded/results.csv"
cmp "${SHARD_DIR}/reference/errors.csv" "${SHARD_DIR}/sharded/errors.csv"

echo "== tier 1: what-if query daemon (pals_serve) under ASan/UBSan =="
# The daemon is the repo's only long-lived network-facing process:
# socket lifecycle, admission control, per-request deadlines, LRU
# eviction and the malformed-request corpus all run sanitized, then the
# real binaries are choreographed end to end — ready-file handshake,
# request battery, chaos connections, byte-identity of the served grid
# against the batch engine, and a SIGTERM drain that must exit 0.
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target \
      test_serve pals_serve_tool pals_query
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'ParseRequest|ValidateRequestLine|BaselineKey|Responses|ApproxEntryBytes|WarmCache|ServeTorture|QueryEngineErrors|ServeDaemon'
SERVE_DIR="${ASAN_DIR}/Testing/tier1-serve"
rm -rf "${SERVE_DIR}"
mkdir -p "${SERVE_DIR}"
SERVE_SOCK="${SERVE_DIR}/serve.sock"
"${ASAN_DIR}/tools/pals_serve" --socket="${SERVE_SOCK}" \
    --ready-file="${SERVE_DIR}/serve.ready" --jobs=2 --quiet &
SERVE_PID=$!
trap 'kill -9 ${SERVE_PID} 2>/dev/null || true' EXIT
for _ in $(seq 1 200); do
  [ -f "${SERVE_DIR}/serve.ready" ] && break
  sleep 0.05
done
[ -f "${SERVE_DIR}/serve.ready" ]
"${ASAN_DIR}/tools/pals_query" --socket="${SERVE_SOCK}" --ping
"${ASAN_DIR}/tools/pals_json_check" --quiet --serve configs/serve_battery.requests
"${ASAN_DIR}/tools/pals_query" --socket="${SERVE_SOCK}" \
    --requests=configs/serve_battery.requests > "${SERVE_DIR}/battery.txt"
"${ASAN_DIR}/tools/pals_query" --socket="${SERVE_SOCK}" --chaos=8
"${ASAN_DIR}/tools/pals_query" --socket="${SERVE_SOCK}" --ping
"${ASAN_DIR}/tools/pals_query" --socket="${SERVE_SOCK}" \
    --grid=configs/serve_smoke.grid --out="${SERVE_DIR}/served.csv"
"${ASAN_DIR}/tools/pals_sweep" --grid=configs/serve_smoke.grid --jobs=1 \
    --quiet --out="${SERVE_DIR}/reference.csv"
cmp "${SERVE_DIR}/served.csv" "${SERVE_DIR}/reference.csv"
kill -TERM "${SERVE_PID}"
SERVE_CODE=0
wait "${SERVE_PID}" || SERVE_CODE=$?
trap - EXIT
[ "${SERVE_CODE}" -eq 0 ]
[ ! -e "${SERVE_SOCK}" ]

# ThreadSanitizer is the race detector proper, but not every toolchain
# image ships its runtime — probe before committing to the leg.
echo "== tier 1: probing for ThreadSanitizer support =="
if echo 'int main(){return 0;}' | \
   c++ -fsanitize=thread -x c++ - -o /tmp/pals_tsan_probe 2>/dev/null && \
   /tmp/pals_tsan_probe; then
  echo "== tier 1: thread-pool + sweep races under TSan (${TSAN_DIR}) =="
  cmake -B "${TSAN_DIR}" -S . -DPALS_SANITIZE="thread"
  cmake --build "${TSAN_DIR}" -j "${JOBS}" --target test_util test_sweep
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}" \
        -R 'ThreadPool|SweepDeterminism'
else
  echo "== tier 1: TSan unavailable on this toolchain; skipping =="
fi
rm -f /tmp/pals_tsan_probe

echo "tier 1 OK"
