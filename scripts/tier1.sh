#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel-sweep
# determinism test again under AddressSanitizer + UBSan (data races in
# the sweep engine show up as ASan heap errors or torn reads long before
# they corrupt a CSV).
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
ASAN_DIR=${2:-build-asan}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== tier 1: build + full test suite (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== tier 1: sweep determinism under ASan/UBSan (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S . -DPALS_SANITIZE="address;undefined"
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target test_sweep
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -R 'SweepDeterminism|SweepGridFile|SweepErrors'

echo "tier 1 OK"
