// Custom workload: write your own MPI skeleton against the virtual MPI
// runtime, trace it, and push it through the power-analysis pipeline.
//
// The skeleton below is a 1-D pipelined wavefront (each rank waits for
// its left neighbour, computes, forwards to the right) with a hot middle
// rank — a pattern none of the built-in generators cover.
//
// Run: ./build/examples/custom_workload
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/gantt.hpp"
#include "mpisim/vmpi.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

int run() {
  constexpr Rank kRanks = 12;
  constexpr int kIterations = 4;

  const RankProgram wavefront = [](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const Rank n = mpi.size();
    // Middle rank carries 3x the work (e.g. a refined mesh region).
    const double weight = (r == n / 2) ? 3.0 : 1.0;
    for (int it = 0; it < kIterations; ++it) {
      mpi.iteration_begin(it);
      if (r > 0) mpi.recv(r - 1, it, 64 * 1024);     // wait for the wave
      mpi.compute(0.01 * weight);                     // local sweep
      if (r + 1 < n) mpi.send(r + 1, it, 64 * 1024);  // pass it on
      mpi.allreduce(8);                               // convergence check
      mpi.iteration_end(it);
    }
  };

  SpmdOptions options;
  options.name = "wavefront-12";
  const Trace trace = run_spmd(kRanks, wavefront, options);

  const PipelineResult result = run_pipeline(
      trace, default_pipeline_config(paper_limited_continuous()));

  std::cout << "custom workload: " << trace.name() << "\n"
            << "load balance " << format_percent(result.load_balance)
            << ", parallel efficiency "
            << format_percent(result.parallel_efficiency) << "\n"
            << "normalized energy "
            << format_percent(result.normalized_energy())
            << ", normalized time "
            << format_percent(result.normalized_time()) << "\n\n";

  std::cout << "original execution:\n"
            << render_gantt(result.baseline_replay.timeline, {90, true, 0})
            << "\nafter MAX frequency scaling:\n"
            << render_gantt(result.scaled_replay.timeline, {90, true, 0});
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
