// Analysis toolbox: everything the library can tell you about one
// application in a single pass — characterization, critical path, the
// theoretical energy bound, the realizable algorithms, and the
// whole-system view.
//
// Run: ./build/examples/analysis_toolbox [--app=PEPC-128]
#include <iostream>

#include "analysis/comm_stats.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/experiments.hpp"
#include "analysis/iteration_stats.hpp"
#include "core/bound.hpp"
#include "core/system_energy.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("app", "benchmark instance from Table 3", "PEPC-128");
  cli.parse(argc, argv);
  const auto inst = benchmark_by_name(cli.get("app"));
  if (!inst) {
    std::cerr << "unknown instance '" << cli.get("app") << "'\n";
    return 1;
  }
  const Trace trace = inst->make();

  // 1. Characterization: where does the time go, does the pattern drift?
  const IterationStats drift = analyze_iterations(trace);
  const CommStats comm = analyze_communication(trace);
  std::cout << "== " << inst->name << " ==\n"
            << "iterations " << drift.iterations << ", total LB "
            << format_percent(drift.total_load_balance)
            << ", mean per-iteration LB "
            << format_percent(drift.mean_iteration_load_balance)
            << ", drift index " << format_fixed(drift.drift_index, 3) << '\n'
            << "p2p traffic " << comm.total_p2p_bytes() << " bytes over "
            << comm.total_messages() << " messages, channel concentration "
            << format_percent(comm.channel_concentration()) << "\n\n";

  // 2. Critical path of the unmodified execution.
  const PipelineResult max_result =
      run_pipeline(trace, default_pipeline_config(paper_uniform(6)));
  const CriticalPath path = critical_path(max_result.baseline_replay);
  std::cout << render_critical_path(path, 8) << '\n';

  // 3. The theoretical bound vs what MAX and AVG actually reach.
  const EnergyBound bound = energy_saving_bound(
      max_result.computation_time, max_result.baseline_time, 0.0,
      EnergyBoundConfig{});
  const PipelineResult avg_result = run_pipeline(
      trace, default_pipeline_config(paper_avg_discrete(), Algorithm::kAvg));
  std::cout << "energy bound (continuous, zero delay): "
            << format_percent(bound.normalized_energy) << '\n'
            << "MAX  uniform-6: "
            << format_percent(max_result.normalized_energy()) << " energy, "
            << format_percent(max_result.normalized_time()) << " time\n"
            << "AVG  +2.6 GHz:  "
            << format_percent(avg_result.normalized_energy()) << " energy, "
            << format_percent(avg_result.normalized_time()) << " time\n\n";

  // 4. System-level verdict.
  SystemEnergyConfig system;
  const SystemView max_view = system_view(max_result, system);
  const SystemView avg_view = system_view(avg_result, system);
  std::cout << "system energy (CPU = 50% of node power): MAX "
            << format_percent(max_view.normalized_system_energy) << ", AVG "
            << format_percent(avg_view.normalized_system_energy) << " -> "
            << (avg_view.normalized_system_energy <
                        max_view.normalized_system_energy
                    ? "AVG"
                    : "MAX")
            << " wins at the system level\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) { return pals::run(argc, argv); }
