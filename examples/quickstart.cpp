// Quickstart: the full power-aware load-balancing pipeline in ~30 lines.
//
//   1. Generate (or load) an application trace.
//   2. Pick an algorithm (MAX or AVG) and a DVFS gear set.
//   3. run_pipeline() replays the original trace, assigns one frequency
//      per rank, rescales computation with the beta time model, replays
//      again and integrates CPU energy.
//
// Build & run:  ./build/examples/quickstart [--ranks=N] [--gears=N]
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/apps.hpp"

int main(int argc, char** argv) {
  pals::CliParser cli;
  cli.add_option("ranks", "number of MPI ranks", "32");
  cli.add_option("gears", "gears in the uniform DVFS set", "6");
  cli.parse(argc, argv);

  // A BT-MZ-like workload: the most load-imbalanced code in the paper.
  pals::WorkloadConfig workload;
  workload.ranks = static_cast<pals::Rank>(cli.get_int("ranks", 32));
  workload.target_lb = 0.35;  // load balance = mean/max computation time
  const pals::Trace trace = pals::make_bt_mz(workload);

  // MAX algorithm (paper baseline): every rank finishes with the slowest.
  const pals::GearSet gears =
      pals::paper_uniform(static_cast<int>(cli.get_int("gears", 6)));
  const pals::PipelineConfig config = pals::default_pipeline_config(gears);

  const pals::PipelineResult result = pals::run_pipeline(trace, config);

  std::cout << "application: " << trace.name() << "\n"
            << "gear set:    " << gears.describe() << "\n"
            << "load balance        " << pals::format_percent(result.load_balance)
            << "\nparallel efficiency " << pals::format_percent(result.parallel_efficiency)
            << "\nnormalized energy   " << pals::format_percent(result.normalized_energy())
            << "\nnormalized time     " << pals::format_percent(result.normalized_time())
            << "\nnormalized EDP      " << pals::format_percent(result.normalized_edp())
            << "\n\nper-rank frequencies (GHz):\n";
  for (std::size_t r = 0; r < result.assignment.gears.size(); ++r) {
    std::cout << pals::format_fixed(result.assignment.gears[r].frequency_ghz, 2)
              << ((r + 1) % 16 == 0 ? "\n" : " ");
  }
  std::cout << '\n';
  return 0;
}
