// Gear-set designer: given a target application, compare candidate DVFS
// gear sets (size x distribution) and report which gets closest to the
// continuous-frequency ideal — the question the paper answers with
// "six gears suffice, exponential helps balanced codes".
//
// Run: ./build/examples/gearset_designer [--app=WRF-32]
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("app", "benchmark instance from Table 3", "WRF-32");
  cli.parse(argc, argv);

  const auto inst = benchmark_by_name(cli.get("app"));
  if (!inst) {
    std::cerr << "unknown instance '" << cli.get("app")
              << "'; valid names come from Table 3 (e.g. CG-32, PEPC-128)\n";
    return 1;
  }
  const Trace trace = inst->make();

  const double ideal =
      run_pipeline(trace, default_pipeline_config(paper_limited_continuous()))
          .normalized_energy();

  struct Candidate {
    std::string label;
    GearSet set;
  };
  std::vector<Candidate> candidates;
  for (int n : {2, 3, 4, 6, 8, 10, 15})
    candidates.push_back({"uniform-" + std::to_string(n), paper_uniform(n)});
  for (int n : {3, 4, 5, 6, 7})
    candidates.push_back(
        {"exponential-" + std::to_string(n), paper_exponential(n)});

  TextTable table({"gear set", "energy", "gap to continuous", "time"});
  for (const Candidate& c : candidates) {
    const PipelineResult r =
        run_pipeline(trace, default_pipeline_config(c.set));
    table.add_row({c.label, format_percent(r.normalized_energy()),
                   format_percent(r.normalized_energy() - ideal),
                   format_percent(r.normalized_time())});
  }

  std::cout << "application " << inst->name << " (paper LB "
            << format_percent(inst->paper_lb) << ")\n"
            << "continuous-set energy: " << format_percent(ideal) << "\n\n";
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) { return pals::run(argc, argv); }
