// Imbalance study: how do energy savings depend on an application's load
// balance and the cluster size? Sweeps a CG-like workload over rank
// counts and imbalance targets, comparing MAX and AVG side by side —
// the motivating scenario of the paper's introduction (larger clusters
// are more imbalanced, so DVFS load balancing pays off more).
//
// Run: ./build/examples/imbalance_study
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

int run() {
  TextTable table({"ranks", "target LB", "E(MAX)", "T(MAX)", "E(AVG)",
                   "T(AVG)", "overclocked"});
  for (const Rank ranks : {16, 32, 64, 128}) {
    for (const double lb : {0.95, 0.80, 0.60, 0.40}) {
      WorkloadConfig workload;
      workload.ranks = ranks;
      workload.iterations = 4;
      workload.target_lb = lb;
      const Trace trace = make_cg(workload);

      const PipelineResult max_result = run_pipeline(
          trace, default_pipeline_config(paper_uniform(6)));
      const PipelineResult avg_result = run_pipeline(
          trace,
          default_pipeline_config(paper_avg_discrete(), Algorithm::kAvg));

      table.add_row({std::to_string(ranks), format_percent(lb, 0),
                     format_percent(max_result.normalized_energy()),
                     format_percent(max_result.normalized_time()),
                     format_percent(avg_result.normalized_energy()),
                     format_percent(avg_result.normalized_time()),
                     format_percent(avg_result.overclocked_fraction)});
    }
  }
  std::cout << "CG-like workload, uniform-6 gear set (AVG adds the 2.6 GHz "
               "gear):\n\n";
  table.print(std::cout);
  std::cout << "\nReading guide: lower LB (more imbalance) -> lower "
               "normalized energy;\nAVG trades a little energy for "
               "execution-time reduction via over-clocking.\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
