// Trace pipeline: the paper's full tooling flow on files, mirroring the
// Paraver -> cutter -> Dimemas -> power-module chain:
//
//   1. trace an application with the virtual MPI runtime,
//   2. write it to disk (.palst), read it back,
//   3. cut the steady-state iterative region (drop warmup iterations),
//   4. replay, assign frequencies, replay again,
//   5. write both timelines (.palsv) for external visualization.
//
// Run: ./build/examples/trace_pipeline [--dir=/tmp]
#include <fstream>
#include <iostream>

#include "analysis/experiments.hpp"
#include "trace/cutter.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("dir", "output directory for trace files", "/tmp");
  cli.parse(argc, argv);
  const std::string dir = cli.get("dir");

  // 1. Trace an MG-like application, including two warmup iterations.
  WorkloadConfig workload;
  workload.ranks = 16;
  workload.iterations = 6;
  workload.target_lb = 0.85;
  const Trace full = make_mg(workload);

  // 2. Round-trip through the on-disk format.
  const std::string trace_path = dir + "/mg16.palst";
  write_trace_file(full, trace_path);
  const Trace loaded = read_trace_file(trace_path);
  std::cout << "wrote + reloaded " << trace_path << " ("
            << loaded.total_events() << " events, "
            << loaded.iteration_count() << " iterations)\n";

  // 3. Cut the steady-state region (drop 2 warmup iterations).
  const Trace region = drop_warmup(loaded, 2);
  std::cout << "cut steady-state region: " << region.iteration_count()
            << " iterations kept\n";

  // 4. Power-analysis pipeline on the cut region.
  const PipelineResult result =
      run_pipeline(region, default_pipeline_config(paper_uniform(6)));
  std::cout << "normalized energy " << format_percent(result.normalized_energy())
            << ", time " << format_percent(result.normalized_time()) << '\n';

  // 5. Export the timelines for visualization.
  for (const auto& [suffix, timeline] :
       {std::pair<const char*, const Timeline&>{"baseline",
                                                result.baseline_replay.timeline},
        std::pair<const char*, const Timeline&>{"scaled",
                                                result.scaled_replay.timeline}}) {
    const std::string path = dir + "/mg16_" + suffix + ".palsv";
    std::ofstream out(path);
    write_timeline(timeline, out);
    std::cout << "timeline written to " << path << '\n';
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) { return pals::run(argc, argv); }
