// Dynamic runtime example: when the imbalance pattern moves, a static
// whole-run frequency assignment is blind — the per-iteration Jitter-style
// runtime (core/jitter.hpp) tracks it.
//
// Run: ./build/examples/dynamic_runtime
#include <iostream>

#include "analysis/experiments.hpp"
#include "core/jitter.hpp"
#include "util/strings.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

int run() {
  // A drifting hot spot: every iteration has LB 0.5, but the totals are
  // balanced because the hot region visits every rank over the run.
  WorkloadConfig workload;
  workload.ranks = 24;
  workload.iterations = 48;
  workload.target_lb = 0.5;
  const Trace trace = make_amr_drift(workload);

  const PipelineResult static_result =
      run_pipeline(trace, default_pipeline_config(paper_uniform(6)));

  JitterConfig jitter_config;
  jitter_config.gear_set = paper_uniform(6);
  const JitterResult dynamic = run_jitter(trace, jitter_config);

  std::cout << "workload " << trace.name() << ": per-iteration LB 50%, "
            << "whole-run LB "
            << format_percent(static_result.load_balance) << "\n\n"
            << "static MAX   energy "
            << format_percent(static_result.normalized_energy()) << ", time "
            << format_percent(static_result.normalized_time()) << '\n'
            << "dynamic      energy "
            << format_percent(dynamic.normalized_energy()) << ", time "
            << format_percent(dynamic.normalized_time()) << " ("
            << dynamic.gear_shifts << " gear shifts)\n\n";

  // Show the runtime chasing the hot spot: the gear of three sample ranks
  // over the first iterations.
  std::cout << "gear (GHz) of ranks 0, 8, 16 per iteration:\n";
  for (std::size_t it = 0; it < 16; ++it) {
    std::cout << "  iter " << it << ":";
    for (const std::size_t r : {0u, 8u, 16u})
      std::cout << ' '
                << format_fixed(dynamic.schedule[it][r].frequency_ghz, 1);
    std::cout << '\n';
  }
  std::cout << "\nThe static algorithm sees balanced totals and keeps every "
               "rank near the top gear;\nthe dynamic runtime rides the "
               "drifting imbalance.\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
