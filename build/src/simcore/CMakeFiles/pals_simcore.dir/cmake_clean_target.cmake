file(REMOVE_RECURSE
  "libpals_simcore.a"
)
