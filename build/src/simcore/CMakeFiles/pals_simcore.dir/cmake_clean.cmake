file(REMOVE_RECURSE
  "CMakeFiles/pals_simcore.dir/engine.cpp.o"
  "CMakeFiles/pals_simcore.dir/engine.cpp.o.d"
  "libpals_simcore.a"
  "libpals_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
