# Empty compiler generated dependencies file for pals_simcore.
# This may be replaced when dependencies are built.
