file(REMOVE_RECURSE
  "libpals_network.a"
)
