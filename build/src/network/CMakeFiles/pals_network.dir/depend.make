# Empty dependencies file for pals_network.
# This may be replaced when dependencies are built.
