file(REMOVE_RECURSE
  "CMakeFiles/pals_network.dir/platform.cpp.o"
  "CMakeFiles/pals_network.dir/platform.cpp.o.d"
  "libpals_network.a"
  "libpals_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
