file(REMOVE_RECURSE
  "CMakeFiles/pals_paraver.dir/export.cpp.o"
  "CMakeFiles/pals_paraver.dir/export.cpp.o.d"
  "CMakeFiles/pals_paraver.dir/prv.cpp.o"
  "CMakeFiles/pals_paraver.dir/prv.cpp.o.d"
  "CMakeFiles/pals_paraver.dir/translate.cpp.o"
  "CMakeFiles/pals_paraver.dir/translate.cpp.o.d"
  "libpals_paraver.a"
  "libpals_paraver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_paraver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
