
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paraver/export.cpp" "src/paraver/CMakeFiles/pals_paraver.dir/export.cpp.o" "gcc" "src/paraver/CMakeFiles/pals_paraver.dir/export.cpp.o.d"
  "/root/repo/src/paraver/prv.cpp" "src/paraver/CMakeFiles/pals_paraver.dir/prv.cpp.o" "gcc" "src/paraver/CMakeFiles/pals_paraver.dir/prv.cpp.o.d"
  "/root/repo/src/paraver/translate.cpp" "src/paraver/CMakeFiles/pals_paraver.dir/translate.cpp.o" "gcc" "src/paraver/CMakeFiles/pals_paraver.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pals_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pals_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/pals_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pals_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pals_network.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
