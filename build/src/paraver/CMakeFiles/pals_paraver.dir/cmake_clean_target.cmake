file(REMOVE_RECURSE
  "libpals_paraver.a"
)
