# Empty compiler generated dependencies file for pals_paraver.
# This may be replaced when dependencies are built.
