file(REMOVE_RECURSE
  "CMakeFiles/pals_util.dir/binio.cpp.o"
  "CMakeFiles/pals_util.dir/binio.cpp.o.d"
  "CMakeFiles/pals_util.dir/cli.cpp.o"
  "CMakeFiles/pals_util.dir/cli.cpp.o.d"
  "CMakeFiles/pals_util.dir/csv.cpp.o"
  "CMakeFiles/pals_util.dir/csv.cpp.o.d"
  "CMakeFiles/pals_util.dir/kvconfig.cpp.o"
  "CMakeFiles/pals_util.dir/kvconfig.cpp.o.d"
  "CMakeFiles/pals_util.dir/logging.cpp.o"
  "CMakeFiles/pals_util.dir/logging.cpp.o.d"
  "CMakeFiles/pals_util.dir/rng.cpp.o"
  "CMakeFiles/pals_util.dir/rng.cpp.o.d"
  "CMakeFiles/pals_util.dir/stats.cpp.o"
  "CMakeFiles/pals_util.dir/stats.cpp.o.d"
  "CMakeFiles/pals_util.dir/strings.cpp.o"
  "CMakeFiles/pals_util.dir/strings.cpp.o.d"
  "libpals_util.a"
  "libpals_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
