# Empty dependencies file for pals_util.
# This may be replaced when dependencies are built.
