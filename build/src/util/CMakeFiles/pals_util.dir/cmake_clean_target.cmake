file(REMOVE_RECURSE
  "libpals_util.a"
)
