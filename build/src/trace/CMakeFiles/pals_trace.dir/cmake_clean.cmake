file(REMOVE_RECURSE
  "CMakeFiles/pals_trace.dir/binary_io.cpp.o"
  "CMakeFiles/pals_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/pals_trace.dir/cutter.cpp.o"
  "CMakeFiles/pals_trace.dir/cutter.cpp.o.d"
  "CMakeFiles/pals_trace.dir/event.cpp.o"
  "CMakeFiles/pals_trace.dir/event.cpp.o.d"
  "CMakeFiles/pals_trace.dir/io.cpp.o"
  "CMakeFiles/pals_trace.dir/io.cpp.o.d"
  "CMakeFiles/pals_trace.dir/timeline.cpp.o"
  "CMakeFiles/pals_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/pals_trace.dir/trace.cpp.o"
  "CMakeFiles/pals_trace.dir/trace.cpp.o.d"
  "CMakeFiles/pals_trace.dir/transform.cpp.o"
  "CMakeFiles/pals_trace.dir/transform.cpp.o.d"
  "CMakeFiles/pals_trace.dir/types.cpp.o"
  "CMakeFiles/pals_trace.dir/types.cpp.o.d"
  "libpals_trace.a"
  "libpals_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
