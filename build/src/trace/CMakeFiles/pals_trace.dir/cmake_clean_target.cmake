file(REMOVE_RECURSE
  "libpals_trace.a"
)
