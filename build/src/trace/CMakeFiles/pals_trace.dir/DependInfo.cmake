
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary_io.cpp" "src/trace/CMakeFiles/pals_trace.dir/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/trace/cutter.cpp" "src/trace/CMakeFiles/pals_trace.dir/cutter.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/cutter.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/pals_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/pals_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/trace/CMakeFiles/pals_trace.dir/timeline.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/timeline.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/pals_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/transform.cpp" "src/trace/CMakeFiles/pals_trace.dir/transform.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/transform.cpp.o.d"
  "/root/repo/src/trace/types.cpp" "src/trace/CMakeFiles/pals_trace.dir/types.cpp.o" "gcc" "src/trace/CMakeFiles/pals_trace.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pals_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
