# Empty compiler generated dependencies file for pals_trace.
# This may be replaced when dependencies are built.
