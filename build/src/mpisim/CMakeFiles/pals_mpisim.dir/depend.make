# Empty dependencies file for pals_mpisim.
# This may be replaced when dependencies are built.
