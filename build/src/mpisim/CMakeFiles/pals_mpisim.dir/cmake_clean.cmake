file(REMOVE_RECURSE
  "CMakeFiles/pals_mpisim.dir/vmpi.cpp.o"
  "CMakeFiles/pals_mpisim.dir/vmpi.cpp.o.d"
  "libpals_mpisim.a"
  "libpals_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
