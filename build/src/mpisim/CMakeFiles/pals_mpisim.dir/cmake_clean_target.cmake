file(REMOVE_RECURSE
  "libpals_mpisim.a"
)
