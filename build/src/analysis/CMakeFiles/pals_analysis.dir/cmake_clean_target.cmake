file(REMOVE_RECURSE
  "libpals_analysis.a"
)
