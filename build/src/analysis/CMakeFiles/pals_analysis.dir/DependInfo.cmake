
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/comm_stats.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/comm_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/comm_stats.cpp.o.d"
  "/root/repo/src/analysis/critical_path.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/critical_path.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/critical_path.cpp.o.d"
  "/root/repo/src/analysis/experiments.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/experiments.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/experiments.cpp.o.d"
  "/root/repo/src/analysis/figures.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/figures.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/figures.cpp.o.d"
  "/root/repo/src/analysis/gantt.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/gantt.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/gantt.cpp.o.d"
  "/root/repo/src/analysis/golden.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/golden.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/golden.cpp.o.d"
  "/root/repo/src/analysis/iteration_stats.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/iteration_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/iteration_stats.cpp.o.d"
  "/root/repo/src/analysis/svg.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/svg.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/svg.cpp.o.d"
  "/root/repo/src/analysis/svg_chart.cpp" "src/analysis/CMakeFiles/pals_analysis.dir/svg_chart.cpp.o" "gcc" "src/analysis/CMakeFiles/pals_analysis.dir/svg_chart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pals_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pals_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pals_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pals_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pals_power.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/pals_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pals_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pals_network.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/pals_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
