file(REMOVE_RECURSE
  "CMakeFiles/pals_analysis.dir/comm_stats.cpp.o"
  "CMakeFiles/pals_analysis.dir/comm_stats.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/critical_path.cpp.o"
  "CMakeFiles/pals_analysis.dir/critical_path.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/experiments.cpp.o"
  "CMakeFiles/pals_analysis.dir/experiments.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/figures.cpp.o"
  "CMakeFiles/pals_analysis.dir/figures.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/gantt.cpp.o"
  "CMakeFiles/pals_analysis.dir/gantt.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/golden.cpp.o"
  "CMakeFiles/pals_analysis.dir/golden.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/iteration_stats.cpp.o"
  "CMakeFiles/pals_analysis.dir/iteration_stats.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/svg.cpp.o"
  "CMakeFiles/pals_analysis.dir/svg.cpp.o.d"
  "CMakeFiles/pals_analysis.dir/svg_chart.cpp.o"
  "CMakeFiles/pals_analysis.dir/svg_chart.cpp.o.d"
  "libpals_analysis.a"
  "libpals_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
