# Empty compiler generated dependencies file for pals_analysis.
# This may be replaced when dependencies are built.
