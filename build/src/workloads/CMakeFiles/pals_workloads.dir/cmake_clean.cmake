file(REMOVE_RECURSE
  "CMakeFiles/pals_workloads.dir/amr_drift.cpp.o"
  "CMakeFiles/pals_workloads.dir/amr_drift.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/apps_common.cpp.o"
  "CMakeFiles/pals_workloads.dir/apps_common.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/bt_mz.cpp.o"
  "CMakeFiles/pals_workloads.dir/bt_mz.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/imbalance.cpp.o"
  "CMakeFiles/pals_workloads.dir/imbalance.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/nas_cg.cpp.o"
  "CMakeFiles/pals_workloads.dir/nas_cg.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/nas_ft.cpp.o"
  "CMakeFiles/pals_workloads.dir/nas_ft.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/nas_is.cpp.o"
  "CMakeFiles/pals_workloads.dir/nas_is.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/nas_lu.cpp.o"
  "CMakeFiles/pals_workloads.dir/nas_lu.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/nas_mg.cpp.o"
  "CMakeFiles/pals_workloads.dir/nas_mg.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/pepc.cpp.o"
  "CMakeFiles/pals_workloads.dir/pepc.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/registry.cpp.o"
  "CMakeFiles/pals_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/specfem3d.cpp.o"
  "CMakeFiles/pals_workloads.dir/specfem3d.cpp.o.d"
  "CMakeFiles/pals_workloads.dir/wrf.cpp.o"
  "CMakeFiles/pals_workloads.dir/wrf.cpp.o.d"
  "libpals_workloads.a"
  "libpals_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
