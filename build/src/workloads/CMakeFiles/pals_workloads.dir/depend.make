# Empty dependencies file for pals_workloads.
# This may be replaced when dependencies are built.
