file(REMOVE_RECURSE
  "libpals_workloads.a"
)
