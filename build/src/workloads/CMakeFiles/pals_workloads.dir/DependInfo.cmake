
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/amr_drift.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/amr_drift.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/amr_drift.cpp.o.d"
  "/root/repo/src/workloads/apps_common.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/apps_common.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/apps_common.cpp.o.d"
  "/root/repo/src/workloads/bt_mz.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/bt_mz.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/bt_mz.cpp.o.d"
  "/root/repo/src/workloads/imbalance.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/imbalance.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/imbalance.cpp.o.d"
  "/root/repo/src/workloads/nas_cg.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/nas_cg.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/nas_cg.cpp.o.d"
  "/root/repo/src/workloads/nas_ft.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/nas_ft.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/nas_ft.cpp.o.d"
  "/root/repo/src/workloads/nas_is.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/nas_is.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/nas_is.cpp.o.d"
  "/root/repo/src/workloads/nas_lu.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/nas_lu.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/nas_lu.cpp.o.d"
  "/root/repo/src/workloads/nas_mg.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/nas_mg.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/nas_mg.cpp.o.d"
  "/root/repo/src/workloads/pepc.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/pepc.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/pepc.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/specfem3d.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/specfem3d.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/specfem3d.cpp.o.d"
  "/root/repo/src/workloads/wrf.cpp" "src/workloads/CMakeFiles/pals_workloads.dir/wrf.cpp.o" "gcc" "src/workloads/CMakeFiles/pals_workloads.dir/wrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pals_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pals_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/pals_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
