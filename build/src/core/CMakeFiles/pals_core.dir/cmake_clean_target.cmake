file(REMOVE_RECURSE
  "libpals_core.a"
)
