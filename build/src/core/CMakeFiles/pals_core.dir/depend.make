# Empty dependencies file for pals_core.
# This may be replaced when dependencies are built.
