file(REMOVE_RECURSE
  "CMakeFiles/pals_core.dir/algorithms.cpp.o"
  "CMakeFiles/pals_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/pals_core.dir/bound.cpp.o"
  "CMakeFiles/pals_core.dir/bound.cpp.o.d"
  "CMakeFiles/pals_core.dir/jitter.cpp.o"
  "CMakeFiles/pals_core.dir/jitter.cpp.o.d"
  "CMakeFiles/pals_core.dir/pipeline.cpp.o"
  "CMakeFiles/pals_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pals_core.dir/system_energy.cpp.o"
  "CMakeFiles/pals_core.dir/system_energy.cpp.o.d"
  "libpals_core.a"
  "libpals_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
