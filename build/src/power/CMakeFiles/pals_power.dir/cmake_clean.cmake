file(REMOVE_RECURSE
  "CMakeFiles/pals_power.dir/gearset.cpp.o"
  "CMakeFiles/pals_power.dir/gearset.cpp.o.d"
  "CMakeFiles/pals_power.dir/power_model.cpp.o"
  "CMakeFiles/pals_power.dir/power_model.cpp.o.d"
  "libpals_power.a"
  "libpals_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
