# Empty dependencies file for pals_power.
# This may be replaced when dependencies are built.
