file(REMOVE_RECURSE
  "libpals_power.a"
)
