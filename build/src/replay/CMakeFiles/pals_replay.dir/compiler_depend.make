# Empty compiler generated dependencies file for pals_replay.
# This may be replaced when dependencies are built.
