file(REMOVE_RECURSE
  "CMakeFiles/pals_replay.dir/replay.cpp.o"
  "CMakeFiles/pals_replay.dir/replay.cpp.o.d"
  "libpals_replay.a"
  "libpals_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
