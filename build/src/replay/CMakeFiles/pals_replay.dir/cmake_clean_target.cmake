file(REMOVE_RECURSE
  "libpals_replay.a"
)
