file(REMOVE_RECURSE
  "CMakeFiles/prv2palst.dir/prv2palst.cpp.o"
  "CMakeFiles/prv2palst.dir/prv2palst.cpp.o.d"
  "prv2palst"
  "prv2palst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prv2palst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
