# Empty dependencies file for prv2palst.
# This may be replaced when dependencies are built.
