# Empty dependencies file for calibrate_workloads.
# This may be replaced when dependencies are built.
