file(REMOVE_RECURSE
  "CMakeFiles/calibrate_workloads.dir/calibrate_workloads.cpp.o"
  "CMakeFiles/calibrate_workloads.dir/calibrate_workloads.cpp.o.d"
  "calibrate_workloads"
  "calibrate_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
