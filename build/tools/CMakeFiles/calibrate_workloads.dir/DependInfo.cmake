
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/calibrate_workloads.cpp" "tools/CMakeFiles/calibrate_workloads.dir/calibrate_workloads.cpp.o" "gcc" "tools/CMakeFiles/calibrate_workloads.dir/calibrate_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pals_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pals_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pals_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/pals_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/paraver/CMakeFiles/pals_paraver.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/pals_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pals_network.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pals_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pals_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pals_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pals_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
