# Empty compiler generated dependencies file for update_golden.
# This may be replaced when dependencies are built.
