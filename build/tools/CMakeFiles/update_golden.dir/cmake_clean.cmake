file(REMOVE_RECURSE
  "CMakeFiles/update_golden.dir/update_golden.cpp.o"
  "CMakeFiles/update_golden.dir/update_golden.cpp.o.d"
  "update_golden"
  "update_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
