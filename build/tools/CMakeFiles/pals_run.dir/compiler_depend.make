# Empty compiler generated dependencies file for pals_run.
# This may be replaced when dependencies are built.
