# Empty dependencies file for pals_run.
# This may be replaced when dependencies are built.
