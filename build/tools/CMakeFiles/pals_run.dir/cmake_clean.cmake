file(REMOVE_RECURSE
  "CMakeFiles/pals_run.dir/pals_run.cpp.o"
  "CMakeFiles/pals_run.dir/pals_run.cpp.o.d"
  "pals_run"
  "pals_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
