# Empty dependencies file for pals_trace_info.
# This may be replaced when dependencies are built.
