file(REMOVE_RECURSE
  "CMakeFiles/pals_trace_info.dir/pals_trace_info.cpp.o"
  "CMakeFiles/pals_trace_info.dir/pals_trace_info.cpp.o.d"
  "pals_trace_info"
  "pals_trace_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_trace_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
