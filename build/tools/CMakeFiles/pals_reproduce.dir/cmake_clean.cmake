file(REMOVE_RECURSE
  "CMakeFiles/pals_reproduce.dir/pals_reproduce.cpp.o"
  "CMakeFiles/pals_reproduce.dir/pals_reproduce.cpp.o.d"
  "pals_reproduce"
  "pals_reproduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pals_reproduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
