# Empty compiler generated dependencies file for pals_reproduce.
# This may be replaced when dependencies are built.
