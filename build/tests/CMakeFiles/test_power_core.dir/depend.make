# Empty dependencies file for test_power_core.
# This may be replaced when dependencies are built.
