file(REMOVE_RECURSE
  "CMakeFiles/test_power_core.dir/core/algorithms_property_test.cpp.o"
  "CMakeFiles/test_power_core.dir/core/algorithms_property_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/core/algorithms_test.cpp.o"
  "CMakeFiles/test_power_core.dir/core/algorithms_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/core/bound_test.cpp.o"
  "CMakeFiles/test_power_core.dir/core/bound_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/core/jitter_test.cpp.o"
  "CMakeFiles/test_power_core.dir/core/jitter_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/test_power_core.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/core/system_energy_test.cpp.o"
  "CMakeFiles/test_power_core.dir/core/system_energy_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/power/gearset_property_test.cpp.o"
  "CMakeFiles/test_power_core.dir/power/gearset_property_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/power/gearset_test.cpp.o"
  "CMakeFiles/test_power_core.dir/power/gearset_test.cpp.o.d"
  "CMakeFiles/test_power_core.dir/power/power_model_test.cpp.o"
  "CMakeFiles/test_power_core.dir/power/power_model_test.cpp.o.d"
  "test_power_core"
  "test_power_core.pdb"
  "test_power_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
