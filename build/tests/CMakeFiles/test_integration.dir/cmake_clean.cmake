file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/analysis_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/analysis_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/comm_stats_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/comm_stats_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/consistency_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/consistency_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/critical_path_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/critical_path_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/figures_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/figures_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/golden_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/golden_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/iteration_stats_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/iteration_stats_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/paper_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/paper_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/property_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/property_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/svg_chart_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/svg_chart_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
