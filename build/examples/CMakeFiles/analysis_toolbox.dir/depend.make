# Empty dependencies file for analysis_toolbox.
# This may be replaced when dependencies are built.
