file(REMOVE_RECURSE
  "CMakeFiles/analysis_toolbox.dir/analysis_toolbox.cpp.o"
  "CMakeFiles/analysis_toolbox.dir/analysis_toolbox.cpp.o.d"
  "analysis_toolbox"
  "analysis_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
