file(REMOVE_RECURSE
  "CMakeFiles/gearset_designer.dir/gearset_designer.cpp.o"
  "CMakeFiles/gearset_designer.dir/gearset_designer.cpp.o.d"
  "gearset_designer"
  "gearset_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearset_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
