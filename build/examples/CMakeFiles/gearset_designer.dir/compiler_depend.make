# Empty compiler generated dependencies file for gearset_designer.
# This may be replaced when dependencies are built.
