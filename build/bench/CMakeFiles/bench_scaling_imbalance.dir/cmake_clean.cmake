file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_imbalance.dir/bench_scaling_imbalance.cpp.o"
  "CMakeFiles/bench_scaling_imbalance.dir/bench_scaling_imbalance.cpp.o.d"
  "bench_scaling_imbalance"
  "bench_scaling_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
