# Empty dependencies file for bench_scaling_imbalance.
# This may be replaced when dependencies are built.
