# Empty dependencies file for bench_fig5_beta.
# This may be replaced when dependencies are built.
