file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_beta.dir/bench_fig5_beta.cpp.o"
  "CMakeFiles/bench_fig5_beta.dir/bench_fig5_beta.cpp.o.d"
  "bench_fig5_beta"
  "bench_fig5_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
