# Empty compiler generated dependencies file for bench_fig7_activity.
# This may be replaced when dependencies are built.
