file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_activity.dir/bench_fig7_activity.cpp.o"
  "CMakeFiles/bench_fig7_activity.dir/bench_fig7_activity.cpp.o.d"
  "bench_fig7_activity"
  "bench_fig7_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
