# Empty compiler generated dependencies file for bench_fig9_avg_discrete.
# This may be replaced when dependencies are built.
