file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_avg_discrete.dir/bench_fig9_avg_discrete.cpp.o"
  "CMakeFiles/bench_fig9_avg_discrete.dir/bench_fig9_avg_discrete.cpp.o.d"
  "bench_fig9_avg_discrete"
  "bench_fig9_avg_discrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_avg_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
