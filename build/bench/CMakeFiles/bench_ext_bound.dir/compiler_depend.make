# Empty compiler generated dependencies file for bench_ext_bound.
# This may be replaced when dependencies are built.
