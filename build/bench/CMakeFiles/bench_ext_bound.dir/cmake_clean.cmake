file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bound.dir/bench_ext_bound.cpp.o"
  "CMakeFiles/bench_ext_bound.dir/bench_ext_bound.cpp.o.d"
  "bench_ext_bound"
  "bench_ext_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
