file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_static_power.dir/bench_fig6_static_power.cpp.o"
  "CMakeFiles/bench_fig6_static_power.dir/bench_fig6_static_power.cpp.o.d"
  "bench_fig6_static_power"
  "bench_fig6_static_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_static_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
