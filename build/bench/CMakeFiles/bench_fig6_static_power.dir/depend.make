# Empty dependencies file for bench_fig6_static_power.
# This may be replaced when dependencies are built.
