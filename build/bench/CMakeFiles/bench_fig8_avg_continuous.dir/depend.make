# Empty dependencies file for bench_fig8_avg_continuous.
# This may be replaced when dependencies are built.
