file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_avg_continuous.dir/bench_fig8_avg_continuous.cpp.o"
  "CMakeFiles/bench_fig8_avg_continuous.dir/bench_fig8_avg_continuous.cpp.o.d"
  "bench_fig8_avg_continuous"
  "bench_fig8_avg_continuous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_avg_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
