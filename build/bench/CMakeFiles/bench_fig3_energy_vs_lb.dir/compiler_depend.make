# Empty compiler generated dependencies file for bench_fig3_energy_vs_lb.
# This may be replaced when dependencies are built.
