file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_energy_vs_lb.dir/bench_fig3_energy_vs_lb.cpp.o"
  "CMakeFiles/bench_fig3_energy_vs_lb.dir/bench_fig3_energy_vs_lb.cpp.o.d"
  "bench_fig3_energy_vs_lb"
  "bench_fig3_energy_vs_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_energy_vs_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
