# Empty dependencies file for bench_fig4_exponential.
# This may be replaced when dependencies are built.
