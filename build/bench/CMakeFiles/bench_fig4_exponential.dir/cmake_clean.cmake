file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_exponential.dir/bench_fig4_exponential.cpp.o"
  "CMakeFiles/bench_fig4_exponential.dir/bench_fig4_exponential.cpp.o.d"
  "bench_fig4_exponential"
  "bench_fig4_exponential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
