# Empty dependencies file for bench_fig2_gearset_size.
# This may be replaced when dependencies are built.
