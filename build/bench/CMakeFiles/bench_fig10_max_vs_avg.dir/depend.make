# Empty dependencies file for bench_fig10_max_vs_avg.
# This may be replaced when dependencies are built.
