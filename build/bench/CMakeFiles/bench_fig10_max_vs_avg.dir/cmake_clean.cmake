file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_max_vs_avg.dir/bench_fig10_max_vs_avg.cpp.o"
  "CMakeFiles/bench_fig10_max_vs_avg.dir/bench_fig10_max_vs_avg.cpp.o.d"
  "bench_fig10_max_vs_avg"
  "bench_fig10_max_vs_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_max_vs_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
