file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_table2_gearsets.dir/bench_table1_table2_gearsets.cpp.o"
  "CMakeFiles/bench_table1_table2_gearsets.dir/bench_table1_table2_gearsets.cpp.o.d"
  "bench_table1_table2_gearsets"
  "bench_table1_table2_gearsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_table2_gearsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
