// pals_run — the power-analysis pipeline as a command-line tool.
//
//   pals_run --trace=app.palst [--algorithm=max|avg] [--gears=...]
//            [--beta=0.5] [--static-fraction=0.2] [--activity-ratio=1.5]
//            [--warmup=N] [--gantt] [--svg=out.svg]
//   pals_run --workload=cg --ranks=32 --lb=0.9 ...
//
// Gear set names: unlimited, limited, uniform-N, exponential-N,
// avg-discrete (uniform-6 + 2.6 GHz).
#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>

#include "analysis/experiments.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/gantt.hpp"
#include "analysis/svg.hpp"
#include "analysis/svg_chart.hpp"
#include "paraver/export.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "trace/cutter.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("trace", "input .palst trace file");
  cli.add_option("workload", "generate a workload instead (cg, mg, is, "
                             "bt-mz, specfem3d, wrf, pepc, amr-drift)");
  cli.add_option("ranks", "ranks for --workload", "32");
  cli.add_option("iterations", "iterations for --workload", "10");
  cli.add_option("lb", "target load balance for --workload", "0.9");
  cli.add_option("algorithm", "max or avg", "max");
  cli.add_option("gears", "gear set name", "uniform-6");
  cli.add_option("beta", "memory boundedness [0,1]", "0.5");
  cli.add_option("static-fraction", "static power share at fmax", "0.2");
  cli.add_option("activity-ratio", "compute/comm activity ratio", "1.5");
  cli.add_option("warmup", "iterations to cut before analysis", "0");
  cli.add_option("config", "key=value platform/power config file");
  cli.add_option("svg", "write the scaled execution's timeline as SVG");
  cli.add_option("prv", "write the scaled execution as a Paraver trace");
  cli.add_option("power-series",
                 "write baseline+scaled power profiles as CSV");
  cli.add_flag("gantt", "print ASCII Gantt of both executions");
  cli.add_flag("critical-path", "print the baseline's critical path");
  cli.add_flag("per-phase", "assign one frequency per computation phase");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_run");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_run");
    return 0;
  }

  Trace trace;
  if (cli.has("trace")) {
    trace = read_trace_auto(cli.get("trace"));
  } else if (cli.has("workload")) {
    WorkloadConfig config;
    config.ranks = static_cast<Rank>(cli.get_int("ranks", 32));
    config.iterations = static_cast<int>(cli.get_int("iterations", 10));
    config.target_lb = cli.get_double("lb", 0.9);
    trace = workload_factory(cli.get("workload"))(config);
  } else {
    std::cerr << "need --trace or --workload\n" << cli.usage("pals_run");
    return 2;
  }
  if (const long long warmup = cli.get_int("warmup", 0); warmup > 0)
    trace = drop_warmup(trace, static_cast<std::size_t>(warmup));

  const Algorithm algorithm =
      cli.get("algorithm") == "avg" ? Algorithm::kAvg : Algorithm::kMax;
  PipelineConfig config =
      default_pipeline_config(gear_set_by_name(cli.get("gears")), algorithm);
  set_beta(config, cli.get_double("beta", 0.5));
  config.power.static_fraction = cli.get_double("static-fraction", 0.2);
  config.power.activity_ratio = cli.get_double("activity-ratio", 1.5);
  config.per_phase = cli.get_flag("per-phase");
  if (cli.has("config")) apply_config_file(config, cli.get("config"));

  const PipelineResult result = run_pipeline(trace, config);

  std::cout << "trace:           "
            << (trace.name().empty() ? "<unnamed>" : trace.name()) << " ("
            << trace.n_ranks() << " ranks, " << trace.total_events()
            << " events)\n"
            << "algorithm:       " << to_string(algorithm) << " over "
            << config.algorithm.gear_set.describe() << '\n'
            << "load balance:    " << format_percent(result.load_balance)
            << "\nparallel eff.:   "
            << format_percent(result.parallel_efficiency)
            << "\nbaseline time:   "
            << format_fixed(result.baseline_time * 1e3, 3) << " ms\n"
            << "scaled time:     "
            << format_fixed(result.scaled_time * 1e3, 3) << " ms ("
            << format_percent(result.normalized_time()) << ")\n"
            << "energy:          " << format_percent(result.normalized_energy())
            << "\nEDP:             " << format_percent(result.normalized_edp())
            << "\noverclocked:     "
            << format_percent(result.overclocked_fraction) << '\n';

  // Gear histogram of the assignment.
  std::map<std::string, int> gear_histogram;
  for (const Gear& g : result.assignment.gears)
    ++gear_histogram[format_fixed(g.frequency_ghz, 2) + " GHz"];
  std::cout << "assignment:     ";
  for (const auto& [label, count] : gear_histogram)
    std::cout << ' ' << count << "x " << label;
  std::cout << '\n';

  if (cli.get_flag("gantt")) {
    GanttOptions gantt;
    gantt.max_ranks = 24;
    std::cout << "\noriginal execution:\n"
              << render_gantt(result.baseline_replay.timeline, gantt)
              << "\nDVFS execution:\n"
              << render_gantt(result.scaled_replay.timeline, gantt);
  }
  if (cli.get_flag("critical-path")) {
    std::cout << '\n'
              << render_critical_path(
                     critical_path(result.baseline_replay));
  }
  if (cli.has("svg")) {
    SvgOptions svg;
    svg.title = trace.name() + " under " + to_string(algorithm);
    write_svg_file(result.scaled_replay.timeline, cli.get("svg"), svg);
    std::cout << "svg written to " << cli.get("svg") << '\n';
  }
  if (cli.has("prv")) {
    write_prv_file(export_prv(result.scaled_replay), cli.get("prv"));
    std::cout << "paraver trace written to " << cli.get("prv") << '\n';
  }
  if (cli.has("power-series")) {
    const PowerModel power(config.power);
    const Seconds dt = result.baseline_time / 200.0;
    const std::vector<Gear> reference_gears(
        static_cast<std::size_t>(trace.n_ranks()), config.power.reference);
    const auto baseline = power.power_series(
        result.baseline_replay.timeline, reference_gears, dt);
    const auto scaled = power.power_series(result.scaled_replay.timeline,
                                           result.assignment.gears, dt);
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"time_s", "baseline_power", "dvfs_power"});
    for (std::size_t k = 0; k < std::max(baseline.size(), scaled.size());
         ++k) {
      csv.field(static_cast<double>(k) * dt, 6)
          .field(k < baseline.size() ? baseline[k] : 0.0, 6)
          .field(k < scaled.size() ? scaled[k] : 0.0, 6);
      csv.end_row();
    }
    atomic_write_file(cli.get("power-series"), out.str());
    std::cout << "power profiles written to " << cli.get("power-series")
              << '\n';
    // Companion SVG chart next to the CSV.
    std::vector<ChartSeries> chart_series(2);
    chart_series[0].label = "baseline";
    chart_series[1].label = "DVFS";
    for (std::size_t k = 0; k < baseline.size(); ++k) {
      chart_series[0].x.push_back(static_cast<double>(k) * dt * 1e3);
      chart_series[0].y.push_back(baseline[k]);
    }
    for (std::size_t k = 0; k < scaled.size(); ++k) {
      chart_series[1].x.push_back(static_cast<double>(k) * dt * 1e3);
      chart_series[1].y.push_back(scaled[k]);
    }
    ChartOptions chart;
    chart.title = trace.name() + " power profile";
    chart.x_label = "time (ms)";
    chart.y_label = "aggregate CPU power (a.u.)";
    const std::string chart_path = cli.get("power-series") + ".svg";
    write_chart_file(chart_series, chart_path, chart);
    std::cout << "power chart written to " << chart_path << '\n';
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
