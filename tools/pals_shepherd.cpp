// pals_shepherd — fault-tolerant sharded sweep supervisor
// (docs/sharding.md).
//
//   pals_shepherd --grid=configs/suite.grid --shards=N --run-dir=DIR
//                 [--jobs=J] [--config=platform.cfg] [--faults=plan]
//                 [--max-retries=N] [--keep-going] [--lint]
//                 [--prune-bounds] [--no-bounds-oracle]
//                 [--cell-timeout=S] [--heartbeat=S] [--watchdog=S]
//                 [--max-shard-restarts=N] [--backoff-base=S]
//                 [--backoff-cap=S] [--no-reassign] [--sweep-bin=PATH]
//                 [--out=results.csv] [--quiet]
//
// Launches N `pals_sweep --shard i/N` workers, each in its own process
// group and run directory DIR/shard-i, supervises them (liveness via
// journal heartbeats, crashed or hung shards restart with --resume
// under capped exponential backoff, exhausted shards are salvaged in a
// surviving slot or quarantined as "shard-lost"), then folds the shard
// journals into DIR/results.csv, DIR/errors.csv and (with
// --prune-bounds) DIR/pruned.csv — byte-identical to an unsharded
// `pals_sweep --jobs=1` run of the same grid, regardless of shard
// count, crash schedule or retry history.
//
// SIGINT/SIGTERM propagate to the workers as a cooperative drain: each
// finishes its in-flight cells, journals them and exits; re-running the
// same pals_shepherd command resumes every shard from its journal.
//
// --chaos-kill=SHARD:TIMES[,...] and --chaos-stop=SHARD[,...] are test
// hooks injecting SIGKILLs / a SIGSTOP stall into the named shards
// (tests/shard, scripts/tier1.sh).
//
// Exit codes (util/exit_codes.hpp): 0 clean, 1 error, 2 usage,
// 3 completed with quarantined cells, 4 interrupted (re-run to resume),
// 5 completed degraded (a shard was lost; its remaining cells are in
// errors.csv as "shard-lost").
#include <csignal>
#include <filesystem>
#include <iostream>
#include <optional>

#include "analysis/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "shard/merge.hpp"
#include "shard/partition.hpp"
#include "shard/supervisor.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/fsio.hpp"
#include "util/socketio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

std::atomic<bool> g_cancel{false};

extern "C" void handle_stop_signal(int) { g_cancel.store(true); }

void install_signal_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  // Survive a consumer that closes the pipe early (| head): shard
  // supervision must reach its merge/epilogue, not die on SIGPIPE.
  ignore_sigpipe();
}

std::vector<shard::ChaosKill> parse_chaos_kill(const std::string& text) {
  std::vector<shard::ChaosKill> kills;
  for (const std::string& field : split(text, ',')) {
    const std::string item(trim(field));
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    PALS_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                       colon + 1 < item.size(),
                   "--chaos-kill needs SHARD:TIMES, got '" << item << "'");
    shard::ChaosKill kill;
    kill.shard = static_cast<std::size_t>(parse_int(item.substr(0, colon)));
    kill.kills = static_cast<int>(parse_int(item.substr(colon + 1)));
    kills.push_back(kill);
  }
  return kills;
}

std::vector<std::size_t> parse_chaos_stop(const std::string& text) {
  std::vector<std::size_t> stops;
  for (const std::string& field : split(text, ',')) {
    const std::string item(trim(field));
    if (!item.empty())
      stops.push_back(static_cast<std::size_t>(parse_int(item)));
  }
  return stops;
}

/// Default worker binary: pals_sweep next to this executable.
std::string sibling_sweep_binary(const char* argv0) {
  const std::filesystem::path self(argv0);
  return (self.parent_path() / "pals_sweep").string();
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("grid", "scenario grid file (key = value)");
  cli.add_option("shards", "number of shard workers", "2");
  cli.add_option("run-dir", "parent run directory (shard i journals into "
                            "DIR/shard-i; merged artifacts land in DIR)");
  cli.add_option("jobs", "worker threads per shard", "1");
  cli.add_option("config", "key=value platform/power overrides "
                           "(forwarded to every shard)");
  cli.add_option("faults", "fault plan, forwarded to every shard");
  cli.add_option("max-retries",
                 "per-cell retries for transient failures", "2");
  cli.add_flag("keep-going", "forward --keep-going (quarantine failing "
                             "cells instead of aborting a shard)");
  cli.add_flag("lint", "forward --lint (statically verify workloads)");
  cli.add_flag("prune-bounds", "forward --prune-bounds (cells partition "
                               "by workload group so prune decisions stay "
                               "shard-local)");
  cli.add_flag("no-bounds-oracle", "forward --no-bounds-oracle");
  cli.add_option("cell-timeout", "per-cell watchdog, forwarded", "0");
  cli.add_option("heartbeat", "worker liveness heartbeat interval, "
                              "seconds (0 = off)", "0.2");
  cli.add_option("watchdog", "journal-stall watchdog, seconds (0 = off; "
                             "arm together with --heartbeat)", "0");
  cli.add_option("max-shard-restarts",
                 "restarts per shard before its cells are reassigned or "
                 "quarantined", "2");
  cli.add_option("backoff-base", "restart backoff base, seconds", "0.05");
  cli.add_option("backoff-cap", "restart backoff cap, seconds", "1");
  cli.add_flag("no-reassign", "skip the salvage attempt for shards that "
                              "exhaust their restart budget (their cells "
                              "quarantine immediately)");
  cli.add_option("poll", "supervisor poll interval, seconds", "0.02");
  cli.add_option("sweep-bin", "pals_sweep binary the workers exec "
                              "(default: next to pals_shepherd)");
  cli.add_option("chaos-kill", "test hook: SIGKILL SHARD:TIMES[,...] "
                               "after journal growth");
  cli.add_option("chaos-stop", "test hook: SIGSTOP SHARD[,...] once "
                               "after journal growth");
  cli.add_option("out", "also write the merged result rows to this CSV");
  cli.add_flag("quiet", "skip the per-shard progress log");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_shepherd");
    return exit_code(ToolExit::kUsage);
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_shepherd");
    return exit_code(ToolExit::kOk);
  }
  if (!cli.has("grid") || !cli.has("run-dir")) {
    std::cerr << "need --grid and --run-dir\n" << cli.usage("pals_shepherd");
    return exit_code(ToolExit::kUsage);
  }

  // Mirror of the sweep configuration, used only to validate the shard
  // journals (config hash) and to fold them — execution-only knobs
  // (jobs, heartbeats, sharding itself) are excluded from the hash, so
  // this matches every worker's journal header.
  const SweepGrid grid = SweepGrid::from_file(cli.get("grid"));
  const std::vector<Scenario> scenarios = grid.expand();
  SweepOptions sweep_options;
  sweep_options.iterations = grid.iterations;
  sweep_options.keep_going = cli.get_flag("keep-going");
  sweep_options.retry.max_retries =
      static_cast<int>(cli.get_int("max-retries", 2));
  sweep_options.prune_bounds = cli.get_flag("prune-bounds");
  sweep_options.bounds_oracle = !cli.get_flag("no-bounds-oracle");
  sweep_options.base.lint = cli.get_flag("lint");
  if (cli.has("config"))
    apply_config_file(sweep_options.base, cli.get("config"));
  std::optional<fault::Injector> injector;
  if (cli.has("faults")) {
    injector.emplace(fault::FaultPlan::from_file_or_inline(cli.get("faults")));
    sweep_options.faults = &*injector;
  }

  shard::SupervisorOptions sup;
  sup.worker_binary = cli.has("sweep-bin")
                          ? cli.get("sweep-bin")
                          : sibling_sweep_binary(argv[0]);
  sup.run_dir = cli.get("run-dir");
  sup.shards = static_cast<std::size_t>(cli.get_int("shards", 2));
  sup.jobs_per_shard = static_cast<int>(cli.get_int("jobs", 1));
  sup.heartbeat_seconds = cli.get_double("heartbeat", 0.2);
  sup.watchdog_seconds = cli.get_double("watchdog", 0.0);
  sup.max_shard_restarts =
      static_cast<int>(cli.get_int("max-shard-restarts", 2));
  sup.backoff_base_seconds = cli.get_double("backoff-base", 0.05);
  sup.backoff_cap_seconds = cli.get_double("backoff-cap", 1.0);
  sup.reassign = !cli.get_flag("no-reassign");
  sup.poll_seconds = cli.get_double("poll", 0.02);
  if (cli.has("chaos-kill"))
    sup.chaos_kill = parse_chaos_kill(cli.get("chaos-kill"));
  if (cli.has("chaos-stop"))
    sup.chaos_stop = parse_chaos_stop(cli.get("chaos-stop"));
  if (!cli.get_flag("quiet")) sup.log = &std::cerr;
  sup.cancel = &g_cancel;

  // Everything the workers must agree with this process about rides on
  // the forwarded flags below; anything result-affecting that is
  // forwarded incompletely would surface as a config-hash mismatch at
  // merge time, not as silently different artifacts.
  sup.worker_args.push_back("--grid=" + cli.get("grid"));
  sup.worker_args.push_back("--max-retries=" +
                            std::to_string(sweep_options.retry.max_retries));
  if (cli.has("config"))
    sup.worker_args.push_back("--config=" + cli.get("config"));
  if (cli.has("faults"))
    sup.worker_args.push_back("--faults=" + cli.get("faults"));
  if (sweep_options.keep_going) sup.worker_args.push_back("--keep-going");
  if (sweep_options.base.lint) sup.worker_args.push_back("--lint");
  if (sweep_options.prune_bounds)
    sup.worker_args.push_back("--prune-bounds");
  if (!sweep_options.bounds_oracle)
    sup.worker_args.push_back("--no-bounds-oracle");
  if (cli.get_double("cell-timeout", 0.0) > 0.0)
    sup.worker_args.push_back("--cell-timeout=" + cli.get("cell-timeout"));
  sup.worker_args.push_back("--quiet");

  install_signal_handlers();
  const shard::SupervisorResult supervised = shard::supervise_shards(sup);

  std::vector<std::string> journal_paths;
  journal_paths.reserve(sup.shards);
  for (std::size_t i = 0; i < sup.shards; ++i)
    journal_paths.push_back(shard::shard_run_dir(sup.run_dir, i) +
                            "/journal.palsj");

  shard::MergeReport merged =
      shard::merge_shard_journals(scenarios, sweep_options, journal_paths);
  if (supervised.degraded && !supervised.interrupted && !merged.missing.empty()) {
    // Quarantine every cell of a lost shard that never reached a
    // terminal record: results stay complete-by-quarantine, never
    // silently short.
    std::vector<ScenarioError> lost_cells;
    for (const std::size_t index : merged.missing) {
      const std::size_t owner =
          sweep_options.prune_bounds
              ? shard::shard_of_group(
                    resolve_workload(scenarios[index].workload,
                                     sweep_options.iterations)
                        .key,
                    sup.shards)
              : shard::shard_of_cell(index, sup.shards);
      const shard::ShardOutcome& outcome = supervised.shards[owner];
      PALS_CHECK_MSG(outcome.lost, "cell " << index
                         << " is missing but its shard " << owner
                         << " was not lost (supervisor bug)");
      lost_cells.push_back(shard::make_shard_lost_error(
          scenarios, sweep_options.iterations, index,
          "shard " + std::to_string(owner) + "/" +
              std::to_string(sup.shards) +
              " lost: restart budget exhausted (" +
              std::to_string(outcome.restarts) + " restarts, last status " +
              std::to_string(outcome.last_status) + ")",
          outcome.restarts + 1));
    }
    merged = shard::merge_shard_journals(scenarios, sweep_options,
                                         journal_paths, lost_cells);
  }

  write_rows_csv(merged.rows, sup.run_dir + "/results.csv");
  write_errors_csv(merged.errors, sup.run_dir + "/errors.csv");
  if (sweep_options.prune_bounds)
    write_pruned_csv(merged.pruned, sup.run_dir + "/pruned.csv");
  if (cli.has("out")) write_rows_csv(merged.rows, cli.get("out"));

  std::size_t watchdog_kills = 0;
  std::size_t chaos_kills = 0;
  std::size_t lost_shards = 0;
  for (const shard::ShardOutcome& outcome : supervised.shards) {
    watchdog_kills += outcome.watchdog_kills;
    chaos_kills += outcome.chaos_kills;
    lost_shards += outcome.lost ? 1u : 0u;
  }
  std::string stats;
  const auto put = [&stats](const std::string& key, const std::string& value) {
    stats += key + " = " + value + "\n";
  };
  put("shards", std::to_string(sup.shards));
  put("scenarios", std::to_string(scenarios.size()));
  put("rows", std::to_string(merged.rows.size()));
  put("errors", std::to_string(merged.errors.size()));
  put("pruned", std::to_string(merged.pruned.size()));
  put("missing", std::to_string(merged.missing.size()));
  put("journals_read", std::to_string(merged.journals_read));
  put("heartbeats_seen", std::to_string(merged.heartbeats_seen));
  put("restarts_total", std::to_string(supervised.restarts_total));
  put("watchdog_kills", std::to_string(watchdog_kills));
  put("chaos_kills", std::to_string(chaos_kills));
  put("lost_shards", std::to_string(lost_shards));
  put("interrupted", supervised.interrupted ? "1" : "0");
  put("degraded", supervised.degraded ? "1" : "0");
  atomic_write_file(sup.run_dir + "/shepherd.stats", stats);
  std::cout << "# shepherd summary\n" << stats;
  std::cout << "merged artifacts written to " << sup.run_dir << '\n';

  if (supervised.interrupted) {
    std::cerr << "shepherd interrupted: " << merged.missing.size()
              << " cells pending; re-run the same command to resume\n";
    return exit_code(ToolExit::kInterrupted);
  }
  if (supervised.degraded) {
    std::cerr << "shepherd degraded: " << lost_shards << " shard"
              << (lost_shards == 1 ? "" : "s")
              << " lost; shard-lost cells quarantined in errors.csv\n";
    return exit_code(ToolExit::kDegraded);
  }
  PALS_CHECK_MSG(merged.complete(),
                 merged.missing.size()
                     << " cells missing after a clean supervised run "
                        "(supervisor bug)");
  return exit_code(merged.errors.empty() ? ToolExit::kOk
                                         : ToolExit::kQuarantined);
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return pals::exit_code(pals::ToolExit::kError);
  }
}
