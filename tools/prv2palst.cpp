// prv2palst — translate a Paraver trace into a logical replay trace (the
// paper's "Paraver traces were translated to Dimemas trace files" step),
// and back: re-simulate a .palst file and export the timed execution as
// .prv for visualization.
//
//   prv2palst in.prv out.palst          translate Paraver -> logical
//   prv2palst --export in.palst out.prv replay + export logical -> Paraver
#include <iostream>

#include "paraver/export.hpp"
#include "paraver/translate.hpp"
#include "replay/replay.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("export", "reverse direction: .palst -> replay -> .prv");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help") || cli.positional().size() != 2) {
    std::cout << "usage: prv2palst [--export] <input> <output>\n"
                 "  default:  translate a .prv trace into a .palst trace\n"
                 "  --export: replay a .palst trace and write the timed\n"
                 "            execution as .prv\n";
    return cli.get_flag("help") ? 0 : 2;
  }
  const std::string& input = cli.positional()[0];
  const std::string& output = cli.positional()[1];

  if (cli.get_flag("export")) {
    const Trace trace = read_trace_auto(input);
    const ReplayResult result = replay(trace, ReplayConfig{});
    write_prv_file(export_prv(result), output);
    std::cout << "replayed " << trace.n_ranks() << " ranks ("
              << result.makespan * 1e3 << " ms) and wrote " << output << '\n';
  } else {
    const PrvTrace prv = read_prv_file(input);
    const Trace trace = translate_prv(prv);
    write_trace_auto(trace, output);
    std::cout << "translated " << prv.n_tasks << " tasks, "
              << trace.total_events() << " events -> " << output << '\n';
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
