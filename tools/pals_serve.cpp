// pals_serve — the crash-only what-if query daemon (docs/serve.md).
//
//   pals_serve --socket=/tmp/pals.sock [--jobs=N] [--queue-limit=N]
//              [--cache-bytes=BYTES] [--default-deadline-ms=MS]
//              [--max-deadline-ms=MS] [--idle-timeout=SECONDS]
//              [--config=platform.cfg] [--iterations=N]
//              [--ready-file=PATH] [--metrics=m.json] [--quiet]
//              [--debug-stall-ms=MS]
//
// A single-process, multi-threaded service over a Unix-domain socket
// speaking line-delimited JSON (serve/protocol.hpp): clients ask what-if
// questions — "this workload, that gear set/controller/β, these platform
// overrides, this fault plan" — and get the byte-exact row a batch
// `pals_sweep --jobs=1` would produce, answered from an in-memory warm
// cache of parsed traces and memoized baseline replays.
//
// Robustness properties:
//  * admission control with explicit shedding (--queue-limit; excess
//    connections get a retryable `overloaded` response, serve.shed
//    counts them);
//  * per-request deadlines threaded into the replay engine's wall-clock
//    watchdog (structured `deadline-exceeded` instead of a wedged
//    worker);
//  * a memory budget on the warm cache (--cache-bytes; LRU eviction,
//    serve.evictions);
//  * crash-only lifecycle: SIGINT/SIGTERM finish in-flight requests,
//    answer everyone else `shutting-down` and exit 0; after a SIGKILL
//    the next start detects the stale socket and replaces it.
//
// --ready-file is written (atomically, containing the socket path) once
// the daemon is listening, so scripts wait for readiness instead of
// racing the bind. --debug-stall-ms is a test hook that stalls each
// query before the replay, making overload and deadline expiry
// reproducible on a fast machine.
//
// Exit codes: 0 clean drain, 1 error (e.g. a live daemon already owns
// the socket), 2 usage.
#include <atomic>
#include <csignal>
#include <iostream>

#include "analysis/experiments.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/fsio.hpp"
#include "util/socketio.hpp"

namespace pals {
namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("socket", "Unix-domain socket path to serve on");
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("queue-limit",
                 "max connections admitted concurrently; excess is shed "
                 "with a retryable `overloaded` response", "32");
  cli.add_option("cache-bytes",
                 "warm-cache memory budget in bytes (0 = unlimited)",
                 "268435456");
  cli.add_option("default-deadline-ms",
                 "wall budget of queries that set no deadline_ms "
                 "(0 = unlimited)", "30000");
  cli.add_option("max-deadline-ms",
                 "hard cap on any requested deadline (0 = uncapped)",
                 "300000");
  cli.add_option("idle-timeout",
                 "close a connection after SECONDS without a request",
                 "30");
  cli.add_option("config", "key=value platform/power overrides applied "
                           "to every query's base configuration");
  cli.add_option("iterations", "default iteration count for workloads "
                               "without an explicit one", "10");
  cli.add_option("ready-file", "write this file (containing the socket "
                               "path) once listening");
  cli.add_option("metrics", "write the final metrics snapshot (JSON) "
                            "after the drain");
  cli.add_option("debug-stall-ms", "test hook: stall each query this "
                                   "long before replaying", "0");
  cli.add_flag("quiet", "no serving/drained log lines");
  cli.add_flag("help", "show usage");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_serve");
    return exit_code(ToolExit::kUsage);
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_serve");
    return exit_code(ToolExit::kOk);
  }
  if (!cli.has("socket")) {
    std::cerr << "need --socket\n" << cli.usage("pals_serve");
    return exit_code(ToolExit::kUsage);
  }

  ignore_sigpipe();
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  serve::ServerOptions options;
  options.socket_path = cli.get("socket");
  options.jobs = static_cast<int>(cli.get_int("jobs", 0));
  options.queue_limit = static_cast<int>(cli.get_int("queue-limit", 32));
  PALS_CHECK_MSG(options.queue_limit >= 1, "--queue-limit must be >= 1");
  options.cache_bytes =
      static_cast<std::size_t>(cli.get_int("cache-bytes", 268435456));
  options.default_deadline_seconds =
      cli.get_double("default-deadline-ms", 30000.0) / 1000.0;
  options.max_deadline_seconds =
      cli.get_double("max-deadline-ms", 300000.0) / 1000.0;
  options.idle_timeout_seconds = cli.get_double("idle-timeout", 30.0);
  options.debug_stall_seconds =
      cli.get_double("debug-stall-ms", 0.0) / 1000.0;
  PALS_CHECK_MSG(options.default_deadline_seconds >= 0.0 &&
                     options.max_deadline_seconds >= 0.0 &&
                     options.debug_stall_seconds >= 0.0,
                 "deadlines and stalls must be >= 0");
  options.query.default_iterations =
      static_cast<int>(cli.get_int("iterations", 10));
  PALS_CHECK_MSG(options.query.default_iterations > 0,
                 "--iterations must be > 0");
  if (cli.has("config")) apply_config_file(options.query.base, cli.get("config"));
  if (!cli.get_flag("quiet")) options.log = &std::cerr;
  options.stop = &g_stop;
  if (cli.has("ready-file")) {
    const std::string ready_file = cli.get("ready-file");
    const std::string socket_path = options.socket_path;
    options.on_ready = [ready_file, socket_path] {
      atomic_write_file(ready_file, socket_path + "\n");
    };
  }

  serve::Server server(std::move(options));
  server.run();

  if (cli.has("metrics"))
    atomic_write_file(cli.get("metrics"),
                      obs::default_registry().snapshot().to_json());
  return exit_code(ToolExit::kOk);
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return pals::exit_code(pals::ToolExit::kError);
  }
}
