// pals_trace_info — inspect a .palst trace file: per-rank computation,
// message/collective counts, load balance, iterations and phases.
// --stats switches to a metric snapshot of the trace (event counts by
// kind, bytes by operation, burst statistics) rendered through the
// pals::obs registry renderer as text or, with --csv, as CSV.
#include <algorithm>
#include <iostream>
#include <limits>
#include <map>

#include "analysis/comm_stats.hpp"
#include "analysis/iteration_stats.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

/// The --stats mode: fill a scoped registry from one pass over the trace
/// and render its snapshot (shared renderer with the pipeline metrics).
obs::MetricsSnapshot trace_stats(const Trace& trace) {
  obs::Registry reg;
  reg.gauge("trace.ranks").set(trace.n_ranks());
  reg.gauge("trace.iterations").set(trace.iteration_count());
  reg.gauge("trace.phases")
      .set(static_cast<std::int64_t>(trace.phases().size()));
  obs::Counter& events = reg.counter("trace.events");
  obs::Histogram& burst = reg.histogram(
      "trace.burst_seconds", {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  obs::Gauge& burst_min = reg.gauge("trace.burst_min_ns");
  obs::Gauge& burst_max = reg.gauge("trace.burst_max_ns");
  obs::Counter& burst_total = reg.counter("trace.burst_total_ns");
  burst_min.set(std::numeric_limits<std::int64_t>::max());
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      events.add(1);
      if (const auto* c = std::get_if<ComputeEvent>(&e)) {
        reg.counter("trace.events.compute").add(1);
        burst.observe(c->duration);
        const std::int64_t ns = obs::to_nanos(c->duration);
        burst_min.set(std::min(burst_min.value(), ns));
        burst_max.set(std::max(burst_max.value(), ns));
        burst_total.add(static_cast<std::uint64_t>(ns));
      } else if (const auto* s = std::get_if<SendEvent>(&e)) {
        reg.counter("trace.events.send").add(1);
        reg.counter("trace.bytes.send").add(s->bytes);
      } else if (const auto* is = std::get_if<IsendEvent>(&e)) {
        reg.counter("trace.events.isend").add(1);
        reg.counter("trace.bytes.isend").add(is->bytes);
      } else if (const auto* rc = std::get_if<RecvEvent>(&e)) {
        reg.counter("trace.events.recv").add(1);
        reg.counter("trace.bytes.recv").add(rc->bytes);
      } else if (const auto* ir = std::get_if<IrecvEvent>(&e)) {
        reg.counter("trace.events.irecv").add(1);
        reg.counter("trace.bytes.irecv").add(ir->bytes);
      } else if (std::holds_alternative<WaitEvent>(e)) {
        reg.counter("trace.events.wait").add(1);
      } else if (std::holds_alternative<WaitAllEvent>(e)) {
        reg.counter("trace.events.waitall").add(1);
      } else if (const auto* co = std::get_if<CollectiveEvent>(&e)) {
        reg.counter("trace.events.coll").add(1);
        reg.counter("trace.bytes." + to_string(co->op)).add(co->bytes);
      } else if (std::holds_alternative<MarkerEvent>(e)) {
        reg.counter("trace.events.marker").add(1);
      }
    }
  }
  const std::uint64_t bursts =
      reg.counter("trace.events.compute").value();
  if (bursts == 0)
    burst_min.set(0);
  else
    reg.gauge("trace.burst_mean_ns")
        .set(static_cast<std::int64_t>(burst_total.value() / bursts));
  return reg.snapshot();
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("per-rank", "print a per-rank table");
  cli.add_flag("matrix", "print the rank-to-rank traffic matrix");
  cli.add_flag("stats", "print a per-trace metric snapshot instead");
  cli.add_flag("csv", "with --stats: render the snapshot as CSV");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help") || cli.positional().size() != 1) {
    std::cout << "usage: pals_trace_info [--per-rank] [--matrix] "
                 "[--stats [--csv]] <trace.palst>\n";
    return cli.get_flag("help") ? 0 : 2;
  }
  const Trace trace = read_trace_auto(cli.positional().front());

  if (cli.get_flag("stats")) {
    const obs::MetricsSnapshot snapshot = trace_stats(trace);
    std::cout << (cli.get_flag("csv") ? snapshot.to_csv()
                                      : snapshot.to_text());
    return 0;
  }

  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t collectives = 0;
  Bytes p2p_bytes = 0;
  std::map<CollectiveOp, std::size_t> coll_histogram;
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      if (const auto* s = std::get_if<SendEvent>(&e)) {
        ++sends;
        p2p_bytes += s->bytes;
      } else if (const auto* is = std::get_if<IsendEvent>(&e)) {
        ++sends;
        p2p_bytes += is->bytes;
      } else if (std::holds_alternative<RecvEvent>(e) ||
                 std::holds_alternative<IrecvEvent>(e)) {
        ++recvs;
      } else if (const auto* c = std::get_if<CollectiveEvent>(&e)) {
        ++collectives;
        ++coll_histogram[c->op];
      }
    }
  }

  const std::vector<Seconds> comp = trace.computation_times();
  const StatsSummary stats = summarize(comp);

  std::cout << "name:          "
            << (trace.name().empty() ? "<unnamed>" : trace.name()) << '\n'
            << "ranks:         " << trace.n_ranks() << '\n'
            << "events:        " << trace.total_events() << '\n'
            << "iterations:    " << trace.iteration_count() << '\n'
            << "phases:        " << trace.phases().size() << '\n'
            << "p2p messages:  " << sends << " sends / " << recvs
            << " recvs, " << p2p_bytes << " bytes\n"
            << "collectives:   " << collectives;
  for (const auto& [op, count] : coll_histogram)
    std::cout << "  " << to_string(op) << "=" << count / trace.n_ranks();
  std::cout << " (per rank)\n"
            << "compute time:  mean " << format_fixed(stats.mean * 1e3, 3)
            << " ms, min " << format_fixed(stats.min * 1e3, 3) << ", max "
            << format_fixed(stats.max * 1e3, 3) << '\n'
            << "load balance:  " << format_percent(load_balance(comp))
            << '\n';

  if (trace.iteration_count() > 0) {
    const IterationStats iteration_stats = analyze_iterations(trace);
    std::cout << "iteration LB:  mean "
              << format_percent(iteration_stats.mean_iteration_load_balance)
              << ", min "
              << format_percent(iteration_stats.min_iteration_load_balance)
              << "\ndrift index:   "
              << format_fixed(iteration_stats.drift_index, 3)
              << (iteration_stats.static_assignment_sufficient()
                      ? "  (static DVFS assignment sufficient)"
                      : "  (imbalance moves: consider the dynamic runtime)")
              << '\n';
  }

  if (cli.get_flag("matrix")) {
    const CommStats comm = analyze_communication(trace);
    std::cout << "traffic matrix (digits proportional to bytes):\n"
              << comm.render_matrix()
              << "channel concentration: "
              << format_percent(comm.channel_concentration())
              << " (1 = single-neighbour patterns, low = all-to-all)\n";
  }

  if (cli.get_flag("per-rank")) {
    TextTable table({"rank", "compute (ms)", "share of max"});
    for (Rank r = 0; r < trace.n_ranks(); ++r) {
      table.add_row({std::to_string(r),
                     format_fixed(comp[static_cast<std::size_t>(r)] * 1e3, 3),
                     format_percent(comp[static_cast<std::size_t>(r)] /
                                    stats.max)});
    }
    table.print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
