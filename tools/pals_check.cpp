// pals_check — one-command pre-replay static gate.
//
//   pals_check trace.palst [more.palst ...] [options]
//   pals_check --workload=CG-32 [--iterations=N] [options]
//
//   options: [--algorithm=max|avg] [--gears=uniform-6] [--beta=0.5]
//            [--controllers=static,dynamic_max,...] [--power-cap=P]
//            [--strict] [--json] [--quiet]
//
// Answers "is this trace worth replaying, and can it possibly meet the
// power cap?" without running the DES. Per input:
//
//  1. Full lint (lint/lint.hpp). Errors fail the gate; warnings fail it
//     only under --strict.
//  2. For every requested controller, the static bounds analyzer
//     (docs/bounds.md) derives guaranteed makespan/energy intervals and
//     the provable floor on time-average power. With --power-cap=P the
//     gate fails when P is below the floor of *every* controller: no
//     configured scenario can meet the cap, so the sweep is statically
//     infeasible. (A cap above some floor passes — feasibility of the
//     cheapest admissible scenario is all a static gate can promise.)
//
// Exit codes: 0 gate passed for every input; 1 gate failed for at least
// one input; 2 usage error or unreadable input.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/experiments.hpp"
#include "core/controllers.hpp"
#include "lint/lint.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

struct Input {
  std::string label;
  Trace trace;
};

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("workload", "check a generated benchmark instance "
                             "(registry name, e.g. CG-32) instead of a file");
  cli.add_option("iterations", "iterations for --workload", "10");
  cli.add_option("algorithm", "max or avg", "max");
  cli.add_option("gears", "gear set name", "uniform-6");
  cli.add_option("beta", "memory boundedness [0,1]", "0.5");
  cli.add_option("controllers",
                 "comma-separated controllers to bound (default: all)",
                 "static,dynamic_max,dynamic_avg,slack,ewma");
  cli.add_option("power-cap",
                 "fail when the cap (a.u./s) is below every controller's "
                 "provable average-power floor");
  cli.add_flag("strict", "treat lint warnings as gate failures");
  cli.add_flag("json", "one JSON object per input, one per line");
  cli.add_flag("quiet", "print only the per-input verdict line");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_check");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_check");
    return 0;
  }
  if (cli.positional().empty() && !cli.has("workload")) {
    std::cerr << "need at least one trace file or --workload\n"
              << cli.usage("pals_check");
    return 2;
  }

  std::vector<std::string> controllers;
  for (const std::string& name : split(cli.get("controllers"), ','))
    controllers.push_back(std::string(trim(name)));
  if (controllers.empty()) {
    std::cerr << "--controllers needs at least one name\n";
    return 2;
  }

  std::vector<Input> inputs;
  for (const std::string& path : cli.positional())
    inputs.push_back(Input{path, read_trace_auto(path, /*validate=*/false)});
  if (cli.has("workload")) {
    const std::string name = cli.get("workload");
    const auto iterations = static_cast<int>(cli.get_int("iterations", 10));
    const auto instance = benchmark_by_name(name, iterations);
    if (!instance.has_value()) {
      std::cerr << "unknown workload '" << name
                << "' (expected a Table 3 instance name like CG-32)\n";
      return 2;
    }
    inputs.push_back(Input{name, instance->make()});
  }

  const Algorithm algorithm =
      cli.get("algorithm") == "avg" ? Algorithm::kAvg : Algorithm::kMax;
  const bool json = cli.get_flag("json");
  const bool quiet = cli.get_flag("quiet");

  bool failed = false;
  for (const Input& input : inputs) {
    const lint::LintReport report = lint::lint_trace(input.trace, {});
    const bool lint_bad =
        report.has_errors() || (cli.get_flag("strict") && report.warnings > 0);

    // Bound every requested controller scenario; a lint-broken trace
    // skips the analysis (the abstract interpretation assumes replayable
    // input).
    std::vector<std::pair<std::string, bounds::ScenarioBounds>> scenarios;
    if (!report.has_errors()) {
      for (const std::string& name : controllers) {
        PipelineConfig config = default_pipeline_config(
            gear_set_by_name(cli.get("gears")), algorithm);
        config.controller.kind = controller_by_name(name);
        set_beta(config, cli.get_double("beta", 0.5));
        scenarios.emplace_back(name, bounds::analyze(input.trace, config));
      }
    }

    // Cap feasibility: infeasible only when no scenario's floor admits it.
    bool cap_infeasible = false;
    if (cli.has("power-cap") && !scenarios.empty()) {
      const double cap = cli.get_double("power-cap", 0.0);
      cap_infeasible = true;
      for (const auto& [name, b] : scenarios)
        cap_infeasible = cap_infeasible && cap < b.min_average_power;
    }
    const bool bad = lint_bad || cap_infeasible;
    failed = failed || bad;

    if (json) {
      std::cout << "{\"input\":\"" << json_escape(input.label)
                << "\",\"pass\":" << (bad ? "false" : "true")
                << ",\"lint\":" << to_json(report) << ",\"bounds\":{";
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        if (i > 0) std::cout << ',';
        std::cout << '"' << json_escape(scenarios[i].first)
                  << "\":" << bounds::to_json(scenarios[i].second);
      }
      std::cout << '}';
      if (cli.has("power-cap"))
        std::cout << ",\"power_cap\":{\"cap\":"
                  << format_roundtrip(cli.get_double("power-cap", 0.0))
                  << ",\"feasible\":" << (cap_infeasible ? "false" : "true")
                  << '}';
      std::cout << "}\n";
      continue;
    }

    std::cout << input.label << ": " << (bad ? "FAIL" : "PASS") << " ("
              << report.summary();
    if (cli.has("power-cap") && !scenarios.empty())
      std::cout << "; power cap "
                << (cap_infeasible ? "statically infeasible" : "feasible");
    std::cout << ")\n";
    if (quiet) continue;
    if (report.has_errors()) {
      std::cout << to_text(report)
                << "bounds: skipped (trace has lint errors)\n";
      continue;
    }
    for (const auto& [name, b] : scenarios)
      std::cout << "bounds (" << name << " over "
                << gear_set_by_name(cli.get("gears")).describe() << "):\n"
                << bounds::to_text(b);
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
