// Maintenance tool: calibrate per-instance communication scales.
//
// Parallel efficiency is monotone decreasing in comm_scale (bigger
// messages -> more communication time -> lower PE), so a bisection per
// benchmark instance finds the comm_scale whose replayed PE matches the
// paper's Table 3 value. The resulting scales are baked into
// src/workloads/registry.cpp; re-run this tool after changing the
// generators or the platform model.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "replay/replay.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

double measure_pe(const BenchmarkInstance& inst, double comm_scale) {
  WorkloadConfig config = inst.config;
  config.comm_scale = comm_scale;
  const Trace trace = inst.factory(config);
  const ReplayResult r = replay(trace, ReplayConfig{});
  return parallel_efficiency(r.compute_time, r.makespan);
}

int run() {
  TextTable table({"instance", "paper_PE", "PE@1.0", "comm_scale",
                   "PE@calibrated", "LB"});
  for (const BenchmarkInstance& inst : paper_benchmarks(4)) {
    const double pe_at_one = measure_pe(inst, 1.0);
    double lo = 1.0 / 64.0;
    double hi = 64.0;
    const double pe_lo = measure_pe(inst, lo);   // highest PE
    const double pe_hi = measure_pe(inst, hi);   // lowest PE
    double scale = 1.0;
    if (inst.paper_pe >= pe_lo) {
      scale = lo;
    } else if (inst.paper_pe <= pe_hi) {
      scale = hi;
    } else {
      for (int iter = 0; iter < 40; ++iter) {
        const double mid = std::sqrt(lo * hi);  // geometric bisection
        if (measure_pe(inst, mid) > inst.paper_pe)
          lo = mid;
        else
          hi = mid;
      }
      scale = std::sqrt(lo * hi);
    }
    WorkloadConfig config = inst.config;
    config.comm_scale = scale;
    const Trace trace = inst.factory(config);
    const ReplayResult r = replay(trace, ReplayConfig{});
    table.add_row({inst.name, format_percent(inst.paper_pe),
                   format_percent(pe_at_one), format_fixed(scale, 4),
                   format_percent(parallel_efficiency(r.compute_time,
                                                      r.makespan)),
                   format_percent(load_balance(r.compute_time))});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace pals

int main() { return pals::run(); }
