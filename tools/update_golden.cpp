// update_golden — regenerate the pinned experiment results under golden/.
//
// Run after an *intentional* model or workload change, review the diff,
// and commit; the integration tests (integration/golden_test.cpp) fail
// when fresh runs drift from these files unexpectedly.
//
// Every golden is replaced atomically (save_rows_csv and
// ChromeTraceWriter::write_file go through util/fsio.hpp's
// atomic_write_file), so an interrupted regeneration leaves the old
// goldens intact instead of half-written ones.
//
//   update_golden [--dir=golden]
#include <iostream>

#include "analysis/controller_study.hpp"
#include "analysis/figures.hpp"
#include "analysis/golden.hpp"
#include "obs/chrome_trace.hpp"
#include "replay/replay.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace pals {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("dir", "output directory", "golden");
  cli.add_option("examples", "examples directory (for ring.palst)",
                 "examples");
  cli.add_option("fixtures", "test fixtures directory (for drift4.palst)",
                 "tests/power/fixtures");
  cli.parse(argc, argv);
  const std::string dir = cli.get("dir");

  TraceCache cache;
  save_rows_csv(table3_rows(cache), dir + "/table3.csv");
  std::cout << "wrote " << dir << "/table3.csv\n";
  save_rows_csv(figure9_rows(cache), dir + "/fig9.csv");
  std::cout << "wrote " << dir << "/fig9.csv\n";
  save_rows_csv(figure10_rows(cache), dir + "/fig10.csv");
  std::cout << "wrote " << dir << "/fig10.csv\n";

  // Simulated Chrome-trace timeline of the ring example: all inputs are
  // exact decimals, so the replay (and hence the JSON) is byte-stable.
  const Trace ring =
      read_trace_auto(cli.get("examples") + "/traces/ring.palst");
  const ReplayResult replayed = replay(ring, ReplayConfig{});
  obs::ChromeTraceWriter writer;
  append_simulated_replay(writer, replayed);
  writer.write_file(dir + "/ring_chrome_trace.json");
  std::cout << "wrote " << dir << "/ring_chrome_trace.json\n";

  // Per-iteration gear schedules of every controller on the rotating-
  // hotspot fixture: pure doubles in, round-trip formatting out, so the
  // CSV is byte-stable and schedule changes show as reviewable diffs.
  const Trace drift =
      read_trace_auto(cli.get("fixtures") + "/drift4.palst");
  atomic_write_file(dir + "/controller_schedules.csv",
                    controller_schedules_csv(drift));
  std::cout << "wrote " << dir << "/controller_schedules.csv\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
