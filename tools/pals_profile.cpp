// pals_profile — profile the power-analysis pipeline end to end and
// export the observability artifacts.
//
//   pals_profile --workload CG-32 --metrics m.json --chrome-trace t.json
//   pals_profile --trace examples/traces/ring.palst --repeat 32 --jobs 8 \
//                --bench-json BENCH_replay.json
//
// Runs the pipeline (--repeat times, across --jobs threads) with span
// profiling on, then writes any of:
//   --metrics       full metrics snapshot (JSON: replay counters, lint,
//                   thread-pool, per-phase spans, trace I/O)
//   --sim-metrics   simulation-only snapshot — byte-identical across
//                   --jobs values and repeated runs
//   --chrome-trace  Chrome trace_event JSON: host spans (pid 1) plus the
//                   simulated baseline (pid 2) and scaled (pid 3)
//                   timelines; load it in Perfetto (ui.perfetto.dev)
//   --sim-trace     simulated baseline timeline only — byte-stable, used
//                   for golden comparisons
//   --bench-json    throughput report (scenarios/sec, events/sec,
//                   per-phase seconds) in the BENCH_replay.json format
#include <iostream>

#include "analysis/profile.hpp"
#include "analysis/sweep.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/record.hpp"
#include "power/gearset.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {


int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("workload", "registry instance (CG-32) or inline spec "
                             "family:ranks:lb[:iterations]");
  cli.add_option("trace", "profile a .palst/.palsb trace file instead");
  cli.add_option("iterations", "iterations for --workload specs without "
                               "an explicit count", "10");
  cli.add_option("gears", "gear set name", "uniform-6");
  cli.add_option("algorithm", "max | avg | energy-optimal", "max");
  cli.add_option("beta", "beta of the time/power model", "0.5");
  cli.add_option("config", "key=value platform/power overrides");
  cli.add_option("repeat", "pipeline repetitions (throughput run)", "1");
  cli.add_option("jobs", "worker threads for the repetitions "
                         "(0 = hardware concurrency)", "1");
  cli.add_option("metrics", "write the full metrics snapshot (JSON)");
  cli.add_option("sim-metrics",
                 "write the simulation-only snapshot (JSON, byte-stable)");
  cli.add_option("chrome-trace",
                 "write a Chrome trace_event JSON (host + simulation)");
  cli.add_option("sim-trace",
                 "write the simulated baseline timeline only (byte-stable)");
  cli.add_option("bench-json", "write the BENCH_replay.json report");
  cli.add_flag("quiet", "skip the human-readable summary");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_profile");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_profile");
    return 0;
  }
  if (cli.has("workload") == cli.has("trace")) {
    std::cerr << "need exactly one of --workload or --trace\n"
              << cli.usage("pals_profile");
    return 2;
  }

  Trace trace;
  std::string source;
  if (cli.has("trace")) {
    source = cli.get("trace");
    trace = read_trace_auto(source);
  } else {
    source = cli.get("workload");
    const WorkloadRef ref = resolve_workload(
        source, static_cast<int>(cli.get_int("iterations", 10)));
    trace = ref.build();
  }

  ProfileOptions options;
  options.repeat = static_cast<int>(cli.get_int("repeat", 1));
  options.jobs = static_cast<int>(cli.get_int("jobs", 1));
  options.config = default_pipeline_config(
      gear_set_by_name(cli.get("gears")),
      algorithm_by_name(cli.get("algorithm")));
  set_beta(options.config, parse_double(cli.get("beta")));
  if (cli.has("config")) apply_config_file(options.config, cli.get("config"));

  const ProfileReport report = profile_pipeline(trace, options);
  obs::record_peak_rss(obs::default_registry());
  const obs::MetricsSnapshot snapshot = obs::default_registry().snapshot();

  if (cli.has("metrics")) atomic_write_file(cli.get("metrics"), snapshot.to_json());
  if (cli.has("sim-metrics"))
    atomic_write_file(cli.get("sim-metrics"),
                    snapshot.simulation_only().to_json());
  if (cli.has("bench-json"))
    atomic_write_file(cli.get("bench-json"), report.bench_json());
  if (cli.has("chrome-trace")) {
    obs::ChromeTraceWriter writer;
    append_host_spans(writer, obs::default_registry(), /*pid=*/1);
    obs::SimulatedTraceOptions baseline_opts;
    baseline_opts.pid = 2;
    baseline_opts.process_name = "simulation baseline";
    append_simulated_replay(writer, report.result.baseline_replay,
                            baseline_opts);
    obs::SimulatedTraceOptions scaled_opts;
    scaled_opts.pid = 3;
    scaled_opts.process_name = "simulation scaled";
    append_simulated_replay(writer, report.result.scaled_replay, scaled_opts);
    writer.write_file(cli.get("chrome-trace"));
  }
  if (cli.has("sim-trace")) {
    obs::ChromeTraceWriter writer;
    append_simulated_replay(writer, report.result.baseline_replay);
    writer.write_file(cli.get("sim-trace"));
  }

  if (!cli.get_flag("quiet")) {
    std::cout << "profiled " << source << ": " << report.pipelines
              << " pipeline run(s), " << report.jobs << " job(s)\n"
              << "  wall time:        " << format_fixed(report.wall_seconds, 3)
              << " s\n"
              << "  scenarios/sec:    "
              << format_fixed(report.pipelines_per_second, 1) << '\n'
              << "  simulated events: " << report.simulated_events << " ("
              << format_fixed(report.events_per_second / 1e6, 2) << " M/s)\n"
              << "  peak rss:         "
              << obs::peak_rss_bytes() / (1024ull * 1024ull) << " MiB\n";
    for (const PhaseProfile& phase : report.phases)
      std::cout << "  phase " << phase.name << ": "
                << format_fixed(phase.seconds * 1e3, 3) << " ms over "
                << phase.count << " span(s)\n";
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
