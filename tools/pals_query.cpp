// pals_query — client for the pals_serve what-if daemon (docs/serve.md).
//
//   pals_query --socket=/tmp/pals.sock --workload=CG-32
//              [--gear-set=uniform-6] [--algorithm=max]
//              [--controller=static] [--beta=0.5] [--iterations=N]
//              [--deadline-ms=MS] [--faults=SPEC]
//              [--platform=latency=2e-6,buses=4] [--csv]
//   pals_query --socket=S --ping | --stats | --shutdown
//   pals_query --socket=S --requests=FILE [--out=FILE]
//   pals_query --socket=S --grid=FILE [--out=FILE] [--deadline-ms=MS]
//   pals_query --socket=S --chaos=N [--workload=SPEC]
//
// One request, one line: the default mode sends a single query and
// prints the row (or, with --csv, the byte-exact CSV a batch sweep
// would write). --requests replays a file of raw request lines — the
// malformed-request torture corpus drives the daemon's parser hardening
// this way — printing one response line each. --grid expands a sweep
// grid file (docs/sweep.md) into its canonical scenario order, queries
// every cell over one connection and writes header+rows CSV
// byte-identical to `pals_sweep --jobs=1 --out`. --chaos opens N
// deliberately rude connections (half vanish before reading their
// reply, half quit mid-request-line) to exercise the daemon's
// disconnect handling; it never fails the run.
//
// Overload handling: an `overloaded` (or `shutting-down`) rejection is
// retried with capped exponential backoff (util/backoff.hpp,
// --retries/--retry-base-ms); exhausting the budget — or finding no
// daemon on the socket at all — exits 6 (unavailable, retryable) so
// scripts can distinguish "back off" from "broken".
//
// Exit codes: 0 ok, 1 query answered with a non-retryable error
// (bad-request, not-found, deadline-exceeded, internal), 2 usage,
// 6 unavailable (no daemon / still overloaded after retries).
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "serve/protocol.hpp"
#include "util/backoff.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/socketio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

/// The CSV header line batch sweeps write (rows_to_csv of zero rows,
/// trailing newline stripped) — shared code, so it can never drift.
std::string csv_header() {
  std::string header = rows_to_csv({});
  while (!header.empty() && (header.back() == '\n' || header.back() == '\r'))
    header.pop_back();
  return header;
}

struct QuerySpec {
  std::string workload;
  std::string gear_set = "uniform-6";
  std::string algorithm = "max";
  std::string controller = "static";
  double beta = 0.5;
  int iterations = 0;
  double deadline_ms = 0.0;
  std::string faults;
  std::vector<std::pair<std::string, std::string>> platform;
};

std::string build_query_line(const QuerySpec& spec, const std::string& id) {
  std::string line = "{\"schema\":\"";
  line += serve::kSchema;
  line += "\",\"kind\":\"query\"";
  if (!id.empty()) line += ",\"id\":\"" + json_escape(id) + "\"";
  line += ",\"workload\":\"" + json_escape(spec.workload) + "\"";
  line += ",\"gear_set\":\"" + json_escape(spec.gear_set) + "\"";
  line += ",\"algorithm\":\"" + json_escape(spec.algorithm) + "\"";
  line += ",\"controller\":\"" + json_escape(spec.controller) + "\"";
  line += ",\"beta\":" + format_roundtrip(spec.beta);
  if (spec.iterations > 0)
    line += ",\"iterations\":" + std::to_string(spec.iterations);
  if (spec.deadline_ms > 0.0)
    line += ",\"deadline_ms\":" + format_roundtrip(spec.deadline_ms);
  if (!spec.faults.empty())
    line += ",\"faults\":\"" + json_escape(spec.faults) + "\"";
  if (!spec.platform.empty()) {
    line += ",\"platform\":{";
    for (std::size_t i = 0; i < spec.platform.size(); ++i) {
      if (i > 0) line += ",";
      line += "\"";
      line += json_escape(spec.platform[i].first);
      line += "\":";
      line += spec.platform[i].second;
    }
    line += "}";
  }
  line += "}";
  return line;
}

/// Transport failure (no daemon, connection lost mid-exchange, response
/// timeout) — mapped to ToolExit::kUnavailable at the top level.
class Unavailable : public Error {
 public:
  using Error::Error;
};

/// A connection to the daemon with one request in flight at a time.
class Client {
 public:
  Client(std::string socket_path, double timeout_seconds, int retries,
         const BackoffPolicy& backoff)
      : socket_path_(std::move(socket_path)),
        timeout_seconds_(timeout_seconds),
        retries_(retries),
        backoff_(backoff) {}

  /// Send one request line, return the parsed response. Retries
  /// `overloaded` / `shutting-down` rejections (and transport failures)
  /// with capped exponential backoff; throws Unavailable when the budget
  /// is exhausted.
  serve::ParsedResponse exchange(const std::string& request_line) {
    std::string last_failure = "no attempt made";
    for (int attempt = 0; attempt <= retries_; ++attempt) {
      if (attempt > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff_.delay(attempt)));
      }
      try {
        serve::ParsedResponse response = exchange_once(request_line);
        if (!response.ok &&
            (response.code == serve::ErrorCode::kOverloaded ||
             response.code == serve::ErrorCode::kShuttingDown)) {
          stream_.reset();  // the daemon closed (or will); reconnect
          last_failure = to_string(response.code) + ": " + response.message;
          continue;
        }
        return response;
      } catch (const Unavailable& e) {
        stream_.reset();
        last_failure = e.what();
      }
    }
    throw Unavailable("daemon unavailable after " +
                      std::to_string(retries_ + 1) + " attempt(s): " +
                      last_failure);
  }

 private:
  serve::ParsedResponse exchange_once(const std::string& request_line) {
    if (!stream_) {
      try {
        stream_.emplace(UnixStream::connect(socket_path_));
      } catch (const Error& e) {
        throw Unavailable(e.what());
      }
    }
    if (!stream_->write_all(request_line + "\n"))
      throw Unavailable("daemon closed the connection before the request "
                        "was sent");
    std::string line;
    const ReadLineStatus status =
        stream_->read_line(line, serve::kMaxRequestBytes, timeout_seconds_);
    if (status == ReadLineStatus::kTimeout)
      throw Unavailable("no response within " +
                        format_fixed(timeout_seconds_, 1) + " s");
    if (status != ReadLineStatus::kLine)
      throw Unavailable("daemon closed the connection mid-response");
    return serve::parse_response(line);
  }

  std::string socket_path_;
  double timeout_seconds_;
  int retries_;
  BackoffPolicy backoff_;
  std::optional<UnixStream> stream_;
};

int finish_error(const serve::ParsedResponse& response) {
  std::cerr << "error (" << to_string(response.code)
            << "): " << response.message << '\n';
  return exit_code(ToolExit::kError);
}

int run_requests_file(Client& client, const std::string& path,
                      const std::string& out_path) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open requests file '" << path << "'");
  std::string line;
  std::string transcript;
  std::size_t sent = 0;
  std::size_t ok = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    // Raw replay: the line goes over the wire verbatim — malformed lines
    // are the point (parser torture corpus).
    serve::ParsedResponse response;
    std::string rendered;
    try {
      response = client.exchange(line);
      rendered = response.ok
                     ? "ok id=" + response.id +
                           (response.csv.empty() ? "" : " csv=" + response.csv)
                     : "error id=" + response.id + " code=" +
                           to_string(response.code) + " message=" +
                           response.message;
      if (response.ok) ++ok;
    } catch (const serve::ProtocolError& e) {
      rendered = std::string("invalid-response: ") + e.what();
    }
    ++sent;
    transcript += rendered + "\n";
  }
  if (out_path.empty())
    std::cout << transcript;
  else
    atomic_write_file(out_path, transcript);
  std::cout << "requests: " << sent << " sent, " << ok << " ok, "
            << (sent - ok) << " rejected\n";
  return exit_code(ToolExit::kOk);
}

int run_grid(Client& client, const std::string& grid_path,
             const std::string& out_path, double deadline_ms) {
  const SweepGrid grid = SweepGrid::from_file(grid_path);
  const std::vector<Scenario> scenarios = grid.expand();
  std::string csv = csv_header() + "\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    QuerySpec spec;
    spec.workload = s.workload;
    spec.gear_set = s.gear_set;
    // algorithm_by_name spellings, not to_string display names.
    switch (s.algorithm) {
      case Algorithm::kMax: spec.algorithm = "max"; break;
      case Algorithm::kAvg: spec.algorithm = "avg"; break;
      case Algorithm::kEnergyOptimalMax:
        spec.algorithm = "energy-optimal";
        break;
    }
    spec.controller = s.controller;
    spec.beta = s.beta;
    spec.iterations = grid.iterations;
    spec.deadline_ms = deadline_ms;
    const serve::ParsedResponse response =
        client.exchange(build_query_line(spec, "grid-" + std::to_string(i)));
    if (!response.ok) return finish_error(response);
    csv += response.csv + "\n";
  }
  if (out_path.empty())
    std::cout << csv;
  else
    atomic_write_file(out_path, csv);
  std::cerr << "grid: " << scenarios.size() << " cells served\n";
  return exit_code(ToolExit::kOk);
}

/// Deliberately rude clients: connect, misbehave, vanish. Exercises the
/// daemon's disconnect handling; transport errors are the expected
/// outcome, so none of them fail the run.
int run_chaos(const std::string& socket_path, int connections,
              const QuerySpec& spec) {
  int torn = 0;
  for (int i = 0; i < connections; ++i) {
    try {
      UnixStream stream = UnixStream::connect(socket_path);
      if (i % 2 == 0) {
        // Send a full query, then vanish without reading the reply.
        stream.write_all(build_query_line(spec, "chaos-" + std::to_string(i)) +
                         "\n");
      } else {
        // Quit mid-request-line (no terminating newline).
        stream.write_all("{\"schema\":\"pals-serve-v1\",\"kind\":\"qu");
      }
      stream.close();
      ++torn;
    } catch (const Error&) {
      // A daemon mid-drain refuses connects; that is chaos working.
    }
  }
  std::cout << "chaos: " << torn << "/" << connections
            << " rude connections torn down\n";
  return exit_code(ToolExit::kOk);
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("socket", "daemon's Unix-domain socket path");
  cli.add_option("workload", "registry instance (CG-32) or inline spec "
                             "(lu:32:0.93:6)");
  cli.add_option("gear-set", "gear-set name", "uniform-6");
  cli.add_option("algorithm", "max | avg | energy-optimal", "max");
  cli.add_option("controller", "static | dynamic_max | dynamic_avg | "
                               "slack | ewma", "static");
  cli.add_option("beta", "β of the time model", "0.5");
  cli.add_option("iterations", "iteration count (0 = server default)", "0");
  cli.add_option("deadline-ms", "per-request wall budget (0 = server "
                                "default)", "0");
  cli.add_option("faults", "inline fault-plan spec applied to the "
                           "query's replays");
  cli.add_option("platform", "comma-separated platform overrides "
                             "(latency=2e-6,buses=4,...)");
  cli.add_flag("csv", "print the byte-exact CSV (header + row) instead "
                      "of the readable summary");
  cli.add_flag("ping", "liveness probe");
  cli.add_flag("stats", "print the daemon's serve.* counters");
  cli.add_flag("shutdown", "ask the daemon to drain and exit");
  cli.add_option("requests", "send each line of FILE verbatim, print one "
                             "response line each");
  cli.add_option("grid", "query every cell of a sweep grid file in "
                         "canonical order; write header+rows CSV");
  cli.add_option("chaos", "open N rude connections that vanish "
                          "mid-exchange (never fails)");
  cli.add_option("out", "write --requests/--grid output to FILE instead "
                        "of stdout");
  cli.add_option("timeout", "seconds to wait for each response", "120");
  cli.add_option("retries", "retry budget for overloaded/unavailable "
                            "exchanges", "4");
  cli.add_option("retry-base-ms", "backoff base delay (doubles per retry, "
                                  "capped at 1000 ms)", "50");
  cli.add_flag("help", "show usage");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_query");
    return exit_code(ToolExit::kUsage);
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_query");
    return exit_code(ToolExit::kOk);
  }
  if (!cli.has("socket")) {
    std::cerr << "need --socket\n" << cli.usage("pals_query");
    return exit_code(ToolExit::kUsage);
  }

  ignore_sigpipe();
  QuerySpec spec;
  spec.workload = cli.get_or("workload", "");
  spec.gear_set = cli.get_or("gear-set", "uniform-6");
  spec.algorithm = cli.get_or("algorithm", "max");
  spec.controller = cli.get_or("controller", "static");
  spec.beta = cli.get_double("beta", 0.5);
  spec.iterations = static_cast<int>(cli.get_int("iterations", 0));
  spec.deadline_ms = cli.get_double("deadline-ms", 0.0);
  spec.faults = cli.get_or("faults", "");
  if (cli.has("platform")) {
    for (const std::string& part : split(cli.get("platform"), ',')) {
      const std::string entry{trim(part)};
      if (entry.empty()) continue;
      const std::size_t eq = entry.find('=');
      PALS_CHECK_MSG(eq != std::string::npos && eq > 0,
                     "--platform entry '" << entry << "' is not key=value");
      spec.platform.emplace_back(std::string(trim(entry.substr(0, eq))),
                                 std::string(trim(entry.substr(eq + 1))));
    }
  }

  if (cli.has("chaos")) {
    if (spec.workload.empty()) spec.workload = "lu:8:0.9:2";
    return run_chaos(cli.get("socket"),
                     static_cast<int>(cli.get_int("chaos", 8)), spec);
  }

  const BackoffPolicy backoff{cli.get_double("retry-base-ms", 50.0) / 1000.0,
                              2.0, 1.0};
  Client client(cli.get("socket"), cli.get_double("timeout", 120.0),
                static_cast<int>(cli.get_int("retries", 4)), backoff);
  try {
    if (cli.get_flag("ping")) {
      const serve::ParsedResponse response = client.exchange(
          "{\"schema\":\"pals-serve-v1\",\"kind\":\"ping\",\"id\":\"ping\"}");
      if (!response.ok) return finish_error(response);
      PALS_CHECK_MSG(response.has_pong, "ping answered without a pong");
      std::cout << "pong\n";
      return exit_code(ToolExit::kOk);
    }
    if (cli.get_flag("stats")) {
      const serve::ParsedResponse response = client.exchange(
          "{\"schema\":\"pals-serve-v1\",\"kind\":\"stats\",\"id\":\"stats\"}");
      if (!response.ok) return finish_error(response);
      PALS_CHECK_MSG(response.has_stats, "stats answered without stats");
      std::cout << response.raw << '\n';
      return exit_code(ToolExit::kOk);
    }
    if (cli.get_flag("shutdown")) {
      const serve::ParsedResponse response = client.exchange(
          "{\"schema\":\"pals-serve-v1\",\"kind\":\"shutdown\","
          "\"id\":\"shutdown\"}");
      if (!response.ok) return finish_error(response);
      std::cout << "draining\n";
      return exit_code(ToolExit::kOk);
    }
    if (cli.has("requests"))
      return run_requests_file(client, cli.get("requests"),
                               cli.get_or("out", ""));
    if (cli.has("grid"))
      return run_grid(client, cli.get("grid"), cli.get_or("out", ""),
                      spec.deadline_ms);

    if (spec.workload.empty()) {
      std::cerr << "need --workload (or --ping/--stats/--shutdown/"
                   "--requests/--grid/--chaos)\n"
                << cli.usage("pals_query");
      return exit_code(ToolExit::kUsage);
    }
    const serve::ParsedResponse response =
        client.exchange(build_query_line(spec, "cli"));
    if (!response.ok) return finish_error(response);
    if (cli.get_flag("csv"))
      std::cout << csv_header() << "\n" << response.csv << "\n";
    else
      std::cout << response.raw << '\n';
    return exit_code(ToolExit::kOk);
  } catch (const Unavailable& e) {
    std::cerr << "unavailable: " << e.what() << '\n';
    return exit_code(ToolExit::kUnavailable);
  }
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return pals::exit_code(pals::ToolExit::kError);
  }
}
