// pals_json_check — structural validator for the JSON artifacts the
// observability layer emits (metrics snapshots, Chrome traces, bench
// reports).
//
//   pals_json_check m.json --require replay.events,pool.tasks_executed
//   pals_json_check t.json --require traceEvents
//
// Exit 0 when the file parses as JSON and every --require key is present;
// a key counts as present when it appears as an object member anywhere in
// the document, or as the string value of a "name" member (the metrics
// snapshot stores metric names that way).
#include <iostream>
#include <set>
#include <string>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

void collect_keys(const JsonValue& value, std::set<std::string>& keys) {
  if (value.is_object()) {
    for (const auto& [k, v] : value.object) {
      keys.insert(k);
      if (k == "name" && v.is_string()) keys.insert(v.string);
      collect_keys(v, keys);
    }
  } else if (value.is_array()) {
    for (const JsonValue& v : value.array) collect_keys(v, keys);
  }
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("require", "comma-separated keys that must be present");
  cli.add_flag("quiet", "no output on success");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help") || cli.positional().size() != 1) {
    std::cout << "usage: pals_json_check [--require k1,k2,...] <file.json>\n";
    return cli.get_flag("help") ? 0 : 2;
  }
  const std::string path = cli.positional().front();
  const JsonValue document = json_parse_file(path);

  std::set<std::string> keys;
  collect_keys(document, keys);

  int missing = 0;
  if (cli.has("require")) {
    for (const std::string& field : split(cli.get("require"), ',')) {
      const std::string key{trim(field)};
      if (key.empty()) continue;
      if (!keys.contains(key)) {
        std::cerr << path << ": missing required key '" << key << "'\n";
        ++missing;
      }
    }
  }
  if (missing > 0) return 1;
  if (!cli.get_flag("quiet"))
    std::cout << path << ": valid JSON, " << keys.size()
              << " distinct keys\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
