// pals_json_check — structural validator for the JSON artifacts the
// observability layer emits (metrics snapshots, Chrome traces, bench
// reports) and for sweep run journals.
//
//   pals_json_check m.json --require replay.events,pool.tasks_executed
//   pals_json_check t.json --require traceEvents
//   pals_json_check --journal run/journal.palsj
//   pals_json_check --bench BENCH_suite.json
//
// Exit 0 when the file parses as JSON and every --require key is present;
// a key counts as present when it appears as an object member anywhere in
// the document, or as the string value of a "name" member (the metrics
// snapshot stores metric names that way).
//
// --journal validates a run journal instead (analysis/journal.hpp): the
// JSON metadata header (format/version/config_hash/scenarios) plus every
// record's checksum and semantics, via the same read_journal the resume
// path uses. A torn trailing record is reported but accepted (exit 0) —
// that is the crash signature resume repairs; anything else exits 1.
//
// --bench validates a pals::obs::bench report (full BENCH_*.json or the
// counters-only section) by parsing it through bench::report_from_file —
// any missing or mistyped member exits 1 naming the offending key.
//
// --serve / --serve-responses validate a line-delimited pals-serve-v1
// transcript (docs/serve.md): every non-empty, non-comment line must be
// a structurally valid request (respectively response) — the same
// parsers the daemon and pals_query use, so a battery file that passes
// here is guaranteed to be answered (or rejected) structurally, never
// crash the daemon's parser.
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "analysis/journal.hpp"
#include "obs/bench.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

void collect_keys(const JsonValue& value, std::set<std::string>& keys) {
  if (value.is_object()) {
    for (const auto& [k, v] : value.object) {
      keys.insert(k);
      if (k == "name" && v.is_string()) keys.insert(v.string);
      collect_keys(v, keys);
    }
  } else if (value.is_array()) {
    for (const JsonValue& v : value.array) collect_keys(v, keys);
  }
}

int check_journal(const std::string& path, bool quiet) {
  const JournalReadReport report = read_journal(path);
  std::size_t rows = 0;
  std::size_t pruned = 0;
  std::size_t errors = 0;
  for (const JournalRecord& record : report.records) {
    if (record.kind == JournalRecord::Kind::kRow)
      ++rows;
    else if (record.kind == JournalRecord::Kind::kPruned)
      ++pruned;
    else
      ++errors;
  }
  if (report.tail_dropped)
    std::cerr << path << ": torn trailing record dropped "
              << "(crash mid-append; --resume re-runs that cell)\n";
  if (!quiet)
    std::cout << path << ": valid journal, config_hash "
              << report.header.config_hash << ", "
              << report.records.size() << "/" << report.header.scenarios
              << " cells journaled (" << rows << " rows, " << pruned
              << " pruned, " << errors << " quarantined), "
              << report.heartbeats.size() << " heartbeats\n";
  return 0;
}

int check_bench(const std::string& path, bool quiet) {
  const obs::bench::Report report = obs::bench::report_from_file(path);
  if (report.schema_version != obs::bench::kSchemaVersion) {
    std::cerr << path << ": bench schema_version " << report.schema_version
              << " != expected " << obs::bench::kSchemaVersion << '\n';
    return 1;
  }
  if (!report.counters_deterministic()) {
    std::cerr << path << ": report records non-deterministic counters\n";
    return 1;
  }
  if (!quiet)
    std::cout << path << ": valid bench report, suite '" << report.suite
              << "', " << report.cases.size() << " case(s)\n";
  return 0;
}

/// Validate a line-delimited serve transcript; `responses` picks which
/// side of the protocol the lines must satisfy.
int check_serve(const std::string& path, bool responses, bool quiet) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  std::string line;
  std::size_t line_number = 0;
  std::size_t checked = 0;
  int invalid = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++checked;
    try {
      if (responses)
        (void)serve::parse_response(line);
      else
        serve::validate_request_line(line);
    } catch (const serve::ProtocolError& e) {
      std::cerr << path << ":" << line_number << ": invalid "
                << (responses ? "response" : "request") << ": " << e.what()
                << '\n';
      ++invalid;
    }
  }
  if (invalid > 0) return 1;
  if (!quiet)
    std::cout << path << ": " << checked << " valid pals-serve-v1 "
              << (responses ? "response" : "request") << " line(s)\n";
  return 0;
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("require", "comma-separated keys that must be present");
  cli.add_flag("journal", "validate a sweep run journal (.palsj) instead "
                          "of a JSON document");
  cli.add_flag("bench", "validate a pals::obs::bench report (BENCH_*.json)");
  cli.add_flag("serve", "validate a file of pals-serve-v1 request lines");
  cli.add_flag("serve-responses",
               "validate a file of pals-serve-v1 response lines");
  cli.add_flag("quiet", "no output on success");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help") || cli.positional().size() != 1) {
    std::cout << "usage: pals_json_check [--require k1,k2,...] [--journal] "
                 "[--bench] [--serve] [--serve-responses] <file>\n";
    return cli.get_flag("help") ? 0 : 2;
  }
  const std::string path = cli.positional().front();
  if (cli.get_flag("journal")) return check_journal(path, cli.get_flag("quiet"));
  if (cli.get_flag("bench")) return check_bench(path, cli.get_flag("quiet"));
  if (cli.get_flag("serve") || cli.get_flag("serve-responses"))
    return check_serve(path, cli.get_flag("serve-responses"),
                       cli.get_flag("quiet"));
  const JsonValue document = json_parse_file(path);

  std::set<std::string> keys;
  collect_keys(document, keys);

  int missing = 0;
  if (cli.has("require")) {
    for (const std::string& field : split(cli.get("require"), ',')) {
      const std::string key{trim(field)};
      if (key.empty()) continue;
      if (!keys.contains(key)) {
        std::cerr << path << ": missing required key '" << key << "'\n";
        ++missing;
      }
    }
  }
  if (missing > 0) return 1;
  if (!cli.get_flag("quiet"))
    std::cout << path << ": valid JSON, " << keys.size()
              << " distinct keys\n";
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
