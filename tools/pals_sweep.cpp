// pals_sweep — run a declarative scenario grid across a thread pool.
//
//   pals_sweep --grid=configs/ext_suite.grid [--jobs=N] [--out=sweep.csv]
//              [--summary=sweep.stats] [--config=platform.cfg] [--quiet]
//              [--metrics=m.json] [--chrome-trace=t.json] [--progress]
//
// The grid file is key = value (see docs/sweep.md):
//
//   workloads  = CG-32, MG-32, lu:32:0.93:6
//   gear_sets  = uniform-6, avg-discrete
//   algorithms = max, avg
//   betas      = 0.5
//
// Results are merged in canonical grid order: the CSV is byte-identical
// for every --jobs value. The run's timing/throughput counters are
// printed as a machine-readable key = value block (and written to
// --summary when given).
#include <cstdio>
#include <fstream>
#include <iostream>

#ifdef _WIN32
#include <io.h>
#define PALS_ISATTY _isatty
#define PALS_FILENO _fileno
#else
#include <unistd.h>
#define PALS_ISATTY isatty
#define PALS_FILENO fileno
#endif

#include "analysis/sweep.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  PALS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  PALS_CHECK_MSG(out.good(), "write failure on '" << path << "'");
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("grid", "scenario grid file (key = value)");
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("out", "write result rows as CSV");
  cli.add_option("summary", "write the run summary (key = value) to a file");
  cli.add_option("config", "key=value platform/power overrides "
                           "(applied to every scenario)");
  cli.add_flag("lint", "statically verify every workload trace before "
                       "replaying (abort with a lint report on errors)");
  cli.add_option("metrics", "write the full metrics snapshot (JSON)");
  cli.add_option("chrome-trace",
                 "write the sweep's host-side spans as Chrome trace JSON");
  cli.add_flag("progress", "periodic progress line on stderr "
                           "(suppressed when stderr is not a TTY)");
  cli.add_flag("force-progress",
               "progress even when stderr is not a TTY (tests, CI logs)");
  cli.add_flag("quiet", "skip the aligned result table");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_sweep");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_sweep");
    return 0;
  }
  if (!cli.has("grid")) {
    std::cerr << "need --grid\n" << cli.usage("pals_sweep");
    return 2;
  }

  const SweepGrid grid = SweepGrid::from_file(cli.get("grid"));
  SweepOptions options;
  options.jobs = static_cast<int>(cli.get_int("jobs", 0));
  options.base.lint = cli.get_flag("lint");
  // Span profiling costs a little wall-clock per scenario; only pay for
  // it when an observability artifact was requested.
  options.base.observe = cli.has("metrics") || cli.has("chrome-trace");
  if (cli.get_flag("force-progress") ||
      (cli.get_flag("progress") &&
       PALS_ISATTY(PALS_FILENO(stderr)) != 0)) {
    options.progress_stream = &std::cerr;
  }
  if (cli.has("config")) apply_config_file(options.base, cli.get("config"));

  const SweepResult result = run_sweep(grid, options);

  if (cli.has("metrics"))
    write_text_file(cli.get("metrics"),
                    obs::default_registry().snapshot().to_json());
  if (cli.has("chrome-trace")) {
    obs::ChromeTraceWriter writer;
    append_host_spans(writer, obs::default_registry());
    writer.write_file(cli.get("chrome-trace"));
  }

  if (!cli.get_flag("quiet")) {
    print_rows(result.rows,
               "Sweep: " + cli.get("grid") + " (" +
                   std::to_string(result.stats.jobs) + " jobs)");
  }
  if (cli.has("out")) {
    write_rows_csv(result.rows, cli.get("out"));
    std::cout << "csv written to " << cli.get("out") << '\n';
  }

  const std::string summary = result.stats.to_kv();
  std::cout << "\n# sweep summary\n" << summary;
  if (cli.has("summary")) {
    std::ofstream out(cli.get("summary"));
    PALS_CHECK_MSG(out.good(), "cannot open " << cli.get("summary"));
    out << summary;
    PALS_CHECK_MSG(out.good(), "write failure on " << cli.get("summary"));
    std::cout << "summary written to " << cli.get("summary") << '\n';
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
