// pals_sweep — run a declarative scenario grid across a thread pool.
//
//   pals_sweep --grid=configs/ext_suite.grid [--jobs=N] [--out=sweep.csv]
//              [--summary=sweep.stats] [--config=platform.cfg] [--quiet]
//              [--metrics=m.json] [--chrome-trace=t.json] [--progress]
//              [--faults=plan|file] [--max-retries=N] [--keep-going]
//              [--errors=errors.csv] [--run-dir=DIR] [--resume=DIR]
//              [--cell-timeout=SECONDS] [--pareto=pareto.csv]
//              [--prune-bounds] [--pruned=pruned.csv] [--no-bounds-oracle]
//              [--shard=i/N] [--heartbeat=SECONDS]
//
// The grid file is key = value (see docs/sweep.md):
//
//   workloads   = CG-32, MG-32, lu:32:0.93:6
//   gear_sets   = uniform-6, avg-discrete
//   algorithms  = max, avg
//   controllers = static, dynamic_max, slack
//   betas       = 0.5
//
// --pareto marks each result row's membership in its workload's
// energy/time Pareto front (docs/controllers.md) and writes the
// annotated CSV — the static-vs-dynamic comparison artifact.
//
// Static bounds (docs/bounds.md): --prune-bounds skips cells whose
// optimistic lower-bound point is already Pareto-dominated by a
// completed cell of the same workload (provenance in --pruned /
// DIR/pruned.csv; surviving rows and the Pareto front stay
// byte-identical to an unpruned sweep). Every replayed cell is checked
// against its static makespan/energy interval by the soundness oracle;
// --no-bounds-oracle disarms it.
//
// Results are merged in canonical grid order: the CSV is byte-identical
// for every --jobs value. The run's timing/throughput counters are
// printed as a machine-readable key = value block (and written to
// --summary when given).
//
// Fault tolerance (docs/faults.md): --faults loads a fault plan (inline
// spec or file) whose simulated faults perturb every replay and whose
// scenario faults fail grid cells; --keep-going quarantines failing
// cells into --errors (written even when clean, as a header-only CSV)
// instead of aborting. --cell-timeout arms a per-cell wall-clock
// watchdog so a wedged cell is classified as a timeout instead of
// hanging the sweep.
//
// Crash safety (docs/resume.md): --run-dir journals every completed
// cell durably to DIR/journal.palsj and writes results.csv / errors.csv
// / summary.stats into DIR. After a crash or ^C, --resume=DIR replays
// the journal, skips the completed cells and re-runs the rest; the
// final results.csv/errors.csv are byte-identical to an uninterrupted
// run at any --jobs count. SIGINT/SIGTERM drain in-flight cells, write
// the partial artifacts and exit with the "interrupted" code.
//
// Sharded execution (docs/sharding.md): --shard=i/N runs only the
// deterministic hash-assigned subset of the grid (by cell, or by whole
// workload group under --prune-bounds), journaling into its own
// --run-dir; pals_shepherd launches/supervises the N workers and merges
// the shard journals into byte-identical unsharded artifacts.
// --heartbeat appends a liveness record to the journal every interval
// so the supervisor can tell a slow shard from a hung one.
//
// Exit codes (util/exit_codes.hpp): 0 clean, 1 error, 2 usage,
// 3 completed with quarantined cells, 4 interrupted (resumable),
// 5 completed degraded (pals_shepherd: a shard exhausted its restart
// budget and its cells were quarantined as "shard-lost").
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>

#ifdef _WIN32
#include <io.h>
#define PALS_ISATTY _isatty
#define PALS_FILENO _fileno
#else
#include <unistd.h>
#define PALS_ISATTY isatty
#define PALS_FILENO fileno
#endif

#include "analysis/journal.hpp"
#include "analysis/pareto.hpp"
#include "analysis/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "shard/partition.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/fsio.hpp"
#include "util/socketio.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

/// Set by the SIGINT/SIGTERM handler (and by --interrupt-after); polled
/// by run_sweep between cells. In-flight cells finish and are journaled
/// before the tool writes its partial artifacts and exits.
std::atomic<bool> g_cancel{false};

extern "C" void handle_stop_signal(int) { g_cancel.store(true); }

void install_signal_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  // A long sweep piped into `head` (or any consumer that exits early)
  // must not die with SIGPIPE mid-run — the journal and run-dir
  // artifacts still need their graceful epilogue. Writes to the closed
  // pipe fail with EPIPE instead, which stream output tolerates.
  ignore_sigpipe();
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("grid", "scenario grid file (key = value)");
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("out", "write result rows as CSV");
  cli.add_option("pareto", "write rows annotated with per-workload "
                           "energy/time Pareto-front membership as CSV");
  cli.add_flag("prune-bounds", "skip cells whose static lower-bound point "
                               "is Pareto-dominated by a completed cell "
                               "(docs/bounds.md)");
  cli.add_option("pruned", "write pruned-cell provenance as CSV "
                           "(requires --prune-bounds)");
  cli.add_flag("no-bounds-oracle", "disarm the post-replay bounds "
                                   "soundness oracle");
  cli.add_option("summary", "write the run summary (key = value) to a file");
  cli.add_option("config", "key=value platform/power overrides "
                           "(applied to every scenario)");
  cli.add_flag("lint", "statically verify every workload trace before "
                       "replaying (abort with a lint report on errors)");
  cli.add_option("faults", "fault plan: inline spec "
                           "(\"link_degrade:rank=3,factor=4x\") or a plan "
                           "file path");
  cli.add_option("max-retries",
                 "retries per cell for transient failures", "2");
  cli.add_flag("keep-going", "quarantine failing cells and keep sweeping "
                             "(exit 3 if any cell was quarantined)");
  cli.add_option("errors", "write quarantined cells as CSV (header-only "
                           "when clean; requires --keep-going)");
  cli.add_option("metrics", "write the full metrics snapshot (JSON)");
  cli.add_option("chrome-trace",
                 "write the sweep's host-side spans as Chrome trace JSON");
  cli.add_option("run-dir", "crash-safe run directory: journal.palsj, "
                            "results.csv, errors.csv, summary.stats");
  cli.add_option("resume", "resume an interrupted --run-dir sweep "
                           "(implies --run-dir=DIR)");
  cli.add_option("cell-timeout", "per-cell wall-clock watchdog, seconds "
                                 "(0 = off; expired cells classify as "
                                 "timeouts)", "0");
  cli.add_option("shard", "run only the deterministic subset i/N of the "
                          "grid (docs/sharding.md)", "0/1");
  cli.add_option("heartbeat", "append a liveness heartbeat to the journal "
                              "every SECONDS (requires --run-dir; 0 = off)",
                 "0");
  cli.add_option("kill-after", "test hook: SIGKILL self after N journal "
                               "records (requires --run-dir)");
  cli.add_option("interrupt-after", "test hook: simulate ^C after N "
                                    "journal records (requires --run-dir)");
  cli.add_flag("progress", "periodic progress line on stderr "
                           "(suppressed when stderr is not a TTY)");
  cli.add_flag("force-progress",
               "progress even when stderr is not a TTY (tests, CI logs)");
  cli.add_flag("quiet", "skip the aligned result table");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_sweep");
    return exit_code(ToolExit::kOk);
  }
  if (!cli.has("grid")) {
    std::cerr << "need --grid\n" << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }

  const SweepGrid grid = SweepGrid::from_file(cli.get("grid"));
  SweepOptions options;
  options.jobs = static_cast<int>(cli.get_int("jobs", 0));
  options.base.lint = cli.get_flag("lint");
  // Span profiling costs a little wall-clock per scenario; only pay for
  // it when an observability artifact was requested.
  options.base.observe = cli.has("metrics") || cli.has("chrome-trace");
  if (cli.get_flag("force-progress") ||
      (cli.get_flag("progress") &&
       PALS_ISATTY(PALS_FILENO(stderr)) != 0)) {
    options.progress_stream = &std::cerr;
  }
  if (cli.has("config")) apply_config_file(options.base, cli.get("config"));

  options.keep_going = cli.get_flag("keep-going");
  options.retry.max_retries = static_cast<int>(cli.get_int("max-retries", 2));
  PALS_CHECK_MSG(options.retry.max_retries >= 0,
                 "--max-retries must be >= 0");
  options.cell_timeout_seconds = cli.get_double("cell-timeout", 0.0);
  PALS_CHECK_MSG(options.cell_timeout_seconds >= 0.0,
                 "--cell-timeout must be >= 0");
  const shard::ShardSpec shard_spec = shard::ShardSpec::parse(cli.get("shard"));
  options.shard_index = shard_spec.index;
  options.shard_count = shard_spec.count;
  options.heartbeat_interval_seconds = cli.get_double("heartbeat", 0.0);
  PALS_CHECK_MSG(options.heartbeat_interval_seconds >= 0.0,
                 "--heartbeat must be >= 0 (0 disables)");
  if (cli.has("errors") && !options.keep_going) {
    std::cerr << "--errors requires --keep-going\n" << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }
  options.prune_bounds = cli.get_flag("prune-bounds");
  options.bounds_oracle = !cli.get_flag("no-bounds-oracle");
  if (cli.has("pruned") && !options.prune_bounds) {
    std::cerr << "--pruned requires --prune-bounds\n"
              << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }
  std::optional<fault::Injector> injector;
  if (cli.has("faults")) {
    const fault::FaultPlan plan =
        fault::FaultPlan::from_file_or_inline(cli.get("faults"));
    injector.emplace(plan);
    options.faults = &*injector;
    if (!cli.get_flag("quiet"))
      std::cout << "fault plan: " << plan.describe() << '\n';
  }

  // Crash-safe run directory (docs/resume.md). --resume implies the same
  // directory layout; the journal is validated against the live grid and
  // options before any cell runs.
  const bool resuming = cli.has("resume");
  if (resuming && cli.has("run-dir") &&
      cli.get("run-dir") != cli.get("resume")) {
    std::cerr << "--resume and --run-dir name different directories\n"
              << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }
  const std::string run_dir =
      resuming ? cli.get("resume")
               : (cli.has("run-dir") ? cli.get("run-dir") : "");
  if ((cli.has("kill-after") || cli.has("interrupt-after")) &&
      run_dir.empty()) {
    std::cerr << "--kill-after/--interrupt-after require --run-dir\n"
              << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }
  if (options.heartbeat_interval_seconds > 0.0 && run_dir.empty()) {
    std::cerr << "--heartbeat requires --run-dir (heartbeats live in the "
                 "journal)\n"
              << cli.usage("pals_sweep");
    return exit_code(ToolExit::kUsage);
  }
  std::optional<JournalReadReport> prior;
  if (!run_dir.empty()) {
    std::filesystem::create_directories(run_dir);
    options.journal_path = run_dir + "/journal.palsj";
    if (resuming) {
      prior = read_journal(options.journal_path);
      if (prior->tail_dropped)
        std::cerr << "note: dropped a torn trailing journal record "
                     "(crash mid-append); the cell re-runs\n";
      options.resume = &*prior;
      if (!cli.get_flag("quiet"))
        std::cout << "resuming: " << prior->records.size() << "/"
                  << prior->header.scenarios
                  << " cells already journaled\n";
    }
  }

  install_signal_handlers();
  options.cancel = &g_cancel;
  if (cli.has("kill-after")) {
    const auto kill_after =
        static_cast<std::size_t>(cli.get_int("kill-after", 0));
    options.on_journal_record = [kill_after](std::size_t appended) {
      if (appended < kill_after) return;
      // Die hard, like an OOM kill: no artifact writes, no journal
      // close. Only what was already fsync'd survives.
#ifdef _WIN32
      std::_Exit(137);
#else
      std::raise(SIGKILL);
#endif
    };
  } else if (cli.has("interrupt-after")) {
    const auto interrupt_after =
        static_cast<std::size_t>(cli.get_int("interrupt-after", 0));
    options.on_journal_record = [interrupt_after](std::size_t appended) {
      if (appended >= interrupt_after) g_cancel.store(true);
    };
  }

  const SweepResult result = run_sweep(grid, options);

  // The live ETA line above is TTY-gated; --progress always gets this
  // final plain summary line, so CI logs and redirected runs still see
  // the throughput at a glance.
  if (cli.get_flag("progress") || cli.get_flag("force-progress")) {
    std::cerr << "sweep: " << result.stats.scenarios << " cells in "
              << format_fixed(result.stats.wall_seconds, 2) << " s ("
              << format_fixed(result.stats.scenarios_per_second, 1)
              << " cells/s), " << result.stats.pruned_cells << " pruned, "
              << result.stats.quarantined << " errors, peak rss "
              << obs::peak_rss_bytes() / (1024ull * 1024ull) << " MiB\n";
  }

  if (cli.has("metrics"))
    atomic_write_file(cli.get("metrics"),
                      obs::default_registry().snapshot().to_json());
  if (cli.has("chrome-trace")) {
    obs::ChromeTraceWriter writer;
    append_host_spans(writer, obs::default_registry());
    writer.write_file(cli.get("chrome-trace"));
  }

  if (!cli.get_flag("quiet")) {
    print_rows(result.rows,
               "Sweep: " + cli.get("grid") + " (" +
                   std::to_string(result.stats.jobs) + " jobs)");
  }
  if (cli.has("out")) {
    write_rows_csv(result.rows, cli.get("out"));
    std::cout << "csv written to " << cli.get("out") << '\n';
  }
  if (cli.has("pareto")) {
    write_pareto_csv(pareto_front(result.rows), cli.get("pareto"));
    std::cout << "pareto csv written to " << cli.get("pareto") << '\n';
  }
  if (cli.has("pruned")) {
    write_pruned_csv(result.pruned, cli.get("pruned"));
    std::cout << "pruned csv written to " << cli.get("pruned") << '\n';
  }
  if (options.prune_bounds && !cli.get_flag("quiet")) {
    std::cout << "pruned " << result.pruned.size() << "/"
              << result.stats.scenarios << " cells by static bounds\n";
  }
  if (result.has_errors() && !cli.get_flag("quiet")) {
    std::cerr << "\n" << result.errors.size() << " quarantined cell"
              << (result.errors.size() == 1 ? "" : "s") << ":\n";
    for (const ScenarioError& e : result.errors) {
      std::string line = e.describe();
      // Keep the console report one line per cell; the CSV carries the
      // flattened full text.
      if (const std::size_t cut = line.find('\n'); cut != std::string::npos)
        line = line.substr(0, cut) + " ...";
      std::cerr << "  " << line << '\n';
    }
  }
  if (cli.has("errors")) {
    write_errors_csv(result.errors, cli.get("errors"));
    std::cout << "errors csv written to " << cli.get("errors") << '\n';
  }
  if (!run_dir.empty()) {
    // Partial on interruption, final otherwise — atomically replaced
    // either way, so the directory never holds a torn artifact.
    write_rows_csv(result.rows, run_dir + "/results.csv");
    write_errors_csv(result.errors, run_dir + "/errors.csv");
    if (options.prune_bounds)
      write_pruned_csv(result.pruned, run_dir + "/pruned.csv");
    atomic_write_file(run_dir + "/summary.stats", result.stats.to_kv());
    std::cout << "run dir artifacts written to " << run_dir << '\n';
  }

  const std::string summary = result.stats.to_kv();
  std::cout << "\n# sweep summary\n" << summary;
  if (cli.has("summary")) {
    atomic_write_file(cli.get("summary"), summary);
    std::cout << "summary written to " << cli.get("summary") << '\n';
  }
  if (result.interrupted) {
    std::cerr << "sweep interrupted: "
              << result.stats.skipped_cells << " cell"
              << (result.stats.skipped_cells == 1 ? "" : "s")
              << " pending";
    if (!run_dir.empty())
      std::cerr << "; resume with --resume=" << run_dir;
    std::cerr << '\n';
    return exit_code(ToolExit::kInterrupted);
  }
  return exit_code(result.has_errors() ? ToolExit::kQuarantined
                                       : ToolExit::kOk);
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return pals::exit_code(pals::ToolExit::kError);
  }
}
