// pals_sweep — run a declarative scenario grid across a thread pool.
//
//   pals_sweep --grid=configs/ext_suite.grid [--jobs=N] [--out=sweep.csv]
//              [--summary=sweep.stats] [--config=platform.cfg] [--quiet]
//              [--metrics=m.json] [--chrome-trace=t.json] [--progress]
//              [--faults=plan|file] [--max-retries=N] [--keep-going]
//              [--errors=errors.csv]
//
// The grid file is key = value (see docs/sweep.md):
//
//   workloads  = CG-32, MG-32, lu:32:0.93:6
//   gear_sets  = uniform-6, avg-discrete
//   algorithms = max, avg
//   betas      = 0.5
//
// Results are merged in canonical grid order: the CSV is byte-identical
// for every --jobs value. The run's timing/throughput counters are
// printed as a machine-readable key = value block (and written to
// --summary when given).
//
// Fault tolerance (docs/faults.md): --faults loads a fault plan (inline
// spec or file) whose simulated faults perturb every replay and whose
// scenario faults fail grid cells; --keep-going quarantines failing
// cells into --errors (written even when clean, as a header-only CSV)
// instead of aborting. Exit codes: 0 clean, 1 error, 2 usage,
// 3 completed with quarantined cells.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#ifdef _WIN32
#include <io.h>
#define PALS_ISATTY _isatty
#define PALS_FILENO _fileno
#else
#include <unistd.h>
#define PALS_ISATTY isatty
#define PALS_FILENO fileno
#endif

#include "analysis/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  PALS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  PALS_CHECK_MSG(out.good(), "write failure on '" << path << "'");
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("grid", "scenario grid file (key = value)");
  cli.add_option("jobs", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("out", "write result rows as CSV");
  cli.add_option("summary", "write the run summary (key = value) to a file");
  cli.add_option("config", "key=value platform/power overrides "
                           "(applied to every scenario)");
  cli.add_flag("lint", "statically verify every workload trace before "
                       "replaying (abort with a lint report on errors)");
  cli.add_option("faults", "fault plan: inline spec "
                           "(\"link_degrade:rank=3,factor=4x\") or a plan "
                           "file path");
  cli.add_option("max-retries",
                 "retries per cell for transient failures", "2");
  cli.add_flag("keep-going", "quarantine failing cells and keep sweeping "
                             "(exit 3 if any cell was quarantined)");
  cli.add_option("errors", "write quarantined cells as CSV (header-only "
                           "when clean; requires --keep-going)");
  cli.add_option("metrics", "write the full metrics snapshot (JSON)");
  cli.add_option("chrome-trace",
                 "write the sweep's host-side spans as Chrome trace JSON");
  cli.add_flag("progress", "periodic progress line on stderr "
                           "(suppressed when stderr is not a TTY)");
  cli.add_flag("force-progress",
               "progress even when stderr is not a TTY (tests, CI logs)");
  cli.add_flag("quiet", "skip the aligned result table");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_sweep");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_sweep");
    return 0;
  }
  if (!cli.has("grid")) {
    std::cerr << "need --grid\n" << cli.usage("pals_sweep");
    return 2;
  }

  const SweepGrid grid = SweepGrid::from_file(cli.get("grid"));
  SweepOptions options;
  options.jobs = static_cast<int>(cli.get_int("jobs", 0));
  options.base.lint = cli.get_flag("lint");
  // Span profiling costs a little wall-clock per scenario; only pay for
  // it when an observability artifact was requested.
  options.base.observe = cli.has("metrics") || cli.has("chrome-trace");
  if (cli.get_flag("force-progress") ||
      (cli.get_flag("progress") &&
       PALS_ISATTY(PALS_FILENO(stderr)) != 0)) {
    options.progress_stream = &std::cerr;
  }
  if (cli.has("config")) apply_config_file(options.base, cli.get("config"));

  options.keep_going = cli.get_flag("keep-going");
  options.retry.max_retries = static_cast<int>(cli.get_int("max-retries", 2));
  PALS_CHECK_MSG(options.retry.max_retries >= 0,
                 "--max-retries must be >= 0");
  if (cli.has("errors") && !options.keep_going) {
    std::cerr << "--errors requires --keep-going\n" << cli.usage("pals_sweep");
    return 2;
  }
  std::optional<fault::Injector> injector;
  if (cli.has("faults")) {
    const fault::FaultPlan plan =
        fault::FaultPlan::from_file_or_inline(cli.get("faults"));
    injector.emplace(plan);
    options.faults = &*injector;
    if (!cli.get_flag("quiet"))
      std::cout << "fault plan: " << plan.describe() << '\n';
  }

  const SweepResult result = run_sweep(grid, options);

  if (cli.has("metrics"))
    write_text_file(cli.get("metrics"),
                    obs::default_registry().snapshot().to_json());
  if (cli.has("chrome-trace")) {
    obs::ChromeTraceWriter writer;
    append_host_spans(writer, obs::default_registry());
    writer.write_file(cli.get("chrome-trace"));
  }

  if (!cli.get_flag("quiet")) {
    print_rows(result.rows,
               "Sweep: " + cli.get("grid") + " (" +
                   std::to_string(result.stats.jobs) + " jobs)");
  }
  if (cli.has("out")) {
    write_rows_csv(result.rows, cli.get("out"));
    std::cout << "csv written to " << cli.get("out") << '\n';
  }
  if (result.has_errors() && !cli.get_flag("quiet")) {
    std::cerr << "\n" << result.errors.size() << " quarantined cell"
              << (result.errors.size() == 1 ? "" : "s") << ":\n";
    for (const ScenarioError& e : result.errors) {
      std::string line = e.describe();
      // Keep the console report one line per cell; the CSV carries the
      // flattened full text.
      if (const std::size_t cut = line.find('\n'); cut != std::string::npos)
        line = line.substr(0, cut) + " ...";
      std::cerr << "  " << line << '\n';
    }
  }
  if (cli.has("errors")) {
    write_errors_csv(result.errors, cli.get("errors"));
    std::cout << "errors csv written to " << cli.get("errors") << '\n';
  }

  const std::string summary = result.stats.to_kv();
  std::cout << "\n# sweep summary\n" << summary;
  if (cli.has("summary")) {
    std::ofstream out(cli.get("summary"));
    PALS_CHECK_MSG(out.good(), "cannot open " << cli.get("summary"));
    out << summary;
    PALS_CHECK_MSG(out.good(), "write failure on " << cli.get("summary"));
    std::cout << "summary written to " << cli.get("summary") << '\n';
  }
  return result.has_errors() ? 3 : 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
