// pals_bench — the continuous-benchmarking observatory driver.
//
// Runs the registered macro-benchmark suite under the pals::obs::bench
// methodology (docs/bench.md) and emits one schema-versioned report:
//
//   pals_bench --suite [--out BENCH_suite.json] [--counters-out FILE]
//              [--history FILE] [--warmup N] [--repetitions N] [--jobs N]
//              [--filter SUBSTRING] [--quiet]
//   pals_bench --compare BASELINE.json CANDIDATE.json
//              [--timing-threshold 0.5] [--counters-only]
//   pals_bench --list
//
// Suite cases cover the hot paths ROADMAP item 3 will optimize: replay
// throughput, the full DVFS pipeline, the parallel sweep engine, the
// sharded sweep + journal merge, the online-controller replay, the
// static bounds analyzer, trace binary I/O, the trace linter and the
// serve daemon's in-process query path. Every case carries deterministic work
// counters from obs::default_registry() alongside its wall-clock
// statistics; --compare gates byte-exactly on the former and with a
// relative threshold on the latter. Exit codes: 0 ok, 1 regression /
// counter drift / non-deterministic counters, 2 usage.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "core/controllers.hpp"
#include "core/pipeline.hpp"
#include "lint/lint.hpp"
#include "obs/bench.hpp"
#include "obs/record.hpp"
#include "power/gearset.hpp"
#include "replay/replay.hpp"
#include "serve/cache.hpp"
#include "serve/query.hpp"
#include "shard/merge.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"
#include "util/json.hpp"

namespace pals {
namespace {

namespace bench = obs::bench;

/// The registered macro suite. Traces are prebuilt into `cache` so case
/// bodies measure the subsystem under test, not workload generation, and
/// so the deterministic counters are identical from the first repetition
/// (workload generation records no obs metrics, but trace parsing would).
const Trace& suite_trace(TraceCache& cache, const std::string& spec) {
  const WorkloadRef ref = resolve_workload(spec, 10);
  return cache.get(ref.key, ref.build);
}

std::vector<bench::Case> build_suite(TraceCache& cache, int jobs) {
  std::vector<bench::Case> cases;

  // Raw DES throughput: one replay of the paper's CG-32 instance.
  cases.push_back({"replay.throughput", [&cache](bench::Sink& sink) {
    const Trace& trace = suite_trace(cache, "CG-32");
    const auto start = std::chrono::steady_clock::now();
    const ReplayResult result = replay(trace, ReplayConfig{});
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds > 0.0)
      sink.sample("events_per_second",
                  static_cast<double>(result.simulated_events) / seconds);
  }});

  // The full power-analysis pipeline: baseline replay, assignment,
  // rescale, scaled replay, energy.
  cases.push_back({"pipeline.stages", [&cache](bench::Sink&) {
    const Trace& trace = suite_trace(cache, "CG-32");
    const PipelineConfig config = default_pipeline_config(paper_uniform(6));
    const PipelineResult result = run_pipeline(trace, config);
    if (result.scaled_time <= 0.0) throw Error("pipeline produced no result");
  }});

  // The parallel sweep engine over a small grid (2 workloads x 2 gear
  // sets); cells_per_second is the sweep-scaling headline number.
  cases.push_back({"sweep.cells", [&cache, jobs](bench::Sink& sink) {
    suite_trace(cache, "cg:16:0.9:4");  // pre-warm so rep 1 matches rep N
    suite_trace(cache, "mg:16:0.9:4");
    SweepGrid grid;
    grid.workloads = {"cg:16:0.9:4", "mg:16:0.9:4"};
    grid.gear_sets = {"uniform-6", "avg-discrete"};
    grid.iterations = 4;
    SweepOptions options;
    options.jobs = jobs;
    options.trace_cache = &cache;
    const SweepResult result = run_sweep(grid, options);
    if (result.stats.scenarios_per_second > 0.0)
      sink.sample("cells_per_second", result.stats.scenarios_per_second);
  }});

  // Sharded execution (docs/sharding.md): the same grid split across 3
  // in-process shard runs — each journaling its owned subset — plus the
  // shard-journal merge. merged_cells_per_second prices the sharding
  // overhead (partitioning, journal I/O, merge) against sweep.cells.
  cases.push_back({"sweep.sharded", [&cache](bench::Sink& sink) {
    suite_trace(cache, "cg:16:0.9:4");  // pre-warm so rep 1 matches rep N
    suite_trace(cache, "mg:16:0.9:4");
    SweepGrid grid;
    grid.workloads = {"cg:16:0.9:4", "mg:16:0.9:4"};
    grid.gear_sets = {"uniform-6", "avg-discrete"};
    grid.iterations = 4;
    const std::vector<Scenario> scenarios = grid.expand();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "pals_bench_sharded";
    std::filesystem::remove_all(dir);
    constexpr std::size_t kShards = 3;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::string> journals;
    SweepOptions options;
    options.jobs = 1;
    options.iterations = grid.iterations;
    options.trace_cache = &cache;
    options.shard_count = kShards;
    for (std::size_t s = 0; s < kShards; ++s) {
      const std::filesystem::path shard_dir =
          dir / ("shard-" + std::to_string(s));
      std::filesystem::create_directories(shard_dir);
      options.shard_index = s;
      options.journal_path = (shard_dir / "journal.palsj").string();
      run_sweep(scenarios, options);
      journals.push_back(options.journal_path);
    }
    const shard::MergeReport merged =
        shard::merge_shard_journals(scenarios, options, journals);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!merged.complete() || merged.rows.size() != scenarios.size())
      throw Error("sharded sweep merge came back incomplete");
    if (seconds > 0.0)
      sink.sample("merged_cells_per_second",
                  static_cast<double>(merged.rows.size()) / seconds);
  }});

  // Online-controller replay: the slack controller re-solving every
  // iteration of a drifting workload.
  cases.push_back({"controller.replay", [&cache](bench::Sink&) {
    const Trace& trace = suite_trace(cache, "amr-drift:16:0.9:8");
    PipelineConfig config = default_pipeline_config(paper_uniform(6));
    config.controller.kind = controller_by_name("slack");
    const PipelineResult result = run_pipeline(trace, config);
    if (result.scaled_time <= 0.0) throw Error("pipeline produced no result");
  }});

  // Static bounds analyzer (the sweep pruner's inner loop).
  cases.push_back({"bounds.analyze", [&cache](bench::Sink&) {
    const Trace& trace = suite_trace(cache, "CG-32");
    const PipelineConfig config = default_pipeline_config(paper_uniform(6));
    const bounds::ScenarioBounds result = bounds::analyze(trace, config);
    if (result.makespan.hi <= 0.0) throw Error("bounds produced no result");
  }});

  // Trace binary serialization round trip. The process-wide I/O stats
  // are reset first so the mirrored trace.io.* gauges are per-repetition.
  cases.push_back({"trace.binary_io", [&cache](bench::Sink&) {
    const Trace& trace = suite_trace(cache, "CG-32");
    reset_trace_io_stats();
    const std::vector<std::uint8_t> buffer = write_trace_binary(trace);
    const Trace restored = read_trace_binary(buffer);
    if (restored.total_events() != trace.total_events())
      throw Error("binary round trip lost events");
    obs::record_trace_io(obs::default_registry());
  }});

  // Static trace verification (all four lint passes, deadlock included).
  cases.push_back({"lint.trace", [&cache](bench::Sink&) {
    const Trace& trace = suite_trace(cache, "CG-32");
    const lint::LintReport report = lint::lint_trace(trace);
    if (report.has_errors()) throw Error("lint found errors in CG-32");
  }});

  // The serve daemon's query path (docs/serve.md), in process and without
  // the socket: a cold warm-cache fill (trace build + baseline replay)
  // plus four cache-hit queries. A fresh cache per repetition keeps the
  // deterministic replay counters identical from rep 1 to rep N; the
  // serve.* counters themselves are host metrics and excluded anyway.
  cases.push_back({"serve.query", [](bench::Sink& sink) {
    serve::WarmCache warm(0);
    serve::QueryEngineOptions options;
    options.default_iterations = 4;
    serve::QueryEngine engine(options, warm);
    const auto start = std::chrono::steady_clock::now();
    int queries = 0;
    for (const char* gear_set : {"uniform-6", "avg-discrete"}) {
      for (const double beta : {0.3, 0.5}) {
        serve::Request request;
        request.workload = "cg:16:0.9:4";
        request.gear_set = gear_set;
        request.beta = beta;
        const ExperimentRow row = engine.execute(request, 0.0);
        if (row.normalized_time <= 0.0)
          throw Error("serve query produced no result");
        ++queries;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds > 0.0)
      sink.sample("queries_per_second", queries / seconds);
  }});

  return cases;
}

std::vector<bench::Case> filter_cases(std::vector<bench::Case> cases,
                                      const std::string& needle) {
  if (needle.empty()) return cases;
  std::vector<bench::Case> kept;
  for (auto& c : cases)
    if (c.name.find(needle) != std::string::npos) kept.push_back(std::move(c));
  PALS_CHECK_MSG(!kept.empty(), "--filter '" << needle
                                             << "' matches no suite case");
  return kept;
}

void append_history(const std::string& path, const bench::Report& report) {
  DurableFile file = std::filesystem::exists(path)
                         ? DurableFile::open_append(path)
                         : DurableFile::create(path);
  file.append(report.history_line());
  file.sync();
}

int run_compare(const CliParser& cli) {
  const auto& paths = cli.positional();
  if (paths.size() != 2) {
    std::cerr << "error: --compare needs exactly two report paths "
                 "(baseline, candidate)\n";
    return exit_code(ToolExit::kUsage);
  }
  const bench::Report baseline = bench::report_from_file(paths[0]);
  const bench::Report candidate = bench::report_from_file(paths[1]);
  bench::CompareOptions options;
  options.timing_threshold = cli.get_double("timing-threshold", 0.5);
  options.counters_only = cli.get_flag("counters-only");
  const bench::CompareResult result =
      bench::compare_reports(baseline, candidate, options);
  std::cout << result.to_text();
  return result.ok ? exit_code(ToolExit::kOk) : exit_code(ToolExit::kError);
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("suite", "run the macro-benchmark suite");
  cli.add_flag("compare", "gate CANDIDATE.json against BASELINE.json");
  cli.add_flag("list", "list registered suite cases");
  cli.add_option("out", "full report path (--suite)", "BENCH_suite.json");
  cli.add_option("counters-out",
                 "also write the deterministic counters-only section here");
  cli.add_option("history", "append a one-line trajectory record here");
  cli.add_option("warmup", "discarded repetitions per case", "1");
  cli.add_option("repetitions", "measured repetitions per case", "5");
  cli.add_option("jobs", "worker threads for the sweep case", "1");
  cli.add_option("filter", "run only cases whose name contains this");
  cli.add_option("suite-name", "suite label recorded in the report", "macro");
  cli.add_option("timing-threshold",
                 "allowed relative timing drift (--compare)", "0.5");
  cli.add_flag("counters-only", "gate only deterministic counters (--compare)");
  cli.add_flag("quiet", "suppress per-case progress output");
  cli.parse(argc, argv);

  TraceCache cache;
  if (cli.get_flag("list")) {
    for (const bench::Case& c : build_suite(cache, 1)) std::cout << c.name << '\n';
    return exit_code(ToolExit::kOk);
  }
  if (cli.get_flag("compare")) return run_compare(cli);
  if (!cli.get_flag("suite")) {
    std::cerr << cli.usage("pals_bench")
              << "one of --suite, --compare or --list is required\n";
    return exit_code(ToolExit::kUsage);
  }

  bench::RunOptions options;
  options.methodology.warmup = static_cast<int>(cli.get_int("warmup", 1));
  options.methodology.repetitions =
      static_cast<int>(cli.get_int("repetitions", 5));
  const bool quiet = cli.get_flag("quiet");
  if (!quiet)
    options.log = [](const std::string& line) {
      std::cerr << "pals_bench: " << line << '\n';
    };

  const int jobs = static_cast<int>(cli.get_int("jobs", 1));
  const std::vector<bench::Case> cases =
      filter_cases(build_suite(cache, jobs), cli.get_or("filter", ""));

  bench::Report report = bench::run_suite(cli.get("suite-name"), cases, options);

  atomic_write_file(cli.get("out"), report.to_json());
  if (cli.has("counters-out"))
    atomic_write_file(cli.get("counters-out"), report.counters_json());
  if (cli.has("history")) append_history(cli.get("history"), report);

  if (!quiet) {
    for (const bench::CaseResult& c : report.cases) {
      const bench::MetricStats* wall = c.find_timing("wall_seconds");
      std::cerr << "pals_bench: " << c.name << ": median "
                << format_fixed(wall->median * 1e3, 3) << " ms (CV "
                << format_fixed(wall->cv, 3) << (c.unstable ? ", UNSTABLE" : "")
                << "), " << c.counters.size() << " counter(s)"
                << (c.counters_deterministic ? "" : " NON-DETERMINISTIC")
                << '\n';
    }
    std::cerr << "pals_bench: peak rss "
              << report.peak_rss_bytes / (1024ull * 1024ull) << " MiB; report "
              << cli.get("out") << '\n';
  }

  if (!report.counters_deterministic()) {
    std::cerr << "pals_bench: FAIL: deterministic counters drifted across "
                 "repetitions\n";
    return exit_code(ToolExit::kError);
  }
  return exit_code(ToolExit::kOk);
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return pals::exit_code(pals::ToolExit::kError);
  }
}
