// pals_faultgen — generate seeded fault campaigns for pals_sweep --faults.
//
//   pals_faultgen --seed=7 --ranks=32 --count=4 [--horizon=2.0]
//                 [--max-factor=8] [--max-jitter=1e-4] [--kinds=a,b,...]
//                 [--scenarios=N] [--out=plan.faults]
//   pals_faultgen --smoke
//
// The same (seed, options) always produce the same plan — a stress sweep
// under "100 random fault plans" is reproducible from 100 integers. The
// emitted text is the canonical plan grammar (docs/faults.md), so it can
// be fed back through --faults or checked into configs/.
//
// --smoke runs the generator's self-checks (determinism, seed
// sensitivity, grammar round-trip) and exits non-zero on any failure;
// ctest wires it in as smoke_pals_faultgen.
#include <iostream>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

fault::FaultKind kind_by_cli_name(const std::string& name) {
  if (name == "link_degrade") return fault::FaultKind::kLinkDegrade;
  if (name == "node_slowdown") return fault::FaultKind::kNodeSlowdown;
  if (name == "gear_stuck") return fault::FaultKind::kGearStuck;
  if (name == "msg_delay_jitter") return fault::FaultKind::kMsgDelayJitter;
  if (name == "scenario_flaky") return fault::FaultKind::kScenarioFlaky;
  if (name == "scenario_crash") return fault::FaultKind::kScenarioCrash;
  throw Error("unknown fault kind '" + name +
              "' (try link_degrade, node_slowdown, gear_stuck, "
              "msg_delay_jitter, scenario_flaky, scenario_crash)");
}

fault::CampaignOptions options_from_cli(const CliParser& cli) {
  fault::CampaignOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  options.ranks = static_cast<Rank>(cli.get_int("ranks", 32));
  options.count = static_cast<int>(cli.get_int("count", 4));
  options.horizon = cli.get_double("horizon", options.horizon);
  options.max_factor = cli.get_double("max-factor", options.max_factor);
  options.max_jitter = cli.get_double("max-jitter", options.max_jitter);
  options.scenarios =
      static_cast<std::size_t>(cli.get_int("scenarios", 0));
  if (cli.has("kinds")) {
    options.kinds.clear();
    for (const std::string& field : split(cli.get("kinds"), ','))
      options.kinds.push_back(kind_by_cli_name(std::string(trim(field))));
  }
  return options;
}

/// --smoke: the generator's own invariants, cheap enough for every ctest
/// run. Throws pals::Error on the first violated check.
void run_smoke() {
  fault::CampaignOptions options;
  options.seed = 7;
  options.ranks = 16;
  options.count = 8;
  options.scenarios = 12;
  options.kinds.push_back(fault::FaultKind::kScenarioFlaky);
  options.kinds.push_back(fault::FaultKind::kScenarioCrash);

  const fault::FaultPlan plan = fault::generate_campaign(options);
  PALS_CHECK_MSG(plan.specs.size() == 8, "campaign spec count mismatch");
  PALS_CHECK_MSG(plan.seed == 7, "campaign seed not propagated");

  // Determinism: the same options regenerate the identical plan.
  const fault::FaultPlan again = fault::generate_campaign(options);
  PALS_CHECK_MSG(plan.specs == again.specs && plan.seed == again.seed,
                 "campaign generation is not deterministic");

  // Seed sensitivity: a different seed changes the plan.
  fault::CampaignOptions other = options;
  other.seed = 8;
  const fault::FaultPlan different = fault::generate_campaign(other);
  PALS_CHECK_MSG(!(plan.specs == different.specs),
                 "campaigns for different seeds coincide");

  // Grammar round-trip: describe() re-parses to the same plan.
  const fault::FaultPlan reparsed = fault::FaultPlan::parse(plan.describe());
  PALS_CHECK_MSG(reparsed.seed == plan.seed,
                 "seed lost in grammar round-trip");
  PALS_CHECK_MSG(reparsed.specs.size() == plan.specs.size(),
                 "spec count lost in grammar round-trip");
  for (std::size_t i = 0; i < plan.specs.size(); ++i)
    PALS_CHECK_MSG(reparsed.specs[i].kind == plan.specs[i].kind &&
                       reparsed.specs[i].rank == plan.specs[i].rank,
                   "spec " << i << " mutated in grammar round-trip");

  // Without scenario cells, scenario kinds must be skipped, not emitted.
  fault::CampaignOptions no_cells = options;
  no_cells.scenarios = 0;
  const fault::FaultPlan simulated_only = fault::generate_campaign(no_cells);
  PALS_CHECK_MSG(!simulated_only.perturbs_scenarios(),
                 "scenario faults generated without scenario cells");

  std::cout << "pals_faultgen smoke: ok\n";
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("seed", "campaign seed (same seed => same plan)", "1");
  cli.add_option("ranks", "rank space faults are drawn from", "32");
  cli.add_option("count", "number of fault specs to generate", "4");
  cli.add_option("horizon", "fault start times drawn from [0, horizon) s",
                 "2.0");
  cli.add_option("max-factor", "degradation factors drawn from [1, max]",
                 "8.0");
  cli.add_option("max-jitter", "msg_delay_jitter upper bound (seconds)",
                 "0.0001");
  cli.add_option("kinds", "comma list of fault kinds to draw from "
                          "(default: the four simulated kinds)");
  cli.add_option("scenarios",
                 "grid cells scenario faults may target (0 = none)", "0");
  cli.add_option("out", "write the plan to a file instead of stdout");
  cli.add_flag("smoke", "run generator self-checks and exit");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_faultgen");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_faultgen");
    return 0;
  }
  if (cli.get_flag("smoke")) {
    run_smoke();
    return 0;
  }

  const fault::FaultPlan plan = generate_campaign(options_from_cli(cli));
  const std::string text = plan.describe() + "\n";
  if (cli.has("out")) {
    atomic_write_file(cli.get("out"), text);
    std::cout << "fault plan written to " << cli.get("out") << '\n';
  } else {
    std::cout << text;
  }
  return 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
