// pals_lint — static trace verifier CLI.
//
//   pals_lint trace.palst [more.palst ...] [--format=text|csv|json]
//             [--strict] [--max-diags=N] [--eager-threshold=BYTES]
//             [--no-deadlock] [--quiet]
//   pals_lint --workload=CG-32 [--iterations=N] ...
//   pals_lint --workload=CG-32 --bounds [--power-cap=P]
//             [--algorithm=max|avg] [--gears=uniform-6]
//             [--controller=static|dynamic_max|...] [--beta=0.5]
//
// Loads each input trace *without* Trace::validate() (so broken traces
// reach the linter intact), runs every lint pass (lint/lint.hpp) and
// prints the exhaustive diagnostic list. --json is shorthand for
// --format=json (one JSON object per input, one per line).
//
// Static bounds (docs/bounds.md): --bounds additionally abstract-
// interprets each *clean* input under the configured gear set /
// algorithm / controller and prints guaranteed pre-replay intervals on
// makespan and CPU energy, plus the provable floor on time-average
// power. With --power-cap=P, a cap below that floor is reported as
// statically infeasible and fails the run. Traces with lint errors skip
// the analysis (the abstract interpretation assumes a replayable trace).
//
// Exit codes:
//
//   0  every input linted clean (warnings allowed unless --strict) and,
//      with --bounds --power-cap, every cap is feasible
//   1  at least one input has errors (or warnings, with --strict), or a
//      power cap is statically infeasible
//   2  usage error or unreadable/unparseable input
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/experiments.hpp"
#include "core/controllers.hpp"
#include "lint/lint.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

struct Input {
  std::string label;
  Trace trace;
};

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("format", "output format: text, csv or json", "text");
  cli.add_option("max-diags", "keep at most N diagnostics (0 = all)", "0");
  cli.add_option("eager-threshold",
                 "eager/rendezvous protocol switch in bytes "
                 "(must match the replay platform for exact deadlock "
                 "equivalence)");
  cli.add_option("workload", "lint a generated benchmark instance "
                             "(registry name, e.g. CG-32) instead of a file");
  cli.add_option("iterations", "iterations for --workload", "10");
  cli.add_option("algorithm", "--bounds scenario: max or avg", "max");
  cli.add_option("gears", "--bounds scenario: gear set name", "uniform-6");
  cli.add_option("controller",
                 "--bounds scenario: static, dynamic_max, dynamic_avg, "
                 "slack or ewma", "static");
  cli.add_option("beta", "--bounds scenario: memory boundedness [0,1]",
                 "0.5");
  cli.add_option("power-cap",
                 "with --bounds: fail when the cap (a.u./s) is below the "
                 "provable average-power floor");
  cli.add_flag("strict", "treat warnings as fatal (exit 1)");
  cli.add_flag("no-deadlock", "skip the abstract-replay deadlock analysis");
  cli.add_flag("quiet", "print only the per-input summary line");
  cli.add_flag("json", "shorthand for --format=json");
  cli.add_flag("bounds", "run the static bounds analyzer on clean inputs "
                         "(docs/bounds.md)");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_lint");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_lint");
    return 0;
  }
  if (cli.positional().empty() && !cli.has("workload")) {
    std::cerr << "need at least one trace file or --workload\n"
              << cli.usage("pals_lint");
    return 2;
  }
  const std::string format =
      cli.get_flag("json") ? "json" : cli.get("format");
  if (format != "text" && format != "csv" && format != "json") {
    std::cerr << "unknown --format '" << format << "' (text, csv or json)\n";
    return 2;
  }
  if (cli.has("power-cap") && !cli.get_flag("bounds")) {
    std::cerr << "--power-cap requires --bounds\n";
    return 2;
  }

  lint::LintOptions options;
  options.max_diagnostics =
      static_cast<std::size_t>(cli.get_int("max-diags", 0));
  if (cli.has("eager-threshold"))
    options.eager_threshold =
        static_cast<Bytes>(cli.get_int("eager-threshold", 0));
  options.deadlock = !cli.get_flag("no-deadlock");

  std::vector<Input> inputs;
  for (const std::string& path : cli.positional()) {
    // No validate(): the linter reports what validate() would throw on.
    inputs.push_back(Input{path, read_trace_auto(path, /*validate=*/false)});
  }
  if (cli.has("workload")) {
    const std::string name = cli.get("workload");
    const auto iterations = static_cast<int>(cli.get_int("iterations", 10));
    const auto instance = benchmark_by_name(name, iterations);
    if (!instance.has_value()) {
      std::cerr << "unknown workload '" << name
                << "' (expected a Table 3 instance name like CG-32)\n";
      return 2;
    }
    inputs.push_back(Input{name, instance->make()});
  }

  // The pre-replay scenario the bounds analyzer interprets; built once,
  // shared by every input.
  std::optional<PipelineConfig> bounds_config;
  if (cli.get_flag("bounds")) {
    const Algorithm algorithm =
        cli.get("algorithm") == "avg" ? Algorithm::kAvg : Algorithm::kMax;
    bounds_config =
        default_pipeline_config(gear_set_by_name(cli.get("gears")), algorithm);
    bounds_config->controller.kind =
        controller_by_name(cli.get("controller"));
    set_beta(*bounds_config, cli.get_double("beta", 0.5));
  }

  bool failed = false;
  for (const Input& input : inputs) {
    const lint::LintReport report = lint::lint_trace(input.trace, options);
    const bool bad =
        report.has_errors() || (cli.get_flag("strict") && report.warnings > 0);
    failed = failed || bad;

    std::optional<bounds::ScenarioBounds> scenario;
    bool cap_infeasible = false;
    if (bounds_config.has_value() && !report.has_errors()) {
      scenario = bounds::analyze(input.trace, *bounds_config);
      if (cli.has("power-cap")) {
        cap_infeasible =
            cli.get_double("power-cap", 0.0) < scenario->min_average_power;
        failed = failed || cap_infeasible;
      }
    }

    if (inputs.size() > 1 && format == "text")
      std::cout << "== " << input.label << " ==\n";
    if (format == "csv") {
      std::cout << to_csv(report);
    } else if (format == "json") {
      // One self-contained object per input, one per line.
      std::cout << "{\"input\":\"" << json_escape(input.label)
                << "\",\"lint\":" << to_json(report);
      if (scenario.has_value()) {
        std::cout << ",\"bounds\":" << to_json(*scenario);
        if (cli.has("power-cap"))
          std::cout << ",\"power_cap\":{\"cap\":"
                    << format_roundtrip(cli.get_double("power-cap", 0.0))
                    << ",\"feasible\":" << (cap_infeasible ? "false" : "true")
                    << '}';
      }
      std::cout << "}\n";
    } else if (cli.get_flag("quiet")) {
      std::cout << input.label << ": " << report.summary() << '\n';
    } else {
      std::cout << to_text(report);
    }
    if (format != "json" && format != "csv" &&
        bounds_config.has_value()) {
      if (!scenario.has_value()) {
        std::cout << "bounds: skipped (trace has lint errors)\n";
      } else {
        std::cout << "bounds (" << cli.get("controller") << " over "
                  << bounds_config->algorithm.gear_set.describe() << "):\n"
                  << bounds::to_text(*scenario);
        if (cli.has("power-cap"))
          std::cout << "power cap " << cli.get("power-cap") << ": "
                    << (cap_infeasible
                            ? "STATICALLY INFEASIBLE (below provable floor)"
                            : "feasible")
                    << '\n';
      }
    }
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
