// pals_lint — static trace verifier CLI.
//
//   pals_lint trace.palst [more.palst ...] [--format=text|csv]
//             [--strict] [--max-diags=N] [--eager-threshold=BYTES]
//             [--no-deadlock] [--quiet]
//   pals_lint --workload=CG-32 [--iterations=N] ...
//
// Loads each input trace *without* Trace::validate() (so broken traces
// reach the linter intact), runs every lint pass (lint/lint.hpp) and
// prints the exhaustive diagnostic list. Exit codes:
//
//   0  every input linted clean (warnings allowed unless --strict)
//   1  at least one input has errors (or warnings, with --strict)
//   2  usage error or unreadable/unparseable input
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

struct Input {
  std::string label;
  Trace trace;
};

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("format", "output format: text or csv", "text");
  cli.add_option("max-diags", "keep at most N diagnostics (0 = all)", "0");
  cli.add_option("eager-threshold",
                 "eager/rendezvous protocol switch in bytes "
                 "(must match the replay platform for exact deadlock "
                 "equivalence)");
  cli.add_option("workload", "lint a generated benchmark instance "
                             "(registry name, e.g. CG-32) instead of a file");
  cli.add_option("iterations", "iterations for --workload", "10");
  cli.add_flag("strict", "treat warnings as fatal (exit 1)");
  cli.add_flag("no-deadlock", "skip the abstract-replay deadlock analysis");
  cli.add_flag("quiet", "print only the per-input summary line");
  cli.add_flag("help", "show usage");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage("pals_lint");
    return 2;
  }
  if (cli.get_flag("help")) {
    std::cout << cli.usage("pals_lint");
    return 0;
  }
  if (cli.positional().empty() && !cli.has("workload")) {
    std::cerr << "need at least one trace file or --workload\n"
              << cli.usage("pals_lint");
    return 2;
  }
  const std::string format = cli.get("format");
  if (format != "text" && format != "csv") {
    std::cerr << "unknown --format '" << format << "' (text or csv)\n";
    return 2;
  }

  lint::LintOptions options;
  options.max_diagnostics =
      static_cast<std::size_t>(cli.get_int("max-diags", 0));
  if (cli.has("eager-threshold"))
    options.eager_threshold =
        static_cast<Bytes>(cli.get_int("eager-threshold", 0));
  options.deadlock = !cli.get_flag("no-deadlock");

  std::vector<Input> inputs;
  for (const std::string& path : cli.positional()) {
    // No validate(): the linter reports what validate() would throw on.
    inputs.push_back(Input{path, read_trace_auto(path, /*validate=*/false)});
  }
  if (cli.has("workload")) {
    const std::string name = cli.get("workload");
    const auto iterations = static_cast<int>(cli.get_int("iterations", 10));
    const auto instance = benchmark_by_name(name, iterations);
    if (!instance.has_value()) {
      std::cerr << "unknown workload '" << name
                << "' (expected a Table 3 instance name like CG-32)\n";
      return 2;
    }
    inputs.push_back(Input{name, instance->make()});
  }

  bool failed = false;
  for (const Input& input : inputs) {
    const lint::LintReport report = lint::lint_trace(input.trace, options);
    const bool bad =
        report.has_errors() || (cli.get_flag("strict") && report.warnings > 0);
    failed = failed || bad;
    if (inputs.size() > 1 && format == "text")
      std::cout << "== " << input.label << " ==\n";
    if (format == "csv") {
      std::cout << to_csv(report);
    } else if (cli.get_flag("quiet")) {
      std::cout << input.label << ": " << report.summary() << '\n';
    } else {
      std::cout << to_text(report);
    }
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace pals

int main(int argc, char** argv) {
  try {
    return pals::run(argc, argv);
  } catch (const pals::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
