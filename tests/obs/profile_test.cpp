#include "analysis/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/experiments.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace pals {
namespace {

TEST(ProfileTest, ReportCountsAndThroughput) {
  obs::default_registry().reset();
  const Trace trace = resolve_workload("cg:8:0.85:3", 3).build();
  ProfileOptions options;
  options.repeat = 3;
  options.jobs = 2;
  const ProfileReport report = profile_pipeline(trace, options);

  EXPECT_EQ(report.pipelines, 3u);
  // Each pipeline runs a baseline and a scaled replay.
  EXPECT_EQ(report.replays, 6u);
  EXPECT_GT(report.simulated_events, 0u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.pipelines_per_second, 0.0);
  EXPECT_GT(report.events_per_second, 0.0);
  EXPECT_GE(report.pool.workers, 2u);
  EXPECT_GE(report.pool.tasks_executed, 3u);

  // Span deltas cover every pipeline phase, sorted by name.
  ASSERT_FALSE(report.phases.empty());
  EXPECT_TRUE(std::is_sorted(
      report.phases.begin(), report.phases.end(),
      [](const PhaseProfile& a, const PhaseProfile& b) {
        return a.name < b.name;
      }));
  const auto has_phase = [&](const std::string& name) {
    return std::any_of(report.phases.begin(), report.phases.end(),
                       [&](const PhaseProfile& p) { return p.name == name; });
  };
  EXPECT_TRUE(has_phase("pipeline.baseline_replay"));
  EXPECT_TRUE(has_phase("pipeline.scaled_replay"));
  EXPECT_TRUE(has_phase("pipeline.assignment"));
  EXPECT_TRUE(has_phase("pipeline.rescale"));
  obs::default_registry().reset();
}

TEST(ProfileTest, BenchJsonHasRequiredFields) {
  obs::default_registry().reset();
  const Trace trace = resolve_workload("cg:8:0.85:2", 2).build();
  const ProfileReport report = profile_pipeline(trace, ProfileOptions{});
  const JsonValue doc = json_parse(report.bench_json());
  obs::default_registry().reset();

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("benchmark")->string, "replay_pipeline");
  for (const char* field :
       {"pipelines", "replays", "simulated_events", "jobs", "wall_seconds",
        "scenarios_per_second", "pipelines_per_second", "events_per_second"}) {
    ASSERT_NE(doc.find(field), nullptr) << field;
    EXPECT_TRUE(doc.find(field)->is_number()) << field;
  }
  const JsonValue* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_object());
  const JsonValue* scaled = phases->find("pipeline.scaled_replay");
  ASSERT_NE(scaled, nullptr);
  EXPECT_TRUE(scaled->find("count")->is_number());
  EXPECT_TRUE(scaled->find("seconds")->is_number());
}

TEST(ProfileTest, RepeatZeroIsRejected) {
  const Trace trace = resolve_workload("cg:8:0.85:2", 2).build();
  ProfileOptions options;
  options.repeat = 0;
  EXPECT_ANY_THROW(profile_pipeline(trace, options));
}

}  // namespace
}  // namespace pals
