// The determinism contract of the observability layer: the simulation
// view of the metrics (and the simulated Chrome trace) must be
// byte-identical whether the work ran on 1 thread or 8, and across
// repeated runs. Host metrics (spans, thread-pool) are excluded by
// MetricsSnapshot::simulation_only().
#include <gtest/gtest.h>

#include <string>

#include "analysis/sweep.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "replay/replay.hpp"
#include "trace/io.hpp"

namespace pals {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.85:3", "mg:8:0.7:3"};
  grid.gear_sets = {"uniform-6"};
  grid.algorithms = {Algorithm::kMax, Algorithm::kAvg};
  grid.betas = {0.5};
  grid.iterations = 3;
  return grid;
}

/// Run the grid with `jobs` threads against a clean default registry and
/// return the simulation-only snapshot JSON.
std::string sim_metrics_for_jobs(int jobs) {
  obs::default_registry().reset();
  SweepOptions options;
  options.jobs = jobs;
  options.base.observe = true;  // spans on: they must NOT leak into the view
  run_sweep(small_grid(), options);
  return obs::default_registry().snapshot().simulation_only().to_json();
}

TEST(ObsDeterminismTest, SimulationMetricsIdenticalAcrossJobCounts) {
  const std::string serial = sim_metrics_for_jobs(1);
  const std::string parallel = sim_metrics_for_jobs(8);
  EXPECT_EQ(serial, parallel);
  // And across repeated runs at the same width.
  EXPECT_EQ(parallel, sim_metrics_for_jobs(8));
  obs::default_registry().reset();
}

TEST(ObsDeterminismTest, SimulationViewIsNonTrivialAndHostFree) {
  const std::string json = sim_metrics_for_jobs(2);
  obs::default_registry().reset();
  EXPECT_NE(json.find("replay.events"), std::string::npos);
  EXPECT_NE(json.find("sweep.scenarios_completed"), std::string::npos);
  EXPECT_EQ(json.find("span."), std::string::npos);
  EXPECT_EQ(json.find("pool."), std::string::npos);
  EXPECT_EQ(json.find("wall_ns"), std::string::npos);
}

TEST(ObsDeterminismTest, SimulatedChromeTraceIdenticalAcrossRuns) {
  const Trace ring = read_trace_auto(std::string(PALS_SOURCE_DIR) +
                                     "/examples/traces/ring.palst");
  obs::ChromeTraceWriter first;
  append_simulated_replay(first, replay(ring, ReplayConfig{}));
  obs::ChromeTraceWriter second;
  append_simulated_replay(second, replay(ring, ReplayConfig{}));
  EXPECT_EQ(first.to_json(), second.to_json());
}

}  // namespace
}  // namespace pals
