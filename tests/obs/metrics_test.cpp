#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace obs {
namespace {

TEST(MetricsTest, ToNanosRoundsToIntegerNanoseconds) {
  EXPECT_EQ(to_nanos(0.0), 0);
  EXPECT_EQ(to_nanos(1.5), 1'500'000'000);
  EXPECT_EQ(to_nanos(1e-9), 1);
  EXPECT_EQ(to_nanos(0.1), 100'000'000);
}

TEST(MetricsTest, CounterAccumulates) {
  Registry reg;
  Counter& c = reg.counter("replay.events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("replay.events"), &c);  // find-or-create
}

TEST(MetricsTest, GaugeSetAddAndUpdateMax) {
  Registry reg;
  Gauge& g = reg.gauge("sim.queue_peak");
  g.set(10);
  g.update_max(5);
  EXPECT_EQ(g.value(), 10);
  g.update_max(99);
  EXPECT_EQ(g.value(), 99);
  g.add(1);
  EXPECT_EQ(g.value(), 100);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Registry reg;
  Histogram& h = reg.histogram("burst", {1.0, 10.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // le=1 (inclusive upper bound)
  h.observe(5.0);   // le=10
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(MetricsTest, HistogramRejectsUnsortedBounds) {
  Registry reg;
  EXPECT_THROW(reg.histogram("bad", {10.0, 1.0}), Error);
  EXPECT_THROW(reg.histogram("dup", {1.0, 1.0}), Error);
}

TEST(MetricsTest, KindClashThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x", {1.0}), Error);
  reg.histogram("h", {1.0});
  EXPECT_THROW(reg.histogram("h", {2.0}), Error);  // different bounds
  EXPECT_NO_THROW(reg.histogram("h", {1.0}));      // same bounds is fine
}

TEST(MetricsTest, SnapshotIsKeySorted) {
  Registry reg;
  reg.counter("zebra").add(1);
  reg.gauge("alpha").set(2);
  reg.counter("mid").add(3);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "alpha");
  EXPECT_EQ(snap.metrics[1].name, "mid");
  EXPECT_EQ(snap.metrics[2].name, "zebra");
  EXPECT_EQ(snap.value_of("mid"), 3u);
  EXPECT_EQ(snap.value_of("absent"), 0u);
  EXPECT_NE(snap.find("zebra"), nullptr);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(MetricsTest, IsHostMetricClassification) {
  EXPECT_TRUE(is_host_metric("span.pipeline.rescale.count"));
  EXPECT_TRUE(is_host_metric("pool.tasks_stolen"));
  EXPECT_TRUE(is_host_metric("host.anything"));
  EXPECT_TRUE(is_host_metric("sweep.baselines.wall_ns"));
  EXPECT_FALSE(is_host_metric("replay.events"));
  EXPECT_FALSE(is_host_metric("sim.queue_peak"));
  EXPECT_FALSE(is_host_metric("trace.io.bytes_read"));
}

TEST(MetricsTest, SimulationOnlyDropsHostMetrics) {
  Registry reg;
  reg.counter("replay.events").add(7);
  reg.counter("pool.tasks_executed").add(3);
  reg.gauge("span.x.wall_ns").set(123);
  const MetricsSnapshot sim = reg.snapshot().simulation_only();
  ASSERT_EQ(sim.metrics.size(), 1u);
  EXPECT_EQ(sim.metrics[0].name, "replay.events");
}

TEST(MetricsTest, JsonRendererIsStableAndParseable) {
  Registry reg;
  reg.counter("a.count").add(2);
  reg.gauge("b.gauge").set(-5);
  reg.histogram("c.hist", {0.5}).observe(0.25);
  const std::string json = reg.snapshot().to_json();
  EXPECT_EQ(json, reg.snapshot().to_json());  // deterministic
  EXPECT_NE(json.find("\"name\":\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
}

TEST(MetricsTest, CsvRendererHasHeaderAndRows) {
  Registry reg;
  reg.counter("events").add(9);
  const std::string csv = reg.snapshot().to_csv();
  EXPECT_TRUE(csv.starts_with("name,kind,value,count,sum,buckets\n"));
  EXPECT_NE(csv.find("events,counter,9"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesInPlaceKeepingReferences) {
  Registry reg;
  Counter& c = reg.counter("n");
  c.add(5);
  reg.record_span({"work", "", 0, 0, 100});
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(reg.spans().empty());
  c.add(1);
  EXPECT_EQ(reg.snapshot().value_of("n"), 1u);
}

TEST(MetricsTest, RecordSpanBumpsDerivedMetrics) {
  Registry reg;
  reg.record_span({"phase", "detail", 0, 1'000, 4'000});
  reg.record_span({"phase", "", 1, 2'000, 3'000});
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value_of("span.phase.count"), 2u);
  EXPECT_EQ(snap.value_of("span.phase.wall_ns"), 4'000u);
  ASSERT_EQ(reg.spans().size(), 2u);
  EXPECT_EQ(reg.spans()[0].detail, "detail");
}

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  Registry reg;
  Counter& c = reg.counter("hits");
  Gauge& peak = reg.gauge("peak");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (int i = 0; i < kAddsPerTask; ++i) c.add(1);
    peak.update_max(static_cast<std::int64_t>(task));
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(peak.value(), kTasks - 1);
}

}  // namespace
}  // namespace obs
}  // namespace pals
