#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "replay/replay.hpp"
#include "trace/io.hpp"
#include "util/json.hpp"

namespace pals {
namespace obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ring_path() {
  return std::string(PALS_SOURCE_DIR) + "/examples/traces/ring.palst";
}

TEST(ChromeTraceWriterTest, EmitsWellFormedEventRecords) {
  ChromeTraceWriter writer;
  writer.process_name(1, "host");
  writer.thread_name(1, 0, "main");
  writer.complete_event(1, 0, "phase", 1.5, 2.25, {{"detail", "x"}});
  writer.flow_begin(1, 0, "msg", 1.0, 42);
  writer.flow_end(1, 0, "msg", 3.0, 42);
  EXPECT_EQ(writer.event_count(), 5u);

  const JsonValue doc = json_parse(writer.to_json());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 5u);
  EXPECT_EQ(events->array[0].find("ph")->string, "M");
  const JsonValue& complete = events->array[2];
  EXPECT_EQ(complete.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(complete.find("ts")->number, 1.5);
  EXPECT_DOUBLE_EQ(complete.find("dur")->number, 2.25);
  EXPECT_EQ(complete.find("args")->find("detail")->string, "x");
  EXPECT_EQ(events->array[3].find("ph")->string, "s");
  const JsonValue& flow_end = events->array[4];
  EXPECT_EQ(flow_end.find("ph")->string, "f");
  EXPECT_EQ(flow_end.find("bp")->string, "e");
  EXPECT_DOUBLE_EQ(flow_end.find("id")->number, 42.0);
}

TEST(ChromeTraceTest, SimulatedRingReplayMatchesGolden) {
  const Trace ring = read_trace_auto(ring_path());
  const ReplayResult result = replay(ring, ReplayConfig{});
  ChromeTraceWriter writer;
  append_simulated_replay(writer, result);
  const std::string golden = read_file(std::string(PALS_SOURCE_DIR) +
                                       "/golden/ring_chrome_trace.json");
  EXPECT_EQ(writer.to_json(), golden)
      << "simulated Chrome trace drifted from golden/ring_chrome_trace.json"
         " — if intentional, regenerate with update_golden";
}

TEST(ChromeTraceTest, SimulatedReplayHasRankTracksAndFlows) {
  const Trace ring = read_trace_auto(ring_path());
  const ReplayResult result = replay(ring, ReplayConfig{});
  ChromeTraceWriter writer;
  append_simulated_replay(writer, result);
  const JsonValue doc = json_parse(writer.to_json());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  int rank_tracks = 0;
  int durations = 0;
  int flow_begins = 0;
  int flow_ends = 0;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.find("ph")->string;
    if (ph == "M" && e.find("name")->string == "thread_name" &&
        e.find("args")->find("name")->string.starts_with("rank "))
      ++rank_tracks;
    if (ph == "X") ++durations;
    if (ph == "s") ++flow_begins;
    if (ph == "f") ++flow_ends;
  }
  EXPECT_EQ(rank_tracks, ring.n_ranks());
  EXPECT_GT(durations, 0);
  EXPECT_EQ(flow_begins, flow_ends);
  EXPECT_GE(flow_begins, 1);
  EXPECT_EQ(static_cast<std::size_t>(flow_begins),
            result.messages.size());
}

TEST(ChromeTraceTest, FlowIdsAreNamespacedByPid) {
  const Trace ring = read_trace_auto(ring_path());
  const ReplayResult result = replay(ring, ReplayConfig{});
  ChromeTraceWriter writer;
  SimulatedTraceOptions a;
  a.pid = 2;
  SimulatedTraceOptions b;
  b.pid = 3;
  append_simulated_replay(writer, result, a);
  append_simulated_replay(writer, result, b);
  const JsonValue doc = json_parse(writer.to_json());
  double min_id_pid3 = -1.0;
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    if (e.find("ph") == nullptr || e.find("ph")->string != "s") continue;
    if (e.find("pid")->number == 3.0) {
      const double id = e.find("id")->number;
      if (min_id_pid3 < 0 || id < min_id_pid3) min_id_pid3 = id;
    }
  }
  // pid-3 flow ids live above (3 << 32) so they never collide with pid 2.
  EXPECT_GE(min_id_pid3, 3.0 * 4294967296.0);
}

TEST(ChromeTraceTest, HostSpansBecomeDurationEvents) {
  Registry reg;
  {
    PALS_SPAN_DETAIL("phase.one", &reg, "CG-32");
    PALS_SPAN("phase.two", &reg);
  }
  ChromeTraceWriter writer;
  append_host_spans(writer, reg, /*pid=*/1, "host");
  const JsonValue doc = json_parse(writer.to_json());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_process_meta = false;
  bool saw_detail = false;
  int durations = 0;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.find("ph")->string;
    if (ph == "M" && e.find("name")->string == "process_name" &&
        e.find("args")->find("name")->string == "host")
      saw_process_meta = true;
    if (ph == "X") {
      ++durations;
      const JsonValue* args = e.find("args");
      if (args != nullptr && args->find("detail") != nullptr &&
          args->find("detail")->string == "CG-32")
        saw_detail = true;
    }
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_TRUE(saw_detail);
  EXPECT_EQ(durations, 2);
}

}  // namespace
}  // namespace obs
}  // namespace pals
