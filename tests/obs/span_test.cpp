#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <set>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace obs {
namespace {

TEST(SpanTest, RecordsNameDetailAndDuration) {
  Registry reg;
  {
    SpanTimer span(reg, "work", "unit 7");
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].detail, "unit 7");
  EXPECT_GE(spans[0].end_ns, spans[0].begin_ns);
  EXPECT_EQ(reg.snapshot().value_of("span.work.count"), 1u);
}

TEST(SpanTest, NullRegistryIsANoOp) {
  SpanTimer span(nullptr, "ignored");
  SUCCEED();  // must not crash or allocate a registry
}

TEST(SpanTest, MacroScopesNestAndStack) {
  Registry reg;
  {
    PALS_SPAN("outer", &reg);
    {
      PALS_SPAN("inner", &reg);
      PALS_SPAN_DETAIL("inner_detail", &reg, "d");
    }
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Destruction order: innermost spans are recorded first.
  EXPECT_EQ(spans[0].name, "inner_detail");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(reg.snapshot().value_of("span.outer.count"), 1u);
}

TEST(SpanTest, ConcurrentSpansGetDistinctThreadOrdinals) {
  Registry reg;
  {
    ThreadPool pool(4);
    pool.parallel_for(32, [&](std::size_t i) {
      PALS_SPAN_DETAIL("task", &reg, std::to_string(i));
    });
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 32u);
  std::set<int> threads;
  std::set<std::string> details;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.name, "task");
    threads.insert(s.thread);
    details.insert(s.detail);
  }
  EXPECT_EQ(details.size(), 32u);           // every task recorded once
  EXPECT_LE(threads.size(), 5u);            // at most pool width + caller
  EXPECT_EQ(reg.snapshot().value_of("span.task.count"), 32u);
}

}  // namespace
}  // namespace obs
}  // namespace pals
