// The unified benchmark-run subsystem (obs/bench.hpp): methodology
// statistics, deterministic-counter capture, JSON round trip, compare
// gating, and the pals_bench binary end to end.
#include "obs/bench.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace pals {
namespace obs {
namespace bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Statistics

TEST(BenchStats, SummarizeMetricMatchesHandComputedValues) {
  const MetricStats s =
      summarize_metric("wall_seconds", {4.0, 1.0, 2.0, 3.0, 100.0}, 0.10);
  EXPECT_EQ(s.name, "wall_seconds");
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  // Deviations from the median 3: {1, 2, 1, 0, 97} -> median 1.
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_GT(s.p95, 4.0);   // interpolates toward the outlier
  EXPECT_TRUE(s.unstable);  // CV far above 0.10
  EXPECT_EQ(s.samples.size(), 5u);
}

TEST(BenchStats, StableRunIsNotFlagged) {
  const MetricStats s = summarize_metric("wall_seconds", {1.0, 1.0, 1.0}, 0.10);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_FALSE(s.unstable);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
}

TEST(BenchStats, EmptySamplesThrow) {
  EXPECT_THROW(summarize_metric("x", {}, 0.1), Error);
}

// ---------------------------------------------------------------------------
// Runner

/// A deterministic two-case suite against a scoped registry.
Report run_test_suite(Registry& registry, int repetitions = 3) {
  std::vector<Case> cases;
  cases.push_back({"unit.alpha", [&registry](Sink& sink) {
    registry.counter("unit.events").add(42);
    registry.gauge("unit.queue_peak").update_max(7);
    sink.sample("events_per_second", 1000.0);
  }});
  cases.push_back({"unit.beta", [&registry](Sink&) {
    registry.counter("unit.events").add(5);
  }});
  RunOptions options;
  options.registry = &registry;
  options.methodology.repetitions = repetitions;
  options.methodology.warmup = 1;
  return run_suite("unit", cases, options);
}

TEST(BenchRunner, RecordsAbsolutePerRepetitionCounters) {
  Registry registry;
  const Report report = run_test_suite(registry);
  ASSERT_EQ(report.cases.size(), 2u);
  EXPECT_EQ(report.suite, "unit");
  EXPECT_EQ(report.schema_version, kSchemaVersion);

  const CaseResult* alpha = report.find("unit.alpha");
  ASSERT_NE(alpha, nullptr);
  // The registry is reset before every repetition, so the counter holds
  // one repetition's work, not warmup + N accumulations.
  const CounterValue* events = alpha->find_counter("unit.events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value, 42);
  const CounterValue* peak = alpha->find_counter("unit.queue_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->value, 7);
  EXPECT_TRUE(alpha->counters_deterministic);
  EXPECT_TRUE(report.counters_deterministic());

  // Runner-measured wall_seconds plus the sink metric, each with one
  // sample per repetition.
  ASSERT_NE(alpha->find_timing("wall_seconds"), nullptr);
  const MetricStats* rate = alpha->find_timing("events_per_second");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->samples.size(), 3u);
  EXPECT_DOUBLE_EQ(rate->median, 1000.0);

  const CaseResult* beta = report.find("unit.beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->find_counter("unit.events")->value, 5);
  EXPECT_EQ(beta->find_timing("events_per_second"), nullptr);
}

TEST(BenchRunner, HostMetricsAreExcludedFromCounters) {
  Registry registry;
  std::vector<Case> cases;
  cases.push_back({"unit.host", [&registry](Sink&) {
    registry.counter("unit.events").add(1);
    record_peak_rss(registry);  // host.peak_rss_bytes gauge
  }});
  RunOptions options;
  options.registry = &registry;
  const Report report = run_suite("unit", cases, options);
  const CaseResult* c = report.find("unit.host");
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c->find_counter("unit.events"), nullptr);
  EXPECT_EQ(c->find_counter("host.peak_rss_bytes"), nullptr);
  EXPECT_TRUE(c->counters_deterministic);
}

TEST(BenchRunner, FlagsNonDeterministicCounters) {
  Registry registry;
  int calls = 0;
  std::vector<Case> cases;
  cases.push_back({"unit.drift", [&registry, &calls](Sink&) {
    registry.counter("unit.events").add(static_cast<std::uint64_t>(++calls));
  }});
  RunOptions options;
  options.registry = &registry;
  options.methodology.warmup = 0;
  options.methodology.repetitions = 3;
  const Report report = run_suite("unit", cases, options);
  EXPECT_FALSE(report.cases.front().counters_deterministic);
  EXPECT_FALSE(report.counters_deterministic());
}

TEST(BenchRunner, InconsistentSinkMetricSetThrows) {
  Registry registry;
  int calls = 0;
  std::vector<Case> cases;
  cases.push_back({"unit.flaky_sink", [&calls](Sink& sink) {
    if (++calls == 1) sink.sample("events_per_second", 1.0);
  }});
  RunOptions options;
  options.registry = &registry;
  options.methodology.warmup = 0;
  options.methodology.repetitions = 2;
  EXPECT_THROW(run_suite("unit", cases, options), Error);
}

TEST(BenchRunner, DuplicateCaseNamesThrow) {
  Registry registry;
  std::vector<Case> cases;
  cases.push_back({"unit.same", [](Sink&) {}});
  cases.push_back({"unit.same", [](Sink&) {}});
  RunOptions options;
  options.registry = &registry;
  EXPECT_THROW(run_suite("unit", cases, options), Error);
}

TEST(BenchRunner, SinkRejectsWallSecondsAndDuplicates) {
  Sink sink;
  EXPECT_THROW(sink.sample("wall_seconds", 1.0), Error);
  sink.sample("events_per_second", 1.0);
  EXPECT_THROW(sink.sample("events_per_second", 2.0), Error);
}

// ---------------------------------------------------------------------------
// Schema round trip and byte stability

TEST(BenchSchema, JsonRoundTripIsExact) {
  Registry registry;
  const Report report = run_test_suite(registry);
  const Report back = report_from_json(json_parse(report.to_json()));

  EXPECT_EQ(back.schema_version, report.schema_version);
  EXPECT_EQ(back.suite, report.suite);
  EXPECT_EQ(back.methodology, report.methodology);
  EXPECT_EQ(back.env, report.env);
  EXPECT_EQ(back.peak_rss_bytes, report.peak_rss_bytes);
  ASSERT_EQ(back.cases.size(), report.cases.size());
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    EXPECT_EQ(back.cases[i].name, report.cases[i].name);
    // format_roundtrip rendering makes the doubles bit-exact, so the
    // default operator== on the stats blocks must hold.
    EXPECT_EQ(back.cases[i].timing, report.cases[i].timing);
    EXPECT_EQ(back.cases[i].counters, report.cases[i].counters);
    EXPECT_EQ(back.cases[i].counters_deterministic,
              report.cases[i].counters_deterministic);
    EXPECT_EQ(back.cases[i].unstable, report.cases[i].unstable);
  }
  // And the re-serialization is byte-identical.
  EXPECT_EQ(back.to_json(), report.to_json());
}

TEST(BenchSchema, CountersJsonRoundTripsAndIsByteIdenticalAcrossRuns) {
  Registry registry;
  const Report first = run_test_suite(registry);
  const Report second = run_test_suite(registry);
  // Back-to-back runs: noisy timings differ, the deterministic section
  // must not.
  EXPECT_EQ(first.counters_json(), second.counters_json());

  const Report counters = report_from_json(json_parse(first.counters_json()));
  EXPECT_EQ(counters.suite, "unit");
  ASSERT_EQ(counters.cases.size(), 2u);
  EXPECT_EQ(counters.cases[0].counters, first.cases[0].counters);
  EXPECT_TRUE(counters.cases[0].timing.empty());
}

TEST(BenchSchema, MalformedDocumentsNameTheOffendingKey) {
  EXPECT_THROW(report_from_json(json_parse("[]")), Error);
  EXPECT_THROW(report_from_json(json_parse("{\"schema\":\"nope\"}")), Error);
  try {
    report_from_json(json_parse(
        "{\"schema\":\"pals-bench-counters\",\"schema_version\":1}"));
    FAIL() << "expected a structural error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("suite"), std::string::npos);
  }
}

TEST(BenchSchema, HistoryLineCarriesShaSuiteAndMedians) {
  Registry registry;
  const Report report = run_test_suite(registry);
  const std::string line = report.history_line();
  EXPECT_EQ(line.back(), '\n');
  const JsonValue parsed = json_parse(line);
  EXPECT_EQ(parsed.find("schema")->string, "pals-bench-history");
  EXPECT_EQ(parsed.find("git_sha")->string, report.env.git_sha);
  const JsonValue* cases = parsed.find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_NE(cases->find("unit.alpha"), nullptr);
  EXPECT_GE(cases->find("unit.alpha")->find("wall_seconds_median")->number,
            0.0);
}

// ---------------------------------------------------------------------------
// Compare gating

TEST(BenchCompare, IdenticalReportsPass) {
  Registry registry;
  const Report report = run_test_suite(registry);
  const CompareResult result = compare_reports(report, report);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.failures.empty());
}

TEST(BenchCompare, DetectsInjectedTimingRegression) {
  Registry registry;
  const Report baseline = run_test_suite(registry);
  Report candidate = baseline;
  for (CaseResult& c : candidate.cases)
    for (MetricStats& m : c.timing)
      if (m.name == "wall_seconds") m.median *= 2.0;  // 2x slower

  const CompareResult result = compare_reports(baseline, candidate);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().what.find("timing regression"),
            std::string::npos);
  // The same drift passes a counters-only gate.
  CompareOptions counters_only;
  counters_only.counters_only = true;
  EXPECT_TRUE(compare_reports(baseline, candidate, counters_only).ok);
}

TEST(BenchCompare, HigherIsBetterMetricsGateDownward) {
  Registry registry;
  const Report baseline = run_test_suite(registry);
  Report candidate = baseline;
  for (MetricStats& m : candidate.cases.front().timing)
    if (m.name == "events_per_second") m.median /= 2.0;  // throughput halved
  EXPECT_FALSE(compare_reports(baseline, candidate).ok);

  // A 2x throughput *improvement* is not a failure.
  Report faster = baseline;
  for (MetricStats& m : faster.cases.front().timing)
    if (m.name == "events_per_second") m.median *= 2.0;
  EXPECT_TRUE(compare_reports(baseline, faster).ok);
}

TEST(BenchCompare, DetectsSingleCounterDrift) {
  Registry registry;
  const Report baseline = run_test_suite(registry);
  Report candidate = baseline;
  candidate.cases.front().counters.front().value += 1;

  for (const bool counters_only : {false, true}) {
    CompareOptions options;
    options.counters_only = counters_only;
    const CompareResult result =
        compare_reports(baseline, candidate, options);
    EXPECT_FALSE(result.ok);
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_NE(result.failures.front().what.find("drifted"),
              std::string::npos);
  }
}

TEST(BenchCompare, DetectsMissingAndExtraCasesAndCounters) {
  Registry registry;
  const Report baseline = run_test_suite(registry);

  Report missing_case = baseline;
  missing_case.cases.pop_back();
  EXPECT_FALSE(compare_reports(baseline, missing_case).ok);
  EXPECT_FALSE(compare_reports(missing_case, baseline).ok);

  Report missing_counter = baseline;
  missing_counter.cases.front().counters.pop_back();
  EXPECT_FALSE(compare_reports(baseline, missing_counter).ok);
  EXPECT_FALSE(compare_reports(missing_counter, baseline).ok);
}

TEST(BenchCompare, SchemaVersionMismatchFailsHard) {
  Registry registry;
  const Report baseline = run_test_suite(registry);
  Report candidate = baseline;
  candidate.schema_version = kSchemaVersion + 1;
  const CompareResult result = compare_reports(baseline, candidate);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.to_text().find("schema_version"), std::string::npos);
}

TEST(BenchCompare, NonDeterministicCountersFailTheGate) {
  Registry registry;
  const Report baseline = run_test_suite(registry);
  Report candidate = baseline;
  candidate.cases.front().counters_deterministic = false;
  EXPECT_FALSE(compare_reports(baseline, candidate).ok);
}

// ---------------------------------------------------------------------------
// Peak RSS

TEST(BenchPeakRss, GaugeIsPositiveAndHostScoped) {
  EXPECT_GT(peak_rss_bytes(), 0u);
  Registry registry;
  record_peak_rss(registry);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_GT(snapshot.value_of("host.peak_rss_bytes"), 0u);
  EXPECT_TRUE(is_host_metric("host.peak_rss_bytes"));
  EXPECT_EQ(snapshot.simulation_only().find("host.peak_rss_bytes"), nullptr);
}

// ---------------------------------------------------------------------------
// The pals_bench binary end to end

int run_bench(const std::string& args) {
  const std::string command =
      std::string(PALS_BENCH_BIN) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

TEST(BenchBinary, ReducedSuiteIsCounterDeterministicAndSelfComparesClean) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pals_bench_test").string();
  std::filesystem::remove_all(dir);  // stale artifacts from earlier runs
  std::filesystem::create_directories(dir);
  const std::string fast = " --suite --warmup 0 --repetitions 1 "
                           "--filter lint --quiet";
  ASSERT_EQ(run_bench(fast + " --out " + dir + "/a.json --counters-out " +
                      dir + "/ac.json --history " + dir + "/history.jsonl"),
            0);
  ASSERT_EQ(run_bench(fast + " --out " + dir + "/b.json --counters-out " +
                      dir + "/bc.json --history " + dir + "/history.jsonl"),
            0);

  // Byte-identical deterministic sections across two consecutive runs.
  const std::string counters = slurp(dir + "/ac.json");
  EXPECT_FALSE(counters.empty());
  EXPECT_EQ(counters, slurp(dir + "/bc.json"));

  // --history appended one record per run.
  const std::string history = slurp(dir + "/history.jsonl");
  EXPECT_EQ(std::count(history.begin(), history.end(), '\n'), 2);

  // A report gates cleanly against itself, full and counters-only.
  EXPECT_EQ(run_bench("--compare " + dir + "/a.json " + dir + "/a.json"), 0);
  EXPECT_EQ(run_bench("--compare --counters-only " + dir + "/ac.json " + dir +
                      "/bc.json"),
            0);

  // An injected counter drift exits nonzero.
  std::string tampered = counters;
  const std::string needle = "\"lint.runs\":1";
  const std::size_t at = tampered.find(needle);
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, needle.size(), "\"lint.runs\":2");
  atomic_write_file(dir + "/tampered.json", tampered);
  EXPECT_NE(run_bench("--compare --counters-only " + dir + "/ac.json " + dir +
                      "/tampered.json"),
            0);
}

}  // namespace
}  // namespace bench
}  // namespace obs
}  // namespace pals
