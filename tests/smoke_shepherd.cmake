# End-to-end byte-identity check for sharded sweeps (docs/sharding.md):
# the same grid run unsharded at --jobs=1, supervised at 2 and 5 shards,
# and supervised with an injected mid-run SIGKILL must all produce
# byte-identical results.csv / errors.csv.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}")
  endif()
endfunction()

function(expect_same_artifacts dir label)
  foreach(artifact results.csv errors.csv)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${WORK_DIR}/shepherd_ref/${artifact} ${dir}/${artifact}
                    RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR "${label}: ${artifact} differs from the "
                          "unsharded --jobs=1 reference")
    endif()
  endforeach()
endfunction()

# Unsharded reference.
file(REMOVE_RECURSE ${WORK_DIR}/shepherd_ref)
run_step(${PALS_SWEEP} --grid=${GRID} --jobs=1 --quiet
         --run-dir=${WORK_DIR}/shepherd_ref)

# Clean supervised runs at two shard counts.
foreach(shards 2 5)
  file(REMOVE_RECURSE ${WORK_DIR}/shepherd_s${shards})
  run_step(${PALS_SHEPHERD} --grid=${GRID} --shards=${shards} --jobs=1
           --quiet --sweep-bin=${PALS_SWEEP}
           --run-dir=${WORK_DIR}/shepherd_s${shards})
  expect_same_artifacts(${WORK_DIR}/shepherd_s${shards} "${shards} shards")
endforeach()

# Chaos leg: SIGKILL shard 1 mid-run; the supervisor must restart it
# with --resume and still merge byte-identical artifacts.
file(REMOVE_RECURSE ${WORK_DIR}/shepherd_chaos)
run_step(${PALS_SHEPHERD} --grid=${GRID} --shards=3 --jobs=1 --quiet
         --sweep-bin=${PALS_SWEEP} --heartbeat=0.05
         --chaos-kill=1:1 --max-shard-restarts=2
         --backoff-base=0.01 --backoff-cap=0.05
         --run-dir=${WORK_DIR}/shepherd_chaos)
expect_same_artifacts(${WORK_DIR}/shepherd_chaos "chaos restart")
