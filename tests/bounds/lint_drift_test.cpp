// Drift guard for the lint diagnostic vocabulary: every lint::Code must
// have a to_string spelling, a severity, and a documented row in
// docs/lint.md. The enumerator count is parsed out of diagnostic.hpp
// itself, so adding a code without extending kAllCodes below (and the
// docs table) fails here instead of silently shipping an undocumented
// diagnostic.
#include "lint/diagnostic.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace pals {
namespace lint {
namespace {

const std::vector<Code> kAllCodes = {
    Code::kUnmatchedSend,
    Code::kUnmatchedRecv,
    Code::kBytesMismatch,
    Code::kPeerOutOfRange,
    Code::kSelfMessage,
    Code::kCollectiveCountMismatch,
    Code::kCollectiveKindMismatch,
    Code::kCollectiveRootMismatch,
    Code::kCollectiveRootOutOfRange,
    Code::kRequestAlreadyOpen,
    Code::kWaitUnknownRequest,
    Code::kRequestNeverWaited,
    Code::kWaitAllNoPending,
    Code::kNonFiniteDuration,
    Code::kNegativeDuration,
    Code::kZeroDuration,
    Code::kHugeDuration,
    Code::kEmptyIteration,
    Code::kUnbalancedMarkers,
    Code::kEmptyRank,
    Code::kEmptyTrace,
    Code::kDeadlock,
    Code::kBoundViolationTime,
    Code::kBoundViolationEnergy,
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Count the enumerators of `enum class Code { ... }` in diagnostic.hpp.
std::size_t enumerators_in_header() {
  const std::string text =
      read_file(PALS_SOURCE_DIR "/src/lint/diagnostic.hpp");
  const std::size_t begin = text.find("enum class Code {");
  const std::size_t end = text.find("};", begin);
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  std::size_t count = 0;
  std::istringstream lines(text.substr(begin, end - begin));
  for (std::string line; std::getline(lines, line);) {
    const std::size_t k = line.find_first_not_of(" \t");
    if (k != std::string::npos && line[k] == 'k' &&
        line.find(',') != std::string::npos)
      ++count;
  }
  return count;
}

TEST(LintCodeDrift, TestListCoversTheWholeEnum) {
  EXPECT_EQ(kAllCodes.size(), enumerators_in_header())
      << "a lint::Code was added/removed without updating kAllCodes";
}

TEST(LintCodeDrift, EveryCodeHasAUniqueSpelling) {
  std::set<std::string> names;
  for (const Code code : kAllCodes) {
    const std::string name = to_string(code);
    EXPECT_FALSE(name.empty());
    // Kebab-case, the spelling contract of text/CSV output and docs.
    for (const char c : name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-')
          << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate spelling " << name;
  }
}

TEST(LintCodeDrift, EveryCodeHasASeverity) {
  for (const Code code : kAllCodes) {
    const Severity severity = severity_of(code);
    EXPECT_TRUE(severity == Severity::kInfo || severity == Severity::kWarning ||
                severity == Severity::kError)
        << to_string(code);
  }
  // The oracle's violations are hard errors: a bound escape is a bug in
  // the simulator, the power model or the analyzer.
  EXPECT_EQ(severity_of(Code::kBoundViolationTime), Severity::kError);
  EXPECT_EQ(severity_of(Code::kBoundViolationEnergy), Severity::kError);
}

TEST(LintCodeDrift, EveryCodeHasADocsTableRow) {
  const std::string docs = read_file(PALS_SOURCE_DIR "/docs/lint.md");
  for (const Code code : kAllCodes)
    EXPECT_NE(docs.find("| `" + to_string(code) + "` |"), std::string::npos)
        << "docs/lint.md is missing a table row for " << to_string(code);
}

}  // namespace
}  // namespace lint
}  // namespace pals
