// Branch-and-bound sweep pruning (pals_sweep --prune-bounds,
// docs/bounds.md): pruned cells are provably off the Pareto front, the
// surviving rows and the extracted front are byte-identical to an
// unpruned sweep, prune decisions are jobs-invariant, and the journal's
// "P" records resume to the identical decision set.
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/journal.hpp"
#include "analysis/pareto.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

/// Slow-drift grid where the dynamic controllers land at exactly 100 %
/// time and strictly dominate the static ones (configs/dynamic_pareto.grid
/// rationale); dominators first so the pruner has completed cells to
/// compare against.
SweepGrid drift_grid() {
  SweepGrid grid;
  grid.workloads = {"amr-drift:16:0.7:48"};
  grid.gear_sets = {"uniform-6"};
  grid.algorithms = {Algorithm::kAvg};
  grid.controllers = {"dynamic_max", "dynamic_avg", "slack", "ewma",
                      "static"};
  return grid;
}

SweepResult run_grid(const SweepGrid& grid, bool prune, int jobs = 1) {
  SweepOptions options;
  options.jobs = jobs;
  options.prune_bounds = prune;
  return run_sweep(grid, options);
}

std::vector<ExperimentRow> front_rows(const std::vector<ExperimentRow>& rows) {
  std::vector<ExperimentRow> front;
  for (const ParetoEntry& e : pareto_front(rows))
    if (e.on_front) front.push_back(e.row);
  return front;
}

TEST(PruneBounds, SkipsDominatedCellsAndPreservesSurvivors) {
  const SweepGrid grid = drift_grid();
  const SweepResult full = run_grid(grid, /*prune=*/false);
  const SweepResult pruned = run_grid(grid, /*prune=*/true);

  ASSERT_FALSE(pruned.pruned.empty());
  EXPECT_EQ(pruned.stats.pruned_cells, pruned.pruned.size());
  EXPECT_EQ(full.rows.size(), grid.expand().size());
  EXPECT_EQ(pruned.rows.size() + pruned.pruned.size(), full.rows.size());

  // Surviving rows are byte-identical to the unpruned sweep minus the
  // pruned cells (pruning never changes a replayed number).
  std::set<std::size_t> skipped;
  for (const PrunedCell& cell : pruned.pruned) {
    skipped.insert(cell.index);
    EXPECT_LT(cell.dominated_by, cell.index);  // dominator completed first
    EXPECT_FALSE(cell.dominated_by_variant.empty());
  }
  std::vector<ExperimentRow> expected;
  for (std::size_t i = 0; i < full.rows.size(); ++i)
    if (!skipped.contains(i)) expected.push_back(full.rows[i]);
  EXPECT_EQ(rows_to_csv(pruned.rows), rows_to_csv(expected));

  // The extracted Pareto front survives intact: only provably dominated
  // cells were skipped.
  EXPECT_EQ(rows_to_csv(front_rows(full.rows)),
            rows_to_csv(front_rows(pruned.rows)));
}

TEST(PruneBounds, EveryPrunedCellIsActuallyDominated) {
  // Ground-truth check of the bound's promise: replay the cells the
  // pruner skipped (via the unpruned sweep) and confirm the recorded
  // dominator beats each one on both objectives.
  const SweepGrid grid = drift_grid();
  const SweepResult full = run_grid(grid, false);
  const SweepResult pruned = run_grid(grid, true);
  for (const PrunedCell& cell : pruned.pruned) {
    const ExperimentRow& victim = full.rows[cell.index];
    const ExperimentRow& dominator = full.rows[cell.dominated_by];
    EXPECT_TRUE(dominates(dominator, victim))
        << cell.variant << " not dominated by " << cell.dominated_by_variant;
    // The lower-bound point really bounds the replayed cell from below.
    EXPECT_LE(cell.lb_normalized_time, victim.normalized_time + 1e-12);
    EXPECT_LE(cell.lb_normalized_energy, victim.normalized_energy + 1e-12);
  }
}

TEST(PruneBounds, DecisionsAreJobsInvariant) {
  const SweepGrid grid = drift_grid();
  const SweepResult serial = run_grid(grid, true, 1);
  const SweepResult parallel = run_grid(grid, true, 8);
  EXPECT_EQ(rows_to_csv(serial.rows), rows_to_csv(parallel.rows));
  EXPECT_EQ(pruned_to_csv(serial.pruned), pruned_to_csv(parallel.pruned));
}

TEST(PruneBounds, JournalRecordsResumeToIdenticalDecisions) {
  const std::string journal =
      ::testing::TempDir() + "/prune_resume_test.palsj";
  std::remove(journal.c_str());

  SweepOptions options;
  options.prune_bounds = true;
  options.journal_path = journal;
  const SweepResult first = run_sweep(drift_grid(), options);
  ASSERT_FALSE(first.pruned.empty());

  const JournalReadReport prior = read_journal(journal);
  SweepOptions resumed_options;
  resumed_options.prune_bounds = true;
  resumed_options.resume = &prior;
  const SweepResult resumed = run_sweep(drift_grid(), resumed_options);
  std::remove(journal.c_str());

  // Every cell (rows and pruned alike) was pre-filled from the journal;
  // the reconstructed provenance matches the live run byte for byte.
  EXPECT_EQ(resumed.stats.resumed_cells,
            first.rows.size() + first.pruned.size());
  EXPECT_EQ(rows_to_csv(resumed.rows), rows_to_csv(first.rows));
  EXPECT_EQ(pruned_to_csv(resumed.pruned), pruned_to_csv(first.pruned));
}

TEST(PruneBounds, PrunedRecordRoundTripsThroughJournal) {
  const std::string path = ::testing::TempDir() + "/prune_record.palsj";
  std::remove(path.c_str());
  JournalHeader header;
  header.config_hash = "prune-record-test";
  header.scenarios = 8;

  JournalRecord record;
  record.kind = JournalRecord::Kind::kPruned;
  record.index = 7;
  record.workload = "amr-drift:16:0.7:48";
  record.variant = "AVG uniform-6 ewma";
  record.lb_normalized_time = 1.0;
  record.lb_normalized_energy = 0.73125618350000004;  // full precision
  record.dominated_by = 2;
  {
    JournalWriter writer = JournalWriter::create(path, header);
    writer.append(record);
  }
  const JournalReadReport report = read_journal(path);
  std::remove(path.c_str());
  ASSERT_EQ(report.records.size(), 1u);
  const JournalRecord& parsed = report.records[0];
  EXPECT_EQ(parsed.kind, JournalRecord::Kind::kPruned);
  EXPECT_EQ(parsed.index, record.index);
  EXPECT_EQ(parsed.workload, record.workload);
  EXPECT_EQ(parsed.variant, record.variant);
  EXPECT_EQ(parsed.lb_normalized_time, record.lb_normalized_time);
  EXPECT_EQ(parsed.lb_normalized_energy, record.lb_normalized_energy);
  EXPECT_EQ(parsed.dominated_by, record.dominated_by);
}

TEST(PruneBounds, IncompatibleConfigsAreRejected) {
  SweepOptions per_phase;
  per_phase.prune_bounds = true;
  per_phase.base.per_phase = true;
  EXPECT_THROW(run_sweep(drift_grid(), per_phase), Error);
}

TEST(PruneBounds, PrunedCsvIsHeaderOnlyWhenNothingPrunes) {
  EXPECT_EQ(pruned_to_csv({}),
            "index,workload,variant,lb_normalized_time,"
            "lb_normalized_energy,dominated_by,dominated_by_variant\n");
}

}  // namespace
}  // namespace pals
