// Static bounds analyzer (docs/bounds.md): the intervals must contain
// the real replay for every controller and instance we can afford to
// run, the post-replay oracle must stay silent on a sound stack and trip
// on a corrupted power model, and the renderers must stay parseable.
#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "core/controllers.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

PipelineConfig scenario_config(const std::string& controller,
                               Algorithm algorithm = Algorithm::kMax) {
  PipelineConfig config =
      default_pipeline_config(paper_uniform(6), algorithm);
  config.controller.kind = controller_by_name(controller);
  set_beta(config, 0.5);
  return config;
}

TEST(BoundsAnalyzer, ContainsReplayAcrossControllersAndInstances) {
  for (const char* instance : {"CG-32", "IS-32", "MG-32"}) {
    const Trace trace = benchmark_by_name(instance, 4)->make();
    for (const std::string& controller : controller_names()) {
      const PipelineConfig config = scenario_config(controller);
      const PipelineResult result = run_pipeline(trace, config);
      const bounds::ScenarioBounds b =
          bounds::analyze(trace, config, &result.baseline_replay);

      const auto violations =
          bounds::check_soundness(b, result.scaled_time, result.scaled_energy);
      EXPECT_TRUE(violations.empty())
          << instance << " " << controller << ": "
          << (violations.empty() ? "" : violations.front().to_text());
      ASSERT_TRUE(b.normalized);
      EXPECT_TRUE(b.normalized_time.contains(result.normalized_time()))
          << instance << " " << controller;
      EXPECT_TRUE(b.normalized_energy.contains(result.normalized_energy()))
          << instance << " " << controller;
      // The average-power floor is a guarantee, not an estimate.
      EXPECT_GE(result.scaled_energy / result.scaled_time,
                b.min_average_power - 1e-9)
          << instance << " " << controller;
    }
  }
}

TEST(BoundsAnalyzer, PropertyOverExtSuiteGrid) {
  // Every cell of the shipped extension-suite grid replays inside its
  // static interval: the sweep's soundness oracle (on by default) fails
  // the run on any escape, so a clean sweep IS the property.
  const SweepGrid grid =
      SweepGrid::from_file(PALS_SOURCE_DIR "/configs/ext_suite.grid");
  SweepOptions options;
  options.jobs = 4;
  ASSERT_TRUE(options.bounds_oracle);  // armed by default
  const SweepResult result = run_sweep(grid, options);
  EXPECT_EQ(result.rows.size(), grid.expand().size());
  EXPECT_FALSE(result.has_errors());
}

TEST(BoundsAnalyzer, PreReplaySurfaceNeedsNoBaseline) {
  const Trace trace = benchmark_by_name("IS-32", 4)->make();
  const bounds::ScenarioBounds b =
      bounds::analyze(trace, scenario_config("static"));
  EXPECT_FALSE(b.normalized);
  EXPECT_GT(b.makespan.lo, 0.0);
  EXPECT_GE(b.makespan.hi, b.makespan.lo);
  EXPECT_GT(b.energy.lo, 0.0);
  EXPECT_GE(b.energy.hi, b.energy.lo);
  EXPECT_GT(b.min_average_power, 0.0);
}

TEST(BoundsAnalyzer, RejectsPerPhaseConfigs) {
  const Trace trace = benchmark_by_name("IS-32", 2)->make();
  PipelineConfig config = scenario_config("static");
  config.per_phase = true;  // no single schedule to bound
  EXPECT_THROW(bounds::analyze(trace, config), Error);
}

TEST(BoundsOracle, CorruptedPowerModelTripsEnergyViolation) {
  // The acceptance scenario: bounds derived from the pristine model, a
  // replay running on a corrupted one. The energy escape must surface as
  // kBoundViolationEnergy while the makespan (power-independent) stays
  // inside its interval.
  const Trace trace = benchmark_by_name("IS-32", 4)->make();
  const PipelineConfig pristine = scenario_config("static");
  const bounds::ScenarioBounds b = bounds::analyze(trace, pristine);

  PipelineConfig corrupted = pristine;
  corrupted.power.activity_ratio *= 2.0;
  const PipelineResult result = run_pipeline(trace, corrupted);

  const auto violations =
      bounds::check_soundness(b, result.scaled_time, result.scaled_energy);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].code, lint::Code::kBoundViolationEnergy);
  EXPECT_EQ(violations[0].severity, lint::Severity::kError);
  EXPECT_NE(violations[0].message.find("escaped the static interval"),
            std::string::npos);
}

TEST(BoundsOracle, MakespanEscapeTripsTimeViolation) {
  bounds::ScenarioBounds b;
  b.makespan = {1.0, 2.0};
  b.energy = {10.0, 20.0};
  const auto violations = bounds::check_soundness(b, 3.0, 15.0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].code, lint::Code::kBoundViolationTime);
  EXPECT_TRUE(bounds::check_soundness(b, 1.5, 15.0).empty());
}

TEST(BoundsRendering, JsonIsParseableWithRequiredKeys) {
  const Trace trace = benchmark_by_name("CG-32", 2)->make();
  const PipelineConfig config = scenario_config("dynamic_max");
  const PipelineResult result = run_pipeline(trace, config);
  const bounds::ScenarioBounds b =
      bounds::analyze(trace, config, &result.baseline_replay);

  const JsonValue doc = json_parse(bounds::to_json(b));
  for (const char* key :
       {"makespan", "energy", "normalized", "normalized_time",
        "normalized_energy", "min_average_power", "continuous_energy_floor",
        "monotonicity_floor", "iterations", "switches"})
    EXPECT_NE(doc.find(key), nullptr) << key;
  EXPECT_NE(bounds::to_text(b).find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace pals
