# SIGPIPE robustness of the long-running tools: piping a tool into a
# consumer that exits immediately (`head -n 0`) closes the pipe long
# before the tool's stdout writes land. A tool that does not ignore
# SIGPIPE dies with signal 13 (shell status 141); the contract is that
# every long-running tool survives the broken pipe and finishes with its
# own exit status.
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_survives_broken_pipe label)
  string(JOIN " " command ${ARGN})
  execute_process(
    COMMAND bash -c "set -o pipefail; ${command} | head -n 0"
    RESULT_VARIABLE code)
  if(code EQUAL 141)
    message(FATAL_ERROR "${label}: killed by SIGPIPE (141) writing into a "
                        "closed pipe")
  endif()
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${label}: exited ${code}")
  endif()
endfunction()

file(REMOVE_RECURSE ${WORK_DIR}/sigpipe_shepherd)
expect_survives_broken_pipe(pals_sweep
  ${PALS_SWEEP} --grid=${GRID} --jobs=2)
expect_survives_broken_pipe(pals_shepherd
  ${PALS_SHEPHERD} --grid=${GRID} --shards=2 --jobs=1
  --sweep-bin=${PALS_SWEEP} --run-dir=${WORK_DIR}/sigpipe_shepherd)
