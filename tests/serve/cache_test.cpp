// serve/cache.hpp: the memory-budgeted warm cache — hit/miss accounting,
// LRU eviction under a byte budget, the no-poison contract for failing
// builds, single-build coalescing under concurrency, and survival of
// handed-out entries across their own eviction.
#include "serve/cache.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace serve {
namespace {

/// An entry whose approx_entry_bytes is dominated by `messages` records —
/// no trace machinery needed to exercise the byte budget.
WarmEntry entry_with_messages(std::size_t count) {
  WarmEntry entry;
  entry.baseline.messages.resize(count);
  return entry;
}

std::size_t bytes_of(std::size_t count) {
  return approx_entry_bytes(entry_with_messages(count));
}

TEST(WarmCache, MissBuildsOnceThenHits) {
  WarmCache cache(0);
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return entry_with_messages(4);
  };
  const auto first = cache.get("k", build);
  const auto second = cache.get("k", build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  const WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, bytes_of(4));
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(WarmCache, EvictsLeastRecentlyUsedOverBudget) {
  // Budget fits two message-heavy entries but not three.
  WarmCache cache(2 * bytes_of(100) + bytes_of(100) / 2);
  const auto build = [] { return entry_with_messages(100); };
  cache.get("a", build);
  cache.get("b", build);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.get("a", build);  // refresh: "b" is now the LRU victim
  cache.get("c", build);
  WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.resident_bytes, cache.budget_bytes());
  // "a" survived (it was refreshed), "b" was evicted and rebuilds.
  std::size_t rebuilds = 0;
  cache.get("a", [&rebuilds] {
    ++rebuilds;
    return entry_with_messages(100);
  });
  EXPECT_EQ(rebuilds, 0u);
  cache.get("b", [&rebuilds] {
    ++rebuilds;
    return entry_with_messages(100);
  });
  EXPECT_EQ(rebuilds, 1u);
}

TEST(WarmCache, SingleEntryLargerThanBudgetIsStillAdmitted) {
  // The query must be answerable even when one baseline exceeds the whole
  // budget; everything else is evicted around it.
  WarmCache cache(bytes_of(10));
  const auto huge = cache.get("huge", [] { return entry_with_messages(500); });
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
  // The next entry evicts the over-budget resident, not itself.
  cache.get("small", [] { return entry_with_messages(10); });
  const WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // The handed-out shared_ptr outlives the eviction.
  EXPECT_EQ(huge->baseline.messages.size(), 500u);
}

TEST(WarmCache, ZeroBudgetMeansUnlimited) {
  WarmCache cache(0);
  for (int i = 0; i < 16; ++i)
    cache.get("k" + std::to_string(i), [] { return entry_with_messages(50); });
  const WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 16u);
}

TEST(WarmCache, FailedBuildDoesNotPoisonTheKey) {
  WarmCache cache(0);
  EXPECT_THROW(
      cache.get("k", []() -> WarmEntry { throw Error("deadline expired"); }),
      Error);
  EXPECT_EQ(cache.stats().failed_builds, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The next query retries with a clean slate and succeeds.
  const auto entry = cache.get("k", [] { return entry_with_messages(3); });
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(WarmCache, RacingColdQueriesBuildExactlyOnce) {
  WarmCache cache(0);
  std::atomic<int> builds{0};
  const auto build = [&builds] {
    builds.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return entry_with_messages(8);
  };
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const WarmEntry>> results(4);
  for (int i = 0; i < 4; ++i)
    threads.emplace_back(
        [&cache, &build, &results, i] { results[i] = cache.get("k", build); });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& result : results) EXPECT_EQ(result.get(), results[0].get());
}

TEST(WarmCache, BuildsOfDifferentKeysProceedInParallel) {
  WarmCache cache(0);
  // If builds serialized on a global lock this would take >= 400ms; in
  // parallel it takes ~100ms. Assert the strong half (both complete and
  // the cache holds both), plus a generous wall bound to catch a full
  // serialization regression without being flaky.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&cache, i] {
      cache.get("k" + std::to_string(i), [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return entry_with_messages(2);
      });
    });
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_LT(elapsed, 0.35) << "cold builds appear to serialize";
}

TEST(ApproxEntryBytes, GrowsWithPayload) {
  EXPECT_GT(bytes_of(100), bytes_of(1));
  EXPECT_GE(bytes_of(0), sizeof(WarmEntry));
}

}  // namespace
}  // namespace serve
}  // namespace pals
