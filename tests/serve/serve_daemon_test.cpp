// Crash-only lifecycle of the real pals_serve binary, driven as a child
// process: SIGTERM drains cleanly (exit 0) including with a request in
// flight, SIGKILL leaves a stale socket the next start takes over, a
// second daemon on a live path refuses to start, and usage errors exit 2.
//
// The binary path arrives via the PALS_SERVE_BIN compile definition
// (tests/CMakeLists.txt).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/socketio.hpp"

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace pals {
namespace serve {
namespace {

namespace fs = std::filesystem;

#ifndef _WIN32

class ServeDaemon : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag =
        std::to_string(::getpid()) + "_" +
        std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xffff);
    socket_ = fs::path(::testing::TempDir()) / ("daemon_" + tag + ".sock");
    ready_ = fs::path(::testing::TempDir()) / ("daemon_" + tag + ".ready");
    fs::remove(socket_);
    fs::remove(ready_);
  }

  void TearDown() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// Fork/exec the daemon with stdout/stderr discarded; remembers the pid
  /// for TearDown's safety net.
  void spawn(const std::vector<std::string>& extra_args = {}) {
    std::vector<std::string> args = {PALS_SERVE_BIN,
                                     "--socket=" + socket_.string(),
                                     "--ready-file=" + ready_.string(),
                                     "--jobs=2"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      std::freopen("/dev/null", "w", stdout);
      std::freopen("/dev/null", "w", stderr);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& arg : args)
        argv.push_back(const_cast<char*>(arg.c_str()));
      argv.push_back(nullptr);
      ::execv(PALS_SERVE_BIN, argv.data());
      std::_Exit(127);
    }
  }

  /// Block until the daemon writes its ready file (10s cap).
  void await_ready() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!fs::exists(ready_)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "daemon never became ready";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// Reap the daemon; returns the exit code (128+N for death by signal).
  int wait_exit() {
    int status = 0;
    EXPECT_EQ(::waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  ParsedResponse exchange(UnixStream& stream, const std::string& line) {
    if (!stream.write_all(line + "\n")) throw Error("peer closed on write");
    std::string reply;
    if (stream.read_line(reply, 1 << 20, 10.0) != ReadLineStatus::kLine)
      throw Error("no response line");
    return parse_response(reply);
  }

  fs::path socket_;
  fs::path ready_;
  pid_t pid_ = -1;
};

TEST_F(ServeDaemon, SigtermDrainsAndExitsZero) {
  spawn();
  await_ready();
  {
    UnixStream stream = UnixStream::connect(socket_.string());
    EXPECT_TRUE(
        exchange(stream, R"({"schema":"pals-serve-v1","kind":"ping"})")
            .has_pong);
  }
  ASSERT_EQ(::kill(pid_, SIGTERM), 0);
  EXPECT_EQ(wait_exit(), 0);
  // A clean drain unlinks the socket.
  EXPECT_FALSE(fs::exists(socket_));
}

TEST_F(ServeDaemon, SigtermUnderLoadStillAnswersInFlightRequest) {
  spawn({"--debug-stall-ms=300"});
  await_ready();
  UnixStream stream = UnixStream::connect(socket_.string());
  ASSERT_TRUE(stream.write_all(
      R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2","iterations":2,)"
      R"("id":"inflight"})"
      "\n"));
  // Let the worker pick the request up, then pull the rug.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(pid_, SIGTERM), 0);
  std::string reply;
  ASSERT_EQ(stream.read_line(reply, 1 << 20, 10.0), ReadLineStatus::kLine);
  const ParsedResponse response = parse_response(reply);
  EXPECT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.id, "inflight");
  stream.close();
  EXPECT_EQ(wait_exit(), 0);
}

TEST_F(ServeDaemon, SigkillLeavesStaleSocketAndRestartTakesOver) {
  spawn();
  await_ready();
  ASSERT_EQ(::kill(pid_, SIGKILL), 0);
  EXPECT_EQ(wait_exit(), 128 + SIGKILL);
  // The crash-only signature: the socket file is still there, dead.
  EXPECT_TRUE(fs::exists(socket_));

  fs::remove(ready_);
  spawn();
  await_ready();  // bind_or_replace took the stale path over
  UnixStream stream = UnixStream::connect(socket_.string());
  EXPECT_TRUE(exchange(stream, R"({"schema":"pals-serve-v1","kind":"ping"})")
                  .has_pong);
  stream.close();
  ASSERT_EQ(::kill(pid_, SIGTERM), 0);
  EXPECT_EQ(wait_exit(), 0);
}

TEST_F(ServeDaemon, LiveSocketRefusesASecondDaemon) {
  spawn();
  await_ready();
  const std::string command = std::string(PALS_SERVE_BIN) +
                              " --socket=" + socket_.string() +
                              " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), exit_code(ToolExit::kError));
  // The loser must not have unlinked the winner's socket.
  UnixStream stream = UnixStream::connect(socket_.string());
  EXPECT_TRUE(exchange(stream, R"({"schema":"pals-serve-v1","kind":"ping"})")
                  .has_pong);
  stream.close();
  ASSERT_EQ(::kill(pid_, SIGTERM), 0);
  EXPECT_EQ(wait_exit(), 0);
}

TEST_F(ServeDaemon, MissingSocketFlagIsAUsageError) {
  const std::string command =
      std::string(PALS_SERVE_BIN) + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), exit_code(ToolExit::kUsage));
}

#else  // _WIN32

TEST(ServeDaemon, SkippedOnWindows) { GTEST_SKIP(); }

#endif

}  // namespace
}  // namespace serve
}  // namespace pals
