// serve/protocol.hpp: request parsing (including the committed torture
// corpus in tests/serve/corrupt/), response rendering/round-tripping and
// the baseline-key fingerprint the warm cache shards on.
#include "serve/protocol.hpp"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/experiments.hpp"

namespace pals {
namespace serve {
namespace {

namespace fs = std::filesystem;

Request parse(const std::string& line) { return parse_request(line); }

TEST(ParseRequest, MinimalQueryGetsScenarioDefaults) {
  const Request request =
      parse(R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2"})");
  EXPECT_EQ(request.kind, RequestKind::kQuery);
  EXPECT_EQ(request.workload, "cg:8:0.9:2");
  EXPECT_EQ(request.gear_set, "uniform-6");
  EXPECT_EQ(request.algorithm, "max");
  EXPECT_EQ(request.controller, "static");
  EXPECT_DOUBLE_EQ(request.beta, 0.5);
  EXPECT_EQ(request.iterations, 0);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 0.0);
  EXPECT_TRUE(request.faults.empty());
  EXPECT_TRUE(request.platform.empty());
}

TEST(ParseRequest, FullQueryRoundTripsEveryField) {
  const Request request = parse(
      R"({"schema":"pals-serve-v1","kind":"query","id":"q7",)"
      R"("workload":"lu:8:0.92:2","gear_set":"avg-discrete",)"
      R"("algorithm":"avg","controller":"dynamic_max","beta":0.25,)"
      R"("iterations":3,"deadline_ms":1500,)"
      R"("faults":"seed=1; node_slowdown:rank=0,t=0,factor=2",)"
      R"("platform":{"latency":1e-5,"bandwidth":2.5e8}})");
  EXPECT_EQ(request.id, "q7");
  EXPECT_EQ(request.workload, "lu:8:0.92:2");
  EXPECT_EQ(request.gear_set, "avg-discrete");
  EXPECT_EQ(request.algorithm, "avg");
  EXPECT_EQ(request.controller, "dynamic_max");
  EXPECT_DOUBLE_EQ(request.beta, 0.25);
  EXPECT_EQ(request.iterations, 3);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 1500.0);
  ASSERT_EQ(request.platform.size(), 2u);
  EXPECT_EQ(request.platform[0].first, "latency");
  EXPECT_DOUBLE_EQ(request.platform[1].second, 2.5e8);
}

TEST(ParseRequest, ControlKindsNeedNoWorkload) {
  EXPECT_EQ(parse(R"({"schema":"pals-serve-v1","kind":"ping"})").kind,
            RequestKind::kPing);
  EXPECT_EQ(parse(R"({"schema":"pals-serve-v1","kind":"stats"})").kind,
            RequestKind::kStats);
  EXPECT_EQ(parse(R"({"schema":"pals-serve-v1","kind":"shutdown"})").kind,
            RequestKind::kShutdown);
}

TEST(ParseRequest, OversizeLineIsRejectedBeforeParsing) {
  std::string line = R"({"schema":"pals-serve-v1","workload":")";
  line += std::string(kMaxRequestBytes, 'x');
  line += R"("})";
  try {
    parse(line);
    FAIL() << "oversize line accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
  }
}

TEST(ParseRequest, RejectedRequestStillEchoesItsId) {
  // The id is recovered before validation so the client can correlate
  // the bad-request response with its outstanding request.
  try {
    parse(R"({"schema":"pals-serve-v1","id":"q9","beta":"hot",)"
          R"("workload":"cg:8:0.9:2"})");
    FAIL() << "bad beta accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
    EXPECT_EQ(e.id, "q9");
  }
}

TEST(ParseRequest, EveryCorpusFileIsRejectedAsBadRequest) {
  const fs::path corpus =
      fs::path(PALS_SOURCE_DIR) / "tests" / "serve" / "corrupt";
  ASSERT_TRUE(fs::is_directory(corpus));
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    std::ifstream in(entry.path());
    std::string line;
    std::getline(in, line);
    try {
      parse(line);
      ADD_FAILURE() << entry.path().filename() << " was accepted: " << line;
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code, ErrorCode::kBadRequest)
          << entry.path().filename() << " rejected with the wrong code";
    }
  }
  EXPECT_GE(files, 10u) << "torture corpus went missing";
}

TEST(BaselineKey, SharedAcrossCellAxesDistinctAcrossBaselineAxes) {
  Request a = parse(R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2",)"
                    R"("gear_set":"uniform-6","beta":0.3})");
  Request b = parse(R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2",)"
                    R"("gear_set":"avg-discrete","algorithm":"avg",)"
                    R"("controller":"dynamic_max","beta":0.7})");
  // Gear set / algorithm / controller / beta never touch the baseline.
  EXPECT_EQ(a.baseline_key("cg:8:0.9:2"), b.baseline_key("cg:8:0.9:2"));
  // The workload key, platform overrides and fault plan all do.
  EXPECT_NE(a.baseline_key("cg:8:0.9:2"), a.baseline_key("lu:8:0.92:2"));
  Request with_platform =
      parse(R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2",)"
            R"("platform":{"latency":1e-5}})");
  EXPECT_NE(with_platform.baseline_key("cg:8:0.9:2"),
            a.baseline_key("cg:8:0.9:2"));
  Request with_faults =
      parse(R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2",)"
            R"("faults":"seed=1; node_slowdown:rank=0,t=0,factor=2"})");
  EXPECT_NE(with_faults.baseline_key("cg:8:0.9:2"),
            a.baseline_key("cg:8:0.9:2"));
}

ExperimentRow sample_row() {
  ExperimentRow row;
  row.instance = "CG-8";
  row.variant = "uniform-6/MAX/b0.30";
  row.load_balance = 0.9;
  row.parallel_efficiency = 0.85;
  row.normalized_energy = 0.75;
  row.normalized_time = 1.05;
  row.normalized_edp = 0.7875;
  row.overclocked_fraction = 0.0;
  return row;
}

TEST(Responses, QueryOkCarriesTheExactCsvDataLine) {
  const ExperimentRow row = sample_row();
  const std::string line = render_query_ok("q1", row, 12.5);
  const ParsedResponse response = parse_response(line);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.id, "q1");
  EXPECT_EQ(response.raw, line);
  EXPECT_EQ(response.csv, csv_data_line(row));
  // The csv member is the byte-identity payload: exactly the data line
  // (header and trailing newline stripped) of the batch CSV writer.
  const std::string batch = rows_to_csv({row});
  const std::string expected = batch.substr(
      batch.find('\n') + 1, batch.find_last_not_of("\r\n") - batch.find('\n'));
  EXPECT_EQ(response.csv, expected);
}

TEST(Responses, PongStatsAndShutdownRoundTrip) {
  const ParsedResponse pong = parse_response(render_pong("p1"));
  EXPECT_TRUE(pong.ok);
  EXPECT_TRUE(pong.has_pong);
  EXPECT_EQ(pong.id, "p1");

  const ParsedResponse stats = parse_response(
      render_stats("s1", {{"accepted", 3}, {"shed", 1}}));
  EXPECT_TRUE(stats.ok);
  EXPECT_TRUE(stats.has_stats);

  const ParsedResponse ack = parse_response(render_shutdown_ack("d1"));
  EXPECT_TRUE(ack.ok);
  EXPECT_EQ(ack.id, "d1");
}

TEST(Responses, ErrorRoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kNotFound, ErrorCode::kOverloaded,
        ErrorCode::kDeadlineExceeded, ErrorCode::kShuttingDown,
        ErrorCode::kInternal}) {
    const ParsedResponse response =
        parse_response(render_error("e1", code, "why \"quoted\"\n"));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, code);
    EXPECT_EQ(response.message, "why \"quoted\"\n");
    EXPECT_EQ(response.id, "e1");
  }
}

TEST(Responses, StructurallyInvalidLinesAreRejected) {
  for (const char* line : {
           "",                                            // empty
           "pong",                                        // not JSON
           "[1]",                                         // not an object
           R"({"id":"x","status":"ok"})",                 // no schema
           R"({"schema":"pals-serve-v1","id":"x"})",      // no status
           R"({"schema":"pals-serve-v1","status":"meh"})",  // bad status
           // error responses need code + message, with a known code
           R"({"schema":"pals-serve-v1","status":"error"})",
           R"({"schema":"pals-serve-v1","status":"error","code":"weird",)"
           R"("message":"m"})",
       }) {
    EXPECT_THROW(parse_response(line), ProtocolError) << line;
  }
}

TEST(ValidateRequestLine, AcceptsTheShippedBattery) {
  const fs::path battery =
      fs::path(PALS_SOURCE_DIR) / "configs" / "serve_battery.requests";
  std::ifstream in(battery);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t valid = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NO_THROW(validate_request_line(line)) << line;
    ++valid;
  }
  EXPECT_GE(valid, 5u);
}

}  // namespace
}  // namespace serve
}  // namespace pals
