// The serve daemon's robustness battery, in process but over real
// Unix-domain sockets: admission control under overload, per-request
// deadlines, the malformed-request torture corpus on the wire, client
// disconnects mid-exchange, cooperative drain, crash-only socket
// takeover — and the determinism contract: rows served over the socket
// are byte-identical to `pals_sweep --jobs=1` batch rows, at 1 and 8
// worker threads.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/socketio.hpp"
#include "util/strings.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace pals {
namespace serve {
namespace {

namespace fs = std::filesystem;

#ifndef _WIN32

/// One line out, one line back (5s cap so a wedged server fails the test
/// instead of hanging it).
ParsedResponse round_trip(UnixStream& stream, const std::string& line) {
  if (!stream.write_all(line + "\n")) throw Error("peer closed on write");
  std::string reply;
  const ReadLineStatus status = stream.read_line(reply, 1 << 20, 5.0);
  if (status != ReadLineStatus::kLine)
    throw Error("no response line (status " +
                std::to_string(static_cast<int>(status)) + ")");
  return parse_response(reply);
}

std::string query_line(const Scenario& scenario, int iterations,
                       const std::string& id) {
  const char* algorithm = "max";
  switch (scenario.algorithm) {
    case Algorithm::kMax: algorithm = "max"; break;
    case Algorithm::kAvg: algorithm = "avg"; break;
    case Algorithm::kEnergyOptimalMax: algorithm = "energy-optimal"; break;
  }
  std::string line = R"({"schema":"pals-serve-v1","id":")" + id + "\"";
  line += ",\"workload\":\"" + scenario.workload + "\"";
  line += ",\"gear_set\":\"" + scenario.gear_set + "\"";
  line += std::string(",\"algorithm\":\"") + algorithm + "\"";
  line += ",\"controller\":\"" + scenario.controller + "\"";
  line += ",\"beta\":" + format_roundtrip(scenario.beta);
  line += ",\"iterations\":" + std::to_string(iterations) + "}";
  return line;
}

/// Owns one in-process Server on a background thread; the fixture body
/// talks to it over real sockets.
class ServeTorture : public ::testing::Test {
 protected:
  void start(const std::function<void(ServerOptions&)>& customize = {}) {
    static std::atomic<int> sequence{0};
    socket_path_ = fs::path(::testing::TempDir()) /
                   ("serve_t" + std::to_string(::getpid()) + "_" +
                    std::to_string(sequence.fetch_add(1)) + ".sock");
    fs::remove(socket_path_);
    ServerOptions options;
    options.socket_path = socket_path_.string();
    options.poll_seconds = 0.02;
    options.idle_timeout_seconds = 30.0;
    if (customize) customize(options);
    std::promise<void> ready;
    auto ready_future = ready.get_future();
    options.on_ready = [&ready] { ready.set_value(); };
    server_ = std::make_unique<Server>(std::move(options));
    thread_ = std::thread([this] { server_->run(); });
    ASSERT_EQ(ready_future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "server never became ready";
  }

  void TearDown() override {
    if (server_ != nullptr) server_->request_drain();
    if (thread_.joinable()) thread_.join();
  }

  UnixStream connect() { return UnixStream::connect(socket_path_.string()); }

  std::uint64_t stat(const std::string& name) {
    for (const auto& [key, value] : server_->stats_rows())
      if (key == name) return value;
    ADD_FAILURE() << "no stats row named " << name;
    return 0;
  }

  fs::path socket_path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServeTorture, PingStatsAndShutdownAck) {
  start();
  UnixStream stream = connect();
  const ParsedResponse pong = round_trip(
      stream, R"({"schema":"pals-serve-v1","kind":"ping","id":"p"})");
  EXPECT_TRUE(pong.ok);
  EXPECT_TRUE(pong.has_pong);
  EXPECT_EQ(pong.id, "p");
  const ParsedResponse stats = round_trip(
      stream, R"({"schema":"pals-serve-v1","kind":"stats"})");
  EXPECT_TRUE(stats.has_stats);
  const ParsedResponse ack = round_trip(
      stream, R"({"schema":"pals-serve-v1","kind":"shutdown","id":"s"})");
  EXPECT_TRUE(ack.ok);
  stream.close();
  thread_.join();  // the ack started a drain; run() must return
  EXPECT_THROW(connect(), Error);  // socket unlinked after the drain
}

TEST_F(ServeTorture, ServedRowsAreByteIdenticalToBatchSweep) {
  const SweepGrid grid = SweepGrid::from_file(
      (fs::path(PALS_SOURCE_DIR) / "configs" / "serve_smoke.grid").string());
  const std::vector<Scenario> scenarios = grid.expand();
  SweepOptions options;
  options.jobs = 1;
  options.iterations = grid.iterations;
  const SweepResult reference = run_sweep(grid, options);
  ASSERT_EQ(reference.rows.size(), scenarios.size());

  // Serial server, one connection: canonical order, cold cache.
  start([](ServerOptions& server_options) { server_options.jobs = 1; });
  std::vector<std::string> served(scenarios.size());
  {
    UnixStream stream = connect();
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const ParsedResponse response = round_trip(
          stream,
          query_line(scenarios[i], grid.iterations, std::to_string(i)));
      ASSERT_TRUE(response.ok) << response.message;
      served[i] = response.csv;
    }
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    EXPECT_EQ(served[i], csv_data_line(reference.rows[i])) << "cell " << i;

  // Parallel server, 8 racing connections: same bytes regardless of
  // worker count, arrival order or cache state.
  server_->request_drain();
  thread_.join();
  start([](ServerOptions& server_options) {
    server_options.jobs = 8;
    server_options.queue_limit = 16;
  });
  std::vector<std::string> parallel(scenarios.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c)
    clients.emplace_back([&, c] {
      UnixStream stream = connect();
      for (std::size_t i = static_cast<std::size_t>(c); i < scenarios.size();
           i += 8) {
        const ParsedResponse response = round_trip(
            stream,
            query_line(scenarios[i], grid.iterations, std::to_string(i)));
        if (response.ok) parallel[i] = response.csv;
      }
    });
  for (std::thread& client : clients) client.join();
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    EXPECT_EQ(parallel[i], csv_data_line(reference.rows[i])) << "cell " << i;
}

TEST_F(ServeTorture, OverloadShedsWithRetryableResponse) {
  start([](ServerOptions& server_options) {
    server_options.jobs = 4;
    server_options.queue_limit = 1;
    server_options.debug_stall_seconds = 0.4;
  });
  UnixStream busy = connect();
  ASSERT_TRUE(busy.write_all(
      R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2","iterations":2})"
      "\n"));
  // Give the accept loop time to admit the busy connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  UnixStream shed = connect();
  std::string line;
  ASSERT_EQ(shed.read_line(line, 1 << 20, 5.0), ReadLineStatus::kLine);
  const ParsedResponse rejection = parse_response(line);
  EXPECT_FALSE(rejection.ok);
  EXPECT_EQ(rejection.code, ErrorCode::kOverloaded);
  EXPECT_GE(stat("shed"), 1u);
  // The admitted request still completes normally.
  std::string reply;
  ASSERT_EQ(busy.read_line(reply, 1 << 20, 10.0), ReadLineStatus::kLine);
  EXPECT_TRUE(parse_response(reply).ok);
}

TEST_F(ServeTorture, ExpiredDeadlineAnswersDeadlineExceeded) {
  start([](ServerOptions& server_options) {
    server_options.debug_stall_seconds = 0.1;
  });
  UnixStream stream = connect();
  const ParsedResponse response = round_trip(
      stream,
      R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2","iterations":2,)"
      R"("deadline_ms":1,"id":"dl"})");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(response.id, "dl");
  EXPECT_GE(stat("deadline_exceeded"), 1u);
  // The connection survives; the same cell without a deadline succeeds.
  const ParsedResponse retry = round_trip(
      stream,
      R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2","iterations":2})");
  EXPECT_TRUE(retry.ok) << retry.message;
}

TEST_F(ServeTorture, TinyCacheBudgetEvictsAndStillAnswers) {
  start([](ServerOptions& server_options) {
    server_options.cache_bytes = 1;  // every baseline exceeds the budget
  });
  UnixStream stream = connect();
  for (const char* workload : {"cg:8:0.9:2", "lu:8:0.92:2", "cg:8:0.9:2"}) {
    const ParsedResponse response = round_trip(
        stream, std::string(R"({"schema":"pals-serve-v1","workload":")") +
                    workload + R"(","iterations":2})");
    EXPECT_TRUE(response.ok) << response.message;
  }
  EXPECT_GE(stat("cache_evictions"), 2u);
  const WarmCacheStats cache = server_->cache().stats();
  EXPECT_LE(cache.entries, 1u);
  EXPECT_EQ(cache.misses, 3u);  // the third query rebuilt the evicted key
}

TEST_F(ServeTorture, MalformedCorpusOverTheWireNeverKillsTheConnection) {
  start();
  const fs::path corpus =
      fs::path(PALS_SOURCE_DIR) / "tests" / "serve" / "corrupt";
  UnixStream stream = connect();
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    std::ifstream in(entry.path());
    std::string line;
    std::getline(in, line);
    const ParsedResponse response = round_trip(stream, line);
    EXPECT_FALSE(response.ok) << entry.path().filename();
    EXPECT_EQ(response.code, ErrorCode::kBadRequest)
        << entry.path().filename();
  }
  EXPECT_GE(files, 10u);
  EXPECT_GE(stat("bad_requests"), files);
  // The same connection still answers a well-formed request.
  EXPECT_TRUE(round_trip(stream,
                       R"({"schema":"pals-serve-v1","kind":"ping"})")
                  .has_pong);
}

TEST_F(ServeTorture, OversizeLineIsRejectedAndTheConnectionClosed) {
  start();
  UnixStream stream = connect();
  // Far past the bound: read_line reads in chunks, so a line only barely
  // over it can still arrive complete (and is then rejected by the
  // parser, connection kept). An unterminated flood twice the bound
  // deterministically trips the kOversize cutoff instead.
  std::string line = R"({"schema":"pals-serve-v1","workload":")";
  line += std::string(2 * kMaxRequestBytes, 'x');
  line += "\"}";
  const ParsedResponse response = round_trip(stream, line);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  // An unterminated-line flood cannot be resynchronized: the server must
  // hang up after answering.
  std::string next;
  EXPECT_EQ(stream.read_line(next, 1 << 20, 5.0), ReadLineStatus::kEof);
}

TEST_F(ServeTorture, ClientVanishingMidReplyIsSurvivable) {
  start([](ServerOptions& server_options) {
    server_options.debug_stall_seconds = 0.2;
  });
  {
    UnixStream hitrun = connect();
    ASSERT_TRUE(hitrun.write_all(
        R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2","iterations":2})"
        "\n"));
    // Destructor closes while the worker is still stalling; its eventual
    // write lands on a dead socket.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  UnixStream stream = connect();
  EXPECT_TRUE(round_trip(stream,
                       R"({"schema":"pals-serve-v1","kind":"ping"})")
                  .has_pong);
}

TEST_F(ServeTorture, QueriesDuringDrainAnswerShuttingDown) {
  start();
  // Connect before the drain, then query: the worker either reads the
  // query (answering shutting-down) or notices the drain first and sends
  // the unprompted shutting-down notice — the client sees the same
  // structured rejection either way.
  UnixStream stream = connect();
  server_->request_drain();
  const ParsedResponse response = round_trip(
      stream,
      R"({"schema":"pals-serve-v1","workload":"cg:8:0.9:2","iterations":2})");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kShuttingDown);
  stream.close();
  thread_.join();
}

TEST_F(ServeTorture, IdleConnectionsAreReaped) {
  start([](ServerOptions& server_options) {
    server_options.idle_timeout_seconds = 0.1;
  });
  UnixStream stream = connect();
  std::string line;
  // No request: the server must close the connection, not hold it open.
  EXPECT_EQ(stream.read_line(line, 1 << 20, 5.0), ReadLineStatus::kEof);
}

TEST_F(ServeTorture, StaleSocketFileIsReplacedOnStart) {
  // A SIGKILLed daemon leaves a bound-but-dead socket file; the next
  // start must take the path over instead of failing.
  const fs::path stale = fs::path(::testing::TempDir()) /
                         ("serve_stale" + std::to_string(::getpid()) + ".sock");
  fs::remove(stale);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::snprintf(address.sun_path, sizeof(address.sun_path), "%s",
                stale.c_str());
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&address),
                   sizeof(address)),
            0);
  ::close(fd);  // closes the descriptor, leaves the file — the stale state
  ASSERT_TRUE(fs::exists(stale));

  ServerOptions options;
  options.socket_path = stale.string();
  options.poll_seconds = 0.02;
  std::promise<void> ready;
  auto ready_future = ready.get_future();
  options.on_ready = [&ready] { ready.set_value(); };
  Server server(std::move(options));
  std::thread thread([&server] { server.run(); });
  ASSERT_EQ(ready_future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  UnixStream stream = UnixStream::connect(stale.string());
  EXPECT_TRUE(round_trip(stream, R"({"schema":"pals-serve-v1","kind":"ping"})")
                  .has_pong);
  server.request_drain();
  thread.join();
}

TEST_F(ServeTorture, LivePathIsRefusedBySecondServer) {
  start();
  ServerOptions options;
  options.socket_path = socket_path_.string();
  Server second(std::move(options));
  EXPECT_THROW(second.run(), Error);
  // The loser must not have unlinked the winner's socket.
  UnixStream stream = connect();
  EXPECT_TRUE(round_trip(stream, R"({"schema":"pals-serve-v1","kind":"ping"})")
                  .has_pong);
}

// --- QueryEngine-level deadline + resolution errors (no sockets) ----------

TEST(QueryEngineErrors, WatchdogDeadlineDoesNotPoisonTheCache) {
  WarmCache cache(0);
  QueryEngine engine(QueryEngineOptions{}, cache);
  Request request;
  request.workload = "cg:8:0.9:2";
  request.iterations = 2;
  try {
    // A positive-but-unmeetable budget: the replay wall watchdog trips on
    // its first per-event check.
    engine.execute(request, 1e-9);
    FAIL() << "deadline never expired";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code, ErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(cache.stats().failed_builds, 1u);
  // The failed build left no half-warm state: the retry succeeds.
  const ExperimentRow row = engine.execute(request, 0.0);
  EXPECT_GT(row.normalized_time, 0.0);
}

TEST(QueryEngineErrors, UnknownNamesAnswerNotFound) {
  WarmCache cache(0);
  QueryEngine engine(QueryEngineOptions{}, cache);
  const auto expect_not_found = [&engine](const Request& request) {
    try {
      engine.execute(request, 0.0);
      ADD_FAILURE() << "request was answered";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code, ErrorCode::kNotFound);
    }
  };
  Request request;
  request.iterations = 2;
  request.workload = "no-such-workload";
  expect_not_found(request);
  request.workload = "cg:8:0.9:2";
  request.gear_set = "warp-9";
  expect_not_found(request);
  request.gear_set = "uniform-6";
  request.algorithm = "fastest";
  expect_not_found(request);
  request.algorithm = "max";
  request.controller = "psychic";
  expect_not_found(request);
}

TEST(QueryEngineErrors, RejectedPlatformOverrideAnswersBadRequest) {
  WarmCache cache(0);
  QueryEngine engine(QueryEngineOptions{}, cache);
  Request request;
  request.workload = "cg:8:0.9:2";
  request.iterations = 2;
  request.platform.emplace_back("eager_threshold", -4.0);
  try {
    engine.execute(request, 0.0);
    FAIL() << "negative eager_threshold was accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
  }
}

#else  // _WIN32

TEST(ServeTorture, SkippedOnWindows) { GTEST_SKIP(); }

#endif

}  // namespace
}  // namespace serve
}  // namespace pals
