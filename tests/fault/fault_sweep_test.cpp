// Fault-tolerant sweep execution: retry/quarantine under injected
// scenario faults, partial-result aggregation in canonical order, and
// the determinism contract — byte-identical results.csv AND errors.csv
// for any thread count, with faults injected.
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

/// 2 workloads x 2 gear sets = 8 cells, enough for index-targeted faults.
SweepGrid small_grid() {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.9:2", "is:8:0.8:2"};
  grid.gear_sets = {"uniform-4", "avg-discrete"};
  grid.algorithms = {Algorithm::kMax, Algorithm::kAvg};
  grid.iterations = 2;
  return grid;
}

SweepResult run_faulted(int jobs, const fault::Injector& injector) {
  SweepOptions options;
  options.jobs = jobs;
  options.faults = &injector;
  options.keep_going = true;
  options.retry.max_retries = 3;
  return run_sweep(small_grid(), options);
}

TEST(FaultSweep, RetryAndQuarantineAreByteIdenticalAcrossJobCounts) {
  const fault::Injector injector(fault::FaultPlan::parse(
      "seed=42; scenario_flaky:rate=0.4,failures=2; scenario_crash:index=2"));
  const SweepResult serial = run_faulted(1, injector);
  const SweepResult parallel = run_faulted(8, injector);

  // Same seed, same plan: the retried/quarantined outcome — and both
  // rendered artifacts — cannot depend on the thread count.
  EXPECT_EQ(rows_to_csv(serial.rows), rows_to_csv(parallel.rows));
  EXPECT_EQ(errors_to_csv(serial.errors), errors_to_csv(parallel.errors));
  EXPECT_EQ(serial.stats.quarantined, parallel.stats.quarantined);
  EXPECT_EQ(serial.stats.transient_retries, parallel.stats.transient_retries);
  EXPECT_DOUBLE_EQ(serial.stats.backoff_seconds,
                   parallel.stats.backoff_seconds);

  // The crashed cell is quarantined; every other cell still aggregated.
  ASSERT_EQ(serial.errors.size(), 1u);
  EXPECT_EQ(serial.errors[0].index, 2u);
  EXPECT_EQ(serial.errors[0].error_class, fault::ErrorClass::kPermanent);
  EXPECT_EQ(serial.rows.size(), 7u);
  EXPECT_EQ(serial.scenario_seconds.size(), serial.rows.size());
  EXPECT_GT(serial.stats.transient_retries, 0u);
  EXPECT_GT(serial.stats.backoff_seconds, 0.0);
}

TEST(FaultSweep, FlakyCellsRecoverWithinRetryBudget) {
  const fault::Injector injector(
      fault::FaultPlan::parse("scenario_flaky:index=1,failures=2"));
  SweepOptions options;
  options.faults = &injector;
  options.keep_going = true;
  options.retry.max_retries = 3;
  const SweepResult result = run_sweep(small_grid(), options);
  EXPECT_FALSE(result.has_errors());  // 2 failures < 3 retries: recovers
  EXPECT_EQ(result.rows.size(), 8u);
  EXPECT_EQ(result.stats.transient_retries, 2u);
  EXPECT_DOUBLE_EQ(result.stats.backoff_seconds, 0.5 + 1.0);
}

TEST(FaultSweep, ExhaustedRetriesQuarantineAsTransient) {
  const fault::Injector injector(
      fault::FaultPlan::parse("scenario_flaky:index=1,failures=5"));
  SweepOptions options;
  options.faults = &injector;
  options.keep_going = true;
  options.retry.max_retries = 2;
  const SweepResult result = run_sweep(small_grid(), options);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].index, 1u);
  EXPECT_EQ(result.errors[0].error_class, fault::ErrorClass::kTransient);
  EXPECT_EQ(result.errors[0].attempts, 3);
  EXPECT_EQ(result.rows.size(), 7u);
}

TEST(FaultSweep, WithoutKeepGoingAFailingCellThrows) {
  const fault::Injector injector(
      fault::FaultPlan::parse("scenario_crash:index=0"));
  SweepOptions options;
  options.faults = &injector;
  options.keep_going = false;
  EXPECT_THROW(run_sweep(small_grid(), options), Error);
}

TEST(FaultSweep, SimulatedFaultsPerturbResultsDeterministically) {
  const fault::Injector injector(fault::FaultPlan::parse(
      "seed=42; link_degrade:rank=3,t=0.1s,factor=4x; "
      "msg_delay_jitter:rank=all,max=1e-4"));
  SweepOptions clean;
  clean.jobs = 2;
  SweepOptions faulted = clean;
  faulted.faults = &injector;

  const SweepResult healthy = run_sweep(small_grid(), clean);
  const SweepResult degraded = run_sweep(small_grid(), faulted);
  const SweepResult degraded_again = run_sweep(small_grid(), faulted);

  // Link degradation must actually move the numbers...
  EXPECT_NE(rows_to_csv(healthy.rows), rows_to_csv(degraded.rows));
  // ...but identically on every run: pure (seed, rank, index) functions.
  EXPECT_EQ(rows_to_csv(degraded.rows), rows_to_csv(degraded_again.rows));
  EXPECT_FALSE(degraded.has_errors());  // simulated faults fail nothing
}

TEST(FaultSweep, WorkloadLevelFailureQuarantinesOnlyThatWorkload) {
  // A tight simulated-event limit kills the larger workload's baseline
  // replay (a deterministic timeout) while the tiny one fits comfortably.
  // Under keep_going the sweep must quarantine every cell of the dead
  // workload and still aggregate the healthy one — the fail-fast fix.
  SweepGrid grid;
  grid.workloads = {"cg:4:0.9:1", "cg:16:0.9:6"};
  grid.gear_sets = {"uniform-4"};
  grid.iterations = 1;

  SweepOptions options;
  options.keep_going = true;
  // cg:4:0.9:1 replays in ~400 DES events, cg:16:0.9:6 in ~9600.
  options.base.replay.max_simulated_events = 2000;
  const SweepResult result = run_sweep(grid, options);

  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].index, 1u);
  EXPECT_EQ(result.errors[0].workload, "cg:16:0.9:6");  // qualified spec
  EXPECT_EQ(result.errors[0].error_class, fault::ErrorClass::kTimeout);
  EXPECT_NE(result.errors[0].message.find("event limit"), std::string::npos);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.stats.quarantined, 1u);
}

TEST(FaultSweep, ErrorsCsvIsHeaderOnlyWhenClean) {
  const std::string csv = errors_to_csv({});
  EXPECT_EQ(csv,
            "index,workload,variant,class,attempts,retries,"
            "backoff_seconds,message\n");
}

TEST(FaultSweep, ErrorsCsvFlattensMultilineMessages) {
  ScenarioError error;
  error.index = 3;
  error.workload = "CG-32";
  error.variant = "uniform-6 max b0.5";
  error.error_class = fault::ErrorClass::kLint;
  error.message = "trace lint failed:\nE001 deadlock\nE002 unmatched";
  const std::string csv = errors_to_csv({error});
  // Exactly two lines: header + one record, newlines flattened.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_NE(csv.find("lint"), std::string::npos);
}

}  // namespace
}  // namespace pals
