// run_guarded / classify / RetryPolicy tests: the host-side resilience
// contract — only transient failures retry, backoff is pure simulated
// time, and outcomes depend solely on the failure sequence.
#include <new>
#include <stdexcept>

#include <gtest/gtest.h>

#include "fault/guard.hpp"
#include "util/error.hpp"

namespace pals {
namespace fault {
namespace {

TEST(Classify, MapsExceptionsOntoTheTaxonomy) {
  EXPECT_EQ(classify(TransientError("injected transient fault")),
            ErrorClass::kTransient);
  EXPECT_EQ(classify(std::bad_alloc()), ErrorClass::kResource);
  EXPECT_EQ(classify(Error("simulated event limit exceeded (limit=10)")),
            ErrorClass::kTimeout);
  EXPECT_EQ(classify(Error("replay deadlock: all ranks blocked")),
            ErrorClass::kDeadlock);
  EXPECT_EQ(classify(Error("trace lint failed:\n2 errors")),
            ErrorClass::kLint);
  EXPECT_EQ(classify(Error("unknown gear set 'warp-9'")),
            ErrorClass::kPermanent);
  EXPECT_EQ(classify(std::runtime_error("anything else")),
            ErrorClass::kPermanent);
}

TEST(Classify, LintReportsMentioningDeadlockStayLint) {
  // A lint report legitimately *describes* deadlocks; the lint check must
  // win over the substring "deadlock".
  EXPECT_EQ(classify(Error("trace lint failed:\nE001 deadlock cycle 0->1")),
            ErrorClass::kLint);
}

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy policy;  // base 0.5, x2, cap 8
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(5), 8.0);   // hits the cap
  EXPECT_DOUBLE_EQ(policy.backoff_delay(20), 8.0);  // stays capped
}

TEST(RunGuarded, SuccessFirstAttempt) {
  int calls = 0;
  const GuardOutcome outcome =
      run_guarded(RetryPolicy{}, [&](int) { ++calls; });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.retries, 0);
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 0.0);
  EXPECT_EQ(calls, 1);
}

TEST(RunGuarded, TransientFailuresRetryThenSucceed) {
  RetryPolicy policy;
  policy.max_retries = 3;
  const GuardOutcome outcome = run_guarded(policy, [&](int attempt) {
    if (attempt <= 2)
      throw TransientError("injected transient fault, attempt " +
                           std::to_string(attempt));
  });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.retries, 2);
  // Two retries accrue base + base*multiplier of simulated backoff.
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 0.5 + 1.0);
}

TEST(RunGuarded, PermanentFailuresNeverRetry) {
  int calls = 0;
  const GuardOutcome outcome = run_guarded(RetryPolicy{}, [&](int) {
    ++calls;
    throw Error("invalid configuration");
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.error_class, ErrorClass::kPermanent);
  EXPECT_EQ(outcome.message, "invalid configuration");
}

TEST(RunGuarded, ExhaustedRetriesReportTransient) {
  RetryPolicy policy;
  policy.max_retries = 2;
  int calls = 0;
  const GuardOutcome outcome = run_guarded(policy, [&](int) {
    ++calls;
    throw TransientError("still flaky");
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(calls, 3);  // 1 attempt + 2 retries
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.retries, 2);
  EXPECT_EQ(outcome.error_class, ErrorClass::kTransient);
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 0.5 + 1.0);
  EXPECT_EQ(outcome.message, "still flaky");
}

TEST(RunGuarded, ZeroRetriesDisablesRetry) {
  RetryPolicy policy;
  policy.max_retries = 0;
  int calls = 0;
  const GuardOutcome outcome = run_guarded(policy, [&](int) {
    ++calls;
    throw TransientError("flaky");
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 0.0);
}

TEST(RunGuarded, OutcomeDependsOnlyOnFailureSequence) {
  RetryPolicy policy;
  policy.max_retries = 4;
  const auto flaky_twice = [](int attempt) {
    if (attempt <= 2) throw TransientError("flaky");
  };
  const GuardOutcome a = run_guarded(policy, flaky_twice);
  const GuardOutcome b = run_guarded(policy, flaky_twice);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.backoff_seconds, b.backoff_seconds);
}

TEST(RunGuarded, DescribeNamesClassAndAttempts) {
  RetryPolicy policy;
  policy.max_retries = 1;
  const GuardOutcome outcome = run_guarded(
      policy, [](int) -> void { throw TransientError("flaky"); });
  const std::string text = outcome.describe();
  EXPECT_NE(text.find("transient"), std::string::npos) << text;
  EXPECT_NE(text.find("2"), std::string::npos) << text;  // attempts
}

}  // namespace
}  // namespace fault
}  // namespace pals
