// FaultPlan grammar + Injector oracle tests: parsing (unit suffixes,
// comments, rank=all), describe() round-trips, validation, and the pure
// (seed, rank, index) perturbation functions the replay engine queries.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"

namespace pals {
namespace fault {
namespace {

TEST(FaultPlanParse, FullGrammarWithUnitSuffixes) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=42; link_degrade:rank=3,t=0.5s,factor=4x; "
      "node_slowdown:rank=1,t=250ms,factor=2; "
      "gear_stuck:rank=7,gear=min; msg_delay_jitter:rank=all,max=1e-4");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.specs.size(), 4u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(plan.specs[0].rank, 3);
  EXPECT_DOUBLE_EQ(plan.specs[0].start, 0.5);
  EXPECT_DOUBLE_EQ(plan.specs[0].factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.specs[1].start, 0.25);
  EXPECT_EQ(plan.specs[2].gear, StuckGear::kMin);
  EXPECT_EQ(plan.specs[3].rank, -1);  // rank=all
  EXPECT_DOUBLE_EQ(plan.specs[3].max_jitter, 1e-4);
  EXPECT_TRUE(plan.perturbs_simulation());
  EXPECT_FALSE(plan.perturbs_scenarios());
}

TEST(FaultPlanParse, NewlinesAndCommentsAreEntrySeparators) {
  const FaultPlan plan = FaultPlan::parse(
      "# campaign header comment\n"
      "seed=7\n"
      "scenario_flaky:index=2,failures=3   # one flaky cell\n"
      "scenario_crash:index=5\n");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.specs.size(), 2u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kScenarioFlaky);
  EXPECT_EQ(plan.specs[0].index, 2);
  EXPECT_EQ(plan.specs[0].failures, 3);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kScenarioCrash);
  EXPECT_FALSE(plan.perturbs_simulation());
  EXPECT_TRUE(plan.perturbs_scenarios());
}

TEST(FaultPlanParse, DescribeRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=99; link_degrade:rank=3,t=0.5s,factor=4x; "
      "gear_stuck:rank=2,gear=max; msg_delay_jitter:rank=all,max=2e-5; "
      "scenario_flaky:rate=0.25,failures=2");
  EXPECT_EQ(FaultPlan::parse(plan.describe()), plan);
}

TEST(FaultPlanParse, RejectsGrammarViolations) {
  EXPECT_THROW(FaultPlan::parse("warp_core:rank=1"), Error);
  EXPECT_THROW(FaultPlan::parse("link_degrade:rank=1,bogus=3"), Error);
  EXPECT_THROW(FaultPlan::parse("link_degrade:rank=not_a_rank"), Error);
  EXPECT_THROW(FaultPlan::parse("gear_stuck:rank=1,gear=warp"), Error);
  EXPECT_THROW(FaultPlan::parse("seed=always"), Error);
}

TEST(FaultPlanParse, ValidateRejectsOutOfRangeFields) {
  EXPECT_THROW(FaultPlan::parse("link_degrade:rank=1,factor=0.5"), Error);
  EXPECT_THROW(FaultPlan::parse("link_degrade:rank=1,t=-1"), Error);
  EXPECT_THROW(FaultPlan::parse("scenario_flaky:rate=1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("msg_delay_jitter:rank=all,max=-1e-4"),
               Error);
}

TEST(FaultPlanParse, FromFileOrInlineReadsBothSources) {
  const std::string inline_text = "seed=3; scenario_crash:index=1";
  const FaultPlan from_inline = FaultPlan::from_file_or_inline(inline_text);
  EXPECT_EQ(from_inline.seed, 3u);

  const std::string path = testing::TempDir() + "plan_test.faults";
  {
    std::ofstream out(path);
    out << inline_text << "\n";
  }
  EXPECT_EQ(FaultPlan::from_file_or_inline(path), from_inline);
  std::remove(path.c_str());
}

TEST(Injector, ComputeFactorRespectsRankAndStartTime) {
  const Injector inject(
      FaultPlan::parse("node_slowdown:rank=1,t=1.0,factor=2"));
  EXPECT_DOUBLE_EQ(inject.compute_factor(1, 0.5), 1.0);  // before onset
  EXPECT_DOUBLE_EQ(inject.compute_factor(1, 1.0), 2.0);  // at onset
  EXPECT_DOUBLE_EQ(inject.compute_factor(1, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(inject.compute_factor(0, 3.0), 1.0);  // other rank
}

TEST(Injector, LinkDegradeMatchesEitherEndpoint) {
  const Injector inject(
      Injector(FaultPlan::parse("link_degrade:rank=3,t=0.5,factor=4")));
  EXPECT_DOUBLE_EQ(inject.transfer_factor(3, 0, 1.0), 4.0);  // src degraded
  EXPECT_DOUBLE_EQ(inject.transfer_factor(0, 3, 1.0), 4.0);  // dst degraded
  EXPECT_DOUBLE_EQ(inject.transfer_factor(0, 1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(inject.transfer_factor(3, 0, 0.25), 1.0);  // before onset
}

TEST(Injector, LatencyJitterIsPureBoundedAndSeeded) {
  const FaultPlan plan =
      FaultPlan::parse("seed=11; msg_delay_jitter:rank=all,max=1e-4");
  const Injector a(plan), b(plan);
  bool any_positive = false;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const Seconds jitter = a.latency_jitter(2, i);
    EXPECT_GE(jitter, 0.0);
    EXPECT_LE(jitter, 1e-4);
    EXPECT_DOUBLE_EQ(jitter, b.latency_jitter(2, i));  // pure function
    any_positive = any_positive || jitter > 0.0;
  }
  EXPECT_TRUE(any_positive);

  FaultPlan reseeded = plan;
  reseeded.seed = 12;
  const Injector c(reseeded);
  bool any_difference = false;
  for (std::uint64_t i = 0; i < 256 && !any_difference; ++i)
    any_difference = a.latency_jitter(2, i) != c.latency_jitter(2, i);
  EXPECT_TRUE(any_difference) << "jitter ignores the plan seed";
}

TEST(Injector, StuckGearLastSpecWins) {
  const Injector inject(FaultPlan::parse(
      "gear_stuck:rank=2,gear=min; gear_stuck:rank=2,gear=max"));
  EXPECT_TRUE(inject.has_stuck_gears());
  ASSERT_TRUE(inject.stuck_gear(2).has_value());
  EXPECT_EQ(*inject.stuck_gear(2), StuckGear::kMax);
  EXPECT_FALSE(inject.stuck_gear(0).has_value());
}

TEST(Injector, ScenarioFaultsByIndex) {
  const Injector inject(FaultPlan::parse(
      "scenario_flaky:index=2,failures=2; scenario_crash:index=5"));
  EXPECT_EQ(inject.scenario_transient_failures(2), 2);
  EXPECT_EQ(inject.scenario_transient_failures(3), 0);
  EXPECT_TRUE(inject.scenario_crashed(5));
  EXPECT_FALSE(inject.scenario_crashed(2));
}

TEST(Injector, RateBasedSelectionIsSeededAndDeterministic) {
  const FaultPlan plan =
      FaultPlan::parse("seed=5; scenario_flaky:rate=0.5,failures=1");
  const Injector a(plan), b(plan);
  int selected = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.scenario_transient_failures(i),
              b.scenario_transient_failures(i));
    if (a.scenario_transient_failures(i) > 0) ++selected;
  }
  // A 50 % rate over 200 cells lands well inside [60, 140] unless the
  // membership hash is broken.
  EXPECT_GT(selected, 60);
  EXPECT_LT(selected, 140);

  FaultPlan reseeded = plan;
  reseeded.seed = 6;
  const Injector c(reseeded);
  bool any_difference = false;
  for (std::size_t i = 0; i < 200 && !any_difference; ++i)
    any_difference = a.scenario_transient_failures(i) !=
                     c.scenario_transient_failures(i);
  EXPECT_TRUE(any_difference) << "rate selection ignores the plan seed";
}

TEST(Campaign, DeterministicSeedSensitiveAndValid) {
  CampaignOptions options;
  options.seed = 21;
  options.ranks = 16;
  options.count = 12;
  options.scenarios = 10;
  options.kinds.push_back(FaultKind::kScenarioFlaky);
  options.kinds.push_back(FaultKind::kScenarioCrash);

  const FaultPlan plan = generate_campaign(options);
  EXPECT_EQ(plan.specs.size(), 12u);
  plan.validate();  // generated plans must pass their own validation
  EXPECT_EQ(generate_campaign(options), plan);

  CampaignOptions other = options;
  other.seed = 22;
  EXPECT_NE(generate_campaign(other), plan);
}

}  // namespace
}  // namespace fault
}  // namespace pals
