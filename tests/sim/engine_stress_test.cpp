// Stress and scale tests for the DES core and the replay simulator.
#include <gtest/gtest.h>

#include <vector>

#include "replay/replay.hpp"
#include "simcore/engine.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

TEST(EngineStress, HundredThousandEventsInOrder) {
  SimEngine engine;
  Rng rng(77);
  std::vector<Seconds> fire_times;
  fire_times.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const Seconds when = rng.uniform(0.0, 1000.0);
    engine.schedule_at(when, [&fire_times, &engine] {
      fire_times.push_back(engine.now());
    });
  }
  engine.run();
  ASSERT_EQ(fire_times.size(), 100000u);
  for (std::size_t i = 1; i < fire_times.size(); ++i)
    ASSERT_LE(fire_times[i - 1], fire_times[i]);
  EXPECT_EQ(engine.executed_events(), 100000u);
}

TEST(EngineStress, CascadingSchedulesTerminate) {
  SimEngine engine;
  int depth = 0;
  std::function<void()> cascade = [&] {
    if (++depth < 10000) engine.schedule_after(0.001, cascade);
  };
  engine.schedule_at(0.0, cascade);
  engine.run();
  EXPECT_EQ(depth, 10000);
  EXPECT_NEAR(engine.now(), 9.999, 1e-9);
}

TEST(ReplayStress, LargeRandomRingCompletes) {
  // 256 ranks x 20 iterations of nonblocking ring exchange + allreduce:
  // ~46k events through the full matching machinery.
  constexpr Rank kRanks = 256;
  constexpr int kIterations = 20;
  Rng rng(5);
  std::vector<double> weights(kRanks);
  for (auto& w : weights) w = rng.uniform(0.2, 1.0);
  Trace t(kRanks);
  for (Rank r = 0; r < kRanks; ++r) {
    TraceBuilder b(t, r);
    const Rank next = (r + 1) % kRanks;
    const Rank prev = (r - 1 + kRanks) % kRanks;
    for (int i = 0; i < kIterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.001 * weights[static_cast<std::size_t>(r)]);
      b.irecv(prev, i, 65536, 0).isend(next, i, 65536, 1).waitall();
      b.collective(CollectiveOp::kAllreduce, 8);
      b.marker(MarkerKind::kIterationEnd, i);
    }
  }
  const ReplayResult r = replay(t, ReplayConfig{});
  EXPECT_EQ(r.point_to_point_messages,
            static_cast<std::size_t>(kRanks) * kIterations);
  EXPECT_EQ(r.collective_operations, static_cast<std::size_t>(kIterations));
  EXPECT_NO_THROW(r.timeline.validate());
  EXPECT_EQ(r.messages.size(), r.point_to_point_messages);
}

TEST(ReplayStress, ContendedLinksAndBusesStillComplete) {
  constexpr Rank kRanks = 64;
  Trace t(kRanks);
  // Everyone sends a rendezvous message to rank 0.
  {
    TraceBuilder b(t, 0);
    for (Rank s = 1; s < kRanks; ++s) b.irecv(s, 0, 1 << 20, s);
    b.waitall();
  }
  for (Rank s = 1; s < kRanks; ++s) TraceBuilder(t, s).send(0, 0, 1 << 20);
  ReplayConfig config;
  config.platform.buses = 4;
  config.platform.links_per_node = 1;
  const ReplayResult r = replay(t, config);
  EXPECT_GT(r.link_contention_delay, 0.0);
  EXPECT_NO_THROW(r.timeline.validate());
}

}  // namespace
}  // namespace pals
