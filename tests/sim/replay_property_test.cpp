// Property-based tests of the replay simulator over randomized but
// deadlock-free traces.
#include <gtest/gtest.h>

#include <vector>

#include "replay/replay.hpp"
#include "trace/trace.hpp"
#include "trace/transform.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

ReplayConfig default_config() {
  ReplayConfig config;
  config.platform.latency = 1e-5;
  config.platform.bandwidth = 250e6;
  return config;
}

/// Random deadlock-free trace: iterations of random computes, symmetric
/// non-blocking ring exchanges and random collectives.
Trace random_trace(std::uint64_t seed, Rank n_ranks, int iterations) {
  Rng rng(seed);
  Trace t(n_ranks);
  std::vector<std::vector<double>> bursts(
      static_cast<std::size_t>(iterations),
      std::vector<double>(static_cast<std::size_t>(n_ranks)));
  std::vector<CollectiveOp> colls;
  std::vector<Bytes> coll_bytes;
  std::vector<Bytes> ring_bytes(static_cast<std::size_t>(iterations));
  const CollectiveOp ops[] = {CollectiveOp::kBarrier, CollectiveOp::kBcast,
                              CollectiveOp::kAllreduce,
                              CollectiveOp::kAlltoall};
  for (int it = 0; it < iterations; ++it) {
    for (Rank r = 0; r < n_ranks; ++r)
      bursts[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)] =
          rng.uniform(0.0, 0.01);
    colls.push_back(ops[rng.uniform_int(0, 3)]);
    coll_bytes.push_back(rng.uniform_int(0, 1 << 16));
    ring_bytes[static_cast<std::size_t>(it)] = rng.uniform_int(1, 1 << 20);
  }
  for (Rank r = 0; r < n_ranks; ++r) {
    TraceBuilder b(t, r);
    const Rank next = (r + 1) % n_ranks;
    const Rank prev = (r - 1 + n_ranks) % n_ranks;
    for (int it = 0; it < iterations; ++it) {
      b.marker(MarkerKind::kIterationBegin, it);
      b.compute(bursts[static_cast<std::size_t>(it)][static_cast<std::size_t>(
          r)]);
      if (n_ranks > 1) {
        const Bytes bytes = ring_bytes[static_cast<std::size_t>(it)];
        b.irecv(prev, it, bytes, 0);
        b.isend(next, it, bytes, 1);
        b.waitall();
      }
      b.collective(colls[static_cast<std::size_t>(it)],
                   coll_bytes[static_cast<std::size_t>(it)]);
      b.marker(MarkerKind::kIterationEnd, it);
    }
  }
  t.validate();
  return t;
}

class ReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayProperty, CompletesAndTimelineIsValid) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult r = replay(t, default_config());
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NO_THROW(r.timeline.validate());
}

TEST_P(ReplayProperty, ComputeTimeIsConserved) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult r = replay(t, default_config());
  for (Rank rank = 0; rank < t.n_ranks(); ++rank) {
    EXPECT_NEAR(r.compute_time[static_cast<std::size_t>(rank)],
                t.computation_time(rank), 1e-9)
        << "rank " << rank;
  }
}

TEST_P(ReplayProperty, MakespanAtLeastCriticalRank) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult r = replay(t, default_config());
  for (Rank rank = 0; rank < t.n_ranks(); ++rank)
    EXPECT_GE(r.makespan, t.computation_time(rank) - 1e-12);
}

TEST_P(ReplayProperty, DeterministicAcrossRuns) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult a = replay(t, default_config());
  const ReplayResult b = replay(t, default_config());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.timeline, b.timeline);
}

TEST_P(ReplayProperty, ScalingComputeUpNeverShortensExecution) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult base = replay(t, default_config());
  const ReplayResult slowed =
      replay(scale_compute_uniform(t, 1.5), default_config());
  EXPECT_GE(slowed.makespan, base.makespan - 1e-12);
}

TEST_P(ReplayProperty, BusContentionOnlyAddsTime) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult free_buses = replay(t, default_config());
  ReplayConfig contended = default_config();
  contended.platform.buses = 2;
  const ReplayResult limited = replay(t, contended);
  EXPECT_GE(limited.makespan, free_buses.makespan - 1e-12);
}

TEST_P(ReplayProperty, HigherLatencyNeverFaster) {
  const Trace t = random_trace(GetParam(), 8, 5);
  const ReplayResult fast = replay(t, default_config());
  ReplayConfig slow = default_config();
  slow.platform.latency *= 10.0;
  const ReplayResult slowed = replay(t, slow);
  EXPECT_GE(slowed.makespan, fast.makespan - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace pals
