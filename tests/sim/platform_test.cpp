#include "network/platform.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

PlatformModel unit_platform() {
  PlatformModel p;
  p.latency = 1.0;
  p.bandwidth = 100.0;  // bytes/s
  return p;
}

TEST(PlatformModel, MessageTimeIsLatencyPlusTransfer) {
  const PlatformModel p = unit_platform();
  EXPECT_DOUBLE_EQ(p.transfer_time(200), 2.0);
  EXPECT_DOUBLE_EQ(p.message_time(200), 3.0);
  EXPECT_DOUBLE_EQ(p.message_time(0), 1.0);
}

TEST(PlatformModel, ValidateRejectsBadParameters) {
  PlatformModel p;
  p.latency = -1.0;
  EXPECT_THROW(p.validate(), Error);
  p = PlatformModel{};
  p.bandwidth = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = PlatformModel{};
  p.buses = -1;
  EXPECT_THROW(p.validate(), Error);
  p = PlatformModel{};
  p.collective_scale = 0.0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(CollectiveCost, BarrierIsLatencyBound) {
  const PlatformModel p = unit_platform();
  // 8 ranks -> 3 dissemination stages of pure latency.
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kBarrier, 8, 0), 3.0);
}

TEST(CollectiveCost, SingleRankIsFree) {
  const PlatformModel p = unit_platform();
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kAllreduce, 1, 100), 0.0);
}

TEST(CollectiveCost, TreeCollectivesScaleWithLogP) {
  const PlatformModel p = unit_platform();
  const Seconds c8 = collective_cost(p, CollectiveOp::kBcast, 8, 100);
  const Seconds c64 = collective_cost(p, CollectiveOp::kBcast, 64, 100);
  EXPECT_DOUBLE_EQ(c64 / c8, 2.0);  // log2 64 / log2 8
}

TEST(CollectiveCost, AllreduceIsTwiceBcast) {
  const PlatformModel p = unit_platform();
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kAllreduce, 16, 100),
                   2.0 * collective_cost(p, CollectiveOp::kBcast, 16, 100));
}

TEST(CollectiveCost, AlltoallScalesLinearlyWithP) {
  const PlatformModel p = unit_platform();
  const Seconds c4 = collective_cost(p, CollectiveOp::kAlltoall, 4, 100);
  const Seconds c8 = collective_cost(p, CollectiveOp::kAlltoall, 8, 100);
  EXPECT_DOUBLE_EQ(c4, 3.0 * p.message_time(100));
  EXPECT_DOUBLE_EQ(c8, 7.0 * p.message_time(100));
}

TEST(CollectiveCost, NonPowerOfTwoRoundsStagesUp) {
  const PlatformModel p = unit_platform();
  // 5 ranks -> ceil(log2 5) = 3 stages.
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kBarrier, 5, 0), 3.0);
}

TEST(CollectiveCost, ScaleMultiplies) {
  PlatformModel p = unit_platform();
  p.collective_scale = 2.5;
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kBarrier, 8, 0), 7.5);
}

TEST(CollectiveAlgo, NamesRoundTrip) {
  for (const CollectiveAlgo algo :
       {CollectiveAlgo::kDefault, CollectiveAlgo::kTree,
        CollectiveAlgo::kRing, CollectiveAlgo::kPairwise}) {
    EXPECT_EQ(parse_collective_algo(to_string(algo)), algo);
  }
  EXPECT_THROW(parse_collective_algo("magic"), Error);
}

TEST(CollectiveAlgo, OverrideChangesCost) {
  PlatformModel p = unit_platform();
  const Seconds tree_default =
      collective_cost(p, CollectiveOp::kAllreduce, 8, 100);  // 2*3*msg
  p.collective_algorithms[CollectiveOp::kAllreduce] = CollectiveAlgo::kRing;
  const Seconds ring = collective_cost(p, CollectiveOp::kAllreduce, 8, 100);
  EXPECT_DOUBLE_EQ(tree_default, 6.0 * p.message_time(100));
  EXPECT_DOUBLE_EQ(ring, 7.0 * p.message_time(100));
}

TEST(CollectiveAlgo, TreeAlltoallIsLogarithmic) {
  PlatformModel p = unit_platform();
  p.collective_algorithms[CollectiveOp::kAlltoall] = CollectiveAlgo::kTree;
  // Bruck-style alltoall: log2(P) stages instead of P-1.
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kAlltoall, 8, 100),
                   3.0 * p.message_time(100));
}

TEST(CollectiveAlgo, OverrideOnlyAffectsListedOp) {
  PlatformModel p = unit_platform();
  p.collective_algorithms[CollectiveOp::kAllreduce] = CollectiveAlgo::kRing;
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kBcast, 8, 100),
                   3.0 * p.message_time(100));  // still tree
}

TEST(CollectiveAlgo, BarrierStaysLatencyBound) {
  PlatformModel p = unit_platform();
  p.collective_algorithms[CollectiveOp::kBarrier] = CollectiveAlgo::kRing;
  EXPECT_DOUBLE_EQ(collective_cost(p, CollectiveOp::kBarrier, 8, 0), 7.0);
}

TEST(BusAllocator, UnlimitedNeverDelays) {
  BusAllocator bus(0);
  EXPECT_DOUBLE_EQ(bus.reserve(5.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(bus.reserve(5.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(bus.contention_delay(), 0.0);
}

TEST(BusAllocator, SingleBusSerializes) {
  BusAllocator bus(1);
  EXPECT_DOUBLE_EQ(bus.reserve(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(bus.reserve(0.5, 2.0), 2.0);  // waits for the first
  EXPECT_DOUBLE_EQ(bus.reserve(5.0, 1.0), 5.0);  // idle gap, no wait
  EXPECT_DOUBLE_EQ(bus.contention_delay(), 1.5);
}

TEST(BusAllocator, TwoBusesOverlapTwoTransfers) {
  BusAllocator bus(2);
  EXPECT_DOUBLE_EQ(bus.reserve(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(bus.reserve(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(bus.reserve(1.0, 1.0), 4.0);  // both busy until 4
}

TEST(BusAllocator, CountsReservations) {
  BusAllocator bus(1);
  bus.reserve(0.0, 1.0);
  bus.reserve(0.0, 1.0);
  EXPECT_EQ(bus.reservations(), 2u);
}

TEST(BusAllocator, RejectsNegativeDuration) {
  BusAllocator bus(1);
  EXPECT_THROW(bus.reserve(0.0, -1.0), Error);
}

}  // namespace
}  // namespace pals
