#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

/// Platform with easy arithmetic: latency 1 s, bandwidth 100 B/s,
/// eager threshold 100 B, no bus contention.
ReplayConfig unit_config() {
  ReplayConfig config;
  config.platform.latency = 1.0;
  config.platform.bandwidth = 100.0;
  config.platform.eager_threshold = 100;
  config.platform.buses = 0;
  return config;
}

TEST(Replay, ComputeOnlyMakespanIsMaxRank) {
  Trace t(3);
  TraceBuilder(t, 0).compute(1.0);
  TraceBuilder(t, 1).compute(5.0);
  TraceBuilder(t, 2).compute(3.0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.compute_time[1], 5.0);
  // Idle tails of ranks 0 and 2 count as communication-state time.
  EXPECT_DOUBLE_EQ(r.communication_time[0], 4.0);
}

TEST(Replay, EagerSendSenderOnlyPaysLatency) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  // Arrival = latency + 100/100 transfer = 2 s; sender done at 1 s.
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kSend), 1.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kRecv), 2.0);
}

TEST(Replay, EagerArrivalBeforeRecvPost) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).compute(10.0).recv(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  // Message arrived at 2 s; recv posted at 10 s returns immediately.
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kRecv), 0.0);
}

TEST(Replay, EagerRecvPostedFirstBlocksUntilArrival) {
  Trace t(2);
  TraceBuilder(t, 0).compute(5.0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  // Send posted at 5, arrival 5 + 1 + 1 = 7.
  EXPECT_DOUBLE_EQ(r.makespan, 7.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kRecv), 7.0);
}

TEST(Replay, RendezvousSenderBlocksForReceiver) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 200);  // 200 B > eager threshold
  TraceBuilder(t, 1).compute(3.0).recv(0, 0, 200);
  const ReplayResult r = replay(t, unit_config());
  // Transfer starts at max(0, 3) + 1 = 4, takes 2 s -> both done at 6.
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kSend), 6.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kRecv), 3.0);
}

TEST(Replay, RendezvousRecvPostedFirst) {
  Trace t(2);
  TraceBuilder(t, 0).compute(3.0).send(1, 0, 200);
  TraceBuilder(t, 1).recv(0, 0, 200);
  const ReplayResult r = replay(t, unit_config());
  // Transfer starts at max(3, 0) + 1 = 4, ends at 6.
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kRecv), 6.0);
}

TEST(Replay, NonblockingSendOverlapsCompute) {
  Trace t(2);
  TraceBuilder(t, 0).isend(1, 0, 100, 0).compute(5.0).wait(0);
  TraceBuilder(t, 1).recv(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  // isend completes at 1 s (< 5 s of compute): wait is free.
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kWait), 0.0);
}

TEST(Replay, WaitBlocksUntilRendezvousCompletes) {
  Trace t(2);
  TraceBuilder(t, 0).isend(1, 0, 200, 0).compute(1.0).wait(0);
  TraceBuilder(t, 1).compute(2.0).recv(0, 0, 200);
  const ReplayResult r = replay(t, unit_config());
  // Transfer: max(0, 2) + 1 = 3 start, ends 5. Rank 0 waits 1 -> 5.
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kWait), 4.0);
}

TEST(Replay, IrecvCompletesAtArrival) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).irecv(0, 0, 100, 0).compute(1.0).wait(0);
  const ReplayResult r = replay(t, unit_config());
  // Arrival at 2; rank 1 computed until 1 then waits 1 -> 2.
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kWait), 1.0);
}

TEST(Replay, WaitallWaitsForAllRequests) {
  Trace t(3);
  TraceBuilder(t, 0)
      .irecv(1, 0, 100, 0)
      .irecv(2, 0, 100, 1)
      .waitall();
  TraceBuilder(t, 1).compute(2.0).send(0, 0, 100);
  TraceBuilder(t, 2).compute(6.0).send(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  // Last arrival: 6 + 2 = 8.
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kWait), 8.0);
}

TEST(Replay, CollectiveSynchronizesAllRanks) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).collective(CollectiveOp::kAllreduce, 0);
  TraceBuilder(t, 1).collective(CollectiveOp::kAllreduce, 0);
  const ReplayResult r = replay(t, unit_config());
  // Last arrival 1; allreduce of 0 bytes over 2 ranks: 2 * 1 * (1) = 2.
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(1, RankState::kCollective), 3.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kCollective), 2.0);
}

TEST(Replay, CollectiveSequencesInterleaveCorrectly) {
  Trace t(2);
  for (Rank r = 0; r < 2; ++r) {
    TraceBuilder(t, r)
        .collective(CollectiveOp::kBarrier, 0)
        .compute(r == 0 ? 1.0 : 2.0)
        .collective(CollectiveOp::kBarrier, 0);
  }
  const ReplayResult r = replay(t, unit_config());
  // Barrier over 2 ranks costs 1 stage * latency = 1.
  // t=0: barrier -> 1. Compute to 2 and 3. Second barrier: 3 + 1 = 4.
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(Replay, MessageOrderingWithinChannelIsFifo) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 7, 10).send(1, 7, 20);
  TraceBuilder(t, 1).recv(0, 7, 10).recv(0, 7, 20);
  EXPECT_NO_THROW(replay(t, unit_config()));
}

TEST(Replay, DistinctTagsMatchIndependently) {
  // Messages posted in "crossed" tag order still match by tag.
  Trace t(2);
  TraceBuilder(t, 0).send(1, 1, 10).send(1, 2, 10);
  TraceBuilder(t, 1).recv(0, 2, 10).recv(0, 1, 10);
  EXPECT_NO_THROW(replay(t, unit_config()));
}

TEST(Replay, BusContentionSerializesTransfers) {
  ReplayConfig config = unit_config();
  config.platform.buses = 1;
  Trace t(4);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100);
  TraceBuilder(t, 2).send(3, 0, 100);
  TraceBuilder(t, 3).recv(2, 0, 100);
  const ReplayResult r = replay(t, config);
  // One transfer delayed by a full transfer time (1 s).
  EXPECT_DOUBLE_EQ(r.bus_contention_delay, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // second arrival at 1 + 1 + 1
}

TEST(Replay, EndpointLinksSerializeFanIn) {
  // Three senders target one receiver; with one input link per node the
  // receiving endpoint serializes the transfers.
  ReplayConfig config = unit_config();
  config.platform.links_per_node = 1;
  Trace t(4);
  TraceBuilder(t, 0)
      .irecv(1, 0, 100, 0)
      .irecv(2, 0, 100, 1)
      .irecv(3, 0, 100, 2)
      .waitall();
  for (Rank s = 1; s <= 3; ++s) TraceBuilder(t, s).send(0, 0, 100);
  const ReplayResult r = replay(t, config);
  // Transfers of 1 s each serialize at rank 0's input link: last arrival
  // is 2 (queue) + 1 (transfer) + 1 (latency) = 4 instead of 2.
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
  EXPECT_DOUBLE_EQ(r.link_contention_delay, 3.0);  // 1 + 2 seconds queued
}

TEST(Replay, EndpointLinksIdleWhenUnlimited) {
  Trace t(4);
  TraceBuilder(t, 0)
      .irecv(1, 0, 100, 0)
      .irecv(2, 0, 100, 1)
      .irecv(3, 0, 100, 2)
      .waitall();
  for (Rank s = 1; s <= 3; ++s) TraceBuilder(t, s).send(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.link_contention_delay, 0.0);
}

TEST(Replay, DisjointPairsUnaffectedByEndpointLinks) {
  ReplayConfig config = unit_config();
  config.platform.links_per_node = 1;
  Trace t(4);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100);
  TraceBuilder(t, 2).send(3, 0, 100);
  TraceBuilder(t, 3).recv(2, 0, 100);
  const ReplayResult r = replay(t, config);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);  // no shared endpoints, no delay
  EXPECT_DOUBLE_EQ(r.link_contention_delay, 0.0);
}

TEST(Replay, UnlimitedBusesDoNotDelay) {
  Trace t(4);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100);
  TraceBuilder(t, 2).send(3, 0, 100);
  TraceBuilder(t, 3).recv(2, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.bus_contention_delay, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(Replay, DeadlockIsDetectedAndReported) {
  Trace t(2);
  TraceBuilder(t, 0).recv(1, 0, 10);
  TraceBuilder(t, 1).compute(1.0);
  try {
    replay(t, unit_config());
    FAIL() << "expected deadlock error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("rank 0"), std::string::npos);
  }
}

TEST(Replay, WaitallOnNeverCompletedRequestReportsBlockedRank) {
  // Rank 0 waits on an irecv whose matching send never happens; rank 1
  // finishes normally. The replay must terminate with a diagnostic that
  // names the stuck rank, not hang.
  Trace t(2);
  TraceBuilder(t, 0).irecv(1, 0, 100, 0).waitall();
  TraceBuilder(t, 1).compute(1.0);
  try {
    replay(t, unit_config());
    FAIL() << "expected deadlock error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    // The finished rank must not be reported as blocked.
    EXPECT_EQ(what.find("rank 1 stuck"), std::string::npos) << what;
  }
}

TEST(Replay, WaitOnNeverCompletedRequestReportsBlockedRank) {
  Trace t(2);
  TraceBuilder(t, 0).irecv(1, 0, 100, 0).compute(0.5).wait(0);
  TraceBuilder(t, 1).compute(1.0);
  try {
    replay(t, unit_config());
    FAIL() << "expected deadlock error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_EQ(what.find("rank 1 stuck"), std::string::npos) << what;
  }
}

TEST(Replay, CollectiveMissingFromOneRankRejectedUpFront) {
  // A collective only a subset of ranks ever issues is caught by trace
  // validation before replay, naming the short rank.
  Trace t(3);
  TraceBuilder(t, 0).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1).compute(1.0).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 2).compute(2.0);
  try {
    replay(t, unit_config());
    FAIL() << "expected validation error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("collective"), std::string::npos) << what;
  }
}

TEST(Replay, CollectiveEnteredBySubsetReportsAllBlockedRanks) {
  // Ranks 1 and 2 enter a barrier; rank 0 is stuck in an unmatched recv
  // before its own barrier, so the collective never completes. The
  // report must show every rank blocked, each at its real event.
  Trace t(3);
  TraceBuilder(t, 0).recv(1, 5, 10).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 2).compute(1.0).collective(CollectiveOp::kBarrier, 0);
  try {
    replay(t, unit_config());
    FAIL() << "expected deadlock error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
    EXPECT_NE(what.find("coll"), std::string::npos) << what;
  }
}

TEST(Replay, DeadlockReportIncludesEventPosition) {
  // The diagnostic points at the event each blocked rank is stuck on.
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).recv(1, 0, 10);
  TraceBuilder(t, 1).compute(1.0);
  try {
    replay(t, unit_config());
    FAIL() << "expected deadlock error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck at event"), std::string::npos) << what;
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
  }
}

TEST(Replay, CrossedBlockingRendezvousSendsDeadlock) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 500).recv(1, 1, 500);
  TraceBuilder(t, 1).send(0, 1, 500).recv(0, 0, 500);
  EXPECT_THROW(replay(t, unit_config()), Error);
}

TEST(Replay, CrossedEagerSendsSucceed) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 50).recv(1, 1, 50);
  TraceBuilder(t, 1).send(0, 1, 50).recv(0, 0, 50);
  EXPECT_NO_THROW(replay(t, unit_config()));
}

TEST(Replay, PreservesComputeTimePerRank) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.25).send(1, 0, 100).compute(0.75);
  TraceBuilder(t, 1).compute(2.0).recv(0, 0, 100).compute(1.0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_NEAR(r.compute_time[0], 2.0, 1e-12);
  EXPECT_NEAR(r.compute_time[1], 3.0, 1e-12);
}

TEST(Replay, TimelineIsPaddedAndValid) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0);
  TraceBuilder(t, 1).compute(4.0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_NO_THROW(r.timeline.validate());
  // Rank 0 padded with idle up to the makespan.
  const auto lane = r.timeline.intervals(0);
  ASSERT_FALSE(lane.empty());
  EXPECT_DOUBLE_EQ(lane.back().end, r.makespan);
  EXPECT_EQ(lane.back().state, RankState::kIdle);
}

TEST(Replay, ComputePhaseLabelsLandInTimeline) {
  Trace t(1);
  TraceBuilder(t, 0).compute(1.0, 0).compute(2.0, 1);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.timeline.compute_time(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.timeline.compute_time(0, 1), 2.0);
}

TEST(Replay, TrafficStatisticsAreCounted) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1).recv(0, 0, 100).collective(CollectiveOp::kBarrier, 0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_EQ(r.point_to_point_messages, 1u);
  EXPECT_EQ(r.point_to_point_bytes, 100u);
  EXPECT_EQ(r.collective_operations, 1u);
  EXPECT_GT(r.simulated_events, 0u);
}

TEST(Replay, MarkersAreFree) {
  Trace t(1);
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(1.0)
      .marker(MarkerKind::kIterationEnd, 0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(Replay, RootedCollectiveUsesMaxBytes) {
  // Ranks contribute different byte counts; the cost uses the maximum.
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kGather, 100, 0);
  TraceBuilder(t, 1).collective(CollectiveOp::kGather, 300, 0);
  const ReplayResult r = replay(t, unit_config());
  // 1 stage * (1 + 300/100) = 4.
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(Replay, SingleRankTraceRuns) {
  Trace t(1);
  TraceBuilder(t, 0).compute(1.5).collective(CollectiveOp::kBarrier, 0);
  const ReplayResult r = replay(t, unit_config());
  // Single-rank collectives cost nothing.
  EXPECT_DOUBLE_EQ(r.makespan, 1.5);
}

TEST(Replay, RankWithNoEventsIdlesToMakespan) {
  Trace t(2);
  TraceBuilder(t, 1).compute(3.0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kIdle), 3.0);
}

TEST(Replay, ZeroByteMessageCostsOnlyLatency) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 0);
  TraceBuilder(t, 1).recv(0, 0, 0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);  // pure latency arrival
}

TEST(Replay, EagerThresholdBoundaryIsInclusive) {
  // Exactly at the threshold -> eager (sender pays only latency).
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100).compute(0.1);
  TraceBuilder(t, 1).compute(50.0).recv(0, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.timeline.state_time(0, RankState::kSend), 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 50.0);  // message long arrived
}

TEST(Replay, JustAboveThresholdIsRendezvous) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 101).compute(0.1);
  TraceBuilder(t, 1).compute(50.0).recv(0, 0, 101);
  const ReplayResult r = replay(t, unit_config());
  // Sender blocks until the late receiver completes the rendezvous.
  EXPECT_GT(r.timeline.state_time(0, RankState::kSend), 50.0);
}

TEST(Replay, ZeroDurationComputeIsFree) {
  Trace t(1);
  TraceBuilder(t, 0).compute(0.0).compute(1.0);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(Replay, CollectiveScaleStretchesCollectives) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1).collective(CollectiveOp::kBarrier, 0);
  ReplayConfig config = unit_config();
  config.platform.collective_scale = 3.0;
  const ReplayResult r = replay(t, config);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // 1 stage * latency * 3
}

TEST(Replay, ManyOutstandingRequestsResolve) {
  // One rank posts 32 irecvs up front, peers send in arbitrary order.
  constexpr Rank kPeers = 8;
  Trace t(kPeers + 1);
  {
    TraceBuilder b(t, 0);
    for (Rank p = 1; p <= kPeers; ++p)
      for (std::int32_t k = 0; k < 4; ++k)
        b.irecv(p, k, 64, (p - 1) * 4 + k);
    b.waitall();
  }
  for (Rank p = 1; p <= kPeers; ++p) {
    TraceBuilder b(t, p);
    b.compute(0.01 * p);
    for (std::int32_t k = 3; k >= 0; --k) b.send(0, k, 64);
  }
  const ReplayResult r = replay(t, unit_config());
  EXPECT_EQ(r.point_to_point_messages, 32u);
  EXPECT_NO_THROW(r.timeline.validate());
}

TEST(Replay, InvalidTraceRejectedUpFront) {
  Trace t(2);
  TraceBuilder(t, 0).send(0, 0, 10);  // self-send
  EXPECT_THROW(replay(t, unit_config()), Error);
}

TEST(Replay, RelativeSpeedScalesComputeOnly) {
  Trace t(2);
  TraceBuilder(t, 0).compute(2.0).send(1, 0, 100);
  TraceBuilder(t, 1).compute(1.0).recv(0, 0, 100);
  ReplayConfig config = unit_config();
  config.relative_speed = {2.0, 0.5};  // rank 0 twice as fast, rank 1 half
  const ReplayResult r = replay(t, config);
  EXPECT_DOUBLE_EQ(r.compute_time[0], 1.0);
  EXPECT_DOUBLE_EQ(r.compute_time[1], 2.0);
  // Rank 0 sends at t=1 (arrival 3); rank 1 posts recv at t=2 -> done 3.
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(Replay, RelativeSpeedValidation) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0);
  TraceBuilder(t, 1).compute(1.0);
  ReplayConfig config = unit_config();
  config.relative_speed = {1.0};  // wrong rank count
  EXPECT_THROW(replay(t, config), Error);
  config.relative_speed = {1.0, 0.0};
  EXPECT_THROW(replay(t, config), Error);
}

TEST(Replay, IterationLabelsLandInTimeline) {
  Trace t(1);
  TraceBuilder(t, 0)
      .compute(0.5)  // prologue: iteration -1
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(1.0)
      .marker(MarkerKind::kIterationEnd, 0)
      .marker(MarkerKind::kIterationBegin, 1)
      .compute(2.0)
      .marker(MarkerKind::kIterationEnd, 1);
  const ReplayResult r = replay(t, unit_config());
  EXPECT_DOUBLE_EQ(r.timeline.iteration_compute_time(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.timeline.iteration_compute_time(0, 1), 2.0);
  EXPECT_EQ(r.timeline.max_iteration(), 1);
  // Prologue compute is unlabelled.
  EXPECT_DOUBLE_EQ(r.timeline.iteration_compute_time(0, -1), 0.5);
}

TEST(Replay, BlockedIntervalKeepsBlockStartIteration) {
  Trace t(2);
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .recv(1, 0, 10)
      .marker(MarkerKind::kIterationEnd, 0);
  TraceBuilder(t, 1)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(5.0)
      .send(0, 0, 10)
      .marker(MarkerKind::kIterationEnd, 0);
  const ReplayResult r = replay(t, unit_config());
  const auto lane = r.timeline.intervals(0);
  ASSERT_FALSE(lane.empty());
  EXPECT_EQ(lane.front().state, RankState::kRecv);
  EXPECT_EQ(lane.front().iteration, 0);
}

TEST(Replay, LongDependencyChainResolves) {
  // A relay: 0 -> 1 -> 2 -> 3, each forwarding after receipt.
  Trace t(4);
  TraceBuilder(t, 0).compute(1.0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100).send(2, 0, 100);
  TraceBuilder(t, 2).recv(1, 0, 100).send(3, 0, 100);
  TraceBuilder(t, 3).recv(2, 0, 100);
  const ReplayResult r = replay(t, unit_config());
  // Each hop adds 2 s (latency + transfer): 1 + 2 + 2 + 2 = 7.
  EXPECT_DOUBLE_EQ(r.makespan, 7.0);
}

}  // namespace
}  // namespace pals
