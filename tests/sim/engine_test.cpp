#include "simcore/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(SimEngine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, TiesBreakInSchedulingOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, NowTracksCurrentEvent) {
  SimEngine engine;
  Seconds seen = -1.0;
  engine.schedule_at(4.5, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(engine.now(), 4.5);
}

TEST(SimEngine, CallbacksMayScheduleMore) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.schedule_after(1.0, [&] { ++fired; });
  });
  const Seconds end = engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(end, 2.0);
}

TEST(SimEngine, RejectsSchedulingInThePast) {
  SimEngine engine;
  engine.schedule_at(5.0, [&] {
    EXPECT_THROW(engine.schedule_at(4.0, [] {}), Error);
  });
  engine.run();
}

TEST(SimEngine, RejectsNegativeDelay) {
  SimEngine engine;
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), Error);
}

TEST(SimEngine, RunUntilStopsAtDeadline) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.schedule_at(3.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 2);  // the event at exactly the deadline runs
  EXPECT_FALSE(engine.empty());
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimEngine, CountsExecutedEvents) {
  SimEngine engine;
  for (int i = 0; i < 10; ++i) engine.schedule_at(i, [] {});
  engine.run();
  EXPECT_EQ(engine.executed_events(), 10u);
}

TEST(SimEngine, EmptyRunReturnsZero) {
  SimEngine engine;
  EXPECT_DOUBLE_EQ(engine.run(), 0.0);
  EXPECT_TRUE(engine.empty());
}

}  // namespace
}  // namespace pals
