// End-to-end crash test: run the real pals_sweep binary as a child
// process, SIGKILL it at a deterministic journal point (--kill-after),
// resume with --resume, and require the recovered results.csv /
// errors.csv to be byte-identical to an uninterrupted run — at both
// --jobs 1 and --jobs 8. Also covers the graceful-interrupt path
// (--interrupt-after standing in for ^C) and its distinct exit code.
//
// The binary path arrives via the PALS_SWEEP_BIN compile definition
// (tests/CMakeLists.txt).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/exit_codes.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace pals {
namespace {

namespace fs = std::filesystem;

#ifndef _WIN32

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Run pals_sweep with `args`; returns the exit code, with a death by
/// signal N folded to the shell convention 128+N (SIGKILL => 137).
int run_sweep_tool(const std::string& args) {
  const std::string command =
      std::string(PALS_SWEEP_BIN) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// 16-cell grid: enough cells that a kill after a handful of journal
/// appends always leaves work for the resume to do.
fs::path write_grid() {
  const fs::path path = fs::path(::testing::TempDir()) / "kill_resume.grid";
  std::ofstream out(path);
  out << "workloads  = cg:8:0.9:2, is:8:0.8:2\n"
      << "gear_sets  = uniform-4, avg-discrete\n"
      << "algorithms = max, avg\n"
      << "betas      = 0.4, 0.6\n"
      << "iterations = 2\n";
  return path;
}

class KillResume : public ::testing::Test {
 protected:
  void SetUp() override {
    grid_ = write_grid();
    reference_ = fresh_dir("reference");
    ASSERT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=2 --quiet "
                             "--run-dir=" + reference_.string()),
              exit_code(ToolExit::kOk));
  }

  fs::path fresh_dir(const std::string& name) {
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("kill_resume_" + name);
    fs::remove_all(dir);
    return dir;
  }

  /// The crash-safety contract: after recovery, DIR's artifacts match the
  /// uninterrupted reference byte for byte.
  void expect_matches_reference(const fs::path& dir) {
    EXPECT_EQ(slurp(dir / "results.csv"), slurp(reference_ / "results.csv"));
    EXPECT_EQ(slurp(dir / "errors.csv"), slurp(reference_ / "errors.csv"));
  }

  fs::path grid_;
  fs::path reference_;
};

TEST_F(KillResume, SigkillMidRunThenResumeSerialIsByteIdentical) {
  const fs::path dir = fresh_dir("kill_serial");
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=2 --quiet "
                           "--run-dir=" + dir.string() + " --kill-after=5"),
            137);  // died by SIGKILL, not by exit()
  ASSERT_TRUE(fs::exists(dir / "journal.palsj"));
  // A SIGKILL leaves no results.csv — only the journal survived.
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=1 --quiet "
                           "--resume=" + dir.string()),
            exit_code(ToolExit::kOk));
  expect_matches_reference(dir);
}

TEST_F(KillResume, SigkillMidRunThenResumeParallelIsByteIdentical) {
  const fs::path dir = fresh_dir("kill_parallel");
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=1 --quiet "
                           "--run-dir=" + dir.string() + " --kill-after=3"),
            137);
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=8 --quiet "
                           "--resume=" + dir.string()),
            exit_code(ToolExit::kOk));
  expect_matches_reference(dir);
}

TEST_F(KillResume, InterruptExitsResumableCodeAndResumes) {
  const fs::path dir = fresh_dir("interrupt");
  // --interrupt-after drives the same flag the SIGINT/SIGTERM handler
  // sets, at a deterministic point.
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=2 --quiet "
                           "--run-dir=" + dir.string() +
                           " --interrupt-after=3"),
            exit_code(ToolExit::kInterrupted));
  // The graceful path still wrote (partial) artifacts atomically.
  EXPECT_TRUE(fs::exists(dir / "results.csv"));
  EXPECT_TRUE(fs::exists(dir / "summary.stats"));
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=4 --quiet "
                           "--resume=" + dir.string()),
            exit_code(ToolExit::kOk));
  expect_matches_reference(dir);
}

TEST_F(KillResume, ResumeOfCompletedRunIsIdempotent) {
  // Resuming the *reference* run (nothing pending) must rewrite identical
  // artifacts and exit clean.
  const std::string before = slurp(reference_ / "results.csv");
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --jobs=8 --quiet "
                           "--resume=" + reference_.string()),
            exit_code(ToolExit::kOk));
  EXPECT_EQ(slurp(reference_ / "results.csv"), before);
}

TEST_F(KillResume, KillHooksRequireRunDir) {
  EXPECT_EQ(run_sweep_tool("--grid=" + grid_.string() + " --kill-after=1"),
            exit_code(ToolExit::kUsage));
}

#else  // _WIN32

TEST(KillResume, SkippedOnWindows) { GTEST_SKIP(); }

#endif

}  // namespace
}  // namespace pals
