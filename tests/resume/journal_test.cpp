// Run-journal format (analysis/journal.hpp): header/record round-trips,
// durability-order guarantees, and the corruption torture corpus. The
// contract under test: a torn *final* record (the only damage a crash
// between write and fsync can produce) is dropped so the cell re-runs;
// every other inconsistency is a structured pals::Error, never a crash
// or a silently wrong merge.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/journal.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

fs::path temp_journal(const std::string& name) {
  return fs::path(::testing::TempDir()) / name;
}

JournalHeader test_header(std::size_t scenarios = 4) {
  JournalHeader header;
  header.config_hash = "deadbeefcafef00d";
  header.scenarios = scenarios;
  return header;
}

JournalRecord row_record(std::size_t index) {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kRow;
  record.index = index;
  record.row.instance = "CG-32";
  record.row.variant = "uniform-6";
  // Awkward doubles: none has an exact short decimal rendering.
  record.row.load_balance = 1.0 / 3.0;
  record.row.parallel_efficiency = 0.1 + 0.2;
  record.row.normalized_energy = 2.0 / 7.0;
  record.row.normalized_time = 1e-17;
  record.row.normalized_edp = 123456.789012345678;
  record.row.overclocked_fraction = 0.0;
  return record;
}

JournalRecord error_record(std::size_t index) {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kError;
  record.index = index;
  record.workload = "lu-8";
  record.variant = "avg-discrete, beta=0.40";  // comma: exercises CSV quoting
  record.error_class = "lint";
  record.attempts = 3;
  record.retries = 2;
  record.backoff_seconds = 1.5;
  record.message = "trace lint failed:\nline one\nline two\\with backslash";
  return record;
}

JournalRecord heartbeat_record(std::size_t seq) {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kHeartbeat;
  record.index = seq;
  record.shard = "1/3";
  record.cells_done = seq;
  record.unix_seconds = 1754600000.25 + static_cast<double>(seq);
  return record;
}

/// Write a complete, valid journal and return its path.
fs::path write_valid_journal(const std::string& name) {
  const fs::path path = temp_journal(name);
  fs::remove(path);
  JournalWriter writer = JournalWriter::create(path.string(), test_header());
  writer.append(row_record(0));
  writer.append(error_record(1));
  writer.append(row_record(2));
  EXPECT_EQ(writer.records_appended(), 3u);
  return path;
}

TEST(JournalHeader, JsonRoundTrip) {
  const JournalHeader header = test_header(17);
  const JournalHeader parsed =
      JournalHeader::from_json_line(header.to_json_line());
  EXPECT_EQ(parsed.version, header.version);
  EXPECT_EQ(parsed.config_hash, header.config_hash);
  EXPECT_EQ(parsed.scenarios, header.scenarios);
}

TEST(JournalRecord, RowRoundTripIsBitExact) {
  const fs::path path = write_valid_journal("journal_roundtrip.palsj");
  const JournalReadReport report = read_journal(path.string());
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_FALSE(report.tail_dropped);

  const JournalRecord& row = report.records[0];
  const JournalRecord expected = row_record(0);
  EXPECT_EQ(row.kind, JournalRecord::Kind::kRow);
  EXPECT_EQ(row.row.instance, expected.row.instance);
  EXPECT_EQ(row.row.variant, expected.row.variant);
  // Bit-exact double recovery is what makes resumed CSVs byte-identical.
  EXPECT_EQ(row.row.load_balance, expected.row.load_balance);
  EXPECT_EQ(row.row.parallel_efficiency, expected.row.parallel_efficiency);
  EXPECT_EQ(row.row.normalized_energy, expected.row.normalized_energy);
  EXPECT_EQ(row.row.normalized_time, expected.row.normalized_time);
  EXPECT_EQ(row.row.normalized_edp, expected.row.normalized_edp);
  EXPECT_EQ(row.row.overclocked_fraction, expected.row.overclocked_fraction);
}

TEST(JournalRecord, ErrorRoundTripPreservesMultilineMessage) {
  const fs::path path = write_valid_journal("journal_error.palsj");
  const JournalReadReport report = read_journal(path.string());
  const JournalRecord& error = report.records[1];
  const JournalRecord expected = error_record(1);
  EXPECT_EQ(error.kind, JournalRecord::Kind::kError);
  EXPECT_EQ(error.workload, expected.workload);
  EXPECT_EQ(error.variant, expected.variant);
  EXPECT_EQ(error.error_class, expected.error_class);
  EXPECT_EQ(error.attempts, expected.attempts);
  EXPECT_EQ(error.retries, expected.retries);
  EXPECT_EQ(error.backoff_seconds, expected.backoff_seconds);
  EXPECT_EQ(error.message, expected.message);
}

TEST(JournalRecord, HeartbeatRoundTripsAndStaysOutOfCellRecords) {
  const fs::path path = temp_journal("journal_heartbeat.palsj");
  fs::remove(path);
  JournalWriter writer = JournalWriter::create(path.string(), test_header());
  writer.append(heartbeat_record(0));
  writer.append(row_record(0));
  writer.append(heartbeat_record(1));
  writer.append(error_record(1));
  const JournalReadReport report = read_journal(path.string());
  // Heartbeats are liveness evidence, never cell outcomes: they are
  // collected separately and must not occupy (or shadow) cell slots.
  ASSERT_EQ(report.records.size(), 2u);
  ASSERT_EQ(report.heartbeats.size(), 2u);
  const JournalRecord& beat = report.heartbeats[1];
  const JournalRecord expected = heartbeat_record(1);
  EXPECT_EQ(beat.kind, JournalRecord::Kind::kHeartbeat);
  EXPECT_EQ(beat.index, expected.index);
  EXPECT_EQ(beat.shard, expected.shard);
  EXPECT_EQ(beat.cells_done, expected.cells_done);
  EXPECT_EQ(beat.unix_seconds, expected.unix_seconds);
}

TEST(JournalRead, HeartbeatSequenceIsUnboundedAndMayRepeat) {
  // A restarted worker begins a fresh heartbeat sequence in the same
  // journal, and sequence numbers are not grid indices: neither the
  // out-of-range check nor duplicate collapsing applies to them.
  const fs::path path = temp_journal("journal_heartbeat_seq.palsj");
  fs::remove(path);
  JournalWriter writer = JournalWriter::create(path.string(), test_header(2));
  writer.append(heartbeat_record(0));
  writer.append(heartbeat_record(99));  // >> scenarios
  JournalRecord repeat = heartbeat_record(0);
  repeat.cells_done = 7;  // same seq, different beat: both kept
  writer.append(repeat);
  const JournalReadReport report = read_journal(path.string());
  EXPECT_TRUE(report.records.empty());
  ASSERT_EQ(report.heartbeats.size(), 3u);
  EXPECT_EQ(report.heartbeats[2].cells_done, 7u);
}

TEST(JournalRead, TornFinalRecordIsDroppedNotFatal) {
  const fs::path path = write_valid_journal("journal_torn.palsj");
  const std::string text = slurp(path);
  // Cut the file mid-way through the last record, losing its newline —
  // the signature of a crash between write and fsync.
  spit(path, text.substr(0, text.size() - 9));
  const JournalReadReport report = read_journal(path.string());
  EXPECT_TRUE(report.tail_dropped);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].index, 0u);
  EXPECT_EQ(report.records[1].index, 1u);
}

TEST(JournalRead, TornRecordDownToBareKindStillDrops) {
  const fs::path path = write_valid_journal("journal_torn2.palsj");
  const std::string text = slurp(path);
  const std::size_t last_line = text.rfind("R 2 ");
  spit(path, text.substr(0, last_line + 1));  // just "R", no newline
  const JournalReadReport report = read_journal(path.string());
  EXPECT_TRUE(report.tail_dropped);
  EXPECT_EQ(report.records.size(), 2u);
}

TEST(JournalRead, InteriorBitFlipThrowsChecksumError) {
  const fs::path path = write_valid_journal("journal_bitflip.palsj");
  std::string text = slurp(path);
  // Flip one payload byte of the *first* record (interior, terminated).
  const std::size_t at = text.find("CG-32");
  ASSERT_NE(at, std::string::npos);
  text[at] = 'X';
  spit(path, text);
  try {
    read_journal(path.string());
    FAIL() << "corrupted interior record must not be accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(JournalRead, InteriorGarbageLineThrows) {
  const fs::path path = write_valid_journal("journal_garbage.palsj");
  std::string text = slurp(path);
  const std::size_t second_line = text.find('\n') + 1;
  text.insert(second_line, "complete nonsense\n");
  spit(path, text);
  EXPECT_THROW(read_journal(path.string()), Error);
}

TEST(JournalRead, UnknownRecordKindThrows) {
  const fs::path path = write_valid_journal("journal_kind.palsj");
  std::string text = slurp(path);
  const std::size_t second_line = text.find('\n') + 1;
  // Well-formed token layout, bogus kind, interior position.
  text.insert(second_line, "Q 9 00000000 x\n");
  spit(path, text);
  EXPECT_THROW(read_journal(path.string()), Error);
}

TEST(JournalRead, IdenticalDuplicateCollapses) {
  const fs::path path = write_valid_journal("journal_dup.palsj");
  std::string text = slurp(path);
  // Re-append the final record verbatim (a crash after write+fsync but
  // before the in-memory bookkeeping could, in principle, replay it).
  const std::size_t last_line = text.rfind("R 2 ");
  text += text.substr(last_line);
  spit(path, text);
  const JournalReadReport report = read_journal(path.string());
  EXPECT_FALSE(report.tail_dropped);
  EXPECT_EQ(report.records.size(), 3u);
}

TEST(JournalRead, ConflictingDuplicateThrows) {
  const fs::path path = write_valid_journal("journal_conflict.palsj");
  std::string text = slurp(path);
  JournalRecord other = row_record(2);
  other.row.normalized_energy = 0.5;  // same cell, different result
  text += other.to_line() + "\n";
  spit(path, text);
  try {
    read_journal(path.string());
    FAIL() << "conflicting duplicate must not be accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conflicting duplicate"),
              std::string::npos)
        << e.what();
  }
}

TEST(JournalRead, OutOfRangeIndexThrowsEvenOnTail) {
  const fs::path path = write_valid_journal("journal_range.palsj");
  std::string text = slurp(path);
  // A checksum-valid record for cell 99 of a 4-scenario journal, with
  // no trailing newline: the bytes are provably intact, so this is not
  // a torn append — it must be rejected, not dropped.
  const std::string line = row_record(99).to_line();
  text += line;
  spit(path, text);
  try {
    read_journal(path.string());
    FAIL() << "out-of-range record must not be accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
}

TEST(JournalRead, MissingFileThrows) {
  EXPECT_THROW(read_journal(temp_journal("journal_missing.palsj").string()),
               Error);
}

// Committed corpus: structural damage — header corruption in every
// variation, plus an interior heartbeat record with a wrong checksum.
// Mirrors tests/trace/corrupt/.
TEST(JournalCorpus, EveryFixtureYieldsStructuredError) {
  const fs::path dir =
      fs::path(PALS_SOURCE_DIR) / "tests" / "resume" / "corrupt";
  std::vector<fs::path> fixtures;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".palsj") fixtures.push_back(entry.path());
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_GE(fixtures.size(), 8u);
  for (const fs::path& fixture : fixtures) {
    try {
      read_journal(fixture.string());
      FAIL() << fixture.filename() << " must be rejected";
    } catch (const Error&) {
      // Structured error: exactly what the contract requires.
    } catch (...) {
      FAIL() << fixture.filename() << " threw a non-pals exception";
    }
  }
}

// Committed good fixture: a sharded worker's journal with heartbeats
// interleaved between cell records, including a sequence restart after
// a worker relaunch. Pins the on-disk spelling of "H" records — a
// format drift would break pals_shepherd against old run dirs.
TEST(JournalCorpus, InterleavedHeartbeatFixtureParses) {
  const fs::path fixture = fs::path(PALS_SOURCE_DIR) / "tests" / "resume" /
                           "fixtures" / "heartbeat_interleaved.palsj";
  const JournalReadReport report = read_journal(fixture.string());
  EXPECT_FALSE(report.tail_dropped);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records[0].kind, JournalRecord::Kind::kRow);
  EXPECT_EQ(report.records[1].kind, JournalRecord::Kind::kError);
  EXPECT_EQ(report.records[2].kind, JournalRecord::Kind::kRow);
  ASSERT_EQ(report.heartbeats.size(), 3u);
  EXPECT_EQ(report.heartbeats[0].shard, "1/3");
  EXPECT_EQ(report.heartbeats[0].index, 0u);
  EXPECT_EQ(report.heartbeats[1].index, 1u);
  // The third beat restarts the sequence: a relaunched worker.
  EXPECT_EQ(report.heartbeats[2].index, 0u);
  EXPECT_EQ(report.heartbeats[2].cells_done, 2u);
}

}  // namespace
}  // namespace pals
