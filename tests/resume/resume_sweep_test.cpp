// Crash-safe sweep execution, in process: interrupt-then-resume must
// reproduce the uninterrupted run byte-for-byte (results AND errors CSV,
// at any jobs count, with or without injected faults), a resume journal
// from a different configuration must be refused, cancellation must skip
// cleanly, and the per-cell watchdog must quarantine as kTimeout.
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/journal.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

namespace fs = std::filesystem;

/// 2 workloads x 2 gear sets x 2 algorithms x 2 betas = 16 cells: enough
/// that cancellation mid-run always leaves unstarted cells even at
/// --jobs 8 (at most 8 in flight + a couple of pickups before the cancel
/// flag is visible).
std::vector<Scenario> grid16() {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.9:2", "is:8:0.8:2"};
  grid.gear_sets = {"uniform-4", "avg-discrete"};
  grid.algorithms = {Algorithm::kMax, Algorithm::kAvg};
  grid.betas = {0.4, 0.6};
  grid.iterations = 2;
  return grid.expand();
}

SweepOptions base_options(int jobs) {
  SweepOptions options;
  options.jobs = jobs;
  options.iterations = 2;
  return options;
}

std::string journal_in_temp(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

/// Interrupt a journaled sweep after `after` durable records, then resume
/// it at `resume_jobs`; assert the stitched result is byte-identical to
/// `reference`.
void interrupt_and_resume(const std::vector<Scenario>& scenarios,
                          const SweepOptions& base, const SweepResult& reference,
                          const std::string& journal, std::size_t after,
                          int interrupt_jobs, int resume_jobs) {
  std::atomic<bool> cancel{false};
  SweepOptions interrupted = base;
  interrupted.jobs = interrupt_jobs;
  interrupted.journal_path = journal;
  interrupted.cancel = &cancel;
  interrupted.on_journal_record = [&cancel, after](std::size_t appended) {
    if (appended >= after) cancel.store(true);
  };
  const SweepResult partial = run_sweep(scenarios, interrupted);
  ASSERT_TRUE(partial.interrupted);
  ASSERT_GT(partial.stats.skipped_cells, 0u);
  ASSERT_GE(partial.stats.journal_records, after);

  const JournalReadReport prior = read_journal(journal);
  ASSERT_EQ(prior.records.size(), partial.stats.journal_records);

  SweepOptions resumed = base;
  resumed.jobs = resume_jobs;
  resumed.journal_path = journal;
  resumed.resume = &prior;
  const SweepResult full = run_sweep(scenarios, resumed);
  EXPECT_FALSE(full.interrupted);
  EXPECT_EQ(full.stats.resumed_cells, prior.records.size());

  // The whole point: the stitched run is indistinguishable from one that
  // was never interrupted.
  EXPECT_EQ(rows_to_csv(full.rows), rows_to_csv(reference.rows));
  EXPECT_EQ(errors_to_csv(full.errors), errors_to_csv(reference.errors));

  // And the journal now covers every cell.
  const JournalReadReport complete = read_journal(journal);
  EXPECT_EQ(complete.records.size(), scenarios.size());
}

TEST(ResumeSweep, InterruptThenResumeIsByteIdenticalSerial) {
  const std::vector<Scenario> scenarios = grid16();
  const SweepResult reference = run_sweep(scenarios, base_options(1));
  interrupt_and_resume(scenarios, base_options(1), reference,
                       journal_in_temp("resume_serial.palsj"),
                       /*after=*/3, /*interrupt_jobs=*/1, /*resume_jobs=*/1);
}

TEST(ResumeSweep, InterruptThenResumeIsByteIdenticalAcrossJobCounts) {
  const std::vector<Scenario> scenarios = grid16();
  const SweepResult reference = run_sweep(scenarios, base_options(1));
  // Interrupt a parallel run, resume at a different parallelism.
  interrupt_and_resume(scenarios, base_options(1), reference,
                       journal_in_temp("resume_jobs.palsj"),
                       /*after=*/5, /*interrupt_jobs=*/8, /*resume_jobs=*/1);
  interrupt_and_resume(scenarios, base_options(1), reference,
                       journal_in_temp("resume_jobs2.palsj"),
                       /*after=*/3, /*interrupt_jobs=*/1, /*resume_jobs=*/8);
}

TEST(ResumeSweep, ControllerGridInterruptThenResumeIsByteIdentical) {
  // The controller axis is part of the sweep config hash; an interrupted
  // controller sweep must stitch back together byte-for-byte like any
  // other — per-iteration schedules included (they feed the energy
  // column of every dynamic row).
  SweepGrid grid;
  grid.workloads = {"amr-drift:8:0.7:4", "cg:8:0.9:2"};
  grid.gear_sets = {"uniform-4"};
  grid.algorithms = {Algorithm::kAvg};
  grid.controllers = {"static", "dynamic_max", "slack"};
  grid.betas = {0.4, 0.6};
  grid.iterations = 2;
  const std::vector<Scenario> scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 12u);
  const SweepResult reference = run_sweep(scenarios, base_options(1));
  interrupt_and_resume(scenarios, base_options(1), reference,
                       journal_in_temp("resume_controllers.palsj"),
                       /*after=*/4, /*interrupt_jobs=*/4, /*resume_jobs=*/8);
}

TEST(ResumeSweep, FaultedKeepGoingResumeIsByteIdentical) {
  const fault::Injector injector(fault::FaultPlan::parse(
      "seed=42; scenario_flaky:rate=0.4,failures=2; scenario_crash:index=2"));
  const std::vector<Scenario> scenarios = grid16();
  SweepOptions base = base_options(1);
  base.faults = &injector;
  base.keep_going = true;
  base.retry.max_retries = 3;
  const SweepResult reference = run_sweep(scenarios, base);
  ASSERT_TRUE(reference.has_errors());  // quarantined cells must resume too
  interrupt_and_resume(scenarios, base, reference,
                       journal_in_temp("resume_faulted.palsj"),
                       /*after=*/4, /*interrupt_jobs=*/4, /*resume_jobs=*/8);
}

TEST(ResumeSweep, FullJournalResumeRunsNothing) {
  const std::vector<Scenario> scenarios = grid16();
  SweepOptions journaled = base_options(4);
  journaled.journal_path = journal_in_temp("resume_full.palsj");
  const SweepResult reference = run_sweep(scenarios, journaled);
  EXPECT_EQ(reference.stats.journal_records, scenarios.size());

  const JournalReadReport prior = read_journal(journaled.journal_path);
  SweepOptions resumed = base_options(8);
  resumed.journal_path = journaled.journal_path;
  resumed.resume = &prior;
  const SweepResult replayed = run_sweep(scenarios, resumed);

  EXPECT_EQ(replayed.stats.resumed_cells, scenarios.size());
  EXPECT_EQ(replayed.stats.journal_records, 0u);     // nothing re-appended
  EXPECT_EQ(replayed.stats.baseline_cache_misses, 0u);  // no baselines rerun
  EXPECT_EQ(rows_to_csv(replayed.rows), rows_to_csv(reference.rows));
}

TEST(ResumeSweep, ConfigHashMismatchIsRefused) {
  const std::vector<Scenario> scenarios = grid16();
  SweepOptions journaled = base_options(2);
  journaled.journal_path = journal_in_temp("resume_hash.palsj");
  run_sweep(scenarios, journaled);

  const JournalReadReport prior = read_journal(journaled.journal_path);
  SweepOptions resumed = journaled;
  resumed.resume = &prior;
  resumed.iterations = 11;  // result-affecting change => different hash
  try {
    run_sweep(scenarios, resumed);
    FAIL() << "resume across a config change must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("does not match"), std::string::npos)
        << e.what();
  }
}

TEST(ResumeSweep, ScenarioCountMismatchIsRefused) {
  const std::vector<Scenario> scenarios = grid16();
  SweepOptions options = base_options(1);
  JournalReadReport bogus;
  // Correct hash, wrong cardinality: e.g. the journal of a narrower grid.
  bogus.header.config_hash = sweep_config_hash(scenarios, options);
  bogus.header.scenarios = 5;
  options.resume = &bogus;
  try {
    run_sweep(scenarios, options);
    FAIL() << "scenario-count mismatch must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("describes 5 scenarios"),
              std::string::npos)
        << e.what();
  }
}

TEST(ResumeSweep, PresetCancelSkipsEverything) {
  const std::vector<Scenario> scenarios = grid16();
  std::atomic<bool> cancel{true};
  SweepOptions options = base_options(4);
  options.cancel = &cancel;
  const SweepResult result = run_sweep(scenarios, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.stats.skipped_cells, scenarios.size());
  EXPECT_TRUE(result.rows.empty());
  EXPECT_TRUE(result.errors.empty());
}

TEST(ResumeSweep, NegativeCellTimeoutIsRejected) {
  SweepOptions options = base_options(1);
  options.cell_timeout_seconds = -1.0;
  EXPECT_THROW(run_sweep(grid16(), options), Error);
}

TEST(Watchdog, TinyTimeoutQuarantinesEveryCellAsTimeout) {
  const std::vector<Scenario> scenarios = grid16();
  SweepOptions options = base_options(1);
  options.keep_going = true;
  options.cell_timeout_seconds = 1e-9;  // expires on the first event
  const SweepResult result = run_sweep(scenarios, options);
  ASSERT_EQ(result.errors.size(), scenarios.size());
  EXPECT_TRUE(result.rows.empty());
  for (const ScenarioError& error : result.errors) {
    EXPECT_EQ(error.error_class, fault::ErrorClass::kTimeout)
        << error.describe();
    EXPECT_NE(error.message.find("wall-clock watchdog expired"),
              std::string::npos)
        << error.message;
  }

  // The watchdog message names the limit, never the measured elapsed
  // time, so quarantine records stay byte-stable run over run and across
  // thread counts.
  SweepOptions parallel = options;
  parallel.jobs = 8;
  const SweepResult again = run_sweep(scenarios, parallel);
  EXPECT_EQ(errors_to_csv(result.errors), errors_to_csv(again.errors));
}

TEST(Watchdog, GenerousTimeoutChangesNothing) {
  const std::vector<Scenario> scenarios = grid16();
  const SweepResult plain = run_sweep(scenarios, base_options(2));
  SweepOptions guarded = base_options(2);
  guarded.cell_timeout_seconds = 3600.0;
  const SweepResult watched = run_sweep(scenarios, guarded);
  EXPECT_EQ(rows_to_csv(watched.rows), rows_to_csv(plain.rows));
  EXPECT_FALSE(watched.has_errors());
}

}  // namespace
}  // namespace pals
