// Shard-supervisor torture: drive the real pals_shepherd binary with
// its chaos hooks — SIGKILL one shard twice mid-run and SIGSTOP another
// until the watchdog fires — and require the merged results.csv /
// errors.csv to be byte-identical to a single-process `pals_sweep
// --jobs=1` run. Also the degraded path: a shard whose restart budget
// is exhausted must end the run with exit code 5 ("completed
// degraded"), its cells quarantined as "shard-lost", never a hang.
//
// Binary paths arrive via the PALS_SHEPHERD_BIN / PALS_SWEEP_BIN
// compile definitions (tests/CMakeLists.txt).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/exit_codes.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace pals {
namespace {

namespace fs = std::filesystem;

#ifndef _WIN32

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_tool(const std::string& binary, const std::string& args) {
  const std::string command = binary + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// 48-cell grid, heavy enough that the chaos kills always land while
/// the victim shard still has work in flight.
fs::path write_grid() {
  const fs::path path = fs::path(::testing::TempDir()) / "shepherd_torture.grid";
  std::ofstream out(path);
  out << "workloads  = CG-32, MG-32, lu:16:0.93:3, ft:16:0.9:3\n"
      << "gear_sets  = uniform-6, avg-discrete, continuous-unlimited\n"
      << "algorithms = max, avg\n"
      << "betas      = 0.4, 0.6\n"
      << "iterations = 4\n";
  return path;
}

class ShepherdTorture : public ::testing::Test {
 protected:
  void SetUp() override {
    grid_ = write_grid();
    reference_ = fresh_dir("reference");
    ASSERT_EQ(run_tool(PALS_SWEEP_BIN,
                       "--grid=" + grid_.string() + " --jobs=1 --quiet "
                       "--run-dir=" + reference_.string()),
              exit_code(ToolExit::kOk));
  }

  fs::path fresh_dir(const std::string& name) {
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("shepherd_torture_" + name);
    fs::remove_all(dir);
    return dir;
  }

  int run_shepherd(const fs::path& dir, const std::string& extra) {
    return run_tool(PALS_SHEPHERD_BIN,
                    "--grid=" + grid_.string() + " --run-dir=" + dir.string() +
                    " --sweep-bin=" + std::string(PALS_SWEEP_BIN) +
                    " --jobs=1 --quiet --backoff-base=0.01 --backoff-cap=0.05 " +
                    extra);
  }

  fs::path grid_;
  fs::path reference_;
};

TEST_F(ShepherdTorture, SigkillTwiceAndStallMergeByteIdentical) {
  const fs::path dir = fresh_dir("chaos");
  // Shard 1 (an arbitrary but deterministic victim) is SIGKILLed twice
  // mid-run; shard 2 is SIGSTOPped once so only the heartbeat watchdog
  // can tell it from a slow worker. Budget of 4 restarts absorbs all
  // three faults.
  EXPECT_EQ(run_shepherd(dir,
                         "--shards=3 --chaos-kill=1:2 --chaos-stop=2 "
                         "--heartbeat=0.05 --watchdog=0.8 "
                         "--max-shard-restarts=4"),
            exit_code(ToolExit::kOk));
  EXPECT_EQ(slurp(dir / "results.csv"), slurp(reference_ / "results.csv"));
  EXPECT_EQ(slurp(dir / "errors.csv"), slurp(reference_ / "errors.csv"));
  // The supervisor summary records the injected faults it absorbed.
  const std::string stats = slurp(dir / "shepherd.stats");
  EXPECT_NE(stats.find("chaos_kills"), std::string::npos);
  EXPECT_NE(stats.find("lost_shards = 0"), std::string::npos) << stats;
}

TEST_F(ShepherdTorture, ExhaustedBudgetDegradesInsteadOfHanging) {
  const fs::path dir = fresh_dir("degraded");
  // Six kills against a budget of one restart (plus one salvage run):
  // the shard is unrecoverable. The run must still terminate, exit
  // "completed degraded" and quarantine the dead shard's cells.
  EXPECT_EQ(run_shepherd(dir,
                         "--shards=3 --chaos-kill=1:6 --heartbeat=0.05 "
                         "--max-shard-restarts=1"),
            exit_code(ToolExit::kDegraded));
  const std::string errors = slurp(dir / "errors.csv");
  EXPECT_NE(errors.find("shard-lost"), std::string::npos) << errors;
  EXPECT_NE(errors.find("restart budget exhausted"), std::string::npos);
  // Surviving shards' rows still merged; no cell simply vanished.
  EXPECT_FALSE(slurp(dir / "results.csv").empty());
  const std::string stats = slurp(dir / "shepherd.stats");
  EXPECT_NE(stats.find("degraded = 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("missing = 0"), std::string::npos) << stats;
}

#else  // _WIN32

TEST(ShepherdTorture, SkippedOnWindows) { GTEST_SKIP(); }

#endif

}  // namespace
}  // namespace pals
