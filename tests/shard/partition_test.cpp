// Deterministic shard partitioning (shard/partition.hpp): spec parsing,
// the exactly-one-owner invariant, and golden pins. The pins matter: the
// assignment is consulted independently by workers, the supervisor and
// the merge with no coordination, so silently changing the hash would
// make old journals and new processes disagree about cell ownership.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/partition.hpp"
#include "util/error.hpp"

namespace pals {
namespace shard {
namespace {

TEST(ShardSpec, ParsesAndRoundTrips) {
  const ShardSpec spec = ShardSpec::parse("2/5");
  EXPECT_EQ(spec.index, 2u);
  EXPECT_EQ(spec.count, 5u);
  EXPECT_TRUE(spec.active());
  EXPECT_EQ(spec.to_string(), "2/5");

  const ShardSpec unsharded = ShardSpec::parse("0/1");
  EXPECT_EQ(unsharded.index, 0u);
  EXPECT_EQ(unsharded.count, 1u);
  EXPECT_FALSE(unsharded.active());
}

TEST(ShardSpec, RejectsMalformedSpecs) {
  // No slash, empty halves, index >= count, zero count, non-numeric.
  for (const std::string bad :
       {"", "3", "/", "2/", "/5", "5/5", "6/5", "2/0", "a/b", "1.5/4"}) {
    EXPECT_THROW(ShardSpec::parse(bad), Error) << "'" << bad << "'";
  }
}

TEST(Partition, EveryCellHasExactlyOneOwnerInRange) {
  for (const std::size_t count : {1u, 2u, 3u, 5u, 8u, 16u}) {
    for (std::size_t cell = 0; cell < 500; ++cell) {
      const std::size_t owner = shard_of_cell(cell, count);
      EXPECT_LT(owner, count);
      // Pure function: the worker, supervisor and merge all recompute it.
      EXPECT_EQ(shard_of_cell(cell, count), owner);
    }
  }
}

TEST(Partition, SingleShardOwnsEverything) {
  for (std::size_t cell = 0; cell < 64; ++cell)
    EXPECT_EQ(shard_of_cell(cell, 1), 0u);
  EXPECT_EQ(shard_of_group("CG-32", 1), 0u);
}

TEST(Partition, EveryShardGetsWorkOnRealisticGrids) {
  // Not guaranteed by hashing in general, but deterministic — pin that
  // no shard starves on grid sizes the tools actually run.
  for (const std::size_t count : {2u, 3u, 5u, 8u}) {
    std::set<std::size_t> owners;
    for (std::size_t cell = 0; cell < 48; ++cell)
      owners.insert(shard_of_cell(cell, count));
    EXPECT_EQ(owners.size(), count) << count << " shards";
  }
}

TEST(Partition, GoldenCellAssignmentsArePinned) {
  // FNV-1a over "pals-shard-cell|<index>" mod N. A change here breaks
  // cross-process agreement (and resumability of existing shard run
  // dirs) — bump deliberately, never accidentally.
  const std::vector<std::size_t> at2 = {1, 0, 1, 0, 1, 0, 1, 0};
  const std::vector<std::size_t> at5 = {4, 3, 2, 1, 0, 4, 3, 2};
  const std::vector<std::size_t> at8 = {5, 2, 7, 4, 1, 6, 3, 0};
  for (std::size_t cell = 0; cell < 8; ++cell) {
    EXPECT_EQ(shard_of_cell(cell, 2), at2[cell]) << cell;
    EXPECT_EQ(shard_of_cell(cell, 5), at5[cell]) << cell;
    EXPECT_EQ(shard_of_cell(cell, 8), at8[cell]) << cell;
  }
}

TEST(Partition, GoldenGroupAssignmentsArePinned) {
  // Workload groups (the --prune-bounds granularity) hash their cache
  // key under a distinct domain tag, so group and cell assignments are
  // independent streams.
  EXPECT_EQ(shard_of_group("CG-32", 5), 3u);
  EXPECT_EQ(shard_of_group("MG-32", 5), 1u);
  EXPECT_EQ(shard_of_group("cg-8-0.90-2", 5), 4u);
}

TEST(Partition, GroupAssignmentIsKeyDeterministic) {
  for (const std::size_t count : {2u, 3u, 7u}) {
    const std::size_t owner = shard_of_group("SPECFEM3D-96", count);
    EXPECT_LT(owner, count);
    EXPECT_EQ(shard_of_group("SPECFEM3D-96", count), owner);
  }
}

}  // namespace
}  // namespace shard
}  // namespace pals
