// Shard-journal merge (shard/merge.hpp): the byte-identity contract.
// Running the same grid split across any shard count — with or without
// quarantined cells — and folding the shard journals must re-render
// results.csv / errors.csv / pruned.csv byte-identical to a
// single-process --jobs=1 run. Also the refusal policy: conflicting
// duplicates, foreign config hashes and out-of-range extras throw
// instead of merging silently wrong artifacts.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "analysis/journal.hpp"
#include "analysis/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "shard/merge.hpp"
#include "shard/partition.hpp"
#include "util/error.hpp"

namespace pals {
namespace shard {
namespace {

namespace fs = std::filesystem;

SweepGrid small_grid() {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.85:2", "is:8:0.8:2"};
  grid.gear_sets = {"uniform-4", "avg-discrete"};
  grid.algorithms = {Algorithm::kMax};
  grid.betas = {0.4, 0.6};
  grid.iterations = 2;
  return grid;
}

SweepOptions base_options() {
  SweepOptions options;
  options.jobs = 1;
  options.iterations = 2;
  return options;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("shard_merge_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Run every shard of `scenarios` in-process (the same run_sweep the
/// pals_sweep worker calls) and return the journal paths.
std::vector<std::string> run_shards(const std::vector<Scenario>& scenarios,
                                    const SweepOptions& base,
                                    const fs::path& dir,
                                    std::size_t shard_count) {
  std::vector<std::string> journals;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const fs::path shard_dir = dir / ("shard-" + std::to_string(s));
    fs::create_directories(shard_dir);
    SweepOptions options = base;
    options.shard_index = s;
    options.shard_count = shard_count;
    options.journal_path = (shard_dir / "journal.palsj").string();
    run_sweep(scenarios, options);
    journals.push_back(options.journal_path);
  }
  return journals;
}

TEST(ShardMerge, ByteIdenticalAcrossShardCounts) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const SweepResult reference = run_sweep(scenarios, options);
  const std::string rows_csv = rows_to_csv(reference.rows);
  const std::string errors_csv = errors_to_csv(reference.errors);

  for (const std::size_t count : {1u, 2u, 5u}) {
    const fs::path dir = fresh_dir("count" + std::to_string(count));
    const std::vector<std::string> journals =
        run_shards(scenarios, options, dir, count);
    const MergeReport merged =
        merge_shard_journals(scenarios, options, journals);
    EXPECT_TRUE(merged.complete());
    EXPECT_EQ(merged.journals_read, count);
    EXPECT_EQ(rows_to_csv(merged.rows), rows_csv) << count << " shards";
    EXPECT_EQ(errors_to_csv(merged.errors), errors_csv) << count << " shards";
  }
}

TEST(ShardMerge, QuarantinedCellsMergeByteIdentical) {
  // Deterministic failures by canonical index land in whichever shard
  // owns the cell; the merged errors.csv must not care.
  const std::vector<Scenario> scenarios = small_grid().expand();
  const fault::Injector injector(fault::FaultPlan::parse(
      "scenario_crash:index=2; scenario_flaky:index=5,failures=5"));
  SweepOptions options = base_options();
  options.faults = &injector;
  options.keep_going = true;
  options.bounds_oracle = false;

  const SweepResult reference = run_sweep(scenarios, options);
  ASSERT_FALSE(reference.errors.empty());

  const fs::path dir = fresh_dir("faulted");
  const std::vector<std::string> journals =
      run_shards(scenarios, options, dir, 3);
  const MergeReport merged = merge_shard_journals(scenarios, options, journals);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(rows_to_csv(merged.rows), rows_to_csv(reference.rows));
  EXPECT_EQ(errors_to_csv(merged.errors), errors_to_csv(reference.errors));
}

TEST(ShardMerge, PrunedSweepMergesByteIdenticalByGroup) {
  // Under --prune-bounds the partition is by workload group, so each
  // shard derives exactly the prune decisions a single process would.
  SweepGrid grid;
  grid.workloads = {"cg:8:0.85:2", "mg:8:0.8:2"};
  grid.gear_sets = {"uniform-4", "avg-discrete", "continuous-unlimited"};
  grid.algorithms = {Algorithm::kMax};
  grid.betas = {0.4, 0.6};
  grid.iterations = 2;
  const std::vector<Scenario> scenarios = grid.expand();
  SweepOptions options = base_options();
  options.prune_bounds = true;

  const SweepResult reference = run_sweep(scenarios, options);

  for (const std::size_t count : {2u, 5u}) {
    const fs::path dir = fresh_dir("prune" + std::to_string(count));
    const std::vector<std::string> journals =
        run_shards(scenarios, options, dir, count);
    const MergeReport merged =
        merge_shard_journals(scenarios, options, journals);
    EXPECT_TRUE(merged.complete());
    EXPECT_EQ(rows_to_csv(merged.rows), rows_to_csv(reference.rows));
    EXPECT_EQ(pruned_to_csv(merged.pruned), pruned_to_csv(reference.pruned));
  }
}

TEST(ShardMerge, MissingShardIsReportedThenFilledByExtras) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("missing");
  std::vector<std::string> journals = run_shards(scenarios, options, dir, 2);
  // Drop shard 1's journal: its cells must surface as missing, exactly
  // the cells the partition assigns to shard 1.
  journals.resize(1);
  const MergeReport partial = merge_shard_journals(scenarios, options, journals);
  EXPECT_FALSE(partial.complete());
  ASSERT_FALSE(partial.missing.empty());
  for (const std::size_t index : partial.missing)
    EXPECT_EQ(shard_of_cell(index, 2), 1u) << index;

  // The supervisor's degraded path: synthesize shard-lost quarantines
  // for the missing cells and re-merge — now complete, with the loss
  // visible in errors.csv.
  std::vector<ScenarioError> extras;
  for (const std::size_t index : partial.missing)
    extras.push_back(make_shard_lost_error(scenarios, options.iterations,
                                           index, "shard 1/2 lost", 3));
  const MergeReport merged =
      merge_shard_journals(scenarios, options, journals, extras);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.errors.size(), extras.size());
  EXPECT_NE(errors_to_csv(merged.errors).find("shard-lost"),
            std::string::npos);
  // Rows for the surviving shard are untouched by the quarantine.
  EXPECT_EQ(merged.rows.size(), scenarios.size() - extras.size());
}

TEST(ShardMerge, ExtraErrorForCoveredCellThrows) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("extra_conflict");
  const std::vector<std::string> journals =
      run_shards(scenarios, options, dir, 1);
  const std::vector<ScenarioError> extras = {
      make_shard_lost_error(scenarios, options.iterations, 0, "bogus", 1)};
  EXPECT_THROW(merge_shard_journals(scenarios, options, journals, extras),
               Error);
}

TEST(ShardMerge, ConflictingDuplicateAcrossJournalsThrows) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("conflict");
  std::vector<std::string> journals = run_shards(scenarios, options, dir, 1);

  // A second journal claiming cell 0 with a different result: the
  // partition invariant was violated somewhere — refuse, don't guess.
  const JournalReadReport first = read_journal(journals[0]);
  JournalRecord forged = first.records[0];
  forged.row.normalized_energy += 0.25;
  JournalHeader header = first.header;
  const fs::path rogue = dir / "rogue.palsj";
  JournalWriter writer = JournalWriter::create(rogue.string(), header);
  writer.append(forged);
  journals.push_back(rogue.string());

  try {
    merge_shard_journals(scenarios, options, journals);
    FAIL() << "conflicting duplicate across journals must not merge";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("partition violated"),
              std::string::npos)
        << e.what();
  }
}

TEST(ShardMerge, IdenticalDuplicateAcrossJournalsCollapses) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("dup");
  std::vector<std::string> journals = run_shards(scenarios, options, dir, 1);
  journals.push_back(journals[0]);  // same run dir listed twice
  const MergeReport merged = merge_shard_journals(scenarios, options, journals);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.rows.size(), scenarios.size());
}

TEST(ShardMerge, ForeignConfigHashThrows) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("hash");
  const std::vector<std::string> journals =
      run_shards(scenarios, options, dir, 1);
  // Same journal, different live sweep (β grid changed): the hash in the
  // header no longer matches and the merge must refuse.
  SweepGrid other = small_grid();
  other.betas = {0.5};
  EXPECT_THROW(
      merge_shard_journals(other.expand(), options, journals), Error);
}

TEST(ShardMerge, HeartbeatsAreCountedButNeverMerged) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("heartbeats");
  const std::vector<std::string> journals =
      run_shards(scenarios, options, dir, 2);
  const MergeReport before = merge_shard_journals(scenarios, options, journals);

  // Interleave liveness beats after the fact: cell slots — and the
  // rendered CSV — must not move by a byte.
  JournalWriter writer = JournalWriter::open_existing(journals[0]);
  for (std::size_t seq = 0; seq < 3; ++seq) {
    JournalRecord beat;
    beat.kind = JournalRecord::Kind::kHeartbeat;
    beat.index = seq;
    beat.shard = "0/2";
    beat.cells_done = seq;
    beat.unix_seconds = 1754600000.0 + static_cast<double>(seq);
    writer.append(beat);
  }
  const MergeReport after = merge_shard_journals(scenarios, options, journals);
  EXPECT_EQ(after.heartbeats_seen, before.heartbeats_seen + 3);
  EXPECT_EQ(rows_to_csv(after.rows), rows_to_csv(before.rows));
  EXPECT_EQ(errors_to_csv(after.errors), errors_to_csv(before.errors));
}

TEST(ShardMerge, AbsentJournalPathsAreSkippedNotErrors) {
  const std::vector<Scenario> scenarios = small_grid().expand();
  const SweepOptions options = base_options();
  const fs::path dir = fresh_dir("absent");
  std::vector<std::string> journals = run_shards(scenarios, options, dir, 1);
  journals.push_back((dir / "never-created" / "journal.palsj").string());
  const MergeReport merged = merge_shard_journals(scenarios, options, journals);
  EXPECT_EQ(merged.journals_read, 1u);
  EXPECT_TRUE(merged.complete());
}

}  // namespace
}  // namespace shard
}  // namespace pals
