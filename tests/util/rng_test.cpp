#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace pals {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(5.0, 2.0), Error);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i)
    ++seen[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace pals
