// Crash-safe filesystem primitives (util/fsio.hpp): atomic whole-file
// replacement, durable appends, and the journal's integrity hashes.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/fsio.hpp"

namespace pals {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path temp_path(const std::string& name) {
  return fs::path(::testing::TempDir()) / name;
}

TEST(AtomicWriteFile, CreatesNewFile) {
  const fs::path path = temp_path("fsio_new.txt");
  fs::remove(path);
  atomic_write_file(path.string(), "hello\n");
  EXPECT_EQ(slurp(path), "hello\n");
}

TEST(AtomicWriteFile, ReplacesExistingContentWholesale) {
  const fs::path path = temp_path("fsio_replace.txt");
  atomic_write_file(path.string(), "old content, much longer than the new");
  atomic_write_file(path.string(), "new");
  EXPECT_EQ(slurp(path), "new");
}

TEST(AtomicWriteFile, LeavesNoTemporaryBehind) {
  const fs::path dir = temp_path("fsio_tmpdir");
  fs::create_directories(dir);
  for (const fs::directory_entry& e : fs::directory_iterator(dir))
    fs::remove(e.path());
  atomic_write_file((dir / "artifact.csv").string(), "a,b\n1,2\n");
  std::size_t entries = 0;
  for ([[maybe_unused]] const fs::directory_entry& e :
       fs::directory_iterator(dir))
    ++entries;
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicWriteFile, EmptyContentIsValid) {
  const fs::path path = temp_path("fsio_empty.txt");
  atomic_write_file(path.string(), "");
  EXPECT_EQ(slurp(path), "");
  EXPECT_TRUE(fs::exists(path));
}

TEST(AtomicWriteFile, MissingDirectoryThrowsStructuredError) {
  EXPECT_THROW(
      atomic_write_file("/nonexistent-pals-dir/sub/artifact.txt", "x"),
      Error);
}

TEST(DurableFile, CreateAppendReopenAppend) {
  const fs::path path = temp_path("fsio_journal.log");
  fs::remove(path);
  {
    DurableFile file = DurableFile::create(path.string());
    file.append("one\n");
    file.sync();
    file.append("two\n");
    file.sync();
  }
  {
    DurableFile file = DurableFile::open_append(path.string());
    file.append("three\n");
    file.sync();
  }
  EXPECT_EQ(slurp(path), "one\ntwo\nthree\n");
}

TEST(DurableFile, OpenAppendMissingFileThrows) {
  EXPECT_THROW(
      DurableFile::open_append(temp_path("fsio_missing.log").string()), Error);
}

TEST(DurableFile, CreateTruncatesExisting) {
  const fs::path path = temp_path("fsio_trunc.log");
  atomic_write_file(path.string(), "stale");
  DurableFile file = DurableFile::create(path.string());
  file.append("fresh");
  file.close();
  EXPECT_EQ(slurp(path), "fresh");
}

TEST(Checksums, Crc32MatchesIeeeCheckValue) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("pals"), crc32("palt"));
}

TEST(Checksums, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("config-a"), fnv1a64("config-b"));
}

TEST(Checksums, ToHexIsFixedWidthLowercase) {
  EXPECT_EQ(to_hex(0xCBF43926u, 8), "cbf43926");
  EXPECT_EQ(to_hex(0x1u, 8), "00000001");
  EXPECT_EQ(to_hex(0xcbf29ce484222325ull, 16), "cbf29ce484222325");
}

}  // namespace
}  // namespace pals
