#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, LeadingAndTrailingSeparators) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitWs, DropsAllWhitespaceRuns) {
  const auto parts = split_ws("  a\t b \n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWs, EmptyInputGivesNoFields) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
}

TEST(StartsEndsWith, BasicCases) {
  EXPECT_TRUE(starts_with("pals-trace", "pals"));
  EXPECT_FALSE(starts_with("pa", "pals"));
  EXPECT_TRUE(ends_with("trace.palst", ".palst"));
  EXPECT_FALSE(ends_with("palst", "trace.palst"));
}

TEST(ParseDouble, ParsesPlainAndNegative) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.25"), -0.25);
  EXPECT_DOUBLE_EQ(parse_double(" 2 "), 2.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double("1.5x"), Error);
  EXPECT_THROW(parse_double(""), Error);
}

TEST(ParseInt, ParsesAndRejects) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("3.5"), Error);
  EXPECT_THROW(parse_int("four"), Error);
}

TEST(FormatFixed, RoundsToRequestedDigits) {
  EXPECT_EQ(format_fixed(0.61234, 2), "0.61");
  EXPECT_EQ(format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(format_fixed(-2.5, 0), "-2");  // banker-style from snprintf %.0f
}

TEST(FormatPercent, ScalesRatio) {
  EXPECT_EQ(format_percent(0.3521), "35.21%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace pals
