#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("rank 3"), "rank 3");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").boolean);
  EXPECT_FALSE(json_parse("false").boolean);
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2").number, -1250.0);
  EXPECT_EQ(json_parse("\"hi\\nthere\"").string, "hi\nthere");
}

TEST(JsonParseTest, ParsesNestedContainers) {
  const JsonValue v = json_parse(
      R"({"metrics":[{"name":"replay.events","value":42}],"ok":true})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->array.size(), 1u);
  const JsonValue* name = metrics->array[0].find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "replay.events");
  EXPECT_DOUBLE_EQ(metrics->array[0].find("value")->number, 42.0);
  EXPECT_TRUE(v.find("ok")->boolean);
}

TEST(JsonParseTest, KeepsObjectMembersInDocumentOrder) {
  const JsonValue v = json_parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(JsonParseTest, ParsesUnicodeEscapes) {
  EXPECT_EQ(json_parse("\"\\u0041\"").string, "A");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), Error);
  EXPECT_THROW(json_parse("{"), Error);
  EXPECT_THROW(json_parse("[1,]"), Error);
  EXPECT_THROW(json_parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(json_parse("'single'"), Error);
  EXPECT_THROW(json_parse("nul"), Error);
}

TEST(JsonParseTest, RejectsMissingFile) {
  EXPECT_THROW(json_parse_file("/nonexistent/path.json"), Error);
}

TEST(JsonParseTest, RoundTripsEscapedStrings) {
  const std::string original = "tab\there \"quoted\" \\ done";
  const JsonValue v = json_parse("\"" + json_escape(original) + "\"");
  EXPECT_EQ(v.string, original);
}

}  // namespace
}  // namespace pals
