#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

CliParser make_parser() {
  CliParser cli;
  cli.add_option("ranks", "number of ranks", "32");
  cli.add_option("beta", "memory boundedness");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get("ranks"), "32");
  EXPECT_EQ(cli.get_int("ranks", 0), 32);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsForm) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--ranks=64"};
  cli.parse(2, argv);
  EXPECT_EQ(cli.get_int("ranks", 0), 64);
}

TEST(Cli, SpaceSeparatedForm) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--beta", "0.7"};
  cli.parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 0.7);
}

TEST(Cli, FlagForm) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--beta"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, FlagWithValueThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, MissingRequiredThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW(cli.get("beta"), Error);
  EXPECT_EQ(cli.get_or("beta", "0.5"), "0.5");
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "input.palst", "--verbose", "out.csv"};
  cli.parse(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.palst");
  EXPECT_EQ(cli.positional()[1], "out.csv");
}

TEST(Cli, DuplicateDeclarationThrows) {
  CliParser cli;
  cli.add_option("x", "");
  EXPECT_THROW(cli.add_option("x", ""), Error);
  EXPECT_THROW(cli.add_flag("x", ""), Error);
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--ranks"), std::string::npos);
  EXPECT_NE(usage.find("default: 32"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

}  // namespace
}  // namespace pals
