// BackoffPolicy (util/backoff.hpp): the one delay schedule shared by the
// fault guard, the shard supervisor and the pals_query retry loop.
#include "util/backoff.hpp"

#include <gtest/gtest.h>

namespace pals {
namespace {

TEST(BackoffPolicy, DelayGrowsGeometricallyFromBase) {
  const BackoffPolicy policy{0.5, 2.0, 100.0};
  EXPECT_DOUBLE_EQ(policy.delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.delay(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.delay(4), 4.0);
}

TEST(BackoffPolicy, DelayIsCapped) {
  const BackoffPolicy policy{0.5, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(policy.delay(3), 2.0);   // below the cap
  EXPECT_DOUBLE_EQ(policy.delay(4), 3.0);   // 4.0 clipped to the cap
  EXPECT_DOUBLE_EQ(policy.delay(50), 3.0);  // stays there forever
}

TEST(BackoffPolicy, HugeRetryNumbersDoNotOverflow) {
  // The early break once the cap is crossed keeps delay(10^9) finite
  // (a naive pow would overflow to inf long before).
  const BackoffPolicy policy{1.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(policy.delay(1000000000), 8.0);
}

TEST(BackoffPolicy, NonPositiveBaseDisablesBackoff) {
  const BackoffPolicy zero{0.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(zero.delay(1), 0.0);
  EXPECT_DOUBLE_EQ(zero.delay(7), 0.0);
  EXPECT_DOUBLE_EQ(zero.total(5), 0.0);
  const BackoffPolicy negative{-1.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(negative.delay(3), 0.0);
}

TEST(BackoffPolicy, RetryNumbersBelowOneYieldTheBaseDelay) {
  // Matches the historic behaviour of the extracted call sites.
  const BackoffPolicy policy{0.5, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(policy.delay(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(-3), 0.5);
}

TEST(BackoffPolicy, MultiplierOneIsConstant) {
  const BackoffPolicy policy{0.25, 1.0, 8.0};
  EXPECT_DOUBLE_EQ(policy.delay(1), 0.25);
  EXPECT_DOUBLE_EQ(policy.delay(9), 0.25);
}

TEST(BackoffPolicy, BaseAboveCapIsClippedEverywhere) {
  const BackoffPolicy policy{10.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(policy.delay(1), 4.0);
  EXPECT_DOUBLE_EQ(policy.delay(2), 4.0);
}

TEST(BackoffPolicy, TotalSumsTheSchedule) {
  const BackoffPolicy policy{0.5, 2.0, 3.0};
  // 0.5 + 1.0 + 2.0 + 3.0 + 3.0
  EXPECT_DOUBLE_EQ(policy.total(5), 9.5);
  EXPECT_DOUBLE_EQ(policy.total(0), 0.0);
}

TEST(BackoffPolicy, DefaultsMatchTheDocumentedSchedule) {
  const BackoffPolicy policy;
  EXPECT_DOUBLE_EQ(policy.delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.delay(5), 8.0);  // capped at 8
}

}  // namespace
}  // namespace pals
