#include "util/kvconfig.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace pals {
namespace {

KvConfig parse_text(const std::string& text) {
  std::stringstream in(text);
  return KvConfig::parse(in);
}

TEST(KvConfig, ParsesKeyValuePairs) {
  const KvConfig c = parse_text("latency = 1e-5\nbandwidth=250e6\n");
  EXPECT_DOUBLE_EQ(c.get_double("latency"), 1e-5);
  EXPECT_DOUBLE_EQ(c.get_double("bandwidth"), 250e6);
}

TEST(KvConfig, StripsCommentsAndWhitespace) {
  const KvConfig c = parse_text(
      "# cluster description\n  buses = 4   # shared\n\n  name = myrinet\n");
  EXPECT_EQ(c.get_int("buses"), 4);
  EXPECT_EQ(c.get_string("name"), "myrinet");
}

TEST(KvConfig, KeepsFileOrder) {
  const KvConfig c = parse_text("b = 1\na = 2\n");
  ASSERT_EQ(c.keys().size(), 2u);
  EXPECT_EQ(c.keys()[0], "b");
  EXPECT_EQ(c.keys()[1], "a");
}

TEST(KvConfig, RejectsMalformedLines) {
  EXPECT_THROW(parse_text("no equals sign\n"), Error);
  EXPECT_THROW(parse_text("= value\n"), Error);
  EXPECT_THROW(parse_text("a = 1\na = 2\n"), Error);  // duplicate
}

TEST(KvConfig, TypedAccessErrors) {
  const KvConfig c = parse_text("word = hello\n");
  EXPECT_THROW(c.get_double("word"), Error);
  EXPECT_THROW(c.get_string("missing"), Error);
}

TEST(KvConfig, FallbackAccessors) {
  const KvConfig c = parse_text("x = 5\n");
  EXPECT_EQ(c.get_int_or("x", 1), 5);
  EXPECT_EQ(c.get_int_or("y", 1), 1);
  EXPECT_DOUBLE_EQ(c.get_double_or("z", 2.5), 2.5);
  EXPECT_EQ(c.get_string_or("w", "d"), "d");
}

TEST(KvConfig, UnknownKeyDetection) {
  const KvConfig c = parse_text("latency = 1\nbandwith = 2\n");  // typo
  EXPECT_NO_THROW(c.require_known_keys({"latency", "bandwith"}));
  try {
    c.require_known_keys({"latency", "bandwidth"});
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bandwith"), std::string::npos);
  }
}

TEST(KvConfig, MissingFileThrows) {
  EXPECT_THROW(KvConfig::parse_file("/no/such/file.cfg"), Error);
}

TEST(KvConfig, EmptyFileIsValid) {
  const KvConfig c = parse_text("");
  EXPECT_TRUE(c.keys().empty());
  EXPECT_FALSE(c.has("anything"));
}

}  // namespace
}  // namespace pals
