#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1);
  EXPECT_EQ(ThreadPool::resolve_jobs(7), 7);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1);   // hardware concurrency
  EXPECT_GE(ThreadPool::resolve_jobs(-3), 1);  // floored
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.parallel_for(out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, ParallelForWithZeroIterationsReturnsImmediately) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, PoolIsReusableAcrossParallelFors) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(100, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, FirstExceptionPropagatesAndRemainingIterationsRun) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(200, [&](std::size_t i) {
      ++executed;
      if (i == 17) throw Error("boom from 17");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // parallel_for drains the whole range even after a failure.
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, UnevenTaskCostsAllComplete) {
  // Work stealing: one long task early must not serialize the rest.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(64, [&](std::size_t i) {
    volatile long burn = 0;
    const long spins = (i == 0) ? 2000000 : 1000;
    for (long s = 0; s < spins; ++s) burn += s;
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

}  // namespace
}  // namespace pals
