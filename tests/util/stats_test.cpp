#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(Summarize, EmptySampleIsAllZero) {
  const StatsSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const StatsSummary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.11803, 1e-4);  // population stddev
}

TEST(MinMax, ThrowOnEmpty) {
  EXPECT_THROW(min_value({}), Error);
  EXPECT_THROW(max_value({}), Error);
}

TEST(Stddev, ConstantSampleIsZero) {
  const std::vector<double> v{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(CoefficientOfVariation, ZeroMeanGivesZero) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(v), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile(v, -1.0), Error);
  EXPECT_THROW(percentile(v, 101.0), Error);
}

TEST(Gini, PerfectEqualityIsZero) {
  const std::vector<double> v{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(gini(v), 0.0, 1e-12);
}

TEST(Gini, ExtremeInequalityApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1e-9;  // gini requires positive sum; all mass on one rank
  v[99] = 1000.0;
  EXPECT_GT(gini(v), 0.95);
}

TEST(Gini, RejectsNegativeAndZeroSum) {
  const std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(gini(neg), Error);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(gini(zeros), Error);
}

TEST(OnlineStats, MatchesBatchSummary) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  OnlineStats acc;
  for (double x : v) acc.add(x);
  const StatsSummary s = summarize(v);
  EXPECT_EQ(acc.count(), s.count);
  EXPECT_DOUBLE_EQ(acc.mean(), s.mean);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(OnlineStats, EmptyAccumulatorIsZero) {
  const OnlineStats acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

}  // namespace
}  // namespace pals
