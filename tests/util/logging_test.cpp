#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

class LoggingTest : public ::testing::Test {
protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseAcceptsAllNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseRejectsUnknown) {
  EXPECT_THROW(parse_log_level("loud"), Error);
}

TEST_F(LoggingTest, ToStringRoundTrips) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST_F(LoggingTest, MacroDoesNotEvaluateBelowThreshold) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  PALS_INFO("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kTrace);
  PALS_ERROR("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, CheckMacroThrowsWithContext) {
  try {
    PALS_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST_F(LoggingTest, CheckMacroPassesSilently) {
  EXPECT_NO_THROW(PALS_CHECK(2 + 2 == 4));
}

// log_line writes each record as ONE stream write, so concurrent loggers
// can never interleave mid-line. Hammer it from a thread pool and require
// that every captured line is a complete, well-formed record.
TEST_F(LoggingTest, ConcurrentLogLinesNeverInterleave) {
  set_log_level(LogLevel::kWarn);
  std::ostringstream captured;
  std::streambuf* saved = std::cerr.rdbuf(captured.rdbuf());

  constexpr int kTasks = 64;
  constexpr int kLinesPerTask = 50;
  {
    ThreadPool pool(8);
    pool.parallel_for(kTasks, [](std::size_t task) {
      for (int i = 0; i < kLinesPerTask; ++i)
        PALS_WARN("task=" << task << " line=" << i << " payload "
                          << std::string(40, 'x'));
    });
  }
  std::cerr.rdbuf(saved);

  std::vector<std::string> lines;
  std::istringstream in(captured.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kTasks * kLinesPerTask));
  for (const std::string& line : lines) {
    EXPECT_TRUE(line.starts_with("[pals:warn] task=")) << line;
    EXPECT_TRUE(line.ends_with(std::string(40, 'x'))) << line;
  }
}

}  // namespace
}  // namespace pals
