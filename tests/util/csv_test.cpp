#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(CsvWriter, PlainFields) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(std::string("a")).field(1.5, 2).field(static_cast<long long>(-3));
  csv.end_row();
  EXPECT_EQ(os.str(), "a,1.50,-3\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(std::string("has,comma")).field(std::string("has\"quote"));
  csv.end_row();
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\"\n");
}

TEST(CsvWriter, RowHelper) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"x", "y"});
  csv.row({"1", "2"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(ParseCsvLine, PlainFields) {
  const auto fields = parse_csv_line("a,1.5,-3");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "-3");
}

TEST(ParseCsvLine, QuotedFieldsWithCommasAndQuotes) {
  const auto fields = parse_csv_line("\"has,comma\",\"has\"\"quote\",plain");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "has,comma");
  EXPECT_EQ(fields[1], "has\"quote");
  EXPECT_EQ(fields[2], "plain");
}

TEST(ParseCsvLine, EmptyFieldsSurvive) {
  const auto fields = parse_csv_line("a,,b,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLine, RoundTripsWriterOutput) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"x,y", "pla\"in", "z"});
  std::string line = os.str();
  line.pop_back();  // strip the newline
  const auto fields = parse_csv_line(line);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "pla\"in");
}

TEST(ParseCsvLine, RejectsMalformedQuoting) {
  EXPECT_THROW(parse_csv_line("\"unterminated"), Error);
  EXPECT_THROW(parse_csv_line("ab\"cd"), Error);
}

TEST(TextTable, AlignsColumnsAndRightAlignsNumbers) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"b", "100.25"});
  const std::string out = table.to_string();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric column is right-aligned: "1.5" gets left padding.
  EXPECT_NE(out.find("   1.5"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, CountsRows) {
  TextTable table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"x"});
  table.add_row({"y"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, PercentCellsAreNumeric) {
  TextTable table({"v"});
  table.add_row({"35.21%"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("35.21%"), std::string::npos);
}

}  // namespace
}  // namespace pals
