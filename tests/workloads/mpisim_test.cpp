#include "mpisim/vmpi.hpp"

#include <gtest/gtest.h>

#include "replay/replay.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

TEST(VirtualMpi, RecordsComputeAndRanks) {
  const Trace t = run_spmd(4, [](VirtualMpi& mpi) {
    mpi.compute(0.5 * (mpi.rank() + 1));
  });
  EXPECT_EQ(t.n_ranks(), 4);
  EXPECT_DOUBLE_EQ(t.computation_time(0), 0.5);
  EXPECT_DOUBLE_EQ(t.computation_time(3), 2.0);
}

TEST(VirtualMpi, ComputeFlopsUsesMachineRate) {
  SpmdOptions options;
  options.flops_per_second = 2e9;
  const Trace t = run_spmd(
      1, [](VirtualMpi& mpi) { mpi.compute_flops(4e9); }, options);
  EXPECT_DOUBLE_EQ(t.computation_time(0), 2.0);
}

TEST(VirtualMpi, SizeVisibleToPrograms) {
  const Trace t = run_spmd(8, [](VirtualMpi& mpi) {
    EXPECT_EQ(mpi.size(), 8);
    mpi.compute(1.0);
  });
  EXPECT_EQ(t.n_ranks(), 8);
}

TEST(VirtualMpi, RequestIdsAutoAssignAndReplayCleanly) {
  const Trace t = run_spmd(2, [](VirtualMpi& mpi) {
    if (mpi.rank() == 0) {
      const VRequest a = mpi.isend(1, 0, 100);
      const VRequest b = mpi.isend(1, 1, 100);
      EXPECT_NE(a.id, b.id);
      mpi.wait(a);
      mpi.wait(b);
    } else {
      mpi.recv(0, 0, 100);
      mpi.recv(0, 1, 100);
    }
  });
  EXPECT_NO_THROW(t.validate());
  EXPECT_NO_THROW(replay(t, ReplayConfig{}));
}

TEST(VirtualMpi, CollectivesRecordOpAndBytes) {
  const Trace t = run_spmd(2, [](VirtualMpi& mpi) {
    mpi.barrier();
    mpi.allreduce(64);
    mpi.bcast(128, 1);
    mpi.alltoall(256);
  });
  const auto events = t.events(0);
  ASSERT_EQ(events.size(), 4u);
  const auto* bcast = std::get_if<CollectiveEvent>(&events[2]);
  ASSERT_NE(bcast, nullptr);
  EXPECT_EQ(bcast->op, CollectiveOp::kBcast);
  EXPECT_EQ(bcast->bytes, 128u);
  EXPECT_EQ(bcast->root, 1);
}

TEST(VirtualMpi, MarkersAndPhases) {
  const Trace t = run_spmd(1, [](VirtualMpi& mpi) {
    mpi.iteration_begin(0);
    mpi.phase_begin(0);
    mpi.compute(1.0, 0);
    mpi.phase_end(0);
    mpi.iteration_end(0);
  });
  EXPECT_EQ(t.iteration_count(), 1u);
  ASSERT_EQ(t.phases().size(), 1u);
  EXPECT_EQ(t.phases()[0], 0);
}

TEST(VirtualMpi, WaitallAfterManyRequests) {
  const Trace t = run_spmd(3, [](VirtualMpi& mpi) {
    const Rank next = (mpi.rank() + 1) % mpi.size();
    const Rank prev = (mpi.rank() - 1 + mpi.size()) % mpi.size();
    mpi.irecv(prev, 0, 1000);
    mpi.isend(next, 0, 1000);
    mpi.waitall();
  });
  EXPECT_NO_THROW(replay(t, ReplayConfig{}));
}

TEST(VirtualMpi, NameFromOptions) {
  SpmdOptions options;
  options.name = "TEST-APP-2";
  const Trace t =
      run_spmd(2, [](VirtualMpi& mpi) { mpi.compute(1.0); }, options);
  EXPECT_EQ(t.name(), "TEST-APP-2");
}

TEST(VirtualMpi, RejectsInvalidUse) {
  EXPECT_THROW(run_spmd(0, [](VirtualMpi&) {}), Error);
  EXPECT_THROW(run_spmd(2, nullptr), Error);
  EXPECT_THROW(run_spmd(1, [](VirtualMpi& mpi) { mpi.compute(-1.0); }),
               Error);
  EXPECT_THROW(run_spmd(1, [](VirtualMpi& mpi) { mpi.wait(VRequest{}); }),
               Error);
}

TEST(VirtualMpi, ValidationFailsOnLeakedRequests) {
  EXPECT_THROW(run_spmd(2,
                        [](VirtualMpi& mpi) {
                          if (mpi.rank() == 0) mpi.isend(1, 0, 8);  // no wait
                          else mpi.recv(0, 0, 8);
                        }),
               Error);
}

}  // namespace
}  // namespace pals
