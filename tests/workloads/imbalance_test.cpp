#include "workloads/imbalance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(Shapes, UniformNoiseWithinBoundsAndPinned) {
  Rng rng(1);
  const auto w = shape_uniform_noise(64, 0.3, rng);
  ASSERT_EQ(w.size(), 64u);
  EXPECT_DOUBLE_EQ(*std::max_element(w.begin(), w.end()), 1.0);
  for (double x : w) {
    EXPECT_GT(x, 0.69);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Shapes, LinearRampEndpoints) {
  const auto w = shape_linear(5, 0.2);
  EXPECT_DOUBLE_EQ(w.front(), 0.2);
  EXPECT_DOUBLE_EQ(w.back(), 1.0);
  EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
}

TEST(Shapes, LinearSingleRankIsOne) {
  const auto w = shape_linear(1, 0.2);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(Shapes, GeometricContainsFullDecayRange) {
  const auto w = shape_geometric(16, 0.8);
  EXPECT_DOUBLE_EQ(*std::max_element(w.begin(), w.end()), 1.0);
  const double min = *std::min_element(w.begin(), w.end());
  EXPECT_NEAR(min, std::pow(0.8, 15), 1e-12);
}

TEST(Shapes, GeometricInterleavesHeavyAndLight) {
  const auto w = shape_geometric(8, 0.5);
  // The heaviest weight sits at an even position, the lightest at odd.
  const auto max_pos = std::distance(
      w.begin(), std::max_element(w.begin(), w.end()));
  const auto min_pos = std::distance(
      w.begin(), std::min_element(w.begin(), w.end()));
  EXPECT_EQ(max_pos % 2, 0);
  EXPECT_EQ(min_pos % 2, 1);
}

TEST(Shapes, ZonesHaveTwoLevels) {
  Rng rng(2);
  const auto w = shape_zones(32, 2, 0.3, 0.0, rng);
  int heavy = 0;
  for (double x : w) {
    if (x > 0.9) ++heavy;
    else EXPECT_NEAR(x, 0.3, 1e-9);
  }
  EXPECT_EQ(heavy, 2);
}

TEST(Shapes, SingleHotHasOneMaximum) {
  Rng rng(3);
  const auto w = shape_single_hot(16, 0.4, 0.05, rng);
  int at_one = 0;
  for (double x : w)
    if (x == 1.0) ++at_one;
  EXPECT_EQ(at_one, 1);
}

TEST(Shapes, RejectBadParameters) {
  Rng rng(1);
  EXPECT_THROW(shape_uniform_noise(0, 0.1, rng), Error);
  EXPECT_THROW(shape_uniform_noise(4, 1.0, rng), Error);
  EXPECT_THROW(shape_linear(4, 0.0), Error);
  EXPECT_THROW(shape_geometric(4, 1.0), Error);
  EXPECT_THROW(shape_zones(4, 0, 0.5, 0.0, rng), Error);
  EXPECT_THROW(shape_zones(4, 5, 0.5, 0.0, rng), Error);
  EXPECT_THROW(shape_single_hot(4, 1.5, 0.0, rng), Error);
}

class CalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationTest, HitsTargetExactly) {
  Rng rng(7);
  const double target = GetParam();
  for (const auto& shape :
       {shape_uniform_noise(64, 0.4, rng), shape_linear(64, 0.1),
        shape_geometric(64, 0.9)}) {
    const auto calibrated = calibrate_to_lb(shape, target);
    EXPECT_NEAR(weights_load_balance(calibrated), target, 1e-6);
    // max weight preserved at 1.
    EXPECT_NEAR(*std::max_element(calibrated.begin(), calibrated.end()), 1.0,
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, CalibrationTest,
                         ::testing::Values(0.35, 0.44, 0.50, 0.65, 0.76, 0.79,
                                           0.90, 0.94, 0.978));

TEST(Calibration, PreservesRankOrdering) {
  const auto shape = shape_linear(32, 0.3);
  const auto calibrated = calibrate_to_lb(shape, 0.5);
  EXPECT_TRUE(std::is_sorted(calibrated.begin(), calibrated.end()));
}

TEST(Calibration, TargetOneIsAllOnes) {
  const auto calibrated = calibrate_to_lb(shape_linear(8, 0.5), 1.0);
  for (double x : calibrated) EXPECT_NEAR(x, 1.0, 1e-4);
}

TEST(Calibration, RejectsUnreachableTarget) {
  // A 4-rank linear shape cannot go below LB = 1/4 (single max survivor).
  const auto shape = shape_linear(4, 0.9);
  EXPECT_THROW(calibrate_to_lb(shape, 0.2), Error);
}

TEST(Calibration, RejectsBadInput) {
  EXPECT_THROW(calibrate_to_lb({}, 0.5), Error);
  const std::vector<double> bad{0.5, -0.1};
  EXPECT_THROW(calibrate_to_lb(bad, 0.5), Error);
  const std::vector<double> w{0.5, 1.0};
  EXPECT_THROW(calibrate_to_lb(w, 0.0), Error);
  EXPECT_THROW(calibrate_to_lb(w, 1.5), Error);
}

TEST(WeightsLoadBalance, MatchesFormula) {
  const std::vector<double> w{0.5, 1.0};
  EXPECT_DOUBLE_EQ(weights_load_balance(w), 0.75);
}

}  // namespace
}  // namespace pals
