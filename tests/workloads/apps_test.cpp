#include "workloads/apps.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "replay/replay.hpp"
#include "trace/transform.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

WorkloadConfig small_config(Rank ranks, double target_lb) {
  WorkloadConfig c;
  c.ranks = ranks;
  c.iterations = 3;
  c.target_lb = target_lb;
  return c;
}

using Factory = Trace (*)(const WorkloadConfig&);

struct AppCase {
  const char* name;
  Factory factory;
  double target_lb;
};

class AppGenerator : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppGenerator, ProducesValidReplayableTrace) {
  const AppCase& app = GetParam();
  const Trace t = app.factory(small_config(16, app.target_lb));
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.n_ranks(), 16);
  EXPECT_EQ(t.iteration_count(), 3u);
  const ReplayResult r = replay(t, ReplayConfig{});
  EXPECT_GT(r.makespan, 0.0);
}

TEST_P(AppGenerator, LoadBalanceMatchesTarget) {
  const AppCase& app = GetParam();
  const Trace t = app.factory(small_config(16, app.target_lb));
  EXPECT_NEAR(load_balance(t.computation_times()), app.target_lb, 0.03)
      << app.name;
}

TEST_P(AppGenerator, DeterministicForSameConfig) {
  const AppCase& app = GetParam();
  const Trace a = app.factory(small_config(16, app.target_lb));
  const Trace b = app.factory(small_config(16, app.target_lb));
  EXPECT_EQ(a, b);
}

TEST_P(AppGenerator, SeedChangesJitterNotStructure) {
  const AppCase& app = GetParam();
  WorkloadConfig c1 = small_config(16, app.target_lb);
  WorkloadConfig c2 = c1;
  c2.seed = c1.seed + 99;
  const Trace a = app.factory(c1);
  const Trace b = app.factory(c2);
  EXPECT_EQ(a.total_events(), b.total_events());
  EXPECT_NE(a, b);
}

TEST_P(AppGenerator, ComputeScaleScalesComputation) {
  const AppCase& app = GetParam();
  WorkloadConfig c1 = small_config(16, app.target_lb);
  WorkloadConfig c2 = c1;
  c2.compute_scale = 2.0;
  const Trace a = app.factory(c1);
  const Trace b = app.factory(c2);
  EXPECT_NEAR(b.computation_time(0), 2.0 * a.computation_time(0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppGenerator,
    ::testing::Values(AppCase{"cg", make_cg, 0.97},
                      AppCase{"mg", make_mg, 0.94},
                      AppCase{"is", make_is, 0.45},
                      AppCase{"bt-mz", make_bt_mz, 0.36},
                      AppCase{"specfem3d", make_specfem3d, 0.92},
                      AppCase{"wrf", make_wrf, 0.90},
                      AppCase{"pepc", make_pepc, 0.76},
                      AppCase{"lu", make_lu, 0.93},
                      AppCase{"ft", make_ft, 0.98}),
    [](const ::testing::TestParamInfo<AppCase>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Pepc, HasTwoPhasesWithOpposingImbalance) {
  const Trace t = make_pepc(small_config(32, 0.7612));
  const auto phases = t.phases();
  ASSERT_EQ(phases.size(), 2u);
  // Per-phase per-rank times are negatively correlated: the rank heaviest
  // in phase 0 is light in phase 1.
  std::vector<double> p0, p1;
  for (Rank r = 0; r < t.n_ranks(); ++r) {
    p0.push_back(t.computation_time(r, 0));
    p1.push_back(t.computation_time(r, 1));
  }
  const auto heaviest0 = static_cast<std::size_t>(
      std::max_element(p0.begin(), p0.end()) - p0.begin());
  const auto heaviest1 = static_cast<std::size_t>(
      std::max_element(p1.begin(), p1.end()) - p1.begin());
  EXPECT_NE(heaviest0, heaviest1);
  // Phase 0 (tree build) is the strongly imbalanced phase; a rank-level
  // frequency chosen from *total* load cannot balance both phases.
  EXPECT_LT(load_balance(p0), load_balance(t.computation_times()) + 0.01);
  EXPECT_GT(load_balance(p1), 0.7);
}

TEST(AmrDrift, EveryIterationImbalancedTotalsBalanced) {
  WorkloadConfig c;
  c.ranks = 16;
  c.iterations = 16;
  c.target_lb = 0.5;
  const Trace t = make_amr_drift(c);
  const auto per_iteration = iteration_computation_times(t);
  for (const auto& iteration : per_iteration)
    EXPECT_NEAR(load_balance(iteration), 0.5, 0.05);
  // The hot spot visits every rank: totals are nearly balanced.
  EXPECT_GT(load_balance(t.computation_times()), 0.9);
}

TEST(AmrDrift, HotSpotMoves) {
  WorkloadConfig c;
  c.ranks = 8;
  c.iterations = 8;
  c.target_lb = 0.6;
  const Trace t = make_amr_drift(c);
  const auto per_iteration = iteration_computation_times(t);
  const auto hottest = [](const std::vector<Seconds>& times) {
    return std::max_element(times.begin(), times.end()) - times.begin();
  };
  EXPECT_NE(hottest(per_iteration.front()), hottest(per_iteration.back()));
}

TEST(AmrDrift, ReplaysCleanly) {
  WorkloadConfig c;
  c.ranks = 8;
  c.iterations = 4;
  c.target_lb = 0.6;
  EXPECT_NO_THROW(replay(make_amr_drift(c), ReplayConfig{}));
}

TEST(Workloads, OddRankCountsWork) {
  for (const Rank n : {3, 5, 7, 9}) {
    const Trace t = make_wrf(small_config(n, 0.9));
    EXPECT_NO_THROW(replay(t, ReplayConfig{})) << n << " ranks";
  }
}

TEST(Workloads, TwoRanksWork) {
  // Two-rank shapes cannot reach deep imbalance (the heavy rank alone
  // fixes the max), so ask for a mild target.
  for (Factory f : {make_cg, make_mg, make_is, make_bt_mz, make_specfem3d,
                    make_wrf, make_pepc, make_lu, make_ft}) {
    const Trace t = f(small_config(2, 0.92));
    EXPECT_NO_THROW(replay(t, ReplayConfig{}));
  }
}

TEST(Lu, WavefrontPipelinesAcrossTheGrid) {
  WorkloadConfig c = small_config(16, 0.95);
  const ReplayResult r = replay(make_lu(c), ReplayConfig{});
  // The forward wave: the far corner cannot start computing until the
  // origin corner's block is done and has propagated down the diagonal.
  const auto first_compute = [&](Rank rank) {
    for (const StateInterval& iv : r.timeline.intervals(rank))
      if (iv.state == RankState::kCompute) return iv;
    return StateInterval{};
  };
  EXPECT_GE(first_compute(15).begin, first_compute(0).end);
  // Both corners spend real time blocked in receives (the return wave for
  // rank 0, the forward wave for rank 15).
  EXPECT_GT(r.timeline.state_time(0, RankState::kRecv), 0.0);
  EXPECT_GT(r.timeline.state_time(15, RankState::kRecv), 0.0);
}

TEST(Ft, AlltoallDominatesCommunication) {
  WorkloadConfig c = small_config(16, 0.98);
  const ReplayResult r = replay(make_ft(c), ReplayConfig{});
  // No point-to-point traffic at all: everything is collective.
  EXPECT_EQ(r.point_to_point_messages, 0u);
  EXPECT_EQ(r.collective_operations, 3u * 3u);  // 3 per iteration
}

TEST(Workloads, ConfigValidation) {
  WorkloadConfig c;
  c.ranks = 0;
  EXPECT_THROW(make_cg(c), Error);
  c = WorkloadConfig{};
  c.iterations = 0;
  EXPECT_THROW(make_cg(c), Error);
  c = WorkloadConfig{};
  c.target_lb = 0.0;
  EXPECT_THROW(make_cg(c), Error);
  c = WorkloadConfig{};
  c.jitter = 0.7;
  EXPECT_THROW(make_cg(c), Error);
}

TEST(Factorization, ThreeDimensional) {
  const Grid3D g32 = factor_3d(32);
  EXPECT_EQ(g32.px * g32.py * g32.pz, 32);
  const Grid3D g64 = factor_3d(64);
  EXPECT_EQ(g64.px, 4);
  EXPECT_EQ(g64.py, 4);
  EXPECT_EQ(g64.pz, 4);
  const Grid3D g7 = factor_3d(7);
  EXPECT_EQ(g7.px * g7.py * g7.pz, 7);
}

TEST(Factorization, TwoDimensional) {
  const Grid2D g32 = factor_2d(32);
  EXPECT_EQ(g32.px * g32.py, 32);
  EXPECT_GE(g32.px, g32.py);
  const Grid2D g36 = factor_2d(36);
  EXPECT_EQ(g36.px, 6);
  EXPECT_EQ(g36.py, 6);
}

TEST(Registry, HasAllTwelvePaperInstances) {
  const auto instances = paper_benchmarks(2);
  ASSERT_EQ(instances.size(), 12u);
  EXPECT_EQ(instances[0].name, "BT-MZ-32");
  EXPECT_EQ(instances[11].name, "WRF-128");
  for (const auto& inst : instances) {
    EXPECT_GT(inst.paper_lb, 0.0);
    EXPECT_GT(inst.paper_pe, 0.0);
    EXPECT_LE(inst.paper_pe, inst.paper_lb + 1e-9);
  }
}

TEST(Registry, InstancesBuildMatchingTraces) {
  const auto inst = benchmark_by_name("IS-32", 2);
  ASSERT_TRUE(inst.has_value());
  const Trace t = inst->make();
  EXPECT_EQ(t.n_ranks(), 32);
  EXPECT_NEAR(load_balance(t.computation_times()), inst->paper_lb, 0.03);
}

TEST(Registry, UnknownNameIsEmpty) {
  EXPECT_FALSE(benchmark_by_name("LINPACK-9000").has_value());
}

TEST(Registry, Figure2SubsetHasFiveApps) {
  EXPECT_EQ(figure2_benchmarks(2).size(), 5u);
}

TEST(Registry, FactoryLookup) {
  EXPECT_NO_THROW(workload_factory("pepc"));
  EXPECT_THROW(workload_factory("doom"), Error);
}

}  // namespace
}  // namespace pals
