// Cross-module consistency: quantities computed independently by the
// algorithms, the trace transforms, the replay simulator and the power
// model must agree exactly.
#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "core/system_energy.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

class Consistency : public ::testing::TestWithParam<const char*> {
protected:
  static TraceCache& cache() {
    static TraceCache instance;
    return instance;
  }
  const Trace& trace() {
    const auto inst = benchmark_by_name(GetParam(), 3);
    EXPECT_TRUE(inst.has_value());
    return cache().get(*inst);
  }
};

TEST_P(Consistency, PredictedTimesMatchScaledReplayExactly) {
  // assignment.predicted_time is the algorithm's analytic forecast; the
  // scaled replay must reproduce it per rank (same β model applied via
  // the trace transform).
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  for (Rank rank = 0; rank < trace().n_ranks(); ++rank) {
    const auto k = static_cast<std::size_t>(rank);
    EXPECT_NEAR(r.scaled_replay.compute_time[k],
                r.assignment.predicted_time[k],
                1e-9 * std::max(1.0, r.assignment.predicted_time[k]))
        << "rank " << rank;
  }
}

TEST_P(Consistency, BaselineComputeMatchesTraceSums) {
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(2)));
  for (Rank rank = 0; rank < trace().n_ranks(); ++rank) {
    EXPECT_NEAR(r.computation_time[static_cast<std::size_t>(rank)],
                trace().computation_time(rank), 1e-9)
        << "rank " << rank;
  }
}

TEST_P(Consistency, EnergyDecomposesAcrossRanks) {
  // total_energy == sum of rank_energy.
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  const PowerModel pm(default_pipeline_config(paper_uniform(6)).power);
  double per_rank_sum = 0.0;
  for (Rank rank = 0; rank < trace().n_ranks(); ++rank) {
    per_rank_sum += pm.rank_energy(
        r.scaled_replay.timeline, rank,
        r.assignment.gears[static_cast<std::size_t>(rank)]);
  }
  EXPECT_NEAR(per_rank_sum, r.scaled_energy, 1e-6 * r.scaled_energy);
}

TEST_P(Consistency, PowerSeriesIntegratesToEnergy) {
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  const PowerModel pm(default_pipeline_config(paper_uniform(6)).power);
  const Seconds dt = r.scaled_time / 97.0;  // deliberately awkward bins
  const auto series =
      pm.power_series(r.scaled_replay.timeline, r.assignment.gears, dt);
  double integrated = 0.0;
  for (const double p : series) integrated += p * dt;
  EXPECT_NEAR(integrated, r.scaled_energy, 1e-6 * r.scaled_energy);
}

TEST_P(Consistency, EnergyOptimalPipelineHonoursMaxContract) {
  const PipelineResult r = run_pipeline(
      trace(),
      default_pipeline_config(paper_uniform(6), Algorithm::kEnergyOptimalMax));
  // Under the paper's idle model EOPT == MAX, including the time contract.
  const PipelineResult max_r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  EXPECT_NEAR(r.normalized_energy(), max_r.normalized_energy(), 1e-9);
  EXPECT_NEAR(r.normalized_time(), max_r.normalized_time(), 1e-9);
}

TEST_P(Consistency, UniformSlowdownScalesComputeButNotLoadBalance) {
  // Halving every rank's speed doubles per-rank computation exactly and
  // leaves the load balance untouched; communication does not scale, so
  // the parallel efficiency can only go up.
  PipelineConfig config = default_pipeline_config(paper_uniform(6));
  const PipelineResult base = run_pipeline(trace(), config);
  config.replay.relative_speed.assign(
      static_cast<std::size_t>(trace().n_ranks()), 0.5);
  const PipelineResult slowed = run_pipeline(trace(), config);
  EXPECT_NEAR(slowed.load_balance, base.load_balance, 1e-9);
  for (Rank rank = 0; rank < trace().n_ranks(); ++rank) {
    const auto k = static_cast<std::size_t>(rank);
    EXPECT_NEAR(slowed.computation_time[k], 2.0 * base.computation_time[k],
                1e-9)
        << "rank " << rank;
  }
  EXPECT_GE(slowed.parallel_efficiency, base.parallel_efficiency - 1e-9);
}

TEST_P(Consistency, SystemEnergyInterpolatesCpuAndTime) {
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  SystemEnergyConfig config;
  const SystemView view = system_view(r, config);
  const double lo = std::min(view.normalized_cpu_energy,
                             view.normalized_time);
  const double hi = std::max(view.normalized_cpu_energy,
                             view.normalized_time);
  EXPECT_GE(view.normalized_system_energy, lo - 1e-9);
  EXPECT_LE(view.normalized_system_energy, hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Apps, Consistency,
                         ::testing::Values("BT-MZ-32", "CG-32", "IS-64",
                                           "SPECFEM3D-96", "WRF-128"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace pals
