// End-to-end reproduction checks: the qualitative results of the paper
// must hold on our synthetic benchmark set.
#include <gtest/gtest.h>

#include <map>

#include "analysis/experiments.hpp"
#include "core/pipeline.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

/// Shared fixture: build each trace once for the whole suite.
class PaperResults : public ::testing::Test {
protected:
  static TraceCache& cache() {
    static TraceCache instance;
    return instance;
  }
  static const std::vector<BenchmarkInstance>& instances() {
    static const std::vector<BenchmarkInstance> all = paper_benchmarks(3);
    return all;
  }
  static const Trace& trace(const std::string& name) {
    for (const auto& inst : instances())
      if (inst.name == name) return cache().get(inst);
    throw Error("unknown instance " + name);
  }
  static PipelineResult run(const std::string& name, const GearSet& set,
                            Algorithm algorithm = Algorithm::kMax) {
    return run_pipeline(trace(name),
                        default_pipeline_config(set, algorithm));
  }
};

TEST_F(PaperResults, Table3LoadBalanceReproduced) {
  for (const auto& inst : instances()) {
    const Trace& t = cache().get(inst);
    EXPECT_NEAR(load_balance(t.computation_times()), inst.paper_lb, 0.03)
        << inst.name;
  }
}

TEST_F(PaperResults, Table3ParallelEfficiencyShape) {
  // PE must track the paper's ordering: compute-bound apps near their LB,
  // IS far below it.
  for (const auto& inst : instances()) {
    const ReplayResult r = replay(cache().get(inst), ReplayConfig{});
    const double pe = parallel_efficiency(r.compute_time, r.makespan);
    EXPECT_NEAR(pe, inst.paper_pe, 0.08) << inst.name;
  }
}

TEST_F(PaperResults, HighImbalanceAppsSaveLargeEnergy) {
  // Paper: up to 60 % CPU energy savings for BT-MZ / IS.
  for (const char* name : {"BT-MZ-32", "IS-32", "IS-64"}) {
    const PipelineResult r = run(name, paper_unlimited_continuous());
    EXPECT_LT(r.normalized_energy(), 0.55) << name;
    EXPECT_LT(r.normalized_time(), 1.05) << name;
  }
}

TEST_F(PaperResults, BalancedCgSavesAlmostNothing) {
  const PipelineResult r = run("CG-32", paper_unlimited_continuous());
  EXPECT_GT(r.normalized_energy(), 0.93);
}

TEST_F(PaperResults, UnlimitedBeatsLimitedOnlyForVeryImbalanced) {
  // BT-MZ and IS need frequencies below 0.8 GHz; CG/MG/WRF do not.
  for (const char* name : {"BT-MZ-32", "IS-32"}) {
    const double unlimited =
        run(name, paper_unlimited_continuous()).normalized_energy();
    const double limited =
        run(name, paper_limited_continuous()).normalized_energy();
    EXPECT_LT(unlimited, limited - 0.01) << name;
  }
  for (const char* name : {"CG-32", "MG-32", "WRF-32"}) {
    const double unlimited =
        run(name, paper_unlimited_continuous()).normalized_energy();
    const double limited =
        run(name, paper_limited_continuous()).normalized_energy();
    EXPECT_NEAR(unlimited, limited, 0.01) << name;
  }
}

TEST_F(PaperResults, SixGearsCloseToContinuousTwoGearsAreNot) {
  double gap2 = 0.0;
  double gap6 = 0.0;
  for (const auto& inst : instances()) {
    const double continuous =
        run(inst.name, paper_limited_continuous()).normalized_energy();
    gap2 += run(inst.name, paper_uniform(2)).normalized_energy() - continuous;
    gap6 += run(inst.name, paper_uniform(6)).normalized_energy() - continuous;
  }
  const auto n = static_cast<double>(instances().size());
  // Six gears land within a few points of the continuous set on average
  // (paper §5.3.1); two gears are far off for most applications.
  EXPECT_LT(gap6 / n, 0.07);
  EXPECT_GT(gap2 / n, 1.5 * gap6 / n);
}

TEST_F(PaperResults, TwoGearsStillHelpVeryImbalancedApps) {
  const PipelineResult r = run("BT-MZ-32", paper_uniform(2));
  EXPECT_LT(r.normalized_energy(), 0.8);
}

TEST_F(PaperResults, CgCannotExploitTwoGears) {
  const PipelineResult r = run("CG-32", paper_uniform(2));
  EXPECT_GT(r.normalized_energy(), 0.97);
}

TEST_F(PaperResults, ExponentialSetsHelpBalancedAppsWithFewGears) {
  // Paper §5.3.2: SPECFEM3D/WRF save with a 3-gear exponential set but
  // need >= 4 uniform gears.
  for (const char* name : {"SPECFEM3D-32", "WRF-32"}) {
    const double uniform3 = run(name, paper_uniform(3)).normalized_energy();
    const double exp3 = run(name, paper_exponential(3)).normalized_energy();
    EXPECT_LT(exp3, uniform3 - 0.005) << name;
  }
}

TEST_F(PaperResults, MaxTimePenaltySmallExceptPepc) {
  for (const auto& inst : instances()) {
    const PipelineResult r = run(inst.name, paper_uniform(6));
    if (inst.name == "PEPC-128") {
      // The paper reports up to 20 % slowdown for PEPC.
      EXPECT_GT(r.normalized_time(), 1.04) << inst.name;
      EXPECT_LT(r.normalized_time(), 1.25) << inst.name;
    } else {
      EXPECT_LT(r.normalized_time(), 1.06) << inst.name;
    }
  }
}

TEST_F(PaperResults, AvgReducesExecutionTimeForImbalancedApps) {
  const GearSet oc = paper_limited_continuous().with_fmax_scaled(1.2);
  for (const char* name : {"BT-MZ-32", "IS-32", "SPECFEM3D-96"}) {
    const PipelineResult r = run(name, oc, Algorithm::kAvg);
    EXPECT_LT(r.normalized_time(), 1.0) << name;
    EXPECT_LT(r.normalized_energy(), 1.0) << name;
  }
}

TEST_F(PaperResults, AvgNeedsFewOverclockedCpusWhenVeryImbalanced) {
  // Paper Fig. 9: BT-MZ/IS/PEPC need very few over-clocked CPUs.
  for (const char* name : {"BT-MZ-32", "IS-32", "IS-64", "PEPC-128"}) {
    const PipelineResult r =
        run(name, paper_avg_discrete(), Algorithm::kAvg);
    EXPECT_LT(r.overclocked_fraction, 0.25) << name;
    EXPECT_GT(r.overclocked_fraction, 0.0) << name;
  }
}

TEST_F(PaperResults, MaxBeatsAvgOnEnergyAvgOnTime) {
  const GearSet oc = paper_limited_continuous().with_fmax_scaled(1.1);
  for (const char* name : {"BT-MZ-32", "IS-64", "SPECFEM3D-96", "WRF-128"}) {
    const PipelineResult max_r = run(name, paper_limited_continuous());
    const PipelineResult avg_r = run(name, oc, Algorithm::kAvg);
    EXPECT_LE(max_r.normalized_energy(), avg_r.normalized_energy() + 0.01)
        << name;
    EXPECT_LE(avg_r.normalized_time(), max_r.normalized_time() + 0.01)
        << name;
  }
}

TEST_F(PaperResults, EnergySavingsGrowWithImbalance) {
  // Figure 3: energy is increasing in load balance.
  std::map<double, double> lb_to_energy;
  for (const auto& inst : instances()) {
    const PipelineResult r = run(inst.name, paper_unlimited_continuous());
    lb_to_energy[r.load_balance] = r.normalized_energy();
  }
  // Compare the most and least balanced applications.
  EXPECT_LT(lb_to_energy.begin()->second,
            lb_to_energy.rbegin()->second - 0.2);
}

}  // namespace
}  // namespace pals
