// Golden-result regression tests: fresh figure sweeps must match the
// results pinned under golden/ (regenerate intentionally with
// tools/update_golden after model changes).
#include "analysis/golden.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/figures.hpp"
#include "util/error.hpp"

#ifndef PALS_SOURCE_DIR
#define PALS_SOURCE_DIR "."
#endif

namespace pals {
namespace {

std::string golden(const char* file) {
  return std::string(PALS_SOURCE_DIR) + "/golden/" + file;
}

TraceCache& cache() {
  static TraceCache instance;
  return instance;
}

TEST(GoldenCsv, SaveLoadRoundTrip) {
  std::vector<ExperimentRow> rows(2);
  rows[0].instance = "A-1";
  rows[0].variant = "v, with comma";
  rows[0].normalized_energy = 0.123456;
  rows[1].instance = "B-2";
  rows[1].variant = "w";
  rows[1].load_balance = 0.5;
  const std::string path = ::testing::TempDir() + "/pals_golden.csv";
  save_rows_csv(rows, path);
  const auto restored = load_rows_csv(path);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].variant, "v, with comma");
  EXPECT_NEAR(restored[0].normalized_energy, 0.123456, 1e-6);
  EXPECT_TRUE(compare_rows(rows, restored, 1e-5).empty());
  std::remove(path.c_str());
}

TEST(GoldenCsv, CompareDetectsDrift) {
  std::vector<ExperimentRow> a(1);
  a[0].instance = "X";
  a[0].variant = "v";
  a[0].normalized_energy = 0.5;
  std::vector<ExperimentRow> b = a;
  b[0].normalized_energy = 0.6;
  const auto diffs = compare_rows(a, b, 0.01);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "normalized_energy");
  EXPECT_NE(describe_differences(diffs).find("expected 0.5000"),
            std::string::npos);
}

TEST(GoldenCsv, CompareDetectsMissingAndUnexpectedRows) {
  std::vector<ExperimentRow> a(1);
  a[0].instance = "X";
  a[0].variant = "v";
  std::vector<ExperimentRow> b(1);
  b[0].instance = "Y";
  b[0].variant = "w";
  const auto diffs = compare_rows(a, b, 0.01);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].field, "missing");
  EXPECT_EQ(diffs[1].field, "unexpected");
}

TEST(GoldenCsv, LoadRejectsBadInput) {
  const std::string path = ::testing::TempDir() + "/pals_bad_golden.csv";
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_THROW(load_rows_csv(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_rows_csv("/no/such/file.csv"), Error);
}

TEST(GoldenResults, Table3MatchesPinnedResults) {
  const auto expected = load_rows_csv(golden("table3.csv"));
  const auto actual = table3_rows(cache());
  const auto diffs = compare_rows(expected, actual, 0.002);
  EXPECT_TRUE(diffs.empty()) << describe_differences(diffs);
}

TEST(GoldenResults, Figure9MatchesPinnedResults) {
  const auto expected = load_rows_csv(golden("fig9.csv"));
  const auto actual = figure9_rows(cache());
  const auto diffs = compare_rows(expected, actual, 0.002);
  EXPECT_TRUE(diffs.empty()) << describe_differences(diffs);
}

TEST(GoldenResults, Figure10MatchesPinnedResults) {
  const auto expected = load_rows_csv(golden("fig10.csv"));
  const auto actual = figure10_rows(cache());
  const auto diffs = compare_rows(expected, actual, 0.002);
  EXPECT_TRUE(diffs.empty()) << describe_differences(diffs);
}

}  // namespace
}  // namespace pals
