// The sweep engine's core guarantee: the merged rows — and the CSV
// rendered from them — are byte-identical for every thread count,
// because each scenario computes on private state and lands in a
// pre-allocated slot in canonical grid order.
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

/// Small but non-trivial grid: 2 workloads x 2 gear sets x 2 algorithms
/// = 8 scenarios, with uneven per-scenario costs.
SweepGrid small_grid() {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.9:2", "is:8:0.8:2"};
  grid.gear_sets = {"uniform-4", "avg-discrete"};
  grid.algorithms = {Algorithm::kMax, Algorithm::kAvg};
  grid.iterations = 2;
  return grid;
}

SweepResult run_with_jobs(int jobs) {
  SweepOptions options;
  options.jobs = jobs;
  return run_sweep(small_grid(), options);
}

TEST(SweepDeterminism, OneAndEightJobsProduceByteIdenticalCsv) {
  const SweepResult serial = run_with_jobs(1);
  const SweepResult parallel = run_with_jobs(8);
  EXPECT_EQ(serial.stats.jobs, 1);
  EXPECT_EQ(parallel.stats.jobs, 8);
  EXPECT_EQ(rows_to_csv(serial.rows), rows_to_csv(parallel.rows));
}

TEST(SweepDeterminism, AggregatesAreExactlyEqualAcrossJobCounts) {
  const SweepResult serial = run_with_jobs(1);
  const SweepResult parallel = run_with_jobs(8);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const ExperimentRow& a = serial.rows[i];
    const ExperimentRow& b = parallel.rows[i];
    EXPECT_EQ(a.instance, b.instance);
    EXPECT_EQ(a.variant, b.variant);
    // Exact, not approximate: identical operations on identical inputs.
    EXPECT_EQ(a.load_balance, b.load_balance);
    EXPECT_EQ(a.parallel_efficiency, b.parallel_efficiency);
    EXPECT_EQ(a.normalized_energy, b.normalized_energy);
    EXPECT_EQ(a.normalized_time, b.normalized_time);
    EXPECT_EQ(a.normalized_edp, b.normalized_edp);
    EXPECT_EQ(a.overclocked_fraction, b.overclocked_fraction);
  }
}

TEST(SweepProgress, ProgressStreamGetsWholeLinesEndingComplete) {
  std::ostringstream progress;
  SweepOptions options;
  options.jobs = 4;
  options.progress_stream = &progress;
  options.progress_interval_seconds = 0.01;
  const SweepResult result = run_sweep(small_grid(), options);

  std::vector<std::string> lines;
  std::istringstream in(progress.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_FALSE(lines.empty());
  const std::string total = std::to_string(result.rows.size());
  for (const std::string& line : lines) {
    EXPECT_TRUE(line.starts_with("sweep: ")) << line;
    EXPECT_NE(line.find("/" + total + " scenarios, elapsed "),
              std::string::npos)
        << line;
  }
  // The final line (printed after the workers join) reports completion.
  EXPECT_TRUE(lines.back().starts_with("sweep: " + total + "/" + total))
      << lines.back();
}

TEST(SweepProgress, NoProgressStreamMeansNoOutput) {
  SweepOptions options;
  options.jobs = 2;
  ASSERT_EQ(options.progress_stream, nullptr);  // off by default
  run_sweep(small_grid(), options);  // must not crash touching a null stream
}

TEST(SweepDeterminism, RowsFollowCanonicalGridOrder) {
  const SweepResult result = run_with_jobs(8);
  ASSERT_EQ(result.rows.size(), 8u);
  // Workload-major, then gear set, then algorithm.
  EXPECT_EQ(result.rows[0].instance, "cg:8:0.9:2");
  EXPECT_EQ(result.rows[0].variant, "uniform-4");
  EXPECT_EQ(result.rows[1].variant, "AVG uniform-4");
  EXPECT_EQ(result.rows[2].variant, "avg-discrete");
  EXPECT_EQ(result.rows[3].variant, "AVG avg-discrete");
  EXPECT_EQ(result.rows[4].instance, "is:8:0.8:2");
}

TEST(SweepDeterminism, BaselineIsCachedPerWorkload) {
  const SweepResult result = run_with_jobs(4);
  EXPECT_EQ(result.stats.scenarios, 8u);
  EXPECT_EQ(result.stats.workloads, 2u);  // 2 unique workloads
  EXPECT_EQ(result.stats.baseline_cache_misses, 2u);
  EXPECT_EQ(result.stats.baseline_cache_hits, 6u);
  EXPECT_DOUBLE_EQ(result.stats.baseline_cache_hit_rate, 6.0 / 8.0);
  ASSERT_EQ(result.scenario_seconds.size(), 8u);
}

TEST(SweepDeterminism, SharedTraceCacheMatchesPrivateCache) {
  TraceCache cache;
  SweepOptions shared;
  shared.jobs = 4;
  shared.trace_cache = &cache;
  const SweepResult with_shared = run_sweep(small_grid(), shared);
  const SweepResult with_private = run_with_jobs(1);
  EXPECT_EQ(rows_to_csv(with_shared.rows), rows_to_csv(with_private.rows));
}

TEST(SweepDeterminism, ExplicitLabelOverridesDerivedVariant) {
  std::vector<Scenario> scenarios = {
      Scenario{"cg:8:0.9:2", "uniform-4", Algorithm::kMax, 0.5, "my label"}};
  const SweepResult result = run_sweep(scenarios);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].variant, "my label");
}

TEST(SweepDeterminism, NonDefaultBetaLandsInDerivedVariant) {
  std::vector<Scenario> scenarios = {
      Scenario{"cg:8:0.9:2", "uniform-4", Algorithm::kMax, 0.7, ""}};
  const SweepResult result = run_sweep(scenarios);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].variant, "uniform-4 beta=0.70");
}

TEST(SweepGridFile, ParsesAllKeys) {
  const std::string path = ::testing::TempDir() + "/sweep_grid_test.grid";
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "workloads = CG-32, lu:16:0.9\n"
        << "gear_sets = uniform-6, avg-discrete\n"
        << "algorithms = max, avg\n"
        << "betas = 0.4, 0.8\n"
        << "iterations = 3\n";
  }
  const SweepGrid grid = SweepGrid::from_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(grid.workloads,
            (std::vector<std::string>{"CG-32", "lu:16:0.9"}));
  EXPECT_EQ(grid.gear_sets,
            (std::vector<std::string>{"uniform-6", "avg-discrete"}));
  ASSERT_EQ(grid.algorithms.size(), 2u);
  EXPECT_EQ(grid.algorithms[0], Algorithm::kMax);
  EXPECT_EQ(grid.algorithms[1], Algorithm::kAvg);
  EXPECT_EQ(grid.betas, (std::vector<double>{0.4, 0.8}));
  EXPECT_EQ(grid.iterations, 3);
  EXPECT_EQ(grid.expand().size(), 2u * 2u * 2u * 2u);
}

TEST(SweepGridFile, DefaultsAlgorithmAndBetaWhenOmitted) {
  const std::string path = ::testing::TempDir() + "/sweep_grid_min.grid";
  {
    std::ofstream out(path);
    out << "workloads = CG-32\ngear_sets = uniform-6\n";
  }
  const SweepGrid grid = SweepGrid::from_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(grid.algorithms.size(), 1u);
  EXPECT_EQ(grid.algorithms[0], Algorithm::kMax);
  EXPECT_EQ(grid.betas, std::vector<double>{0.5});
  EXPECT_EQ(grid.iterations, 10);
}

TEST(SweepGridFile, RejectsUnknownKeysAndBadValues) {
  const auto write_and_parse = [](const std::string& body) {
    const std::string path = ::testing::TempDir() + "/sweep_grid_bad.grid";
    {
      std::ofstream out(path);
      out << body;
    }
    SweepGrid grid;
    try {
      grid = SweepGrid::from_file(path);
    } catch (...) {
      std::remove(path.c_str());
      throw;
    }
    std::remove(path.c_str());
    return grid;
  };
  EXPECT_THROW(
      write_and_parse("workloads = CG-32\ngear_sets = uniform-6\ntypo = 1\n"),
      Error);
  EXPECT_THROW(write_and_parse("gear_sets = uniform-6\n"), Error);
  EXPECT_THROW(write_and_parse("workloads = CG-32\n"), Error);
  EXPECT_THROW(write_and_parse("workloads = CG-32\ngear_sets = uniform-6\n"
                               "algorithms = warp\n"),
               Error);
  EXPECT_THROW(write_and_parse("workloads = CG-32\ngear_sets = uniform-6\n"
                               "betas = 1.5\n"),
               Error);
}

TEST(SweepErrors, UnknownWorkloadNamesScenario) {
  SweepGrid grid;
  grid.workloads = {"NOPE-99"};
  grid.gear_sets = {"uniform-6"};
  try {
    run_sweep(grid);
    FAIL() << "expected unknown-workload error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("NOPE-99"), std::string::npos);
  }
}

TEST(SweepErrors, BadInlineSpecRejected) {
  SweepGrid grid;
  grid.gear_sets = {"uniform-6"};
  for (const char* bad :
       {"lu:0:0.9", "lu:8:1.5", "lu:8:0.9:0", "lu:8", "warp9:8:0.9"}) {
    grid.workloads = {bad};
    EXPECT_THROW(run_sweep(grid), Error) << bad;
  }
}

TEST(SweepErrors, UnknownGearSetRejectedBeforeRunning) {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.9:2"};
  grid.gear_sets = {"warp-9"};
  EXPECT_THROW(run_sweep(grid), Error);
}

TEST(SweepErrors, EmptyScenarioListRejected) {
  EXPECT_THROW(run_sweep(std::vector<Scenario>{}), Error);
}

}  // namespace
}  // namespace pals
