#include "analysis/comm_stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

Trace star_trace() {
  // Rank 0 sends to everyone; rank 1 also sends once to rank 2.
  Trace t(4);
  TraceBuilder(t, 0)
      .isend(1, 0, 100, 0)
      .isend(2, 0, 200, 1)
      .isend(3, 0, 300, 2)
      .waitall();
  TraceBuilder(t, 1).recv(0, 0, 100).send(2, 1, 50);
  TraceBuilder(t, 2).recv(0, 0, 200).recv(1, 1, 50);
  TraceBuilder(t, 3).recv(0, 0, 300);
  return t;
}

TEST(CommStats, MatrixEntriesAndTotals) {
  const CommStats stats = analyze_communication(star_trace());
  EXPECT_EQ(stats.n_ranks, 4);
  EXPECT_EQ(stats.bytes_between(0, 1), 100u);
  EXPECT_EQ(stats.bytes_between(0, 2), 200u);
  EXPECT_EQ(stats.bytes_between(0, 3), 300u);
  EXPECT_EQ(stats.bytes_between(1, 2), 50u);
  EXPECT_EQ(stats.bytes_between(2, 1), 0u);
  EXPECT_EQ(stats.total_p2p_bytes(), 650u);
  EXPECT_EQ(stats.total_messages(), 4u);
}

TEST(CommStats, SizeHistogramBuckets) {
  const CommStats stats = analyze_communication(star_trace());
  // 50 -> bucket 5, 100 -> 6, 200 -> 7, 300 -> 8.
  EXPECT_EQ(stats.size_histogram[5], 1u);
  EXPECT_EQ(stats.size_histogram[6], 1u);
  EXPECT_EQ(stats.size_histogram[7], 1u);
  EXPECT_EQ(stats.size_histogram[8], 1u);
}

TEST(CommStats, CollectiveBytesPerRank) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kAllreduce, 64).collective(
      CollectiveOp::kAlltoall, 128);
  TraceBuilder(t, 1).collective(CollectiveOp::kAllreduce, 64).collective(
      CollectiveOp::kAlltoall, 256);
  const CommStats stats = analyze_communication(t);
  EXPECT_EQ(stats.collective_bytes[0], 192u);
  EXPECT_EQ(stats.collective_bytes[1], 320u);
  EXPECT_EQ(stats.total_messages(), 0u);
}

TEST(CommStats, ChannelConcentrationExtremes) {
  // Ring: every sender has a single channel -> concentration 1.
  Trace ring(4);
  for (Rank r = 0; r < 4; ++r) {
    TraceBuilder(ring, r)
        .isend((r + 1) % 4, 0, 100, 0)
        .irecv((r - 1 + 4) % 4, 0, 100, 1)
        .waitall();
  }
  EXPECT_NEAR(analyze_communication(ring).channel_concentration(), 1.0,
              1e-12);

  // Uniform full exchange: concentration 1/(n-1).
  Trace full(4);
  for (Rank r = 0; r < 4; ++r) {
    TraceBuilder b(full, r);
    RequestId req = 0;
    for (Rank peer = 0; peer < 4; ++peer) {
      if (peer == r) continue;
      b.isend(peer, 0, 100, req++);
      b.irecv(peer, 0, 100, req++);
    }
    b.waitall();
  }
  EXPECT_NEAR(analyze_communication(full).channel_concentration(), 1.0 / 3.0,
              1e-12);
}

TEST(CommStats, RenderMatrixShape) {
  const CommStats stats = analyze_communication(star_trace());
  const std::string out = stats.render_matrix(4);
  EXPECT_NE(out.find("src\\dst"), std::string::npos);
  // The heaviest channel (0 -> 3) renders as '9'.
  EXPECT_NE(out.find('9'), std::string::npos);
  // 4 group rows + header.
  std::size_t rows = 0;
  for (char c : out)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 5u);
}

TEST(CommStats, RenderMatrixBucketsLargeTraces) {
  WorkloadConfig c;
  c.ranks = 32;
  c.iterations = 2;
  c.target_lb = 0.9;
  const CommStats stats = analyze_communication(make_mg(c));
  const std::string out = stats.render_matrix(8);
  std::size_t rows = 0;
  for (char ch : out)
    if (ch == '\n') ++rows;
  EXPECT_EQ(rows, 9u);  // 8 bucket rows + header
}

TEST(CommStats, HaloCodesAreConcentratedAlltoallIsNot) {
  WorkloadConfig c;
  c.ranks = 16;
  c.iterations = 2;
  c.target_lb = 0.9;
  const double halo =
      analyze_communication(make_specfem3d(c)).channel_concentration();
  c.target_lb = 0.5;
  const CommStats is_stats = analyze_communication(make_is(c));
  // IS uses alltoall collectives, no p2p at all.
  EXPECT_EQ(is_stats.total_messages(), 0u);
  EXPECT_GT(halo, 0.2);
}

TEST(CommStats, EmptyTraceIsAllZero) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0);
  const CommStats stats = analyze_communication(t);
  EXPECT_EQ(stats.total_p2p_bytes(), 0u);
  EXPECT_DOUBLE_EQ(stats.channel_concentration(), 0.0);
}

}  // namespace
}  // namespace pals
