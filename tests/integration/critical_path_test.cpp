#include "analysis/critical_path.hpp"

#include <gtest/gtest.h>

#include "replay/replay.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "analysis/experiments.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

ReplayConfig unit_config() {
  ReplayConfig config;
  config.platform.latency = 1.0;
  config.platform.bandwidth = 100.0;
  config.platform.eager_threshold = 100;
  return config;
}

TEST(CriticalPath, SingleRankIsAllCompute) {
  Trace t(1);
  TraceBuilder(t, 0).compute(2.0);
  const CriticalPath path = critical_path(replay(t, unit_config()));
  ASSERT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].rank, 0);
  EXPECT_EQ(path.segments[0].activity, PathActivity::kCompute);
  EXPECT_DOUBLE_EQ(path.total(), 2.0);
  EXPECT_DOUBLE_EQ(path.compute_fraction, 1.0);
  EXPECT_EQ(path.rank_switches, 0u);
}

TEST(CriticalPath, ImbalancedBspFollowsTheHeavyRank) {
  Trace t(3);
  TraceBuilder(t, 0).compute(1.0).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1).compute(5.0).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 2).compute(2.0).collective(CollectiveOp::kBarrier, 0);
  const CriticalPath path = critical_path(replay(t, unit_config()));
  // The heavy rank's compute dominates the path.
  EXPECT_NEAR(path.rank_share[1], 5.0, 1e-9);
  EXPECT_NEAR(path.rank_share[0], 0.0, 1e-9);
  // Barrier cost (2 stages * 1 s) shows up as collective time.
  EXPECT_GT(path.network_fraction, 0.2);
  EXPECT_NEAR(path.total(), 7.0, 1e-6);
}

TEST(CriticalPath, RelayChainVisitsEveryRank) {
  Trace t(3);
  TraceBuilder(t, 0).compute(1.0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100).compute(1.0).send(2, 0, 100);
  TraceBuilder(t, 2).recv(1, 0, 100).compute(1.0);
  const ReplayResult r = replay(t, unit_config());
  const CriticalPath path = critical_path(r);
  // Every rank contributes its compute; transfers bridge the hops.
  EXPECT_NEAR(path.rank_share[0], 1.0, 1e-9);
  EXPECT_NEAR(path.rank_share[1], 1.0, 1e-9);
  EXPECT_NEAR(path.rank_share[2], 1.0, 1e-9);
  EXPECT_EQ(path.rank_switches, 2u);
  EXPECT_NEAR(path.total(), r.makespan, 1e-6);
  // 2 transfers of 2 s each.
  Seconds transfer = 0.0;
  for (const PathSegment& s : path.segments)
    if (s.activity == PathActivity::kTransfer) transfer += s.duration();
  EXPECT_NEAR(transfer, 4.0, 1e-9);
}

TEST(CriticalPath, RendezvousWaitPointsAtTheLateReceiver) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 500).compute(0.5);  // rendezvous
  TraceBuilder(t, 1).compute(6.0).recv(0, 0, 500).compute(0.5);
  const ReplayResult r = replay(t, unit_config());
  const CriticalPath path = critical_path(r);
  // The path belongs to rank 1 (its compute delayed everything).
  EXPECT_GT(path.rank_share[1], 6.0 - 1e-9);
}

TEST(CriticalPath, CoversTheWholeExecution) {
  TraceCache cache;
  for (const char* name : {"BT-MZ-32", "CG-32", "PEPC-128"}) {
    const auto inst = benchmark_by_name(name, 3);
    const ReplayResult r = replay(cache.get(*inst), ReplayConfig{});
    const CriticalPath path = critical_path(r);
    EXPECT_NEAR(path.total(), r.makespan, 0.02 * r.makespan) << name;
    // Segments are chronological and contiguous within tolerance.
    for (std::size_t i = 1; i < path.segments.size(); ++i)
      EXPECT_NEAR(path.segments[i].begin, path.segments[i - 1].end,
                  1e-6)
          << name << " segment " << i;
  }
}

TEST(CriticalPath, ImbalancedAppIsComputeBoundOnThePath) {
  // BT-MZ: the heavy ranks' computation is the path; little network.
  TraceCache cache;
  const auto inst = benchmark_by_name("BT-MZ-32", 3);
  const CriticalPath path =
      critical_path(replay(cache.get(*inst), ReplayConfig{}));
  EXPECT_GT(path.compute_fraction, 0.9);
}

TEST(CriticalPath, RenderingMentionsTotals) {
  Trace t(1);
  TraceBuilder(t, 0).compute(1.0);
  const CriticalPath path = critical_path(replay(t, unit_config()));
  const std::string out = render_critical_path(path);
  EXPECT_NE(out.find("critical path"), std::string::npos);
  EXPECT_NE(out.find("rank 0 compute"), std::string::npos);
}

TEST(CriticalPath, TruncatedRenderingNotesOmissions) {
  TraceCache cache;
  const auto inst = benchmark_by_name("CG-32", 3);
  const CriticalPath path =
      critical_path(replay(cache.get(*inst), ReplayConfig{}));
  const std::string out = render_critical_path(path, 3);
  EXPECT_NE(out.find("more segments"), std::string::npos);
}

}  // namespace
}  // namespace pals
