#include "analysis/iteration_stats.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "analysis/experiments.hpp"
#include "util/error.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

TEST(PearsonCorrelation, KnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> up{2.0, 4.0, 6.0};
  const std::vector<double> down{3.0, 2.0, 1.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_NEAR(pearson_correlation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson_correlation(a, flat), 0.0);
  EXPECT_THROW(pearson_correlation({}, {}), Error);
}

Trace steady(const std::vector<double>& weights, int iterations) {
  Trace t(static_cast<Rank>(weights.size()));
  for (Rank r = 0; r < t.n_ranks(); ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < iterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.1 * weights[static_cast<std::size_t>(r)])
          .collective(CollectiveOp::kBarrier, 0)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

TEST(IterationStats, SteadyImbalanceHasZeroDrift) {
  const IterationStats s = analyze_iterations(steady({0.3, 0.7, 1.0}, 5));
  EXPECT_EQ(s.iterations, 5u);
  EXPECT_NEAR(s.drift_index, 0.0, 1e-9);
  EXPECT_NEAR(s.total_load_balance, s.mean_iteration_load_balance, 1e-9);
  EXPECT_TRUE(s.static_assignment_sufficient());
}

TEST(IterationStats, DriftingWorkloadIsFlagged) {
  WorkloadConfig c;
  c.ranks = 16;
  c.iterations = 16;
  c.target_lb = 0.5;
  const IterationStats s = analyze_iterations(make_amr_drift(c));
  EXPECT_GT(s.drift_index, 0.5);
  EXPECT_LT(s.mean_iteration_load_balance, 0.6);
  EXPECT_GT(s.total_load_balance, 0.9);
  EXPECT_FALSE(s.static_assignment_sufficient());
}

TEST(IterationStats, SteadyWorkloadsPassTheSufficiencyCheck) {
  WorkloadConfig c;
  c.ranks = 16;
  c.iterations = 4;
  c.target_lb = 0.6;
  const IterationStats s = analyze_iterations(make_bt_mz(c));
  EXPECT_TRUE(s.static_assignment_sufficient(0.15));
}

TEST(IterationStats, RequiresIterationMarkers) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0);
  TraceBuilder(t, 1).compute(1.0);
  EXPECT_THROW(analyze_iterations(t), Error);
}

TEST(ConfigFile, OverlaysOntoPipelineConfig) {
  const std::string path = ::testing::TempDir() + "/pals_platform.cfg";
  {
    std::ofstream out(path);
    out << "# test platform\nlatency = 5e-6\nbandwidth = 1e9\n"
        << "buses = 8\nbeta = 0.7\nstatic_fraction = 0.4\n";
  }
  PipelineConfig config = default_pipeline_config(paper_uniform(6));
  apply_config_file(config, path);
  EXPECT_DOUBLE_EQ(config.replay.platform.latency, 5e-6);
  EXPECT_DOUBLE_EQ(config.replay.platform.bandwidth, 1e9);
  EXPECT_EQ(config.replay.platform.buses, 8);
  EXPECT_DOUBLE_EQ(config.algorithm.beta, 0.7);
  EXPECT_DOUBLE_EQ(config.power.beta, 0.7);
  EXPECT_DOUBLE_EQ(config.power.static_fraction, 0.4);
  std::remove(path.c_str());
}

TEST(ConfigFile, RejectsUnknownKeys) {
  const std::string path = ::testing::TempDir() + "/pals_bad.cfg";
  {
    std::ofstream out(path);
    out << "latencyy = 1\n";
  }
  PipelineConfig config = default_pipeline_config(paper_uniform(6));
  EXPECT_THROW(apply_config_file(config, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pals
