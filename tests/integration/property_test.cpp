// Cross-cutting invariants of the full pipeline, parameterized over the
// paper's benchmark instances.
#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

class PipelineInvariants : public ::testing::TestWithParam<const char*> {
protected:
  static TraceCache& cache() {
    static TraceCache instance;
    return instance;
  }
  const Trace& trace() {
    const auto inst = benchmark_by_name(GetParam(), 3);
    EXPECT_TRUE(inst.has_value());
    return cache().get(*inst);
  }
};

TEST_P(PipelineInvariants, MaxNeverIncreasesEnergy) {
  for (const GearSet& set :
       {paper_unlimited_continuous(), paper_limited_continuous(),
        paper_uniform(2), paper_uniform(6), paper_exponential(4)}) {
    const PipelineResult r =
        run_pipeline(trace(), default_pipeline_config(set));
    EXPECT_LE(r.normalized_energy(), 1.0 + 1e-6) << set.describe();
  }
}

TEST_P(PipelineInvariants, EdpIsEnergyTimesTime) {
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  EXPECT_NEAR(r.normalized_edp(), r.normalized_energy() * r.normalized_time(),
              1e-12);
}

TEST_P(PipelineInvariants, ParallelEfficiencyBoundedByLoadBalance) {
  const PipelineResult r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  EXPECT_LE(r.parallel_efficiency, r.load_balance + 1e-9);
  EXPECT_GT(r.parallel_efficiency, 0.0);
  EXPECT_LE(r.load_balance, 1.0 + 1e-12);
}

TEST_P(PipelineInvariants, EnergyMonotoneInGearCount) {
  double previous = 10.0;
  for (const int gears : {2, 3, 4, 6, 8, 10, 15}) {
    const PipelineResult r = run_pipeline(
        trace(), default_pipeline_config(paper_uniform(gears)));
    EXPECT_LE(r.normalized_energy(), previous + 0.015) << gears;
    previous = r.normalized_energy();
  }
}

TEST_P(PipelineInvariants, MemoryBoundAppsSaveMoreEnergy) {
  // Paper Fig. 5: beta = 0 is fully memory-bound ("frequency does not
  // affect execution time"), so savings shrink as beta grows. Discrete
  // snapping can locally flip adjacent points, hence the small tolerance.
  double previous = -10.0;
  for (const double beta : {0.3, 0.5, 0.7, 1.0}) {
    PipelineConfig c = default_pipeline_config(paper_uniform(6));
    set_beta(c, beta);
    const PipelineResult r = run_pipeline(trace(), c);
    EXPECT_GE(r.normalized_energy(), previous - 0.03) << "beta " << beta;
    previous = r.normalized_energy();
  }
}

TEST_P(PipelineInvariants, SavingsShrinkWithStaticFraction) {
  double previous = -1.0;
  for (const double sf : {0.0, 0.2, 0.5, 0.7, 0.9}) {
    PipelineConfig c = default_pipeline_config(paper_uniform(6));
    c.power.static_fraction = sf;
    const PipelineResult r = run_pipeline(trace(), c);
    EXPECT_GE(r.normalized_energy(), previous - 1e-6) << "static " << sf;
    previous = r.normalized_energy();
  }
}

TEST_P(PipelineInvariants, ActivityRatioShiftsBaselineWaitCost) {
  // A higher compute:communication activity ratio makes the baseline's
  // wait time cheaper, so the DVFS execution (which converts waiting into
  // slow computation) looks relatively more expensive: normalized energy
  // is non-decreasing in the ratio.
  double previous = -10.0;
  for (const double ratio : {1.5, 2.0, 2.5, 3.0}) {
    PipelineConfig c = default_pipeline_config(paper_uniform(6));
    c.power.activity_ratio = ratio;
    const PipelineResult r = run_pipeline(trace(), c);
    EXPECT_GE(r.normalized_energy(), previous - 1e-6) << "ratio " << ratio;
    previous = r.normalized_energy();
  }
}

TEST_P(PipelineInvariants, OverclockedFractionWithinBounds) {
  const PipelineResult r = run_pipeline(
      trace(),
      default_pipeline_config(paper_avg_discrete(), Algorithm::kAvg));
  EXPECT_GE(r.overclocked_fraction, 0.0);
  EXPECT_LE(r.overclocked_fraction, 1.0);
}

TEST_P(PipelineInvariants, AvgTargetIsNeverAboveMaxTarget) {
  const PipelineResult max_r =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(6)));
  const PipelineResult avg_r = run_pipeline(
      trace(),
      default_pipeline_config(paper_avg_discrete(), Algorithm::kAvg));
  EXPECT_LE(avg_r.assignment.target_time,
            max_r.assignment.target_time + 1e-9);
}

TEST_P(PipelineInvariants, BaselineMetricsIndependentOfGearSet) {
  const PipelineResult a =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(2)));
  const PipelineResult b =
      run_pipeline(trace(), default_pipeline_config(paper_uniform(15)));
  EXPECT_DOUBLE_EQ(a.load_balance, b.load_balance);
  EXPECT_DOUBLE_EQ(a.baseline_time, b.baseline_time);
  EXPECT_DOUBLE_EQ(a.baseline_energy, b.baseline_energy);
}

INSTANTIATE_TEST_SUITE_P(
    PaperInstances, PipelineInvariants,
    ::testing::Values("BT-MZ-32", "CG-32", "MG-32", "IS-32", "SPECFEM3D-32",
                      "WRF-32", "CG-64", "MG-64", "IS-64", "SPECFEM3D-96",
                      "PEPC-128", "WRF-128"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace pals
