#include "analysis/svg_chart.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "util/error.hpp"

namespace pals {
namespace {

std::vector<ChartSeries> sample_series() {
  ChartSeries a;
  a.label = "alpha";
  a.x = {0.0, 1.0, 2.0, 3.0};
  a.y = {1.0, 0.5, 0.8, 0.2};
  ChartSeries b;
  b.label = "beta";
  b.x = {0.0, 1.5, 3.0};
  b.y = {0.3, 0.9, 0.6};
  b.connect = false;
  return {a, b};
}

TEST(SvgChart, WellFormedDocumentWithAllParts) {
  ChartOptions options;
  options.title = "test chart";
  options.x_label = "time";
  options.y_label = "power";
  const std::string svg = render_chart(sample_series(), options);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test chart"), std::string::npos);
  EXPECT_NE(svg.find("time"), std::string::npos);
  EXPECT_NE(svg.find("power"), std::string::npos);
  EXPECT_NE(svg.find("alpha"), std::string::npos);
  EXPECT_NE(svg.find("beta"), std::string::npos);
  // Connected series draws a polyline; marker-only series does not add a
  // second one.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1))
    ++polylines;
  EXPECT_EQ(polylines, 1u);
  // 7 points total -> 7 circles with tooltips.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1))
    ++circles;
  EXPECT_EQ(circles, 7u);
}

TEST(SvgChart, AxisTicksCoverTheRange) {
  const std::string svg = render_chart(sample_series(), {});
  // x ticks at integers 0..3 (nice step over span 3 is 1).
  EXPECT_NE(svg.find(">0</text>"), std::string::npos);
  EXPECT_NE(svg.find(">3</text>"), std::string::npos);
}

TEST(SvgChart, ConstantSeriesDoesNotDivideByZero) {
  ChartSeries flat;
  flat.label = "flat";
  flat.x = {1.0, 2.0};
  flat.y = {5.0, 5.0};
  ChartOptions options;
  options.y_from_zero = false;
  EXPECT_NO_THROW(render_chart({flat}, options));
}

TEST(SvgChart, SinglePointSeries) {
  ChartSeries point;
  point.label = "p";
  point.x = {1.0};
  point.y = {2.0};
  const std::string svg = render_chart({point}, {});
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(SvgChart, RejectsDegenerateInput) {
  EXPECT_THROW(render_chart({}, {}), Error);
  ChartSeries bad;
  bad.label = "bad";
  bad.x = {1.0, 2.0};
  bad.y = {1.0};
  EXPECT_THROW(render_chart({bad}, {}), Error);
  ChartSeries empty;
  empty.label = "empty";
  EXPECT_THROW(render_chart({empty}, {}), Error);
  ChartOptions tiny;
  tiny.width_px = 10;
  EXPECT_THROW(render_chart(sample_series(), tiny), Error);
}

TEST(SvgChart, FileWriting) {
  const std::string path = ::testing::TempDir() + "/pals_chart.svg";
  write_chart_file(sample_series(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pals
