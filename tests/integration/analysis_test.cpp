#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/experiments.hpp"
#include "analysis/gantt.hpp"
#include "analysis/svg.hpp"
#include "replay/replay.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

Timeline small_timeline() {
  Timeline tl(2);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1});
  tl.append(0, {1.0, 2.0, RankState::kRecv, -1});
  tl.append(1, {0.0, 2.0, RankState::kCompute, -1});
  return tl;
}

TEST(Gantt, RendersOneRowPerRank) {
  const std::string out = render_gantt(small_timeline(), {40, true, 0});
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);
  EXPECT_NE(out.find("compute"), std::string::npos);  // legend line
}

TEST(Gantt, ComputeDominatedRowIsMostlyHashes) {
  Timeline tl(1);
  tl.append(0, {0.0, 10.0, RankState::kCompute, -1});
  const std::string out = render_gantt(tl, {50, false, 0});
  std::size_t hashes = 0;
  for (char c : out)
    if (c == '#') ++hashes;
  EXPECT_GE(hashes, 48u);
}

TEST(Gantt, MaxRanksSamplesLanes) {
  Timeline tl(16);
  for (Rank r = 0; r < 16; ++r)
    tl.append(r, {0.0, 1.0, RankState::kCompute, -1});
  const std::string out = render_gantt(tl, {20, false, 4});
  std::size_t rows = 0;
  for (char c : out)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 4u);
}

TEST(Gantt, RejectsDegenerateInput) {
  EXPECT_THROW(render_gantt(Timeline(1), {}), Error);
  GanttOptions bad;
  bad.width = 0;
  EXPECT_THROW(render_gantt(small_timeline(), bad), Error);
}

TEST(Svg, ProducesWellFormedDocument) {
  const std::string svg = render_svg(small_timeline(), {});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per interval (3) plus 6 legend swatches.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1))
    ++rects;
  EXPECT_EQ(rects, 9u);
}

TEST(Svg, TitleAndTooltipsPresent) {
  SvgOptions options;
  options.title = "my run";
  const std::string svg = render_svg(small_timeline(), options);
  EXPECT_NE(svg.find("my run"), std::string::npos);
  EXPECT_NE(svg.find("<title>rank 0 compute"), std::string::npos);
}

TEST(Svg, LegendCanBeDisabled) {
  SvgOptions options;
  options.show_legend = false;
  const std::string svg = render_svg(small_timeline(), options);
  EXPECT_EQ(svg.find("collective</text>"), std::string::npos);
}

TEST(Svg, RejectsDegenerateInput) {
  EXPECT_THROW(render_svg(Timeline(1), {}), Error);
  SvgOptions bad;
  bad.width_px = 0;
  EXPECT_THROW(render_svg(small_timeline(), bad), Error);
}

TEST(Svg, FileWriting) {
  const std::string path = ::testing::TempDir() + "/pals_test.svg";
  write_svg_file(small_timeline(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
}

TEST(Experiments, DefaultConfigMatchesPaperParameters) {
  const PipelineConfig c = default_pipeline_config(paper_uniform(6));
  EXPECT_EQ(c.algorithm.algorithm, Algorithm::kMax);
  EXPECT_DOUBLE_EQ(c.algorithm.beta, 0.5);
  EXPECT_DOUBLE_EQ(c.power.static_fraction, 0.2);
  EXPECT_DOUBLE_EQ(c.power.activity_ratio, 1.5);
  EXPECT_NEAR(c.power.reference.frequency_ghz, 2.3, 1e-12);
  EXPECT_NEAR(c.power.reference.voltage_v, 1.5, 1e-9);
  EXPECT_NO_THROW(c.validate());
}

TEST(Experiments, SetBetaKeepsConfigConsistent) {
  PipelineConfig c = default_pipeline_config(paper_uniform(6));
  set_beta(c, 0.8);
  EXPECT_DOUBLE_EQ(c.algorithm.beta, 0.8);
  EXPECT_DOUBLE_EQ(c.power.beta, 0.8);
  EXPECT_NO_THROW(c.validate());
}

TEST(Experiments, RunExperimentFlattensPipeline) {
  const auto inst = benchmark_by_name("BT-MZ-32", 2);
  ASSERT_TRUE(inst.has_value());
  const Trace t = inst->make();
  const ExperimentRow row = run_experiment(
      t, inst->name, "uniform-6",
      default_pipeline_config(paper_uniform(6)));
  EXPECT_EQ(row.instance, "BT-MZ-32");
  EXPECT_EQ(row.variant, "uniform-6");
  EXPECT_GT(row.load_balance, 0.0);
  EXPECT_LT(row.normalized_energy, 1.0);
  EXPECT_NEAR(row.normalized_edp,
              row.normalized_energy * row.normalized_time, 1e-12);
}

TEST(Experiments, TraceCacheBuildsOnce) {
  TraceCache cache;
  const auto inst = benchmark_by_name("CG-32", 2);
  ASSERT_TRUE(inst.has_value());
  const Trace& a = cache.get(*inst);
  const Trace& b = cache.get(*inst);
  EXPECT_EQ(&a, &b);
}

TEST(Experiments, PrintRowsWritesCsv) {
  const std::string path = ::testing::TempDir() + "/pals_rows.csv";
  std::vector<ExperimentRow> rows(1);
  rows[0].instance = "X";
  rows[0].variant = "v";
  rows[0].normalized_energy = 0.5;
  print_rows(rows, "test", path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("normalized_energy"), std::string::npos);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("X"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Experiments, GanttOnRealReplay) {
  const auto inst = benchmark_by_name("BT-MZ-32", 2);
  ASSERT_TRUE(inst.has_value());
  const ReplayResult r = replay(inst->make(), ReplayConfig{});
  const std::string out = render_gantt(r.timeline, {80, true, 8});
  EXPECT_GT(out.size(), 8u * 80u);
}

}  // namespace
}  // namespace pals
