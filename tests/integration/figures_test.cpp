// The figures API: row counts, variant labels and markdown rendering.
// (Result *values* are covered by integration/paper_test.cpp; these tests
// pin the sweep structure each figure function produces.)
#include "analysis/figures.hpp"

#include <gtest/gtest.h>

namespace pals {
namespace {

TraceCache& cache() {
  static TraceCache instance;
  return instance;
}

TEST(Figures, Table3CoversAllInstances) {
  const auto rows = table3_rows(cache(), 3);
  ASSERT_EQ(rows.size(), 12u);
  EXPECT_EQ(rows.front().instance, "BT-MZ-32");
  EXPECT_NE(rows.front().variant.find("paper LB"), std::string::npos);
}

TEST(Figures, Figure2HasSixteenVariantsPerInstance) {
  const auto rows = figure2_rows(cache());
  EXPECT_EQ(rows.size(), 5u * 16u);
  EXPECT_EQ(rows[0].variant, "continuous-unlimited");
  EXPECT_EQ(rows[15].variant, "uniform-15");
}

TEST(Figures, Figure3SortedByLoadBalance) {
  const auto rows = figure3_rows(cache());
  EXPECT_EQ(rows.size(), 12u * 3u);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LE(rows[i - 1].load_balance, rows[i].load_balance + 1e-12);
}

TEST(Figures, SweepRowCounts) {
  EXPECT_EQ(figure4_rows(cache()).size(), 12u * 5u);
  EXPECT_EQ(figure5_rows(cache()).size(), 12u * 8u);
  EXPECT_EQ(figure6_rows(cache()).size(), 12u * 10u);
  EXPECT_EQ(figure7_rows(cache()).size(), 12u * 7u);
  EXPECT_EQ(figure8_rows(cache()).size(), 12u * 2u);
  EXPECT_EQ(figure9_rows(cache()).size(), 12u);
  EXPECT_EQ(figure10_rows(cache()).size(), 12u * 2u);
}

TEST(Figures, MarkdownRendering) {
  std::vector<ExperimentRow> rows(1);
  rows[0].instance = "X-8";
  rows[0].variant = "v";
  rows[0].load_balance = 0.5;
  rows[0].normalized_energy = 0.25;
  const std::string md = rows_to_markdown(rows);
  EXPECT_NE(md.find("| instance |"), std::string::npos);
  EXPECT_NE(md.find("| X-8 | v | 50.00% |"), std::string::npos);
  EXPECT_NE(md.find("| 25.00% |"), std::string::npos);
}

}  // namespace
}  // namespace pals
