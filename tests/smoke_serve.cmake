# End-to-end smoke of the serve daemon through its real binaries
# (docs/serve.md): start pals_serve in the background, wait on its
# ready file, drive pals_query's ping / request-battery / chaos modes,
# validate the wire transcript structurally, require the --grid
# transcript to be byte-identical to `pals_sweep --jobs=1`, then SIGTERM
# the daemon and require a clean drain (exit 0).
#
# Backgrounding a daemon is not expressible in pure CMake script, so the
# choreography runs under bash (the repo's tier-1 script already
# requires it).
file(MAKE_DIRECTORY ${WORK_DIR})

set(script "
set -eu
sock=${WORK_DIR}/smoke_serve.sock
ready=${WORK_DIR}/smoke_serve.ready
rm -f \"$sock\" \"$ready\"

${PALS_SERVE} --socket=$sock --ready-file=$ready --jobs=2 --quiet &
daemon=$!
trap 'kill -9 $daemon 2>/dev/null || true' EXIT

for _ in $(seq 1 200); do
  [ -f \"$ready\" ] && break
  sleep 0.05
done
[ -f \"$ready\" ] || { echo 'daemon never became ready' >&2; exit 1; }

${PALS_QUERY} --socket=$sock --ping
${PALS_QUERY} --socket=$sock --requests=${REQUESTS} \
    > ${WORK_DIR}/smoke_serve_battery.txt
${PALS_QUERY} --socket=$sock --chaos=8
${PALS_QUERY} --socket=$sock --ping   # still healthy after the chaos leg

# Byte-identity: the served grid vs the batch engine.
${PALS_QUERY} --socket=$sock --grid=${GRID} \
    --out=${WORK_DIR}/smoke_serve_grid.csv
${PALS_SWEEP} --grid=${GRID} --jobs=1 --quiet \
    --out=${WORK_DIR}/smoke_serve_ref.csv
cmp ${WORK_DIR}/smoke_serve_grid.csv ${WORK_DIR}/smoke_serve_ref.csv

# Structural validation of the request battery itself.
${PALS_JSON_CHECK} --serve ${REQUESTS}

# Cooperative drain: SIGTERM must exit 0 and unlink the socket.
kill -TERM $daemon
code=0
wait $daemon || code=$?
trap - EXIT
[ \"$code\" -eq 0 ] || { echo \"drain exited $code\" >&2; exit 1; }
[ ! -e \"$sock\" ] || { echo 'socket not unlinked after drain' >&2; exit 1; }
")

execute_process(COMMAND bash -c "${script}" RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve smoke failed (${code})")
endif()
