#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiments.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

/// Bulk-synchronous trace: `iterations` of per-rank compute (weights ·
/// base) followed by a tiny allreduce.
Trace bsp_trace(const std::vector<double>& weights, int iterations = 5,
                double base = 0.1) {
  Trace t(static_cast<Rank>(weights.size()));
  for (Rank r = 0; r < t.n_ranks(); ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < iterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(base * weights[static_cast<std::size_t>(r)])
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

PipelineConfig paper_config(const GearSet& set,
                            Algorithm algorithm = Algorithm::kMax) {
  PipelineConfig c;
  c.algorithm.algorithm = algorithm;
  c.algorithm.gear_set = set;
  c.algorithm.beta = 0.5;
  c.power.beta = 0.5;
  return c;
}

const std::vector<double> kImbalanced{0.2, 0.5, 0.8, 1.0};
const std::vector<double> kBalanced{1.0, 1.0, 1.0, 1.0};

TEST(Pipeline, ImbalancedTraceSavesEnergyWithoutTimePenalty) {
  const PipelineResult r = run_pipeline(
      bsp_trace(kImbalanced), paper_config(paper_limited_continuous()));
  EXPECT_LT(r.normalized_energy(), 0.85);
  EXPECT_NEAR(r.normalized_time(), 1.0, 0.02);
  EXPECT_LT(r.normalized_edp(), 0.9);
}

TEST(Pipeline, BalancedTraceSavesNothingUnderMax) {
  const PipelineResult r = run_pipeline(
      bsp_trace(kBalanced), paper_config(paper_limited_continuous()));
  EXPECT_NEAR(r.normalized_energy(), 1.0, 0.01);
  EXPECT_NEAR(r.normalized_time(), 1.0, 1e-9);
}

TEST(Pipeline, LoadBalanceMatchesDefinition) {
  const PipelineResult r = run_pipeline(
      bsp_trace(kImbalanced), paper_config(paper_limited_continuous()));
  // LB = mean/max of weights = 2.5/4 / 1 = 0.625.
  EXPECT_NEAR(r.load_balance, 0.625, 0.01);
  EXPECT_GT(r.parallel_efficiency, 0.0);
  EXPECT_LE(r.parallel_efficiency, r.load_balance + 1e-9);
}

TEST(Pipeline, MaxNeverOverclocks) {
  const PipelineResult r = run_pipeline(
      bsp_trace(kImbalanced), paper_config(paper_limited_continuous()));
  EXPECT_DOUBLE_EQ(r.overclocked_fraction, 0.0);
  for (const Gear& g : r.assignment.gears)
    EXPECT_LE(g.frequency_ghz, 2.3 + 1e-12);
}

TEST(Pipeline, AvgWithOverclockReducesTime) {
  const PipelineResult r = run_pipeline(
      bsp_trace(kImbalanced),
      paper_config(paper_limited_continuous().with_fmax_scaled(1.2),
                   Algorithm::kAvg));
  EXPECT_LT(r.normalized_time(), 1.0);
  EXPECT_GT(r.overclocked_fraction, 0.0);
  EXPECT_LT(r.normalized_energy(), 1.0);
}

TEST(Pipeline, AvgDiscreteUsesOverclockGear) {
  const PipelineResult r =
      run_pipeline(bsp_trace(kImbalanced),
                   paper_config(paper_avg_discrete(), Algorithm::kAvg));
  EXPECT_GT(r.overclocked_fraction, 0.0);
  EXPECT_LT(r.normalized_time(), 1.0 + 1e-9);
}

TEST(Pipeline, MaxBeatsAvgOnEnergyAvgBeatsMaxOnTime) {
  const Trace t = bsp_trace(kImbalanced);
  const PipelineResult max_r =
      run_pipeline(t, paper_config(paper_limited_continuous()));
  const PipelineResult avg_r = run_pipeline(
      t, paper_config(paper_limited_continuous().with_fmax_scaled(1.2),
                      Algorithm::kAvg));
  EXPECT_LE(max_r.normalized_energy(), avg_r.normalized_energy() + 1e-9);
  EXPECT_LE(avg_r.normalized_time(), max_r.normalized_time() + 1e-9);
}

TEST(Pipeline, MoreGearsNeverHurtEnergy) {
  const Trace t = bsp_trace(kImbalanced);
  double previous = 2.0;
  for (const int n : {2, 4, 6, 10, 15}) {
    const PipelineResult r = run_pipeline(t, paper_config(paper_uniform(n)));
    EXPECT_LE(r.normalized_energy(), previous + 0.02) << n << " gears";
    previous = r.normalized_energy();
  }
}

TEST(Pipeline, SixGearsCloseToContinuous) {
  const Trace t = bsp_trace(kImbalanced);
  const double continuous =
      run_pipeline(t, paper_config(paper_limited_continuous()))
          .normalized_energy();
  const double six =
      run_pipeline(t, paper_config(paper_uniform(6))).normalized_energy();
  EXPECT_NEAR(six, continuous, 0.08);
}

TEST(Pipeline, LowerBetaSavesMoreEnergyForImbalanced) {
  // Lower beta = more memory bound = frequency can drop further for the
  // same target time (paper Fig. 5).
  const Trace t = bsp_trace(kImbalanced);
  PipelineConfig lo = paper_config(paper_limited_continuous());
  set_beta(lo, 0.3);
  PipelineConfig hi = paper_config(paper_limited_continuous());
  set_beta(hi, 1.0);
  EXPECT_LT(run_pipeline(t, lo).normalized_energy(),
            run_pipeline(t, hi).normalized_energy());
}

TEST(Pipeline, HigherStaticFractionShrinksSavings) {
  const Trace t = bsp_trace(kImbalanced);
  PipelineConfig lo = paper_config(paper_uniform(6));
  lo.power.static_fraction = 0.1;
  PipelineConfig hi = paper_config(paper_uniform(6));
  hi.power.static_fraction = 0.8;
  const double save_lo = 1.0 - run_pipeline(t, lo).normalized_energy();
  const double save_hi = 1.0 - run_pipeline(t, hi).normalized_energy();
  EXPECT_GT(save_lo, save_hi);
}

TEST(Pipeline, PerPhaseConfigRequiresPhaseLabels) {
  PipelineConfig c = paper_config(paper_limited_continuous());
  c.per_phase = true;
  EXPECT_THROW(run_pipeline(bsp_trace(kImbalanced), c), Error);
}

/// Two-phase trace with opposing imbalance (PEPC-like).
Trace two_phase_trace() {
  const std::vector<double> w0{0.2, 1.0};
  const std::vector<double> w1{1.0, 0.2};
  Trace t(2);
  for (Rank r = 0; r < 2; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < 4; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.1 * w0[static_cast<std::size_t>(r)], 0)
          .collective(CollectiveOp::kAllgather, 1024)
          .compute(0.1 * w1[static_cast<std::size_t>(r)], 1)
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

TEST(Pipeline, SingleSettingStretchesTwoPhaseTrace) {
  // Both ranks have equal totals -> MAX assigns fmax everywhere and the
  // time stays put; but an *imbalanced-total* two-phase trace stretches.
  Trace t(2);
  const std::vector<double> w0{0.2, 0.6};
  const std::vector<double> w1{0.7, 0.2};
  for (Rank r = 0; r < 2; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < 4; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.1 * w0[static_cast<std::size_t>(r)], 0)
          .collective(CollectiveOp::kAllgather, 1024)
          .compute(0.1 * w1[static_cast<std::size_t>(r)], 1)
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  const PipelineResult single =
      run_pipeline(t, paper_config(paper_limited_continuous()));
  // Rank totals: 0.9 vs 0.8 -> rank 1 is slowed; but rank 1 dominates
  // phase 0, so phase 0 stretches beyond its original span.
  EXPECT_GT(single.normalized_time(), 1.02);

  PipelineConfig per_phase = paper_config(paper_limited_continuous());
  per_phase.per_phase = true;
  const PipelineResult phased = run_pipeline(t, per_phase);
  EXPECT_LT(phased.normalized_time(), single.normalized_time());
}

TEST(Pipeline, PerPhaseAssignsPerPhaseFrequencies) {
  PipelineConfig c = paper_config(paper_limited_continuous());
  c.per_phase = true;
  const PipelineResult r = run_pipeline(two_phase_trace(), c);
  ASSERT_EQ(r.phase_assignments.size(), 2u);
  // Opposing imbalance: each rank is heavy in exactly one phase.
  EXPECT_NEAR(r.phase_assignments[0].gears[1].frequency_ghz, 2.3, 1e-9);
  EXPECT_NEAR(r.phase_assignments[1].gears[0].frequency_ghz, 2.3, 1e-9);
  EXPECT_LT(r.phase_assignments[0].gears[0].frequency_ghz, 2.3);
  EXPECT_LT(r.phase_assignments[1].gears[1].frequency_ghz, 2.3);
}

TEST(Pipeline, ConfigValidationCatchesBetaMismatch) {
  PipelineConfig c = paper_config(paper_limited_continuous());
  c.algorithm.beta = 0.3;  // power.beta still 0.5
  EXPECT_THROW(run_pipeline(bsp_trace(kBalanced), c), Error);
}

TEST(Pipeline, ConfigValidationCatchesReferenceMismatch) {
  PipelineConfig c = paper_config(paper_limited_continuous());
  c.power.reference = Gear{2.0, 1.4};
  EXPECT_THROW(run_pipeline(bsp_trace(kBalanced), c), Error);
}

TEST(Metrics, LoadBalanceAndParallelEfficiency) {
  const std::vector<Seconds> times{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(load_balance(times), 10.0 / 16.0, 1e-12);
  EXPECT_NEAR(parallel_efficiency(times, 5.0), 10.0 / 20.0, 1e-12);
  EXPECT_THROW(load_balance({}), Error);
  EXPECT_THROW(parallel_efficiency(times, 0.0), Error);
}

TEST(Metrics, PerfectBalanceIsOne) {
  const std::vector<Seconds> times{2.0, 2.0};
  EXPECT_DOUBLE_EQ(load_balance(times), 1.0);
}

}  // namespace
}  // namespace pals
