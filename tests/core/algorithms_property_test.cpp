// Property sweeps of the assignment algorithms over random load vectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/algorithms.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

std::vector<Seconds> random_loads(Rng& rng, std::size_t n) {
  std::vector<Seconds> loads(n);
  for (auto& t : loads) t = rng.uniform(0.05, 1.0);
  return loads;
}

class AssignmentProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignmentProperty, MaxNeverBreaksItsContract) {
  Rng rng(GetParam());
  for (const GearSet& set :
       {paper_uniform(2), paper_uniform(6), paper_exponential(4),
        paper_limited_continuous(), paper_unlimited_continuous()}) {
    AlgorithmConfig config;
    config.gear_set = set;
    for (int trial = 0; trial < 20; ++trial) {
      const auto loads = random_loads(rng, rng.uniform_int(2, 64));
      const FrequencyAssignment a = assign_frequencies(loads, config);
      const Seconds t_max =
          *std::max_element(loads.begin(), loads.end());
      EXPECT_DOUBLE_EQ(a.target_time, t_max);
      for (std::size_t r = 0; r < loads.size(); ++r) {
        // Contract: no rank stretches past the critical path, and no
        // rank exceeds the nominal frequency.
        EXPECT_LE(a.predicted_time[r], t_max + 1e-9)
            << set.describe() << " rank " << r;
        EXPECT_LE(a.gears[r].frequency_ghz, 2.3 + 1e-12);
      }
      // The heaviest rank runs at the top frequency.
      const auto heaviest = static_cast<std::size_t>(
          std::max_element(loads.begin(), loads.end()) - loads.begin());
      EXPECT_NEAR(a.gears[heaviest].frequency_ghz, 2.3, 1e-12);
    }
  }
}

TEST_P(AssignmentProperty, MaxIsMonotoneInLoad) {
  // A rank with more work never gets a lower frequency.
  Rng rng(GetParam() + 100);
  AlgorithmConfig config;
  config.gear_set = paper_uniform(8);
  for (int trial = 0; trial < 30; ++trial) {
    const auto loads = random_loads(rng, 16);
    const FrequencyAssignment a = assign_frequencies(loads, config);
    for (std::size_t i = 0; i < loads.size(); ++i)
      for (std::size_t j = 0; j < loads.size(); ++j)
        if (loads[i] < loads[j])
          EXPECT_LE(a.gears[i].frequency_ghz,
                    a.gears[j].frequency_ghz + 1e-12);
  }
}

TEST_P(AssignmentProperty, AvgTargetBetweenMeanAndMax) {
  Rng rng(GetParam() + 200);
  AlgorithmConfig config;
  config.algorithm = Algorithm::kAvg;
  config.gear_set = paper_avg_discrete();
  for (int trial = 0; trial < 30; ++trial) {
    const auto loads = random_loads(rng, rng.uniform_int(2, 64));
    const FrequencyAssignment a = assign_frequencies(loads, config);
    const Seconds mean =
        std::accumulate(loads.begin(), loads.end(), 0.0) /
        static_cast<double>(loads.size());
    const Seconds t_max = *std::max_element(loads.begin(), loads.end());
    EXPECT_GE(a.target_time, mean - 1e-12);
    EXPECT_LE(a.target_time, t_max + 1e-12);
  }
}

TEST_P(AssignmentProperty, AvgOverclocksOnlyAboveTargetRanks) {
  Rng rng(GetParam() + 300);
  AlgorithmConfig config;
  config.algorithm = Algorithm::kAvg;
  config.gear_set = paper_avg_discrete();
  for (int trial = 0; trial < 30; ++trial) {
    const auto loads = random_loads(rng, 32);
    const FrequencyAssignment a = assign_frequencies(loads, config);
    for (std::size_t r = 0; r < loads.size(); ++r) {
      if (a.gears[r].frequency_ghz > 2.3 + 1e-12)
        EXPECT_GT(loads[r], a.target_time - 1e-12) << "rank " << r;
    }
  }
}

TEST_P(AssignmentProperty, TighterGearSetsNeverSlowTheCriticalPath) {
  // Whatever the set, the *maximum* predicted time equals the target.
  Rng rng(GetParam() + 400);
  for (const int gears : {2, 4, 8, 15}) {
    AlgorithmConfig config;
    config.gear_set = paper_uniform(gears);
    const auto loads = random_loads(rng, 24);
    const FrequencyAssignment a = assign_frequencies(loads, config);
    const Seconds worst = *std::max_element(a.predicted_time.begin(),
                                            a.predicted_time.end());
    EXPECT_NEAR(worst, a.target_time, 1e-9) << gears << " gears";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentProperty,
                         ::testing::Values(3u, 7u, 31u, 127u, 8191u));

}  // namespace
}  // namespace pals
