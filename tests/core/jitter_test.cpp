#include "core/jitter.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "util/error.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

/// Iteration-marked BSP trace with a fixed imbalance pattern.
Trace steady_trace(const std::vector<double>& weights, int iterations) {
  Trace t(static_cast<Rank>(weights.size()));
  for (Rank r = 0; r < t.n_ranks(); ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < iterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.05 * weights[static_cast<std::size_t>(r)])
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

JitterConfig default_config() {
  JitterConfig c;
  c.gear_set = paper_uniform(6);
  return c;
}

TEST(Jitter, ConfigValidation) {
  JitterConfig c = default_config();
  c.gear_set = paper_limited_continuous();
  EXPECT_THROW(c.validate(), Error);
  c = default_config();
  c.slack_threshold = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c = default_config();
  EXPECT_NO_THROW(c.validate());
}

TEST(Jitter, RequiresIterationMarkers) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0);
  TraceBuilder(t, 1).compute(2.0);
  EXPECT_THROW(run_jitter(t, default_config()), Error);
}

TEST(Jitter, BalancedTraceStaysAtTopGear) {
  const Trace t = steady_trace({1.0, 1.0, 1.0, 1.0}, 6);
  const JitterResult r = run_jitter(t, default_config());
  for (const auto& iteration : r.schedule)
    for (const Gear& g : iteration)
      EXPECT_NEAR(g.frequency_ghz, 2.3, 1e-12);
  EXPECT_EQ(r.gear_shifts, 0u);
  EXPECT_NEAR(r.normalized_energy(), 1.0, 1e-9);
  EXPECT_NEAR(r.normalized_time(), 1.0, 1e-9);
}

TEST(Jitter, SteadyImbalanceConvergesTowardsStaticAssignment) {
  const std::vector<double> weights{0.2, 0.5, 0.8, 1.0};
  const Trace t = steady_trace(weights, 12);
  const JitterResult dynamic = run_jitter(t, default_config());

  PipelineConfig static_config;
  static_config.algorithm.gear_set = paper_uniform(6);
  const PipelineResult static_result = run_pipeline(t, static_config);

  // After the stepping transient, each rank's gear equals the static
  // MAX-algorithm gear.
  const auto& final_gears = dynamic.schedule.back();
  for (std::size_t r = 0; r < final_gears.size(); ++r) {
    EXPECT_NEAR(final_gears[r].frequency_ghz,
                static_result.assignment.gears[r].frequency_ghz, 1e-12)
        << "rank " << r;
  }
  // And the energy approaches the static result from above (the transient
  // iterations run too fast).
  EXPECT_LT(dynamic.normalized_energy(), 1.0);
  EXPECT_GE(dynamic.normalized_energy(),
            static_result.normalized_energy() - 1e-9);
}

TEST(Jitter, DownshiftsAtMostOneGearPerIteration) {
  const Trace t = steady_trace({0.1, 1.0}, 8);
  const JitterResult r = run_jitter(t, default_config());
  for (std::size_t i = 1; i < r.schedule.size(); ++i) {
    for (std::size_t rank = 0; rank < r.schedule[i].size(); ++rank) {
      const double prev = r.schedule[i - 1][rank].frequency_ghz;
      const double curr = r.schedule[i][rank].frequency_ghz;
      // Down: one uniform-6 step max. Up: may jump straight to the top.
      EXPECT_GE(curr - prev, -0.3 - 1e-9)
          << "iteration " << i << " rank " << rank;
    }
  }
}

TEST(Jitter, CriticalRankJumpsBackToTop) {
  // Rank 0 is light for the first half of the run, then becomes the heavy
  // rank; the runtime must restore its top gear within one iteration.
  Trace t(2);
  constexpr int kIterations = 10;
  for (Rank r = 0; r < 2; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < kIterations; ++i) {
      const bool flipped = i >= kIterations / 2;
      const double w = (r == 0) == flipped ? 1.0 : 0.2;
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.05 * w)
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  const JitterResult r = run_jitter(t, default_config());
  // One observation lag after the flip, then rank 0 is back at 2.3 GHz.
  EXPECT_NEAR(r.schedule[kIterations / 2 + 1][0].frequency_ghz, 2.3, 1e-12);
}

TEST(Jitter, CriticalRankNeverLeavesTopGear) {
  const Trace t = steady_trace({0.3, 0.7, 1.0}, 10);
  const JitterResult r = run_jitter(t, default_config());
  for (const auto& iteration : r.schedule)
    EXPECT_NEAR(iteration[2].frequency_ghz, 2.3, 1e-12);
}

TEST(Jitter, DownshiftNeverViolatesCriticalPathPrediction) {
  const std::vector<double> weights{0.4, 0.6, 1.0};
  const Trace t = steady_trace(weights, 10);
  const JitterConfig config = default_config();
  const JitterResult r = run_jitter(t, config);
  const PowerModel power(config.power);
  for (const auto& iteration : r.schedule) {
    const double t_max = 0.05 * 1.0;  // critical rank at top gear
    for (std::size_t rank = 0; rank < weights.size(); ++rank) {
      const double stretched =
          0.05 * weights[rank] *
          power.time_scale(iteration[rank].frequency_ghz);
      EXPECT_LE(stretched, t_max * (1.0 + 0.03)) << "rank " << rank;
    }
  }
}

TEST(Jitter, TimePenaltyBoundedOnSteadyTrace) {
  const Trace t = steady_trace({0.2, 0.5, 0.8, 1.0}, 10);
  const JitterResult r = run_jitter(t, default_config());
  EXPECT_NEAR(r.normalized_time(), 1.0, 0.02);
}

TEST(Jitter, AdaptsToDriftingImbalance) {
  WorkloadConfig workload;
  workload.ranks = 16;
  workload.iterations = 16;
  workload.target_lb = 0.5;
  const Trace t = make_amr_drift(workload);

  // Static MAX sees nearly balanced totals: little to save.
  PipelineConfig static_config;
  static_config.algorithm.gear_set = paper_uniform(6);
  const PipelineResult static_result = run_pipeline(t, static_config);

  const JitterResult dynamic = run_jitter(t, default_config());

  EXPECT_GT(static_result.load_balance, 0.9);  // totals balanced
  // The dynamic runtime tracks the moving hot spot and saves clearly more
  // than the static whole-run assignment.
  EXPECT_LT(dynamic.normalized_energy(),
            static_result.normalized_energy() - 0.05);
}

TEST(Jitter, TransitionPenaltyOnlyHurts) {
  const Trace t = steady_trace({0.2, 0.5, 1.0}, 10);
  JitterConfig free = default_config();
  JitterConfig costly = default_config();
  costly.transition_penalty = 2e-3;  // 2 ms per switch
  const JitterResult r_free = run_jitter(t, free);
  const JitterResult r_costly = run_jitter(t, costly);
  EXPECT_GE(r_costly.scaled_time, r_free.scaled_time);
  EXPECT_GT(r_costly.scaled_energy, r_free.scaled_energy);
  EXPECT_EQ(r_costly.gear_shifts, r_free.gear_shifts);
}

TEST(Jitter, ZeroShiftsMeansNoPenalty) {
  const Trace t = steady_trace({1.0, 1.0}, 5);
  JitterConfig config = default_config();
  config.transition_penalty = 1e-2;
  const JitterResult r = run_jitter(t, config);
  EXPECT_EQ(r.gear_shifts, 0u);
  EXPECT_NEAR(r.normalized_time(), 1.0, 1e-9);
}

TEST(Jitter, RejectsNegativePenalty) {
  JitterConfig config = default_config();
  config.transition_penalty = -1.0;
  EXPECT_THROW(config.validate(), Error);
}

TEST(Jitter, SchedulesCoverEveryIteration) {
  const Trace t = steady_trace({0.5, 1.0}, 7);
  const JitterResult r = run_jitter(t, default_config());
  EXPECT_EQ(r.schedule.size(), 7u);
  EXPECT_GT(r.gear_shifts, 0u);
}

TEST(Jitter, EdpConsistency) {
  const Trace t = steady_trace({0.3, 1.0}, 6);
  const JitterResult r = run_jitter(t, default_config());
  EXPECT_NEAR(r.normalized_edp(),
              r.normalized_energy() * r.normalized_time(), 1e-12);
}

}  // namespace
}  // namespace pals
