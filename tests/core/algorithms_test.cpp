#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

AlgorithmConfig max_continuous() {
  AlgorithmConfig c;
  c.algorithm = Algorithm::kMax;
  c.gear_set = paper_limited_continuous();
  c.beta = 0.5;
  return c;
}

AlgorithmConfig avg_continuous(double oc_factor) {
  AlgorithmConfig c;
  c.algorithm = Algorithm::kAvg;
  c.gear_set = paper_limited_continuous().with_fmax_scaled(oc_factor);
  c.beta = 0.5;
  return c;
}

TEST(IdealFrequency, NoSlackMeansReferenceFrequency) {
  EXPECT_NEAR(ideal_frequency(10.0, 10.0, 2.3, 0.5), 2.3, 1e-12);
}

TEST(IdealFrequency, KnownSlackValue) {
  // stretch s = 2, beta = 0.5: f = fref * 0.5 / (2 - 1 + 0.5) = fref/3.
  EXPECT_NEAR(ideal_frequency(5.0, 10.0, 2.3, 0.5), 2.3 / 3.0, 1e-12);
}

TEST(IdealFrequency, BetaOneIsInverseProportional) {
  // With beta = 1, doubling allowed time halves the frequency.
  EXPECT_NEAR(ideal_frequency(5.0, 10.0, 2.3, 1.0), 2.3 / 2.0, 1e-12);
}

TEST(IdealFrequency, SpeedupRequiresOverclock) {
  // target < time -> frequency above reference.
  const double f = ideal_frequency(10.0, 9.0, 2.3, 0.5);
  EXPECT_GT(f, 2.3);
}

TEST(IdealFrequency, ImpossibleSpeedupIsInfinite) {
  // stretch of (1 - beta) or less is unreachable at any finite frequency.
  EXPECT_TRUE(std::isinf(ideal_frequency(10.0, 5.0, 2.3, 0.5)));
  EXPECT_TRUE(std::isinf(ideal_frequency(10.0, 4.0, 2.3, 0.5)));
}

TEST(IdealFrequency, ZeroComputationWantsLowestGear) {
  EXPECT_DOUBLE_EQ(ideal_frequency(0.0, 10.0, 2.3, 0.5), 0.0);
}

TEST(IdealFrequency, BetaZeroEdgeCases) {
  EXPECT_DOUBLE_EQ(ideal_frequency(5.0, 10.0, 2.3, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(ideal_frequency(10.0, 5.0, 2.3, 0.0)));
}

TEST(IdealFrequency, RejectsBadArguments) {
  EXPECT_THROW(ideal_frequency(-1.0, 1.0, 2.3, 0.5), Error);
  EXPECT_THROW(ideal_frequency(1.0, 0.0, 2.3, 0.5), Error);
  EXPECT_THROW(ideal_frequency(1.0, 1.0, 0.0, 0.5), Error);
}

TEST(MaxAlgorithm, HeaviestRankKeepsTopFrequency) {
  // Loads chosen so no rank hits the fmin clamp of the limited set.
  const std::vector<Seconds> times{2.5, 3.0, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  EXPECT_DOUBLE_EQ(a.target_time, 4.0);
  EXPECT_NEAR(a.gears[2].frequency_ghz, 2.3, 1e-12);
  EXPECT_LT(a.gears[0].frequency_ghz, a.gears[1].frequency_ghz);
  EXPECT_LT(a.gears[1].frequency_ghz, a.gears[2].frequency_ghz);
}

TEST(MaxAlgorithm, DeepSlackClampsAllLightRanksToFmin) {
  const std::vector<Seconds> times{1.0, 2.0, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  EXPECT_NEAR(a.gears[0].frequency_ghz, 0.8, 1e-12);
  EXPECT_NEAR(a.gears[1].frequency_ghz, 0.8, 1e-12);
}

TEST(MaxAlgorithm, PredictedTimesNeverExceedTarget) {
  const std::vector<Seconds> times{1.0, 1.7, 2.9, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  for (const Seconds t : a.predicted_time)
    EXPECT_LE(t, a.target_time + 1e-9);
}

TEST(MaxAlgorithm, ContinuousAssignmentBalancesExactlyWithinRange) {
  const std::vector<Seconds> times{3.0, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  // Rank 0 slack is within the limited continuous range: exact balance.
  EXPECT_NEAR(a.predicted_time[0], 4.0, 1e-9);
}

TEST(MaxAlgorithm, FminClampLimitsSlowdown) {
  // Extremely light rank cannot go below fmin = 0.8 GHz.
  const std::vector<Seconds> times{0.001, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  EXPECT_NEAR(a.gears[0].frequency_ghz, 0.8, 1e-12);
  EXPECT_LT(a.predicted_time[0], a.target_time);
}

TEST(MaxAlgorithm, UnlimitedSetGoesBelowPointEight) {
  AlgorithmConfig c = max_continuous();
  c.gear_set = paper_unlimited_continuous();
  const std::vector<Seconds> times{0.1, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, c);
  EXPECT_LT(a.gears[0].frequency_ghz, 0.8);
}

TEST(MaxAlgorithm, DiscreteSnapUpKeepsTimesUnderTarget) {
  AlgorithmConfig c = max_continuous();
  c.gear_set = paper_uniform(6);
  const std::vector<Seconds> times{1.0, 1.3, 2.2, 3.1, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, c);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_LE(a.predicted_time[k], a.target_time + 1e-9) << k;
    // Chosen gear is from the set.
    bool found = false;
    for (const Gear& g : c.gear_set.gears())
      if (std::abs(g.frequency_ghz - a.gears[k].frequency_ghz) < 1e-12)
        found = true;
    EXPECT_TRUE(found) << "rank " << k;
  }
}

TEST(MaxAlgorithm, NeverOverclocks) {
  AlgorithmConfig c = max_continuous();
  const std::vector<Seconds> times{1.0, 2.0, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, c);
  EXPECT_EQ(a.overclocked_count(c.nominal_fmax_ghz), 0u);
  EXPECT_DOUBLE_EQ(a.overclocked_fraction(c.nominal_fmax_ghz), 0.0);
}

TEST(MaxAlgorithm, BalancedInputGetsTopFrequencyEverywhere) {
  const std::vector<Seconds> times{2.0, 2.0, 2.0, 2.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  for (const Gear& g : a.gears) EXPECT_NEAR(g.frequency_ghz, 2.3, 1e-12);
}

TEST(AvgAlgorithm, TargetsAverageWhenAttainable) {
  // Mild imbalance: the heavy rank reaches the mean with 10 % overclock.
  const std::vector<Seconds> times{3.8, 4.0};
  const FrequencyAssignment a =
      assign_frequencies(times, avg_continuous(1.1));
  EXPECT_NEAR(a.target_time, 3.9, 1e-12);
  EXPECT_GT(a.gears[1].frequency_ghz, 2.3);
  EXPECT_NEAR(a.predicted_time[1], 3.9, 1e-9);
}

TEST(AvgAlgorithm, RaisesTargetWhenAverageUnattainable) {
  // Strong imbalance: mean is 2.05, far below what +10 % OC can reach.
  const std::vector<Seconds> times{0.1, 4.0};
  const FrequencyAssignment a =
      assign_frequencies(times, avg_continuous(1.1));
  const double stretch_at_max = 0.5 * (2.3 / (2.3 * 1.1) - 1.0) + 1.0;
  EXPECT_NEAR(a.target_time, 4.0 * stretch_at_max, 1e-9);
  // The heavy rank runs at the over-clock limit.
  EXPECT_NEAR(a.gears[1].frequency_ghz, 2.3 * 1.1, 1e-9);
}

TEST(AvgAlgorithm, MoreOverclockHeadroomLowersTarget) {
  const std::vector<Seconds> times{0.1, 4.0};
  const FrequencyAssignment a10 =
      assign_frequencies(times, avg_continuous(1.1));
  const FrequencyAssignment a20 =
      assign_frequencies(times, avg_continuous(1.2));
  EXPECT_LT(a20.target_time, a10.target_time);
}

TEST(AvgAlgorithm, DiscreteOverclockGearIsUsed) {
  AlgorithmConfig c;
  c.algorithm = Algorithm::kAvg;
  c.gear_set = paper_avg_discrete();
  c.beta = 0.5;
  const std::vector<Seconds> times{1.0, 1.0, 1.0, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, c);
  EXPECT_NEAR(a.gears[3].frequency_ghz, 2.6, 1e-12);
  EXPECT_EQ(a.overclocked_count(c.nominal_fmax_ghz), 1u);
  EXPECT_DOUBLE_EQ(a.overclocked_fraction(c.nominal_fmax_ghz), 0.25);
}

TEST(AvgAlgorithm, TargetNeverBelowAverage) {
  const std::vector<Seconds> times{1.0, 2.0, 3.0, 4.0, 5.0};
  const FrequencyAssignment a =
      assign_frequencies(times, avg_continuous(1.2));
  EXPECT_GE(a.target_time, 3.0 - 1e-12);
}

TEST(AssignFrequencies, RejectsDegenerateInput) {
  EXPECT_THROW(assign_frequencies({}, max_continuous()), Error);
  const std::vector<Seconds> neg{1.0, -1.0};
  EXPECT_THROW(assign_frequencies(neg, max_continuous()), Error);
  const std::vector<Seconds> zeros{0.0, 0.0};
  EXPECT_THROW(assign_frequencies(zeros, max_continuous()), Error);
}

TEST(AssignFrequencies, ZeroLoadRankGetsLowestFrequency) {
  const std::vector<Seconds> times{0.0, 4.0};
  const FrequencyAssignment a = assign_frequencies(times, max_continuous());
  EXPECT_NEAR(a.gears[0].frequency_ghz, 0.8, 1e-12);
}

TEST(PerPhaseAssignment, IndependentPerPhase) {
  AlgorithmConfig c = max_continuous();
  const std::vector<std::vector<Seconds>> phases{{1.0, 4.0}, {4.0, 1.0}};
  const auto assignments = assign_frequencies_per_phase(phases, c);
  ASSERT_EQ(assignments.size(), 2u);
  // Phase 0: rank 1 heavy; phase 1: rank 0 heavy.
  EXPECT_NEAR(assignments[0].gears[1].frequency_ghz, 2.3, 1e-12);
  EXPECT_NEAR(assignments[1].gears[0].frequency_ghz, 2.3, 1e-12);
  EXPECT_LT(assignments[0].gears[0].frequency_ghz, 2.3);
}

AlgorithmConfig eopt_uniform6() {
  AlgorithmConfig c;
  c.algorithm = Algorithm::kEnergyOptimalMax;
  c.gear_set = paper_uniform(6);
  c.beta = 0.5;
  return c;
}

TEST(EnergyOptimal, MatchesMaxWhenDynamicPowerDominates) {
  // With zero static power, running as slowly as feasible is optimal:
  // the energy-optimal choice coincides with MAX's snap-up.
  PowerModelConfig power;
  power.static_fraction = 0.0;
  const std::vector<Seconds> times{0.5, 1.1, 2.4, 4.0};
  const FrequencyAssignment eopt =
      assign_frequencies_energy_optimal(times, eopt_uniform6(), power);
  AlgorithmConfig max_config = eopt_uniform6();
  max_config.algorithm = Algorithm::kMax;
  const FrequencyAssignment max_assign =
      assign_frequencies(times, max_config);
  for (std::size_t r = 0; r < times.size(); ++r)
    EXPECT_NEAR(eopt.gears[r].frequency_ghz,
                max_assign.gears[r].frequency_ghz, 1e-12)
        << "rank " << r;
}

TEST(EnergyOptimal, PaperModelMakesSnapUpExactlyOptimal) {
  // Under the paper's model (the CPU stays powered at the chosen gear
  // while waiting, idle_scale = 1), every energy term decreases with the
  // gear, so MAX's lowest-feasible rule is provably optimal — EOPT must
  // reproduce it at any static fraction.
  for (const double sf : {0.2, 0.9}) {
    PowerModelConfig power;
    power.static_fraction = sf;
    const std::vector<Seconds> times{0.5, 1.3, 4.0};
    const FrequencyAssignment eopt =
        assign_frequencies_energy_optimal(times, eopt_uniform6(), power);
    AlgorithmConfig max_config = eopt_uniform6();
    max_config.algorithm = Algorithm::kMax;
    const FrequencyAssignment max_assign =
        assign_frequencies(times, max_config);
    for (std::size_t r = 0; r < times.size(); ++r)
      EXPECT_NEAR(eopt.gears[r].frequency_ghz,
                  max_assign.gears[r].frequency_ghz, 1e-12)
          << "sf " << sf << " rank " << r;
  }
}

TEST(EnergyOptimal, DeepIdleStatesMakeRaceToIdleWin) {
  // With C-states (waiting costs ~5 % of active power) and substantial
  // static power, crawling keeps the static draw alive for longer than
  // finishing faster and sleeping: the optimal gear moves up.
  PowerModelConfig power;
  power.static_fraction = 0.6;
  power.idle_scale = 0.05;
  const std::vector<Seconds> times{0.5, 4.0};
  const FrequencyAssignment eopt =
      assign_frequencies_energy_optimal(times, eopt_uniform6(), power);
  EXPECT_GT(eopt.gears[0].frequency_ghz, 0.8 + 1e-12);
}

TEST(EnergyOptimal, NeverWorseThanMaxInModeledEnergy) {
  for (const double sf : {0.0, 0.2, 0.5, 0.8}) {
    PowerModelConfig power;
    power.static_fraction = sf;
    power.idle_scale = sf > 0.4 ? 0.1 : 1.0;  // exercise both regimes
    const PowerModel pm(power);
    const std::vector<Seconds> times{0.3, 0.9, 1.8, 4.0};
    const Seconds window = 4.0;
    const auto modeled_energy = [&](const FrequencyAssignment& a) {
      double total = 0.0;
      for (std::size_t r = 0; r < times.size(); ++r) {
        const Seconds compute = a.predicted_time[r];
        total += compute * pm.total_power(a.gears[r], true) +
                 std::max(0.0, window - compute) *
                     pm.total_power(a.gears[r], false);
      }
      return total;
    };
    const FrequencyAssignment eopt =
        assign_frequencies_energy_optimal(times, eopt_uniform6(), power);
    AlgorithmConfig max_config = eopt_uniform6();
    max_config.algorithm = Algorithm::kMax;
    const FrequencyAssignment max_assign =
        assign_frequencies(times, max_config);
    EXPECT_LE(modeled_energy(eopt), modeled_energy(max_assign) + 1e-12)
        << "static " << sf;
  }
}

TEST(EnergyOptimal, RespectsTheMaxTimeContract) {
  PowerModelConfig power;
  const std::vector<Seconds> times{0.7, 1.9, 4.0};
  const FrequencyAssignment a =
      assign_frequencies_energy_optimal(times, eopt_uniform6(), power);
  for (const Seconds t : a.predicted_time)
    EXPECT_LE(t, a.target_time + 1e-9);
  EXPECT_EQ(a.overclocked_count(2.3), 0u);
}

TEST(EnergyOptimal, RejectsContinuousSetsAndBetaMismatch) {
  PowerModelConfig power;
  const std::vector<Seconds> times{1.0, 2.0};
  AlgorithmConfig continuous = eopt_uniform6();
  continuous.gear_set = paper_limited_continuous();
  EXPECT_THROW(
      assign_frequencies_energy_optimal(times, continuous, power), Error);
  AlgorithmConfig mismatched = eopt_uniform6();
  mismatched.beta = 0.7;  // power.beta stays 0.5
  EXPECT_THROW(
      assign_frequencies_energy_optimal(times, mismatched, power), Error);
}

TEST(EnergyOptimal, PlainAssignRejectsTheEnumValue) {
  const std::vector<Seconds> times{1.0, 2.0};
  EXPECT_THROW(assign_frequencies(times, eopt_uniform6()), Error);
}

TEST(SlackTimes, MatchesDefinition) {
  const std::vector<Seconds> times{1.0, 3.0, 4.0};
  const auto slack = slack_times(times);
  ASSERT_EQ(slack.size(), 3u);
  EXPECT_DOUBLE_EQ(slack[0], 3.0);
  EXPECT_DOUBLE_EQ(slack[1], 1.0);
  EXPECT_DOUBLE_EQ(slack[2], 0.0);
}

TEST(AlgorithmNames, ToString) {
  EXPECT_EQ(to_string(Algorithm::kMax), "MAX");
  EXPECT_EQ(to_string(Algorithm::kAvg), "AVG");
}

}  // namespace
}  // namespace pals
