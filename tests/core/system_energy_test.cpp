#include "core/system_energy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(SystemEnergy, ConfigValidation) {
  SystemEnergyConfig c;
  EXPECT_NO_THROW(c.validate());
  c.cpu_fraction = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c.cpu_fraction = 1.5;
  EXPECT_THROW(c.validate(), Error);
}

TEST(SystemEnergy, CpuFractionCalibratesRestPower) {
  SystemEnergyConfig c;
  c.cpu_fraction = 0.5;
  const PowerModel pm(c.power);
  const double cpu_ref = pm.total_power(c.power.reference, true);
  EXPECT_NEAR(c.rest_of_system_power(), cpu_ref, 1e-12);  // 50/50 split
  c.cpu_fraction = 1.0;
  EXPECT_NEAR(c.rest_of_system_power(), 0.0, 1e-12);
}

TEST(SystemEnergy, AddsConstantDrawOverTime) {
  SystemEnergyConfig c;
  const double rest = c.rest_of_system_power();
  EXPECT_NEAR(system_energy(10.0, 2.0, 4, c), 10.0 + rest * 8.0, 1e-9);
}

TEST(SystemEnergy, RejectsBadArguments) {
  const SystemEnergyConfig c;
  EXPECT_THROW(system_energy(-1.0, 1.0, 2, c), Error);
  EXPECT_THROW(system_energy(1.0, -1.0, 2, c), Error);
  EXPECT_THROW(system_energy(1.0, 1.0, 0, c), Error);
}

TEST(SystemEnergy, TimeReductionSavesSystemEnergyEvenAtEqualCpuEnergy) {
  // Two executions with identical CPU energy; the faster one wins at the
  // system level — the paper's argument for AVG.
  const SystemEnergyConfig c;
  const double slow = system_energy(10.0, 2.0, 8, c);
  const double fast = system_energy(10.0, 1.8, 8, c);
  EXPECT_LT(fast, slow);
}

TEST(SystemEnergy, SystemViewNormalizesAgainstBaseline) {
  PipelineResult result;
  result.baseline_time = 1.0;
  result.scaled_time = 0.9;
  result.baseline_energy = 100.0;
  result.scaled_energy = 95.0;
  result.computation_time.assign(4, 0.5);
  SystemEnergyConfig c;
  const SystemView view = system_view(result, c);
  EXPECT_NEAR(view.normalized_cpu_energy, 0.95, 1e-12);
  EXPECT_NEAR(view.normalized_time, 0.9, 1e-12);
  // System-normalized energy lies between the time ratio and CPU ratio.
  EXPECT_GT(view.normalized_system_energy, 0.9);
  EXPECT_LT(view.normalized_system_energy, 0.95);
}

TEST(SystemEnergy, PureCpuFractionOneMatchesCpuRatio) {
  PipelineResult result;
  result.baseline_time = 1.0;
  result.scaled_time = 1.2;
  result.baseline_energy = 100.0;
  result.scaled_energy = 60.0;
  result.computation_time.assign(2, 0.5);
  SystemEnergyConfig c;
  c.cpu_fraction = 1.0;
  const SystemView view = system_view(result, c);
  EXPECT_NEAR(view.normalized_system_energy, 0.6, 1e-12);
}

}  // namespace
}  // namespace pals
