#include "core/bound.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

EnergyBoundConfig default_config() { return EnergyBoundConfig{}; }

TEST(EnergyBound, ValidatesInput) {
  const std::vector<Seconds> times{1.0, 2.0};
  EXPECT_THROW(energy_saving_bound({}, 2.0, 0.0, default_config()), Error);
  EXPECT_THROW(energy_saving_bound(times, 1.0, 0.0, default_config()),
               Error);  // total < max comp
  EXPECT_THROW(energy_saving_bound(times, 2.5, -0.1, default_config()),
               Error);
  EnergyBoundConfig bad = default_config();
  bad.fmax_ghz = 3.0;  // bound does not model over-clocking
  EXPECT_THROW(energy_saving_bound(times, 2.5, 0.0, bad), Error);
}

TEST(EnergyBound, BalancedRanksCannotSave) {
  const std::vector<Seconds> times{2.0, 2.0, 2.0};
  const EnergyBound b =
      energy_saving_bound(times, 2.0, 0.0, default_config());
  EXPECT_NEAR(b.normalized_energy, 1.0, 1e-6);
  for (const double f : b.frequency_ghz) EXPECT_NEAR(f, 2.3, 1e-3);
}

TEST(EnergyBound, ImbalancedRanksSave) {
  const std::vector<Seconds> times{0.5, 1.0, 2.0, 4.0};
  const EnergyBound b =
      energy_saving_bound(times, 4.0, 0.0, default_config());
  EXPECT_LT(b.normalized_energy, 0.8);
  // Light ranks run slower than heavy ranks.
  EXPECT_LT(b.frequency_ghz[0], b.frequency_ghz[3]);
  EXPECT_NEAR(b.frequency_ghz[3], 2.3, 1e-3);
}

TEST(EnergyBound, AllowedSlowdownOnlyHelps) {
  const std::vector<Seconds> times{1.0, 2.0, 4.0};
  const EnergyBound tight =
      energy_saving_bound(times, 4.2, 0.0, default_config());
  const EnergyBound loose =
      energy_saving_bound(times, 4.2, 0.2, default_config());
  EXPECT_LE(loose.normalized_energy, tight.normalized_energy + 1e-9);
  EXPECT_GT(loose.predicted_time, tight.predicted_time);
}

TEST(EnergyBound, PredictedTimeMatchesBudget) {
  const std::vector<Seconds> times{1.0, 4.0};
  const EnergyBound b =
      energy_saving_bound(times, 5.0, 0.1, default_config());
  EXPECT_NEAR(b.predicted_time, 5.5, 1e-12);
}

TEST(EnergyBound, LowerBoundsTheMaxAlgorithm) {
  // The bound (continuous frequencies, unlimited floor, perfect balance)
  // must never be beaten by the realizable MAX pipeline.
  const std::vector<double> weights{0.2, 0.5, 0.8, 1.0};
  Trace t(4);
  for (Rank r = 0; r < 4; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < 4; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.1 * weights[static_cast<std::size_t>(r)])
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  PipelineConfig pipeline_config;
  pipeline_config.algorithm.gear_set = paper_unlimited_continuous();
  const PipelineResult pipeline = run_pipeline(t, pipeline_config);

  const EnergyBound bound = energy_saving_bound(
      pipeline.computation_time, pipeline.baseline_time,
      pipeline.normalized_time() - 1.0 + 1e-9, default_config());
  EXPECT_LE(bound.normalized_energy,
            pipeline.normalized_energy() + 0.01);
}

TEST(EnergyBound, HighStaticPowerRaisesOptimalFrequencies) {
  // With dominant static power, crawling at fmin is no longer optimal:
  // the bound picks higher frequencies than in the dynamic-dominated case.
  const std::vector<Seconds> times{0.2, 4.0};
  EnergyBoundConfig dyn = default_config();
  dyn.power.static_fraction = 0.0;
  EnergyBoundConfig stat = default_config();
  stat.power.static_fraction = 0.9;
  const EnergyBound b_dyn = energy_saving_bound(times, 4.0, 0.0, dyn);
  const EnergyBound b_stat = energy_saving_bound(times, 4.0, 0.0, stat);
  EXPECT_LT(b_dyn.normalized_energy, b_stat.normalized_energy);
}

TEST(EnergyBound, ZeroComputationRankHandled) {
  const std::vector<Seconds> times{0.0, 2.0};
  const EnergyBound b =
      energy_saving_bound(times, 2.0, 0.0, default_config());
  EXPECT_NEAR(b.frequency_ghz[0], default_config().fmin_ghz, 1e-12);
  EXPECT_LT(b.normalized_energy, 1.0);
}

TEST(EnergyBound, SnappedBaselineTolerated) {
  // Gear-snapped callers derive total_time and the compute profile from
  // independently rounded replays: a makespan one ulp under the critical
  // compute time is legitimate noise, not an invalid input.
  const std::vector<Seconds> times{1.0, 2.0};
  const EnergyBound b = energy_saving_bound(times, 2.0 * (1.0 - 1e-12), 0.0,
                                            default_config());
  EXPECT_GT(b.normalized_energy, 0.0);
  EXPECT_LE(b.normalized_energy, 1.0 + 1e-9);
  // The sub-ulp communication deficit clamps to zero instead of going
  // negative and inflating the compute budget.
  EXPECT_LE(b.predicted_time, 2.0 + 1e-9);
}

TEST(EnergyBound, SingleRankTrace) {
  // One rank, some communication: nothing to rebalance, so the only
  // saving is slack outside the critical compute time.
  const std::vector<Seconds> times{2.0};
  const EnergyBound b =
      energy_saving_bound(times, 3.0, 0.0, default_config());
  ASSERT_EQ(b.frequency_ghz.size(), 1u);
  EXPECT_NEAR(b.frequency_ghz[0], 2.3, 1e-3);  // critical rank stays fast
  EXPECT_NEAR(b.predicted_time, 3.0, 1e-12);
  EXPECT_LE(b.normalized_energy, 1.0 + 1e-9);
}

TEST(EnergyBound, FminEqualsFmaxIsExactlyBaseline) {
  // A degenerate one-point frequency range at the reference gear admits
  // no DVFS at all: the bound must reproduce the baseline bit-exactly
  // (same energy terms, same accumulation order), not approximately.
  const std::vector<Seconds> times{1.0, 2.0, 4.0};
  EnergyBoundConfig config = default_config();
  config.fmin_ghz = config.power.reference.frequency_ghz;
  config.fmax_ghz = config.power.reference.frequency_ghz;
  const EnergyBound b = energy_saving_bound(times, 4.0, 0.0, config);
  EXPECT_EQ(b.normalized_energy, 1.0);
  for (const double f : b.frequency_ghz)
    EXPECT_EQ(f, config.power.reference.frequency_ghz);
  EXPECT_NEAR(b.predicted_time, 4.0, 1e-12);
}

TEST(EnergyBound, FmaxBelowReferenceRelaxesBudget) {
  // With fmax below the reference frequency even δ=0 is unattainable:
  // the critical rank stretches past the budget at full admissible
  // speed. The bound relaxes the budget to that floor and reports the
  // honest synchronized finish instead of the impossible (1+δ)·T0.
  const std::vector<Seconds> times{1.0, 4.0};
  EnergyBoundConfig config = default_config();
  config.fmax_ghz = 1.8;
  const EnergyBound b = energy_saving_bound(times, 5.0, 0.0, config);
  const double beta = config.power.beta;
  const double fref = config.power.reference.frequency_ghz;
  const double stretch = beta * (fref / config.fmax_ghz - 1.0) + 1.0;
  EXPECT_GT(b.predicted_time, 5.0);
  EXPECT_NEAR(b.predicted_time, 1.0 + 4.0 * stretch, 1e-9);
  for (const double f : b.frequency_ghz) EXPECT_LE(f, 1.8 + 1e-12);
}

}  // namespace
}  // namespace pals
