// Property: every trace the workload generators produce lints clean.
// The generators feed every figure/table reproduction, so a single
// warning here would poison the whole experiment suite — and the linter
// itself is validated against known-good inputs at scale.
#include <gtest/gtest.h>

#include <string>

#include "lint/lint.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace lint {
namespace {

class SeededWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(SeededWorkloads, GeneratedTraceLintsClean) {
  const auto instance = benchmark_by_name(GetParam(), /*iterations=*/3);
  ASSERT_TRUE(instance.has_value());
  const LintReport report = lint_trace(instance->make());
  EXPECT_TRUE(report.clean()) << GetParam() << ":\n" << to_text(report);
}

std::vector<std::string> all_instance_names() {
  std::vector<std::string> names;
  for (const BenchmarkInstance& b : paper_benchmarks(3))
    names.push_back(b.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Table3, SeededWorkloads,
                         ::testing::ValuesIn(all_instance_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(SeededWorkloads, InlineFamiliesLintClean) {
  for (const std::string family :
       {"cg", "mg", "is", "bt-mz", "specfem3d", "wrf", "pepc"}) {
    WorkloadConfig config;
    config.ranks = 8;
    config.target_lb = 0.85;
    config.iterations = 2;
    const LintReport report = lint_trace(workload_factory(family)(config));
    EXPECT_TRUE(report.clean()) << family << ":\n" << to_text(report);
  }
}

}  // namespace
}  // namespace lint
}  // namespace pals
