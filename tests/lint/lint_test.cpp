// Tests for the static trace verifier (lint/lint.hpp): per-pass
// diagnostics, exhaustive (non-fail-fast) collection, canonical ordering,
// golden text output for the shipped fixtures, and the fail-fast hooks in
// the pipeline and sweep engines.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "core/pipeline.hpp"
#include "power/gearset.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace pals {
namespace lint {
namespace {

std::size_t count_code(const LintReport& report, Code code) {
  std::size_t n = 0;
  for (const Diagnostic& d : report.diagnostics)
    if (d.code == code) ++n;
  return n;
}

const Diagnostic* find_code(const LintReport& report, Code code) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.code == code) return &d;
  return nullptr;
}

/// Two ranks exchanging one rendezvous-sized message cycle: both block in
/// recv before either send executes. Passes Trace::validate() but
/// deadlocks at replay.
Trace cycle_trace() {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).recv(1, 0, 100000).send(1, 0, 100000);
  TraceBuilder(t, 1).compute(1.0).recv(0, 0, 100000).send(0, 0, 100000);
  return t;
}

TEST(Lint, CleanTraceLintsClean) {
  Trace t(2);
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(1.0)
      .isend(1, 7, 1024, 0)
      .recv(1, 8, 2048)
      .wait(0)
      .collective(CollectiveOp::kBarrier, 0)
      .marker(MarkerKind::kIterationEnd, 0);
  TraceBuilder(t, 1)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(1.5)
      .irecv(0, 7, 1024, 3)
      .send(0, 8, 2048)
      .wait(3)
      .collective(CollectiveOp::kBarrier, 0)
      .marker(MarkerKind::kIterationEnd, 0);
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(report.clean()) << to_text(report);
}

TEST(Lint, UnmatchedSendAnchorsRankAndEvent) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).send(1, 0, 100).send(1, 0, 200);
  TraceBuilder(t, 1).compute(1.0).recv(0, 0, 100);
  const LintReport report = lint_trace(t);
  ASSERT_EQ(count_code(report, Code::kUnmatchedSend), 1u) << to_text(report);
  const Diagnostic* d = find_code(report, Code::kUnmatchedSend);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->event_index, 2);
  EXPECT_NE(d->message.find("200 bytes"), std::string::npos) << d->message;
}

TEST(Lint, UnmatchedRecvAnchorsRankAndEvent) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 100).irecv(0, 0, 50, 1).wait(1);
  const LintReport report = lint_trace(t);
  ASSERT_EQ(count_code(report, Code::kUnmatchedRecv), 1u) << to_text(report);
  const Diagnostic* d = find_code(report, Code::kUnmatchedRecv);
  EXPECT_EQ(d->rank, 1);
  EXPECT_EQ(d->event_index, 1);
}

TEST(Lint, MatchedPairWithDifferentSizesWarns) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100);
  TraceBuilder(t, 1).recv(0, 0, 999);
  const LintReport report = lint_trace(t);
  EXPECT_EQ(report.errors, 0u) << to_text(report);
  ASSERT_EQ(count_code(report, Code::kBytesMismatch), 1u);
  const Diagnostic* d = find_code(report, Code::kBytesMismatch);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->rank, 1);  // anchored at the recv
}

TEST(Lint, MatchingFollowsProgramOrderPerChannel) {
  // Two sends on the same channel match the two recvs in order; the
  // third recv is the unmatched one (MPI non-overtaking).
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 10).send(1, 0, 20);
  TraceBuilder(t, 1).recv(0, 0, 10).recv(0, 0, 20).recv(0, 0, 30);
  const LintReport report = lint_trace(t);
  EXPECT_EQ(count_code(report, Code::kBytesMismatch), 0u) << to_text(report);
  const Diagnostic* d = find_code(report, Code::kUnmatchedRecv);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->event_index, 2);
}

TEST(Lint, SelfMessageAndPeerOutOfRangeAreStructuralErrors) {
  Trace t(2);
  TraceBuilder(t, 0).send(0, 0, 10).recv(7, 0, 10);
  TraceBuilder(t, 1).compute(1.0);
  const LintReport report = lint_trace(t);
  EXPECT_EQ(count_code(report, Code::kSelfMessage), 1u) << to_text(report);
  EXPECT_EQ(count_code(report, Code::kPeerOutOfRange), 1u);
  // Structural errors suppress the abstract replay: no deadlock noise.
  EXPECT_EQ(count_code(report, Code::kDeadlock), 0u);
}

TEST(Lint, CollectiveDivergenceReportedPerPosition) {
  Trace t(3);
  TraceBuilder(t, 0)
      .collective(CollectiveOp::kBarrier, 0)
      .collective(CollectiveOp::kBcast, 8, 0);
  TraceBuilder(t, 1)
      .collective(CollectiveOp::kAllreduce, 8)  // kind differs at position 0
      .collective(CollectiveOp::kBcast, 8, 1);  // root differs at position 1
  TraceBuilder(t, 2).collective(CollectiveOp::kBarrier, 0);  // one short
  const LintReport report = lint_trace(t);
  EXPECT_GE(count_code(report, Code::kCollectiveKindMismatch), 1u)
      << to_text(report);
  EXPECT_GE(count_code(report, Code::kCollectiveRootMismatch), 1u);
  EXPECT_EQ(count_code(report, Code::kCollectiveCountMismatch), 1u);
}

TEST(Lint, CollectiveRootOutOfRangeReported) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kBcast, 8, 5);
  TraceBuilder(t, 1).collective(CollectiveOp::kBcast, 8, 5);
  const LintReport report = lint_trace(t);
  EXPECT_EQ(count_code(report, Code::kCollectiveRootOutOfRange), 2u)
      << to_text(report);
}

TEST(Lint, RequestDisciplineViolationsReported) {
  Trace t(2);
  // Rank 0: waits on a request never posted, leaves request 1 open, and
  // issues a no-op waitall afterwards.
  TraceBuilder(t, 0).wait(9).isend(1, 0, 10, 1).waitall().waitall();
  TraceBuilder(t, 1).recv(0, 0, 10).irecv(0, 1, 10, 2).irecv(0, 2, 10, 2);
  const LintReport report = lint_trace(t);
  EXPECT_EQ(count_code(report, Code::kWaitUnknownRequest), 1u)
      << to_text(report);
  EXPECT_EQ(count_code(report, Code::kWaitAllNoPending), 1u);
  EXPECT_EQ(count_code(report, Code::kRequestAlreadyOpen), 1u);
  // Rank 1 leaves both irecvs open (request 2 reused counts once open).
  EXPECT_GE(count_code(report, Code::kRequestNeverWaited), 1u);
}

TEST(Lint, SuspiciousDurationsFlaggedBySeverity) {
  Trace t(1);
  TraceBuilder(t, 0)
      .compute(std::numeric_limits<double>::quiet_NaN())
      .compute(-1.0)
      .compute(0.0)
      .compute(5.0);
  LintOptions options;
  options.huge_duration = 4.0;
  options.deadlock = false;
  const LintReport report = lint_trace(t, options);
  EXPECT_EQ(count_code(report, Code::kNonFiniteDuration), 1u)
      << to_text(report);
  EXPECT_EQ(count_code(report, Code::kNegativeDuration), 1u);
  EXPECT_EQ(count_code(report, Code::kZeroDuration), 1u);
  EXPECT_EQ(count_code(report, Code::kHugeDuration), 1u);
  EXPECT_EQ(find_code(report, Code::kZeroDuration)->severity, Severity::kInfo);
  EXPECT_EQ(find_code(report, Code::kHugeDuration)->severity,
            Severity::kWarning);
}

TEST(Lint, MarkerProblemsReported) {
  Trace t(2);
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .marker(MarkerKind::kIterationEnd, 0)  // empty iteration
      .marker(MarkerKind::kIterationBegin, 1)
      .compute(1.0);  // iteration 1 never ends
  TraceBuilder(t, 1).compute(1.0);
  const LintReport report = lint_trace(t);
  EXPECT_EQ(count_code(report, Code::kEmptyIteration), 1u) << to_text(report);
  EXPECT_EQ(count_code(report, Code::kUnbalancedMarkers), 1u);
}

TEST(Lint, EmptyRankAndEmptyTraceReported) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0);
  const LintReport with_empty_rank = lint_trace(t);
  EXPECT_EQ(count_code(with_empty_rank, Code::kEmptyRank), 1u)
      << to_text(with_empty_rank);

  const LintReport empty = lint_trace(Trace{});
  EXPECT_EQ(count_code(empty, Code::kEmptyTrace), 1u) << to_text(empty);
  EXPECT_TRUE(empty.has_errors());
}

TEST(Lint, CollectsEverythingInsteadOfFailingFast) {
  // One trace, four independent problems; Trace::validate() would throw
  // on the first, the linter reports all of them.
  Trace t(2);
  TraceBuilder(t, 0)
      .compute(-1.0)
      .send(1, 0, 100)
      .wait(5)
      .collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1).compute(1.0);
  const LintReport report = lint_trace(t);
  EXPECT_THROW(t.validate(), Error);
  EXPECT_GE(report.errors, 4u) << to_text(report);
  EXPECT_EQ(count_code(report, Code::kNegativeDuration), 1u);
  EXPECT_EQ(count_code(report, Code::kUnmatchedSend), 1u);
  EXPECT_EQ(count_code(report, Code::kWaitUnknownRequest), 1u);
  EXPECT_EQ(count_code(report, Code::kCollectiveCountMismatch), 1u);
}

TEST(Lint, DiagnosticsInCanonicalOrder) {
  Trace t(3);
  TraceBuilder(t, 2).compute(-1.0).compute(-2.0);
  TraceBuilder(t, 0).compute(-3.0);
  TraceBuilder(t, 1).compute(1.0);
  LintOptions options;
  options.deadlock = false;
  const LintReport report = lint_trace(t, options);
  ASSERT_EQ(report.diagnostics.size(), 3u) << to_text(report);
  EXPECT_EQ(report.diagnostics[0].rank, 0);
  EXPECT_EQ(report.diagnostics[1].rank, 2);
  EXPECT_EQ(report.diagnostics[1].event_index, 0);
  EXPECT_EQ(report.diagnostics[2].rank, 2);
  EXPECT_EQ(report.diagnostics[2].event_index, 1);
}

TEST(Lint, MaxDiagnosticsTruncatesButTotalsCountEverything) {
  Trace t(1);
  TraceBuilder(t, 0).compute(-1.0).compute(-2.0).compute(-3.0);
  LintOptions options;
  options.max_diagnostics = 1;
  options.deadlock = false;
  const LintReport report = lint_trace(t, options);
  EXPECT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.dropped, 2u);
  EXPECT_EQ(report.errors, 3u);
  EXPECT_NE(report.summary().find("not shown"), std::string::npos)
      << report.summary();
}

TEST(Lint, DeadlockCycleDiagnosedWithEventIndices) {
  const Trace t = cycle_trace();
  const LintReport report = lint_trace(t);
  // One blocked-rank diagnostic per rank plus the trace-level cycle.
  EXPECT_EQ(count_code(report, Code::kDeadlock), 3u) << to_text(report);
  const std::string text = to_text(report);
  EXPECT_NE(text.find("rank 0 event 1"), std::string::npos) << text;
  EXPECT_NE(text.find("rank 1 event 1"), std::string::npos) << text;
  EXPECT_NE(text.find("dependency cycle: rank 0 -> rank 1 -> rank 0"),
            std::string::npos)
      << text;
}

TEST(Lint, EagerThresholdControlsCrossedSendDeadlock) {
  // Crossed blocking sends: rendezvous semantics deadlock, eager does not
  // (the sender buffers and proceeds to its recv) — exactly replay's rule.
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 500).recv(1, 1, 500);
  TraceBuilder(t, 1).send(0, 1, 500).recv(0, 0, 500);
  EXPECT_TRUE(analyze_deadlock(t, /*eager_threshold=*/100).deadlocked);
  EXPECT_FALSE(analyze_deadlock(t, /*eager_threshold=*/1024).deadlocked);

  LintOptions rendezvous;
  rendezvous.eager_threshold = 100;
  EXPECT_GE(count_code(lint_trace(t, rendezvous), Code::kDeadlock), 1u);
  LintOptions eager;
  eager.eager_threshold = 1024;
  EXPECT_TRUE(lint_trace(t, eager).clean());
}

TEST(Lint, StarvationOnFinishedRankReported) {
  Trace t(2);
  TraceBuilder(t, 0).recv(1, 0, 10);
  TraceBuilder(t, 1).compute(1.0);
  const DeadlockInfo info = analyze_deadlock(t, 32768);
  ASSERT_TRUE(info.deadlocked);
  ASSERT_EQ(info.blocked.size(), 1u);
  EXPECT_EQ(info.blocked[0].rank, 0);
  EXPECT_TRUE(info.cycle.empty());
  EXPECT_NE(info.describe().find("starvation"), std::string::npos)
      << info.describe();
}

TEST(Lint, AnalyzeDeadlockPassesCleanTraces) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 0, 100000).recv(1, 0, 100000);
  TraceBuilder(t, 1).recv(0, 0, 100000).send(0, 0, 100000);
  const DeadlockInfo info = analyze_deadlock(t, 32768);
  EXPECT_FALSE(info.deadlocked);
  EXPECT_TRUE(info.blocked.empty());
  EXPECT_EQ(info.describe(), "");
}

TEST(Lint, EnforceLintThrowsFullReportWithContext) {
  try {
    enforce_lint(cycle_trace(), LintOptions{}, "CG-32");
    FAIL() << "expected lint error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace lint failed for CG-32"), std::string::npos)
        << what;
    EXPECT_NE(what.find("[deadlock]"), std::string::npos) << what;
  }
  // Warnings alone do not trip the fail-fast hook.
  Trace warn(2);
  TraceBuilder(warn, 0).send(1, 0, 100);
  TraceBuilder(warn, 1).recv(0, 0, 999);
  EXPECT_NO_THROW(enforce_lint(warn, LintOptions{}, "warn-only"));
}

TEST(Lint, CsvOutputIsStructured) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).send(1, 0, 200);
  TraceBuilder(t, 1).compute(1.0);
  const std::string csv = to_csv(lint_trace(t));
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "severity,code,rank,event,message");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("error,unmatched-send,0,1,"), std::string::npos)
      << line;
}

// -- Golden fixtures ------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class LintGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGolden, TextOutputMatchesGolden) {
  const std::string root = std::string(PALS_SOURCE_DIR) + "/tests/lint/";
  const Trace trace =
      read_trace_file(root + "fixtures/" + GetParam() + ".palst",
                      /*validate=*/false);
  const std::string expected = read_file(root + "golden/" + GetParam() +
                                         ".txt");
  EXPECT_EQ(to_text(lint_trace(trace)), expected);
}

INSTANTIATE_TEST_SUITE_P(Fixtures, LintGolden,
                         ::testing::Values("clean", "unmatched_send",
                                           "collective_subset", "cycle"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

// -- Fail-fast hooks ------------------------------------------------------

TEST(LintHooks, PipelineRejectsDeadlockBeforeReplayStarts) {
  const Trace t = cycle_trace();
  PipelineConfig config = default_pipeline_config(paper_uniform(6));

  // Without the hook the deadlock is only caught mid-replay.
  try {
    run_pipeline(t, config);
    FAIL() << "expected replay deadlock";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("replay deadlock"),
              std::string::npos)
        << e.what();
  }

  // With it, the linter rejects the trace up front: the error is the
  // static diagnosis, not the runtime replay throw.
  config.lint = true;
  try {
    run_pipeline(t, config);
    FAIL() << "expected lint error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace lint failed"), std::string::npos) << what;
    EXPECT_NE(what.find("[deadlock]"), std::string::npos) << what;
    EXPECT_EQ(what.find("replay deadlock"), std::string::npos) << what;
  }
}

TEST(LintHooks, SweepRejectsPoisonedWorkloadWithItsName) {
  // Pre-poison the shared trace cache so the registry key "CG-32" resolves
  // to a deadlocking trace, then sweep it with the lint hook armed.
  TraceCache cache;
  cache.get("CG-32", [] { return cycle_trace(); });
  SweepOptions options;
  options.jobs = 1;
  options.base.lint = true;
  options.trace_cache = &cache;
  try {
    Scenario scenario;
    scenario.workload = "CG-32";
    run_sweep({scenario}, options);
    FAIL() << "expected lint error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace lint failed for CG-32"), std::string::npos)
        << what;
    EXPECT_NE(what.find("[deadlock]"), std::string::npos) << what;
  }
}

TEST(LintHooks, ReplayDeadlockMessageCarriesLinterCycle) {
  // The replay engine itself now diagnoses its deadlock throw with the
  // linter's wait-for cycle instead of a bare blocked-rank list.
  try {
    run_pipeline(cycle_trace(), default_pipeline_config(paper_uniform(6)));
    FAIL() << "expected replay deadlock";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dependency cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("stuck at event"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace lint
}  // namespace pals
