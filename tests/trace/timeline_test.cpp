#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace pals {
namespace {

Timeline small_timeline() {
  Timeline tl(2);
  tl.append(0, {0.0, 1.0, RankState::kCompute, 0});
  tl.append(0, {1.0, 1.5, RankState::kRecv, -1});
  tl.append(0, {1.5, 2.0, RankState::kCompute, 1});
  tl.append(1, {0.0, 2.5, RankState::kCompute, -1});
  return tl;
}

TEST(Timeline, AppendEnforcesContiguity) {
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1});
  EXPECT_THROW(tl.append(0, {2.0, 3.0, RankState::kCompute, -1}), Error);
  EXPECT_THROW(tl.append(0, {0.5, 2.0, RankState::kCompute, -1}), Error);
}

TEST(Timeline, AppendRejectsNegativeSpan) {
  Timeline tl(1);
  EXPECT_THROW(tl.append(0, {1.0, 0.5, RankState::kCompute, -1}), Error);
}

TEST(Timeline, AppendRejectsNonFiniteBounds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Timeline tl(1);
  EXPECT_THROW(tl.append(0, {nan, 1.0, RankState::kCompute, -1}), Error);
  EXPECT_THROW(tl.append(0, {0.0, nan, RankState::kCompute, -1}), Error);
  EXPECT_THROW(tl.append(0, {0.0, inf, RankState::kCompute, -1}), Error);
  EXPECT_THROW(tl.append(0, {-inf, 1.0, RankState::kCompute, -1}), Error);
  // NaN compares false against everything, so without an explicit check
  // these would sail past the ordering assertions and poison makespan().
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1});
  EXPECT_DOUBLE_EQ(tl.makespan(), 1.0);
}

TEST(Timeline, ZeroWidthIntervalsAreDropped) {
  Timeline tl(1);
  tl.append(0, {0.0, 0.0, RankState::kWait, -1});
  EXPECT_TRUE(tl.intervals(0).empty());
}

TEST(Timeline, MakespanIsLongestLane) {
  EXPECT_DOUBLE_EQ(small_timeline().makespan(), 2.5);
}

TEST(Timeline, StateTimeAggregates) {
  const Timeline tl = small_timeline();
  EXPECT_DOUBLE_EQ(tl.compute_time(0), 1.5);
  EXPECT_DOUBLE_EQ(tl.state_time(0, RankState::kRecv), 0.5);
  EXPECT_DOUBLE_EQ(tl.communication_time(0), 0.5);
  EXPECT_DOUBLE_EQ(tl.compute_time(1), 2.5);
}

TEST(Timeline, PhaseScopedComputeTime) {
  const Timeline tl = small_timeline();
  EXPECT_DOUBLE_EQ(tl.compute_time(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tl.compute_time(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(tl.compute_time(0, 9), 0.0);
}

TEST(Timeline, ComputeTimesVector) {
  const auto times = small_timeline().compute_times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(Timeline, PadToMakespanFillsIdle) {
  Timeline tl = small_timeline();
  tl.pad_to_makespan();
  EXPECT_DOUBLE_EQ(tl.state_time(0, RankState::kIdle), 0.5);
  EXPECT_DOUBLE_EQ(tl.state_time(1, RankState::kIdle), 0.0);
  tl.validate();
}

TEST(Timeline, MergeAdjacentCoalescesSameState) {
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, 0});
  tl.append(0, {1.0, 2.0, RankState::kCompute, 0});
  tl.append(0, {2.0, 3.0, RankState::kCompute, 1});  // different phase
  tl.merge_adjacent();
  ASSERT_EQ(tl.intervals(0).size(), 2u);
  EXPECT_DOUBLE_EQ(tl.intervals(0)[0].end, 2.0);
}

TEST(Timeline, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(small_timeline().validate());
}

TEST(Timeline, IoRoundTrip) {
  Timeline tl = small_timeline();
  tl.pad_to_makespan();
  std::stringstream buffer;
  write_timeline(tl, buffer);
  const Timeline restored = read_timeline(buffer);
  EXPECT_EQ(restored, tl);
}

TEST(Timeline, IoRejectsBadMagic) {
  std::stringstream in("nope\nranks 1\n");
  EXPECT_THROW(read_timeline(in), Error);
}

TEST(Timeline, IoRejectsTruncated) {
  std::stringstream in("# pals-timeline v1\n");
  EXPECT_THROW(read_timeline(in), Error);
}

TEST(Timeline, IterationLabelledQueries) {
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, 0});
  tl.append(0, {1.0, 1.5, RankState::kWait, -1, 0});
  tl.append(0, {1.5, 3.5, RankState::kCompute, -1, 1});
  EXPECT_DOUBLE_EQ(tl.iteration_compute_time(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tl.iteration_compute_time(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(tl.iteration_compute_time(0, 5), 0.0);
  EXPECT_EQ(tl.max_iteration(), 1);
}

TEST(Timeline, MaxIterationOfUnmarkedIsMinusOne) {
  EXPECT_EQ(small_timeline().max_iteration(), -1);
}

TEST(Timeline, MergeKeepsIterationBoundaries) {
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, 0});
  tl.append(0, {1.0, 2.0, RankState::kCompute, -1, 1});  // same state
  tl.merge_adjacent();
  ASSERT_EQ(tl.intervals(0).size(), 2u);  // different iteration: no merge
}

TEST(Timeline, IoRoundTripsIterationLabels) {
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, 2, 3});
  tl.append(0, {1.0, 2.0, RankState::kWait, -1, 3});
  tl.append(0, {2.0, 3.0, RankState::kIdle, -1, -1});
  std::stringstream buffer;
  write_timeline(tl, buffer);
  const Timeline restored = read_timeline(buffer);
  EXPECT_EQ(restored, tl);
}

TEST(RankStateNames, RoundTrip) {
  for (RankState s : {RankState::kCompute, RankState::kSend, RankState::kRecv,
                      RankState::kWait, RankState::kCollective,
                      RankState::kIdle}) {
    EXPECT_EQ(parse_rank_state(to_string(s)), s);
  }
  EXPECT_THROW(parse_rank_state("busy"), Error);
}

TEST(RankStateNames, CommunicationClassification) {
  EXPECT_FALSE(is_communication_state(RankState::kCompute));
  EXPECT_TRUE(is_communication_state(RankState::kSend));
  EXPECT_TRUE(is_communication_state(RankState::kIdle));
}

}  // namespace
}  // namespace pals
