// Robustness of the text parsers: random garbage and random mutations of
// valid inputs must either parse cleanly or throw pals::Error — never
// crash, hang, or corrupt state.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "paraver/prv.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "trace/timeline.hpp"
#include "util/error.hpp"
#include "util/kvconfig.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

std::string random_garbage(Rng& rng, std::size_t length) {
  static const char kAlphabet[] =
      "0123456789 :=#.-\nabcdefghijklmnop\tqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    out += kAlphabet[rng.uniform_int(0, sizeof(kAlphabet) - 2)];
  return out;
}

std::string valid_trace_text() {
  Trace t(2);
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(0.5)
      .isend(1, 3, 4096, 0)
      .wait(0)
      .collective(CollectiveOp::kAllreduce, 8)
      .marker(MarkerKind::kIterationEnd, 0);
  TraceBuilder(t, 1)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(1.0)
      .recv(0, 3, 4096)
      .collective(CollectiveOp::kAllreduce, 8)
      .marker(MarkerKind::kIterationEnd, 0);
  std::stringstream buffer;
  write_trace(t, buffer);
  return buffer.str();
}

std::string mutate(const std::string& text, Rng& rng) {
  std::string out = text;
  const std::size_t edits = rng.uniform_int(1, 4);
  for (std::size_t e = 0; e < edits && !out.empty(); ++e) {
    const std::size_t pos = rng.uniform_int(0, out.size() - 1);
    switch (rng.uniform_int(0, 2)) {
      case 0:  // flip a character
        out[pos] = static_cast<char>('0' + rng.uniform_int(0, 9));
        break;
      case 1:  // delete a character
        out.erase(pos, 1);
        break;
      default:  // duplicate a character
        out.insert(pos, 1, out[pos]);
        break;
    }
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, TraceParserNeverCrashesOnGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::stringstream in(random_garbage(rng, rng.uniform_int(1, 600)));
    try {
      const Trace t = read_trace(in);
      EXPECT_NO_THROW(t.validate());  // whatever parsed must be coherent
    } catch (const Error&) {
      // expected for malformed input
    }
  }
}

TEST_P(ParserFuzz, TraceParserSurvivesMutatedValidInput) {
  Rng rng(GetParam() + 1000);
  const std::string valid = valid_trace_text();
  for (int i = 0; i < 100; ++i) {
    std::stringstream in(mutate(valid, rng));
    try {
      const Trace t = read_trace(in);
      EXPECT_NO_THROW(t.validate());
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, TimelineParserNeverCrashes) {
  Rng rng(GetParam() + 2000);
  const std::string header = "# pals-timeline v1\nranks 2\n";
  for (int i = 0; i < 50; ++i) {
    std::stringstream in(header + random_garbage(rng, 200));
    try {
      const Timeline tl = read_timeline(in);
      EXPECT_NO_THROW(tl.validate());
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, PrvParserNeverCrashes) {
  Rng rng(GetParam() + 3000);
  const std::string header = "#Paraver (pals):1000000:4\n";
  for (int i = 0; i < 50; ++i) {
    std::stringstream in(header + random_garbage(rng, 300));
    try {
      const PrvTrace prv = read_prv(in);
      EXPECT_NO_THROW(prv.validate());
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, BinaryTraceReaderNeverCrashesOnGarbage) {
  // Pure random bytes — with and without a valid magic prefix — must
  // throw or decode to a coherent trace, never crash or hang.
  Rng rng(GetParam() + 5000);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> garbage(rng.uniform_int(0, 512));
    for (auto& byte : garbage)
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (i % 2 == 0 && garbage.size() >= 6) {
      const char magic[] = {'P', 'A', 'L', 'S', 'B', '1'};
      for (std::size_t b = 0; b < 6; ++b)
        garbage[b] = static_cast<std::uint8_t>(magic[b]);
    }
    try {
      const Trace t = read_trace_binary(garbage);
      EXPECT_NO_THROW(t.validate());
    } catch (const Error&) {
      // expected for malformed input
    }
  }
}

TEST_P(ParserFuzz, KvConfigParserNeverCrashes) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 50; ++i) {
    std::stringstream in(random_garbage(rng, 200));
    try {
      const KvConfig config = KvConfig::parse(in);
      for (const std::string& key : config.keys())
        EXPECT_NO_THROW(config.get_string(key));
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace pals
