#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace pals {
namespace {

Trace sample_trace() {
  Trace t(3);
  t.set_name("sample");
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(0.125, 1)
      .isend(1, 5, 4096, 0)
      .wait(0)
      .collective(CollectiveOp::kAllreduce, 8)
      .marker(MarkerKind::kIterationEnd, 0);
  TraceBuilder(t, 1)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(0.25)
      .irecv(0, 5, 4096, 0)
      .wait(0)
      .collective(CollectiveOp::kAllreduce, 8)
      .marker(MarkerKind::kIterationEnd, 0);
  TraceBuilder(t, 2)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(0.5)
      .collective(CollectiveOp::kAllreduce, 8)
      .marker(MarkerKind::kIterationEnd, 0);
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  write_trace(original, buffer);
  const Trace restored = read_trace(buffer);
  EXPECT_EQ(restored, original);
  EXPECT_EQ(restored.name(), "sample");
}

TEST(TraceIo, RoundTripPreservesExactDurations) {
  Trace t(1);
  TraceBuilder(t, 0).compute(0.1 + 0.2);  // a value with FP noise
  std::stringstream buffer;
  write_trace(t, buffer);
  const Trace restored = read_trace(buffer);
  const auto* c = std::get_if<ComputeEvent>(&restored.events(0)[0]);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->duration, 0.1 + 0.2);  // bit-exact via max precision
}

TEST(TraceIo, HeaderContainsMagicAndRanks) {
  std::stringstream buffer;
  write_trace(sample_trace(), buffer);
  const std::string text = buffer.str();
  EXPECT_EQ(text.rfind("# pals-trace v1", 0), 0u);
  EXPECT_NE(text.find("ranks 3"), std::string::npos);
  EXPECT_NE(text.find("name sample"), std::string::npos);
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  std::stringstream in(
      "# pals-trace v1\n\n# a comment\nranks 1\n\n0 compute 1.0\n");
  const Trace t = read_trace(in);
  EXPECT_EQ(t.n_ranks(), 1);
  EXPECT_DOUBLE_EQ(t.computation_time(0), 1.0);
}

TEST(TraceIo, RejectsMissingMagic) {
  std::stringstream in("ranks 1\n0 compute 1.0\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, RejectsEventBeforeRanks) {
  std::stringstream in("# pals-trace v1\n0 compute 1.0\nranks 1\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, RejectsRankOutOfRange) {
  std::stringstream in("# pals-trace v1\nranks 2\n5 compute 1.0\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, RejectsUnknownKeyword) {
  std::stringstream in("# pals-trace v1\nranks 1\n0 explode 1.0\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream in("# pals-trace v1\nranks 2\n0 send 1 7\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, RejectsMalformedNumbers) {
  std::stringstream in("# pals-trace v1\nranks 1\n0 compute fast\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  std::stringstream in("# pals-trace v1\nranks 1\n0 compute 1.0\n0 bogus\n");
  try {
    read_trace(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(TraceIo, ValidationRunsOnRead) {
  // Structurally parseable but semantically invalid (leaked request).
  std::stringstream in("# pals-trace v1\nranks 2\n0 isend 1 0 8 0\n");
  EXPECT_THROW(read_trace(in), Error);
}

TEST(TraceIo, ParsesPhaseAnnotation) {
  std::stringstream in("# pals-trace v1\nranks 1\n0 compute 2.0 phase=3\n");
  const Trace t = read_trace(in);
  const auto* c = std::get_if<ComputeEvent>(&t.events(0)[0]);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->phase, 3);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pals_io_test.palst";
  const Trace original = sample_trace();
  write_trace_file(original, path);
  const Trace restored = read_trace_file(path);
  EXPECT_EQ(restored, original);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/x.palst"), Error);
}

}  // namespace
}  // namespace pals
