#include "trace/transform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

Trace base_trace() {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).send(1, 0, 10).compute(2.0, 1);
  TraceBuilder(t, 1).recv(0, 0, 10).compute(4.0, 0);
  return t;
}

TEST(ScaleCompute, ScalesPerRank) {
  const std::vector<double> factors{2.0, 0.5};
  const Trace scaled = scale_compute(base_trace(), factors);
  EXPECT_DOUBLE_EQ(scaled.computation_time(0), 6.0);  // (1 + 2) * 2
  EXPECT_DOUBLE_EQ(scaled.computation_time(1), 2.0);  // 4 * 0.5
}

TEST(ScaleCompute, LeavesCommunicationUntouched) {
  const std::vector<double> factors{3.0, 3.0};
  const Trace scaled = scale_compute(base_trace(), factors);
  const auto* send = std::get_if<SendEvent>(&scaled.events(0)[1]);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->bytes, 10u);
}

TEST(ScaleCompute, IdentityFactorIsNoOp) {
  const std::vector<double> factors{1.0, 1.0};
  EXPECT_EQ(scale_compute(base_trace(), factors), base_trace());
}

TEST(ScaleCompute, RejectsWrongFactorCount) {
  const std::vector<double> factors{1.0};
  EXPECT_THROW(scale_compute(base_trace(), factors), Error);
}

TEST(ScaleCompute, RejectsNonPositiveFactor) {
  EXPECT_THROW(scale_compute(base_trace(), std::vector<double>{1.0, 0.0}),
               Error);
  EXPECT_THROW(scale_compute(base_trace(), std::vector<double>{-1.0, 1.0}),
               Error);
}

TEST(ScaleComputeUniform, AppliesEverywhere) {
  const Trace scaled = scale_compute_uniform(base_trace(), 10.0);
  EXPECT_DOUBLE_EQ(scaled.computation_time(0), 30.0);
  EXPECT_DOUBLE_EQ(scaled.computation_time(1), 40.0);
}

TEST(ScaleComputePerPhase, UsesPhaseFactors) {
  // Rank 0: unphased burst 1.0 uses default; phase-1 burst 2.0 uses [1].
  // Rank 1: phase-0 burst 4.0 uses [0].
  const std::vector<std::vector<double>> factors{{1.0, 3.0}, {0.25, 1.0}};
  const std::vector<double> defaults{5.0, 7.0};
  const Trace scaled =
      scale_compute_per_phase(base_trace(), factors, defaults);
  EXPECT_DOUBLE_EQ(scaled.computation_time(0), 1.0 * 5.0 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(scaled.computation_time(1), 4.0 * 0.25);
}

TEST(ScaleComputePerPhase, RejectsMissingPhaseFactor) {
  const std::vector<std::vector<double>> factors{{1.0}, {1.0}};  // no phase 1
  const std::vector<double> defaults{1.0, 1.0};
  EXPECT_THROW(scale_compute_per_phase(base_trace(), factors, defaults),
               Error);
}

TEST(ScaleComputePerPhase, RejectsRankCountMismatch) {
  const std::vector<std::vector<double>> factors{{1.0, 1.0}};
  const std::vector<double> defaults{1.0, 1.0};
  EXPECT_THROW(scale_compute_per_phase(base_trace(), factors, defaults),
               Error);
}

Trace marked_trace(int iterations) {
  Trace t(2);
  for (Rank r = 0; r < 2; ++r) {
    TraceBuilder b(t, r);
    b.compute(0.5);  // prologue outside any iteration
    for (int i = 0; i < iterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute((r + 1.0) * (i + 1.0))
          .collective(CollectiveOp::kBarrier, 0)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

TEST(ScaleComputePerIteration, ScalesOnlyInsideIterations) {
  const Trace t = marked_trace(2);
  const std::vector<std::vector<double>> factors{{2.0, 2.0}, {3.0, 3.0}};
  const Trace scaled = scale_compute_per_iteration(t, factors);
  // Rank 0: prologue 0.5 untouched; iter 0: 1*2; iter 1: 2*3.
  EXPECT_DOUBLE_EQ(scaled.computation_time(0), 0.5 + 2.0 + 6.0);
  // Rank 1: prologue 0.5; iter 0: 2*2; iter 1: 4*3.
  EXPECT_DOUBLE_EQ(scaled.computation_time(1), 0.5 + 4.0 + 12.0);
}

TEST(ScaleComputePerIteration, PerRankFactorsApply) {
  const Trace t = marked_trace(1);
  const std::vector<std::vector<double>> factors{{10.0, 0.5}};
  const Trace scaled = scale_compute_per_iteration(t, factors);
  EXPECT_DOUBLE_EQ(scaled.computation_time(0), 0.5 + 10.0);
  EXPECT_DOUBLE_EQ(scaled.computation_time(1), 0.5 + 1.0);
}

TEST(ScaleComputePerIteration, RejectsUnmarkedTrace) {
  EXPECT_THROW(scale_compute_per_iteration(base_trace(), {{1.0, 1.0}}),
               Error);
}

TEST(ScaleComputePerIteration, RejectsMissingIterationFactors) {
  const Trace t = marked_trace(3);
  EXPECT_THROW(scale_compute_per_iteration(t, {{1.0, 1.0}}), Error);
}

TEST(AddIterationOverhead, InsertsBurstsAfterBeginMarkers) {
  const Trace t = marked_trace(2);
  const std::vector<std::vector<Seconds>> overhead{{0.1, 0.0}, {0.0, 0.2}};
  const Trace out = add_iteration_overhead(t, overhead);
  EXPECT_DOUBLE_EQ(out.computation_time(0),
                   t.computation_time(0) + 0.1);
  EXPECT_DOUBLE_EQ(out.computation_time(1),
                   t.computation_time(1) + 0.2);
  // The burst lands inside the right iteration.
  const auto per_iteration = iteration_computation_times(out);
  EXPECT_DOUBLE_EQ(per_iteration[0][0], 1.0 + 0.1);
  EXPECT_DOUBLE_EQ(per_iteration[1][1], 4.0 + 0.2);
}

TEST(AddIterationOverhead, ZeroOverheadIsIdentity) {
  const Trace t = marked_trace(2);
  const std::vector<std::vector<Seconds>> overhead{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_EQ(add_iteration_overhead(t, overhead), t);
}

TEST(AddIterationOverhead, RejectsBadInput) {
  EXPECT_THROW(add_iteration_overhead(base_trace(), {{0.0, 0.0}}), Error);
  const Trace t = marked_trace(2);
  EXPECT_THROW(add_iteration_overhead(t, {{0.0, 0.0}}), Error);  // 1 of 2
  EXPECT_THROW(add_iteration_overhead(t, {{-0.1, 0.0}, {0.0, 0.0}}), Error);
}

TEST(IterationComputationTimes, PerIterationPerRank) {
  const Trace t = marked_trace(3);
  const auto times = iteration_computation_times(t);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0][0], 1.0);
  EXPECT_DOUBLE_EQ(times[0][1], 2.0);
  EXPECT_DOUBLE_EQ(times[2][0], 3.0);
  EXPECT_DOUBLE_EQ(times[2][1], 6.0);
}

TEST(IterationComputationTimes, IgnoresPrologue) {
  const Trace t = marked_trace(1);
  const auto times = iteration_computation_times(t);
  EXPECT_DOUBLE_EQ(times[0][0], 1.0);  // prologue 0.5 excluded
}

TEST(IterationComputationTimes, RejectsUnmarkedTrace) {
  EXPECT_THROW(iteration_computation_times(base_trace()), Error);
}

TEST(ScaleCompute, ComposesMultiplicatively) {
  const std::vector<double> f1{2.0, 3.0};
  const std::vector<double> f2{0.5, 1.0 / 3.0};
  const Trace round_trip =
      scale_compute(scale_compute(base_trace(), f1), f2);
  EXPECT_NEAR(round_trip.computation_time(0),
              base_trace().computation_time(0), 1e-12);
  EXPECT_NEAR(round_trip.computation_time(1),
              base_trace().computation_time(1), 1e-12);
}

}  // namespace
}  // namespace pals
