#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

Trace two_rank_ping() {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).send(1, 0, 100).recv(1, 1, 100);
  TraceBuilder(t, 1).compute(2.0).recv(0, 0, 100).send(0, 1, 100);
  return t;
}

TEST(Trace, ConstructionAndRankCount) {
  const Trace t(4);
  EXPECT_EQ(t.n_ranks(), 4);
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_THROW(Trace(0), Error);
}

TEST(Trace, AppendAndQueryEvents) {
  Trace t = two_rank_ping();
  EXPECT_EQ(t.events(0).size(), 3u);
  EXPECT_EQ(t.events(1).size(), 3u);
  EXPECT_EQ(t.total_events(), 6u);
  EXPECT_THROW(t.events(2), Error);
  EXPECT_THROW(t.events(-1), Error);
}

TEST(Trace, ComputationTimesSumBursts) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0).compute(0.5);
  TraceBuilder(t, 1).compute(2.0);
  EXPECT_DOUBLE_EQ(t.computation_time(0), 1.5);
  EXPECT_DOUBLE_EQ(t.computation_time(1), 2.0);
  const auto all = t.computation_times();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 1.5);
}

TEST(Trace, PhaseScopedComputationTime) {
  Trace t(1);
  TraceBuilder(t, 0).compute(1.0, 0).compute(2.0, 1).compute(4.0, 0).compute(
      8.0);
  EXPECT_DOUBLE_EQ(t.computation_time(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.computation_time(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.computation_time(0, 7), 0.0);
  EXPECT_DOUBLE_EQ(t.computation_time(0), 15.0);
}

TEST(Trace, PhasesListsDistinctLabels) {
  Trace t(2);
  TraceBuilder(t, 0).compute(1.0, 2).compute(1.0, 0);
  TraceBuilder(t, 1).compute(1.0, 2);
  const auto phases = t.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0], 0);
  EXPECT_EQ(phases[1], 2);
}

TEST(Trace, IterationCountFromMarkers) {
  Trace t(1);
  TraceBuilder b(t, 0);
  for (int i = 0; i < 3; ++i) {
    b.marker(MarkerKind::kIterationBegin, i).compute(1.0).marker(
        MarkerKind::kIterationEnd, i);
  }
  EXPECT_EQ(t.iteration_count(), 3u);
}

TEST(TraceValidate, AcceptsWellFormed) {
  EXPECT_NO_THROW(two_rank_ping().validate());
}

TEST(TraceValidate, RejectsPeerOutOfRange) {
  Trace t(2);
  TraceBuilder(t, 0).send(5, 0, 10);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsSelfMessage) {
  Trace t(2);
  TraceBuilder(t, 0).send(0, 0, 10);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsDuplicateOpenRequest) {
  Trace t(2);
  TraceBuilder(t, 0).isend(1, 0, 10, 0).isend(1, 0, 10, 0);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsWaitOnUnknownRequest) {
  Trace t(2);
  TraceBuilder(t, 0).wait(3);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsLeakedRequest) {
  Trace t(2);
  TraceBuilder(t, 0).isend(1, 0, 10, 0);  // never waited
  TraceBuilder(t, 1).recv(0, 0, 10);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, AllowsRequestReuseAfterWait) {
  Trace t(2);
  TraceBuilder(t, 0)
      .isend(1, 0, 10, 0)
      .wait(0)
      .isend(1, 0, 10, 0)
      .wait(0);
  TraceBuilder(t, 1).recv(0, 0, 10).recv(0, 0, 10);
  EXPECT_NO_THROW(t.validate());
}

TEST(TraceValidate, WaitallClosesAllRequests) {
  Trace t(2);
  TraceBuilder(t, 0).isend(1, 0, 10, 0).irecv(1, 1, 10, 1).waitall();
  TraceBuilder(t, 1).recv(0, 0, 10).send(0, 1, 10);
  EXPECT_NO_THROW(t.validate());
}

TEST(TraceValidate, RejectsNegativeComputeDuration) {
  Trace t(1);
  t.append(0, ComputeEvent{-1.0, -1});
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsMismatchedCollectiveSequences) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kAllreduce, 8);
  TraceBuilder(t, 1).collective(CollectiveOp::kBarrier, 0);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsMissingCollective) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kAllreduce, 8);
  TraceBuilder(t, 1).compute(1.0);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsExtraCollective) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kBarrier, 0);
  TraceBuilder(t, 1)
      .collective(CollectiveOp::kBarrier, 0)
      .collective(CollectiveOp::kBarrier, 0);
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceValidate, RejectsCollectiveRootOutOfRange) {
  Trace t(2);
  TraceBuilder(t, 0).collective(CollectiveOp::kBcast, 8, 7);
  TraceBuilder(t, 1).collective(CollectiveOp::kBcast, 8, 7);
  EXPECT_THROW(t.validate(), Error);
}

TEST(EventToString, RendersAllKinds) {
  EXPECT_EQ(to_string(Event{ComputeEvent{1.5, -1}}), "compute 1.5");
  EXPECT_EQ(to_string(Event{ComputeEvent{1.5, 2}}), "compute 1.5 phase=2");
  EXPECT_EQ(to_string(Event{SendEvent{1, 7, 64}}), "send 1 7 64");
  EXPECT_EQ(to_string(Event{IrecvEvent{0, 3, 8, 5}}), "irecv 0 3 8 5");
  EXPECT_EQ(to_string(Event{WaitEvent{5}}), "wait 5");
  EXPECT_EQ(to_string(Event{WaitAllEvent{}}), "waitall");
  EXPECT_EQ(to_string(Event{CollectiveEvent{CollectiveOp::kAllreduce, 8, 0}}),
            "coll allreduce 8 0");
  EXPECT_EQ(to_string(Event{MarkerEvent{MarkerKind::kIterationBegin, 3}}),
            "marker iter_begin 3");
}

TEST(EventClassification, CommunicationDetection) {
  EXPECT_FALSE(is_communication(Event{ComputeEvent{}}));
  EXPECT_FALSE(is_communication(Event{MarkerEvent{}}));
  EXPECT_TRUE(is_communication(Event{SendEvent{}}));
  EXPECT_TRUE(is_communication(Event{WaitAllEvent{}}));
  EXPECT_TRUE(is_communication(Event{CollectiveEvent{}}));
}

TEST(CollectiveNames, RoundTrip) {
  for (CollectiveOp op :
       {CollectiveOp::kBarrier, CollectiveOp::kBcast, CollectiveOp::kReduce,
        CollectiveOp::kAllreduce, CollectiveOp::kGather,
        CollectiveOp::kAllgather, CollectiveOp::kScatter,
        CollectiveOp::kAlltoall, CollectiveOp::kReduceScatter}) {
    EXPECT_EQ(parse_collective(to_string(op)), op);
  }
  EXPECT_THROW(parse_collective("alltoallv"), Error);
}

TEST(MarkerNames, RoundTrip) {
  for (MarkerKind kind :
       {MarkerKind::kIterationBegin, MarkerKind::kIterationEnd,
        MarkerKind::kPhaseBegin, MarkerKind::kPhaseEnd}) {
    EXPECT_EQ(parse_marker(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_marker("loop"), Error);
}

}  // namespace
}  // namespace pals
