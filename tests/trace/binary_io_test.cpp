#include "trace/binary_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/io.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/apps.hpp"

namespace pals {
namespace {

TEST(BinIo, VarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20,
                                  ~std::uint64_t{0}};
  for (const auto v : values) w.put_varint(v);
  ByteReader r(w.buffer());
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BinIo, SignedVarintRoundTrip) {
  ByteWriter w;
  const std::int64_t values[] = {0, -1, 1, -64, 63, -(1ll << 40),
                                 (1ll << 40)};
  for (const auto v : values) w.put_svarint(v);
  ByteReader r(w.buffer());
  for (const auto v : values) EXPECT_EQ(r.get_svarint(), v);
}

TEST(BinIo, SmallMagnitudesStayShort) {
  ByteWriter w;
  w.put_svarint(-1);
  EXPECT_EQ(w.size(), 1u);  // zig-zag keeps -1 in one byte
}

TEST(BinIo, DoubleRoundTripIsBitExact) {
  ByteWriter w;
  w.put_f64(0.1 + 0.2);
  w.put_f64(-1e-300);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.get_f64(), 0.1 + 0.2);
  EXPECT_EQ(r.get_f64(), -1e-300);
}

TEST(BinIo, StringsRoundTrip) {
  ByteWriter w;
  w.put_string("CG-32");
  w.put_string("");
  ByteReader r(w.buffer());
  EXPECT_EQ(r.get_string(), "CG-32");
  EXPECT_EQ(r.get_string(), "");
}

TEST(BinIo, TruncationThrows) {
  ByteWriter w;
  w.put_f64(1.0);
  ByteReader r(w.buffer().data(), 4);
  EXPECT_THROW(r.get_f64(), Error);
  ByteReader r2(w.buffer().data(), 0);
  EXPECT_THROW(r2.get_u8(), Error);
}

TEST(BinIo, MalformedVarintThrows) {
  std::vector<std::uint8_t> endless(16, 0xFF);
  ByteReader r(endless);
  EXPECT_THROW(r.get_varint(), Error);
}

Trace sample_trace() {
  WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 3;
  config.target_lb = 0.8;
  return make_pepc(config);  // exercises markers, phases, collectives
}

TEST(BinaryTrace, RoundTripIsExact) {
  const Trace original = sample_trace();
  const Trace restored = read_trace_binary(write_trace_binary(original));
  EXPECT_EQ(restored, original);
  EXPECT_EQ(restored.name(), original.name());
}

TEST(BinaryTrace, AllEventKindsRoundTrip) {
  Trace t(2);
  t.set_name("kinds");
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .compute(0.25, 3)
      .send(1, -7, 123)
      .isend(1, 5, 1 << 20, 0)
      .irecv(1, 6, 42, 1)
      .waitall()
      .collective(CollectiveOp::kReduceScatter, 99, 1)
      .marker(MarkerKind::kIterationEnd, 0);
  TraceBuilder(t, 1)
      .marker(MarkerKind::kIterationBegin, 0)
      .recv(0, -7, 123)
      .recv(0, 5, 1 << 20)
      .isend(0, 6, 42, 0)
      .wait(0)
      .collective(CollectiveOp::kReduceScatter, 99, 1)
      .marker(MarkerKind::kIterationEnd, 0);
  EXPECT_EQ(read_trace_binary(write_trace_binary(t)), t);
}

TEST(BinaryTrace, SmallerThanText) {
  const Trace trace = sample_trace();
  std::stringstream text;
  write_trace(trace, text);
  const auto binary = write_trace_binary(trace);
  EXPECT_LT(binary.size(), text.str().size() / 2);
}

TEST(BinaryTrace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pals_test.palsb";
  const Trace original = sample_trace();
  write_trace_binary_file(original, path);
  EXPECT_EQ(read_trace_binary_file(original.name().empty() ? path : path),
            original);
  std::remove(path.c_str());
}

TEST(BinaryTrace, RejectsBadMagicAndTruncation) {
  const auto buffer = write_trace_binary(sample_trace());
  auto corrupted = buffer;
  corrupted[0] = 'X';
  EXPECT_THROW(read_trace_binary(corrupted), Error);
  EXPECT_THROW(read_trace_binary(buffer.data(), buffer.size() / 2), Error);
}

TEST(BinaryTrace, RejectsEmptyBuffer) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(read_trace_binary(empty), Error);
}

TEST(BinaryTrace, RejectsTruncatedHeader) {
  // Cutting anywhere inside the magic + rank-count header must throw;
  // a 6-byte .palsb file is never valid.
  const auto buffer = write_trace_binary(sample_trace());
  for (std::size_t size = 0; size <= 6; ++size) {
    EXPECT_THROW(read_trace_binary(buffer.data(), size), Error)
        << "prefix of " << size << " bytes accepted";
  }
}

TEST(BinaryTrace, RejectsBadVersionByte) {
  // The format version is baked into the magic ("PALSB1"); a bumped
  // version byte must be rejected, not misparsed.
  auto buffer = write_trace_binary(sample_trace());
  buffer[5] = '2';
  EXPECT_THROW(read_trace_binary(buffer), Error);
}

TEST(BinaryTrace, RejectsTruncatedComputeBurstPayload) {
  // One compute burst: tag byte + 8-byte f64 duration + phase varint.
  // Every cut inside that payload must fail cleanly.
  Trace t(1);
  t.set_name("");
  TraceBuilder(t, 0).compute(0.25, 3);
  const auto buffer = write_trace_binary(t);
  for (std::size_t cut = 1; cut <= 9; ++cut) {
    ASSERT_LT(cut, buffer.size());
    EXPECT_THROW(read_trace_binary(buffer.data(), buffer.size() - cut), Error)
        << "payload cut of " << cut << " bytes accepted";
  }
}

TEST(BinaryTrace, EveryPrefixThrowsOrValidates) {
  // Sweeping all prefix truncations must never crash or produce a trace
  // that fails validation.
  const auto buffer = write_trace_binary(sample_trace());
  for (std::size_t size = 0; size < buffer.size(); ++size) {
    try {
      const Trace t = read_trace_binary(buffer.data(), size);
      EXPECT_NO_THROW(t.validate());
    } catch (const Error&) {
      // truncated input must throw, not crash
    }
  }
}

TEST(BinaryTrace, RejectsTrailingBytes) {
  auto buffer = write_trace_binary(sample_trace());
  buffer.push_back(0);
  EXPECT_THROW(read_trace_binary(buffer), Error);
}

TEST(BinaryTrace, FuzzedBuffersNeverCrash) {
  const auto valid = write_trace_binary(sample_trace());
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    auto mutated = valid;
    const std::size_t flips = rng.uniform_int(1, 8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform_int(0, mutated.size() - 1)] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      const Trace t = read_trace_binary(mutated);
      EXPECT_NO_THROW(t.validate());
    } catch (const Error&) {
      // malformed input must throw, not crash
    }
  }
}

}  // namespace
}  // namespace pals
