// Torture test over the corrupted-fixture corpus: every file under
// tests/trace/corrupt/ must be rejected with a structured pals::Error —
// never a crash, bad_alloc, or silent success. The corpus covers bad
// magic, truncation inside every value type, oversized length fields
// (rank counts, string lengths, event counts), bad enum ids, and
// trailing garbage, for both the binary and the text reader.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

namespace pals {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() {
  return fs::path(PALS_SOURCE_DIR) / "tests" / "trace" / "corrupt";
}

std::vector<fs::path> corpus_files(const std::string& extension) {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus_dir()))
    if (entry.path().extension() == extension) files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorruptCorpus, HasAtLeastTwentyCases) {
  EXPECT_GE(corpus_files(".palsb").size() + corpus_files(".palst").size(),
            20u);
}

TEST(CorruptCorpus, EveryBinaryCaseYieldsStructuredError) {
  const std::vector<fs::path> files = corpus_files(".palsb");
  ASSERT_FALSE(files.empty());
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    try {
      read_trace_binary_file(file.string());
      FAIL() << "corrupt input accepted";
    } catch (const Error& e) {
      EXPECT_FALSE(std::string(e.what()).empty());
    }
    // Anything else (bad_alloc, std::length_error, segfault) fails the
    // test via the uncaught-exception path — that is the point.
  }
}

TEST(CorruptCorpus, EveryTextCaseYieldsStructuredError) {
  const std::vector<fs::path> files = corpus_files(".palst");
  ASSERT_FALSE(files.empty());
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    try {
      read_trace_file(file.string());
      FAIL() << "corrupt input accepted";
    } catch (const Error& e) {
      EXPECT_FALSE(std::string(e.what()).empty());
    }
  }
}

// Diagnostics carry position context: truncation and oversized-length
// errors must name the offset so a corrupt trace can be triaged with a
// hex dump instead of a debugger.
TEST(CorruptCorpus, TruncationDiagnosticsNameTheOffset) {
  for (const char* name :
       {"truncated_f64.palsb", "oversized_name.palsb",
        "oversized_event_count.palsb", "ranks_exceed_bytes.palsb",
        "truncated_varint_eof.palsb", "trailing_bytes.palsb"}) {
    SCOPED_TRACE(name);
    try {
      read_trace_binary_file((corpus_dir() / name).string());
      FAIL() << "corrupt input accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << e.what();
    }
  }
}

// Event-level failures are wrapped with rank / event-index context by
// read_trace_binary so multi-rank traces localize the damage.
TEST(CorruptCorpus, EventDecodeErrorsCarryRankAndIndex) {
  for (const char* name : {"bad_tag.palsb", "bad_collective_op.palsb",
                           "bad_marker_kind.palsb", "truncated_f64.palsb"}) {
    SCOPED_TRACE(name);
    try {
      read_trace_binary_file((corpus_dir() / name).string());
      FAIL() << "corrupt input accepted";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("rank 0, event 0"), std::string::npos) << what;
    }
  }
}

}  // namespace
}  // namespace pals
