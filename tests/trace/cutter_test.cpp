#include "trace/cutter.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

/// n-iteration trace where iteration i computes (i+1) seconds on rank 0
/// and 2(i+1) on rank 1, with an allreduce per iteration.
Trace iterated_trace(int iterations) {
  Trace t(2);
  for (Rank r = 0; r < 2; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < iterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute((i + 1.0) * (r + 1.0))
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

TEST(Cutter, ExtractsRequestedIterations) {
  const Trace t = iterated_trace(5);
  const Trace cut = cut_iterations(t, 1, 2);  // iterations 1 and 2
  EXPECT_EQ(cut.iteration_count(), 2u);
  // Rank 0 computes 2 + 3 seconds in those iterations.
  EXPECT_DOUBLE_EQ(cut.computation_time(0), 5.0);
  EXPECT_DOUBLE_EQ(cut.computation_time(1), 10.0);
}

TEST(Cutter, RenumbersMarkersFromZero) {
  const Trace cut = cut_iterations(iterated_trace(4), 2, 2);
  const auto* m = std::get_if<MarkerEvent>(&cut.events(0)[0]);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MarkerKind::kIterationBegin);
  EXPECT_EQ(m->id, 0);
}

TEST(Cutter, CutTraceIsCuttableAgain) {
  const Trace cut = cut_iterations(iterated_trace(6), 1, 4);
  const Trace cut2 = cut_iterations(cut, 1, 2);
  EXPECT_EQ(cut2.iteration_count(), 2u);
  // Original iterations 2 and 3: rank 0 computes 3 + 4.
  EXPECT_DOUBLE_EQ(cut2.computation_time(0), 7.0);
}

TEST(Cutter, PreservesName) {
  Trace t = iterated_trace(3);
  t.set_name("APP-2");
  EXPECT_EQ(cut_iterations(t, 0, 1).name(), "APP-2");
}

TEST(Cutter, RejectsOutOfRangeWindow) {
  const Trace t = iterated_trace(3);
  EXPECT_THROW(cut_iterations(t, 2, 2), Error);
  EXPECT_THROW(cut_iterations(t, 0, 4), Error);
  EXPECT_THROW(cut_iterations(t, 0, 0), Error);
}

TEST(Cutter, RejectsUnmarkedTrace) {
  Trace t(1);
  TraceBuilder(t, 0).compute(1.0);
  EXPECT_THROW(cut_iterations(t, 0, 1), Error);
}

TEST(Cutter, DropWarmupKeepsTail) {
  const Trace t = iterated_trace(5);
  const Trace tail = drop_warmup(t, 2);
  EXPECT_EQ(tail.iteration_count(), 3u);
  EXPECT_DOUBLE_EQ(tail.computation_time(0), 3.0 + 4.0 + 5.0);
}

TEST(Cutter, DropWarmupRejectsDroppingEverything) {
  EXPECT_THROW(drop_warmup(iterated_trace(2), 2), Error);
}

TEST(Cutter, PhaseMarkersInsideKeptIterationsSurvive) {
  Trace t(1);
  TraceBuilder(t, 0)
      .marker(MarkerKind::kIterationBegin, 0)
      .marker(MarkerKind::kPhaseBegin, 0)
      .compute(1.0, 0)
      .marker(MarkerKind::kPhaseEnd, 0)
      .marker(MarkerKind::kIterationEnd, 0);
  const Trace cut = cut_iterations(t, 0, 1);
  std::size_t phase_markers = 0;
  for (const Event& e : cut.events(0))
    if (const auto* m = std::get_if<MarkerEvent>(&e))
      if (m->kind == MarkerKind::kPhaseBegin ||
          m->kind == MarkerKind::kPhaseEnd)
        ++phase_markers;
  EXPECT_EQ(phase_markers, 2u);
}

TEST(Cutter, CollectiveConsistencyMaintainedAcrossCut) {
  // Cutting the same iteration range on all ranks keeps collective
  // sequences aligned; validate() inside cut_iterations would throw
  // otherwise.
  EXPECT_NO_THROW(cut_iterations(iterated_trace(10), 3, 4));
}

}  // namespace
}  // namespace pals
