#include "paraver/prv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace pals {
namespace {

PrvTrace sample() {
  PrvTrace prv;
  prv.total_time = 2.0;
  prv.n_tasks = 2;
  prv.states.push_back({0, 0.0, 1.0, PrvState::kRunning});
  prv.states.push_back({0, 1.0, 2.0, PrvState::kWaitingMessage});
  prv.states.push_back({1, 0.0, 2.0, PrvState::kRunning});
  prv.events.push_back({0, 0.5, kPrvEventIteration, 1});
  prv.events.push_back({0, 2.0, kPrvEventIteration, 0});
  prv.comms.push_back({1, 0, 0.25, 1.5, 4096, 7});
  return prv;
}

TEST(Prv, ValidateAcceptsSample) { EXPECT_NO_THROW(sample().validate()); }

TEST(Prv, ValidateRejectsBadRecords) {
  PrvTrace prv = sample();
  prv.states[0].task = 9;
  EXPECT_THROW(prv.validate(), Error);

  prv = sample();
  prv.states[0].end = -1.0;
  EXPECT_THROW(prv.validate(), Error);

  prv = sample();
  prv.comms[0].recv_time = 0.0;  // delivered before sent
  EXPECT_THROW(prv.validate(), Error);

  prv = sample();
  prv.n_tasks = 0;
  EXPECT_THROW(prv.validate(), Error);
}

TEST(Prv, RoundTripPreservesRecords) {
  const PrvTrace original = sample();
  std::stringstream buffer;
  write_prv(original, buffer);
  const PrvTrace restored = read_prv(buffer);
  EXPECT_EQ(restored, original);
}

TEST(Prv, SerializationShape) {
  std::stringstream buffer;
  write_prv(sample(), buffer);
  const std::string text = buffer.str();
  EXPECT_EQ(text.rfind("#Paraver (pals):2000000000:2", 0), 0u);
  // State record: kind 1, task 1-based, ns timestamps.
  EXPECT_NE(text.find("1:1:1:1:1:0:1000000000:1"), std::string::npos);
  // Comm record: kind 3 with both endpoints.
  EXPECT_NE(text.find("3:2:1:2:1:250000000:250000000:1:1:1:1:1500000000:"
                      "1500000000:4096:7"),
            std::string::npos);
}

TEST(Prv, ReadRejectsMissingHeader) {
  std::stringstream in("1:1:1:1:1:0:5:1\n");
  EXPECT_THROW(read_prv(in), Error);
}

TEST(Prv, ReadRejectsMalformedRecords) {
  std::stringstream in("#Paraver (pals):10:1\n1:1:1:1:1:0:5\n");  // 7 fields
  EXPECT_THROW(read_prv(in), Error);
  std::stringstream in2("#Paraver (pals):10:1\n9:1:1:1:1:0:5:1\n");
  EXPECT_THROW(read_prv(in2), Error);
  std::stringstream in3("#Paraver (pals):10:1\n1:1:1:1:1:0:x:1\n");
  EXPECT_THROW(read_prv(in3), Error);
}

TEST(Prv, ReadRejectsUnknownStateId) {
  std::stringstream in("#Paraver (pals):10:1\n1:1:1:1:1:0:5:42\n");
  EXPECT_THROW(read_prv(in), Error);
}

TEST(Prv, ReadSkipsCommentsAndBlankLines) {
  std::stringstream in(
      "#Paraver (pals):10:1\n\n# a comment\n1:1:1:1:1:0:5:1\n");
  const PrvTrace prv = read_prv(in);
  EXPECT_EQ(prv.states.size(), 1u);
}

TEST(Prv, EmptyInputRejected) {
  std::stringstream in("");
  EXPECT_THROW(read_prv(in), Error);
}

TEST(Prv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pals_test.prv";
  write_prv_file(sample(), path);
  EXPECT_EQ(read_prv_file(path), sample());
  std::remove(path.c_str());
}

TEST(Prv, NanosecondQuantizationIsStable) {
  PrvTrace prv;
  prv.total_time = 1e-9 * 1234567;
  prv.n_tasks = 1;
  prv.states.push_back({0, 0.0, 1e-9 * 999, PrvState::kRunning});
  std::stringstream buffer;
  write_prv(prv, buffer);
  const PrvTrace restored = read_prv(buffer);
  EXPECT_DOUBLE_EQ(restored.states[0].end, 1e-9 * 999);
}

}  // namespace
}  // namespace pals
