// Export/translate round trips: replay -> .prv -> logical trace -> replay.
#include <gtest/gtest.h>

#include <numeric>

#include "paraver/export.hpp"
#include "paraver/translate.hpp"
#include "replay/replay.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "workloads/apps.hpp"
#include "workloads/registry.hpp"

namespace pals {
namespace {

ReplayConfig unit_config() {
  ReplayConfig config;
  config.platform.latency = 1e-4;
  config.platform.bandwidth = 1e8;
  return config;
}

Trace bsp_trace() {
  Trace t(3);
  const double w[] = {0.4, 0.7, 1.0};
  for (Rank r = 0; r < 3; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < 3; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(0.01 * w[r])
          .collective(CollectiveOp::kAllreduce, 64)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

TEST(PrvExport, StatesCoverTheWholeExecution) {
  const ReplayResult r = replay(bsp_trace(), unit_config());
  const PrvTrace prv = export_prv(r);
  EXPECT_EQ(prv.n_tasks, 3);
  EXPECT_DOUBLE_EQ(prv.total_time, r.makespan);
  // Per task, state records are contiguous from 0 to makespan.
  for (Rank task = 0; task < 3; ++task) {
    Seconds cursor = 0.0;
    for (const PrvStateRecord& s : prv.states) {
      if (s.task != task) continue;
      EXPECT_NEAR(s.begin, cursor, 1e-9);
      cursor = s.end;
    }
    EXPECT_NEAR(cursor, r.makespan, 1e-9);
  }
}

TEST(PrvExport, CollectiveEventsPairUp) {
  const ReplayResult r = replay(bsp_trace(), unit_config());
  const PrvTrace prv = export_prv(r);
  std::size_t enters = 0;
  std::size_t leaves = 0;
  for (const PrvEventRecord& e : prv.events) {
    if (e.type != kPrvEventCollectiveOp) continue;
    if (e.value > 0)
      ++enters;
    else
      ++leaves;
  }
  EXPECT_EQ(enters, 9u);  // 3 iterations x 3 ranks
  EXPECT_EQ(enters, leaves);
}

TEST(PrvExport, MessagesBecomeCommRecords) {
  Trace t(2);
  TraceBuilder(t, 0).send(1, 5, 1000);
  TraceBuilder(t, 1).recv(0, 5, 1000);
  const ReplayResult r = replay(t, unit_config());
  const PrvTrace prv = export_prv(r);
  ASSERT_EQ(prv.comms.size(), 1u);
  EXPECT_EQ(prv.comms[0].src, 0);
  EXPECT_EQ(prv.comms[0].dst, 1);
  EXPECT_EQ(prv.comms[0].bytes, 1000u);
  EXPECT_EQ(prv.comms[0].tag, 5);
  EXPECT_GT(prv.comms[0].recv_time, prv.comms[0].send_time);
}

TEST(PrvTranslate, PreservesComputationTotals) {
  const Trace original = bsp_trace();
  const ReplayResult r = replay(original, unit_config());
  const Trace translated = translate_prv(export_prv(r));
  for (Rank rank = 0; rank < original.n_ranks(); ++rank) {
    EXPECT_NEAR(translated.computation_time(rank),
                original.computation_time(rank), 1e-6)
        << "rank " << rank;
  }
}

TEST(PrvTranslate, PreservesIterationStructure) {
  const ReplayResult r = replay(bsp_trace(), unit_config());
  const Trace translated = translate_prv(export_prv(r));
  EXPECT_EQ(translated.iteration_count(), 3u);
}

TEST(PrvTranslate, PreservesCollectiveSequence) {
  const ReplayResult r = replay(bsp_trace(), unit_config());
  const Trace translated = translate_prv(export_prv(r));
  std::size_t collectives = 0;
  for (const Event& e : translated.events(0))
    if (const auto* c = std::get_if<CollectiveEvent>(&e)) {
      EXPECT_EQ(c->op, CollectiveOp::kAllreduce);
      EXPECT_EQ(c->bytes, 64u);
      ++collectives;
    }
  EXPECT_EQ(collectives, 3u);
}

TEST(PrvTranslate, TranslatedTraceReplaysToSimilarMakespan) {
  const Trace original = bsp_trace();
  const ReplayResult first = replay(original, unit_config());
  const Trace translated = translate_prv(export_prv(first));
  const ReplayResult second = replay(translated, unit_config());
  EXPECT_NEAR(second.makespan, first.makespan, 0.05 * first.makespan);
}

TEST(PrvTranslate, P2pHeavyTraceRoundTrips) {
  WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 3;
  config.target_lb = 0.8;
  const Trace original = make_specfem3d(config);
  const ReplayResult first = replay(original, ReplayConfig{});
  const Trace translated = translate_prv(export_prv(first));
  EXPECT_NO_THROW(translated.validate());
  const ReplayResult second = replay(translated, ReplayConfig{});
  EXPECT_NEAR(second.makespan, first.makespan, 0.10 * first.makespan);
  // Message counts survive.
  EXPECT_EQ(second.point_to_point_messages, first.point_to_point_messages);
}

TEST(PrvTranslate, BlockingRendezvousTraceRoundTrips) {
  WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 2;
  config.target_lb = 0.9;
  const Trace original = make_wrf(config);  // blocking parity shifts
  const ReplayResult first = replay(original, ReplayConfig{});
  const Trace translated = translate_prv(export_prv(first));
  EXPECT_NO_THROW(replay(translated, ReplayConfig{}));
}

class PrvFamilyRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrvFamilyRoundTrip, EveryWorkloadFamilySurvivesTheRoundTrip) {
  WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 2;
  config.target_lb = 0.85;
  const Trace original = workload_factory(GetParam())(config);
  const ReplayResult first = replay(original, ReplayConfig{});
  const Trace translated = translate_prv(export_prv(first));
  EXPECT_NO_THROW(translated.validate());
  // Computation is conserved per rank.
  for (Rank r = 0; r < original.n_ranks(); ++r)
    EXPECT_NEAR(translated.computation_time(r),
                original.computation_time(r),
                1e-6 + 0.001 * original.computation_time(r))
        << "rank " << r;
  // The translated trace replays without deadlock to a similar makespan.
  const ReplayResult second = replay(translated, ReplayConfig{});
  EXPECT_NEAR(second.makespan, first.makespan, 0.15 * first.makespan);
}

INSTANTIATE_TEST_SUITE_P(Families, PrvFamilyRoundTrip,
                         ::testing::Values("cg", "mg", "is", "bt-mz",
                                           "specfem3d", "wrf", "pepc",
                                           "amr-drift", "lu", "ft"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(PrvTranslate, FullPrvFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pals_roundtrip.prv";
  const ReplayResult r = replay(bsp_trace(), unit_config());
  write_prv_file(export_prv(r), path);
  const Trace translated = translate_prv(read_prv_file(path));
  EXPECT_EQ(translated.iteration_count(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pals
