# Smoke-chain for the trace tools: generate a trace via pals_run's prv
# export, translate it back with prv2palst (text and binary), and inspect
# the results with pals_trace_info.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}")
  endif()
endfunction()

run_step(${PALS_RUN} --workload=mg --ranks=8 --lb=0.9
         --prv=${WORK_DIR}/chain.prv)
run_step(${PRV2PALST} ${WORK_DIR}/chain.prv ${WORK_DIR}/chain.palst)
run_step(${PRV2PALST} ${WORK_DIR}/chain.prv ${WORK_DIR}/chain.palsb)
run_step(${TRACE_INFO} --per-rank --matrix ${WORK_DIR}/chain.palst)
run_step(${TRACE_INFO} ${WORK_DIR}/chain.palsb)
run_step(${PRV2PALST} --export ${WORK_DIR}/chain.palsb
         ${WORK_DIR}/chain_back.prv)
run_step(${PALS_RUN} --trace=${WORK_DIR}/chain.palsb --gears=uniform-6)
