# End-to-end acceptance check for pals_sweep --prune-bounds
# (docs/bounds.md): on the shipped Pareto grid the pruner must skip at
# least 20% of the cells, the surviving rows must be a subset of the
# unpruned rows, and the *extracted* Pareto front (on_front=1 rows) must
# be byte-identical to the unpruned run's.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}")
  endif()
endfunction()

run_step(${PALS_SWEEP} --grid=${GRID} --jobs=0 --quiet
         --out=${WORK_DIR}/prune_off.csv
         --pareto=${WORK_DIR}/prune_off_pareto.csv)
run_step(${PALS_SWEEP} --grid=${GRID} --jobs=0 --quiet --prune-bounds
         --out=${WORK_DIR}/prune_on.csv
         --pareto=${WORK_DIR}/prune_on_pareto.csv
         --pruned=${WORK_DIR}/pruned.csv)

# Prune rate: pruned.csv rows (minus header) vs total grid cells.
file(STRINGS ${WORK_DIR}/prune_off.csv all_rows)
file(STRINGS ${WORK_DIR}/pruned.csv pruned_rows)
list(LENGTH all_rows total_lines)
list(LENGTH pruned_rows pruned_lines)
math(EXPR total "${total_lines} - 1")
math(EXPR pruned "${pruned_lines} - 1")
math(EXPR permille "(1000 * ${pruned}) / ${total}")
if(permille LESS 200)
  message(FATAL_ERROR
          "--prune-bounds skipped only ${pruned}/${total} cells (< 20%)")
endif()

# Surviving rows must all appear verbatim in the unpruned output.
file(STRINGS ${WORK_DIR}/prune_on.csv surviving_rows)
foreach(row IN LISTS surviving_rows)
  list(FIND all_rows "${row}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "pruned sweep invented a row: ${row}")
  endif()
endforeach()

# Extracted fronts (rows marked on_front=1) are byte-identical.
function(extract_front input output)
  file(STRINGS ${input} rows)
  set(front "")
  foreach(row IN LISTS rows)
    if(row MATCHES ",1$")
      string(APPEND front "${row}\n")
    endif()
  endforeach()
  file(WRITE ${output} "${front}")
endfunction()

extract_front(${WORK_DIR}/prune_off_pareto.csv ${WORK_DIR}/front_off.txt)
extract_front(${WORK_DIR}/prune_on_pareto.csv ${WORK_DIR}/front_on.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/front_off.txt ${WORK_DIR}/front_on.txt
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "extracted Pareto front differs between pruned and unpruned runs")
endif()
message(STATUS "prune-bounds: ${pruned}/${total} cells skipped, front intact")
