#include "power/gearset.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pals {
namespace {

TEST(VoltageModel, PaperAnchorsReproduce) {
  const VoltageModel vm = VoltageModel::paper_default();
  EXPECT_NEAR(vm.voltage(0.8), 1.0, 1e-12);
  EXPECT_NEAR(vm.voltage(2.3), 1.5, 1e-12);
}

TEST(VoltageModel, PaperOverclockGearLiesOnTheLine) {
  // The paper's AVG discrete study adds (2.6 GHz, 1.6 V).
  const VoltageModel vm = VoltageModel::paper_default();
  EXPECT_NEAR(vm.voltage(2.6), 1.6, 1e-12);
}

TEST(VoltageModel, RejectsDegenerateAnchors) {
  EXPECT_THROW(VoltageModel(1.0, 1.0, 1.0, 2.0), Error);
}

TEST(VoltageModel, RejectsNonPositiveFrequency) {
  const VoltageModel vm = VoltageModel::paper_default();
  EXPECT_THROW(vm.voltage(0.0), Error);
  EXPECT_THROW(vm.voltage(-1.0), Error);
}

// Table 1 of the paper: the 6-gear evenly distributed set.
TEST(GearSet, Table1UniformSixGearSet) {
  const GearSet set = paper_uniform(6);
  ASSERT_EQ(set.size(), 6u);
  const double expected_f[] = {0.8, 1.1, 1.4, 1.7, 2.0, 2.3};
  const double expected_v[] = {1.0, 1.1, 1.2, 1.3, 1.4, 1.5};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(set.gears()[i].frequency_ghz, expected_f[i], 1e-9) << i;
    EXPECT_NEAR(set.gears()[i].voltage_v, expected_v[i], 1e-9) << i;
  }
}

// Table 2 of the paper: the 6-gear exponential set.
TEST(GearSet, Table2ExponentialSixGearSet) {
  const GearSet set = paper_exponential(6);
  ASSERT_EQ(set.size(), 6u);
  const double expected_f[] = {0.8, 1.57, 1.96, 2.15, 2.25, 2.3};
  const double expected_v[] = {1.0, 1.26, 1.39, 1.45, 1.48, 1.5};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(set.gears()[i].frequency_ghz, expected_f[i], 0.01) << i;
    EXPECT_NEAR(set.gears()[i].voltage_v, expected_v[i], 0.01) << i;
  }
}

TEST(GearSet, ExponentialGapsDoubleTowardsLowFrequencies) {
  const GearSet set = paper_exponential(5);
  const auto gears = set.gears();
  for (std::size_t i = 0; i + 2 < gears.size(); ++i) {
    const double low_gap = gears[i + 1].frequency_ghz - gears[i].frequency_ghz;
    const double high_gap =
        gears[i + 2].frequency_ghz - gears[i + 1].frequency_ghz;
    EXPECT_NEAR(low_gap / high_gap, 2.0, 1e-6);
  }
}

TEST(GearSet, UniformSetsSpanRangeInclusive) {
  for (int n = 2; n <= 15; ++n) {
    const GearSet set = paper_uniform(n);
    ASSERT_EQ(set.size(), static_cast<std::size_t>(n));
    EXPECT_NEAR(set.gears().front().frequency_ghz, 0.8, 1e-12);
    EXPECT_NEAR(set.gears().back().frequency_ghz, 2.3, 1e-12);
  }
}

TEST(GearSet, SnapUpPicksLowestAdmissibleGear) {
  const GearSet set = paper_uniform(6);
  EXPECT_NEAR(set.snap_up(1.0), 1.1, 1e-12);
  EXPECT_NEAR(set.snap_up(1.1), 1.1, 1e-12);   // exact gear stays
  EXPECT_NEAR(set.snap_up(1.11), 1.4, 1e-12);  // just above snaps up
  EXPECT_NEAR(set.snap_up(0.2), 0.8, 1e-12);   // clamps to fmin
  EXPECT_NEAR(set.snap_up(9.0), 2.3, 1e-12);   // clamps to fmax
}

TEST(GearSet, ContinuousSnapIsIdentityInsideRange) {
  const GearSet set = paper_limited_continuous();
  EXPECT_TRUE(set.is_continuous());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_NEAR(set.snap_up(1.2345), 1.2345, 1e-12);
  EXPECT_NEAR(set.snap_up(0.1), 0.8, 1e-12);
  EXPECT_NEAR(set.snap_up(3.0), 2.3, 1e-12);
}

TEST(GearSet, UnlimitedContinuousReachesNearZero) {
  const GearSet set = paper_unlimited_continuous();
  EXPECT_LT(set.fmin(), 0.1);
  EXPECT_NEAR(set.snap_up(0.05), 0.05, 1e-12);
}

TEST(GearSet, OperatingPointUsesStoredVoltage) {
  const GearSet set = paper_uniform(6);
  const Gear g = set.operating_point(1.05);
  EXPECT_NEAR(g.frequency_ghz, 1.1, 1e-12);
  EXPECT_NEAR(g.voltage_v, 1.1, 1e-9);
}

TEST(GearSet, SnapNearestPicksClosestGear) {
  const GearSet set = paper_uniform(6);
  EXPECT_NEAR(set.snap_nearest(1.24), 1.1, 1e-12);   // below midpoint
  EXPECT_NEAR(set.snap_nearest(1.26), 1.4, 1e-12);   // above midpoint
  EXPECT_NEAR(set.snap_nearest(1.1), 1.1, 1e-12);
  EXPECT_NEAR(set.snap_nearest(0.1), 0.8, 1e-12);
  EXPECT_NEAR(set.snap_nearest(9.0), 2.3, 1e-12);
}

TEST(GearSet, SnapNearestOnContinuousIsClamp) {
  const GearSet set = paper_limited_continuous();
  EXPECT_NEAR(set.snap_nearest(1.234), 1.234, 1e-12);
  EXPECT_NEAR(set.snap_nearest(0.1), 0.8, 1e-12);
}

TEST(GearSet, SnapNearestNeverAboveSnapUp) {
  const GearSet set = paper_uniform(7);
  for (double f = 0.5; f < 2.5; f += 0.037)
    EXPECT_LE(set.snap_nearest(f), set.snap_up(f) + 1e-12) << f;
}

TEST(GearSet, OperatingPointNearestReturnsTabulatedVoltage) {
  const GearSet set = paper_uniform(6);
  const Gear g = set.operating_point_nearest(1.15);
  EXPECT_NEAR(g.frequency_ghz, 1.1, 1e-12);
  EXPECT_NEAR(g.voltage_v, 1.1, 1e-9);
}

TEST(GearSet, WithExtraGearExtendsDiscreteSet) {
  const GearSet set = paper_avg_discrete();
  ASSERT_EQ(set.size(), 7u);
  EXPECT_NEAR(set.fmax(), 2.6, 1e-12);
  EXPECT_NEAR(set.gears().back().voltage_v, 1.6, 1e-12);
  // Snapping just above the nominal max reaches the over-clock gear.
  EXPECT_NEAR(set.snap_up(2.35), 2.6, 1e-12);
}

TEST(GearSet, WithExtraGearRejectsContinuous) {
  EXPECT_THROW(paper_limited_continuous().with_extra_gear(Gear{2.6, 1.6}),
               Error);
}

TEST(GearSet, WithFmaxScaledExtendsContinuousSet) {
  const GearSet set = paper_limited_continuous().with_fmax_scaled(1.1);
  EXPECT_NEAR(set.fmax(), 2.3 * 1.1, 1e-12);
  EXPECT_NEAR(set.snap_up(2.4), 2.4, 1e-12);
}

TEST(GearSet, WithFmaxScaledRejectsDiscrete) {
  EXPECT_THROW(paper_uniform(6).with_fmax_scaled(1.1), Error);
}

TEST(GearSet, RejectsInvalidConstruction) {
  const VoltageModel vm = VoltageModel::paper_default();
  EXPECT_THROW(GearSet::uniform(1, 0.8, 2.3, vm), Error);
  EXPECT_THROW(GearSet::uniform(4, 2.3, 0.8, vm), Error);
  EXPECT_THROW(GearSet::exponential(1, 0.8, 2.3, vm), Error);
  EXPECT_THROW(GearSet::continuous(-1.0, 2.3, vm), Error);
}

TEST(GearSet, DescribeIsInformative) {
  EXPECT_NE(paper_uniform(6).describe().find("uniform-6"), std::string::npos);
  EXPECT_NE(paper_limited_continuous().describe().find("continuous"),
            std::string::npos);
  EXPECT_NE(paper_avg_discrete().describe().find("oc"), std::string::npos);
}

}  // namespace
}  // namespace pals
