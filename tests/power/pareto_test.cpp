// Unit tests of the energy/time Pareto-front marking (analysis/pareto.hpp)
// that backs `pals_sweep --pareto=FILE` and the static-vs-dynamic
// controller comparison.
#include "analysis/pareto.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pals {
namespace {

ExperimentRow row(const std::string& instance, const std::string& variant,
                  double time, double energy) {
  ExperimentRow r;
  r.instance = instance;
  r.variant = variant;
  r.normalized_time = time;
  r.normalized_energy = energy;
  r.normalized_edp = time * energy;
  return r;
}

TEST(Pareto, DominanceIsWeakInBothStrictInOne) {
  const ExperimentRow a = row("X", "a", 1.0, 0.8);
  const ExperimentRow better_energy = row("X", "b", 1.0, 0.7);
  const ExperimentRow better_both = row("X", "c", 0.9, 0.7);
  const ExperimentRow tradeoff = row("X", "d", 0.9, 0.9);
  EXPECT_TRUE(dominates(better_energy, a));
  EXPECT_TRUE(dominates(better_both, a));
  EXPECT_FALSE(dominates(a, better_energy));
  // A pure trade-off dominates in neither direction.
  EXPECT_FALSE(dominates(tradeoff, a));
  EXPECT_FALSE(dominates(a, tradeoff));
  // Equal vectors: no strict improvement, no domination either way.
  EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, FrontKeepsTradeOffsDropsDominated) {
  const std::vector<ExperimentRow> rows{
      row("X", "static", 1.0, 1.0),   // dominated by "slack"
      row("X", "slack", 1.0, 0.74),   // on the front
      row("X", "avg", 0.9, 0.95),     // trade-off: faster, hungrier
  };
  const std::vector<ParetoEntry> entries = pareto_front(rows);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_FALSE(entries[0].on_front);
  EXPECT_TRUE(entries[1].on_front);
  EXPECT_TRUE(entries[2].on_front);
  // Input order is preserved.
  EXPECT_EQ(entries[0].row.variant, "static");
}

TEST(Pareto, FrontsAreComputedPerInstance) {
  // "B slow" would be dominated by "A fast" — but only rows of the same
  // instance are comparable, so both stay on their own front.
  const std::vector<ExperimentRow> rows{
      row("A", "fast", 0.8, 0.8),
      row("B", "slow", 1.0, 1.0),
  };
  const std::vector<ParetoEntry> entries = pareto_front(rows);
  EXPECT_TRUE(entries[0].on_front);
  EXPECT_TRUE(entries[1].on_front);
}

TEST(Pareto, DuplicateObjectiveVectorsAllStayOnTheFront) {
  const std::vector<ExperimentRow> rows{
      row("X", "a", 1.0, 0.8),
      row("X", "b", 1.0, 0.8),
  };
  const std::vector<ParetoEntry> entries = pareto_front(rows);
  EXPECT_TRUE(entries[0].on_front);
  EXPECT_TRUE(entries[1].on_front);
}

TEST(Pareto, CsvIsDeterministicAndMarksMembership) {
  const std::vector<ExperimentRow> rows{
      row("X", "static", 1.0, 1.0),
      row("X", "slack", 1.0, 0.74),
  };
  const std::string csv = pareto_to_csv(pareto_front(rows));
  EXPECT_EQ(csv.rfind("instance,variant,normalized_energy,normalized_time,"
                      "normalized_edp,on_front\n",
                      0),
            0u);
  EXPECT_NE(csv.find("static"), std::string::npos);
  EXPECT_NE(csv.find(",0\n"), std::string::npos);  // dominated row
  EXPECT_NE(csv.find(",1\n"), std::string::npos);  // front member
  // Rendering twice gives the same bytes (no hidden state).
  EXPECT_EQ(csv, pareto_to_csv(pareto_front(rows)));
}

TEST(Pareto, EmptyInputYieldsHeaderOnlyCsv) {
  const std::string csv = pareto_to_csv({});
  EXPECT_EQ(csv,
            "instance,variant,normalized_energy,normalized_time,"
            "normalized_edp,on_front\n");
}

}  // namespace
}  // namespace pals
