// Property sweeps over every gear-set size and random frequencies.
#include <gtest/gtest.h>

#include "power/gearset.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

class UniformSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(UniformSetProperty, GearsSortedWithinRangeAndEvenlySpaced) {
  const GearSet set = paper_uniform(GetParam());
  const auto gears = set.gears();
  ASSERT_EQ(gears.size(), static_cast<std::size_t>(GetParam()));
  const double step =
      (kPaperFmaxGhz - kPaperFminGhz) / (GetParam() - 1);
  for (std::size_t i = 0; i < gears.size(); ++i) {
    EXPECT_NEAR(gears[i].frequency_ghz,
                kPaperFminGhz + step * static_cast<double>(i), 1e-9);
    if (i > 0)
      EXPECT_GT(gears[i].frequency_ghz, gears[i - 1].frequency_ghz);
  }
}

TEST_P(UniformSetProperty, VoltageIsMonotoneInFrequency) {
  const GearSet set = paper_uniform(GetParam());
  const auto gears = set.gears();
  for (std::size_t i = 1; i < gears.size(); ++i)
    EXPECT_GT(gears[i].voltage_v, gears[i - 1].voltage_v);
}

TEST_P(UniformSetProperty, SnapUpIsIdempotentAndNeverBelowInput) {
  const GearSet set = paper_uniform(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const double f = rng.uniform(0.05, 3.0);
    const double snapped = set.snap_up(f);
    EXPECT_EQ(set.snap_up(snapped), snapped) << f;
    if (f <= set.fmax())
      EXPECT_GE(snapped, std::min(f, set.fmax()) - 1e-12) << f;
    EXPECT_GE(snapped, set.fmin() - 1e-12);
    EXPECT_LE(snapped, set.fmax() + 1e-12);
    // Nearest never exceeds up.
    EXPECT_LE(set.snap_nearest(f), snapped + 1e-12) << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UniformSetProperty,
                         ::testing::Range(2, 16));

class ExponentialSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExponentialSetProperty, GapsDoubleAndEndpointsAnchor) {
  const GearSet set = paper_exponential(GetParam());
  const auto gears = set.gears();
  ASSERT_EQ(gears.size(), static_cast<std::size_t>(GetParam()));
  EXPECT_NEAR(gears.front().frequency_ghz, kPaperFminGhz, 1e-9);
  EXPECT_NEAR(gears.back().frequency_ghz, kPaperFmaxGhz, 1e-9);
  for (std::size_t i = 0; i + 2 < gears.size(); ++i) {
    const double low = gears[i + 1].frequency_ghz - gears[i].frequency_ghz;
    const double high =
        gears[i + 2].frequency_ghz - gears[i + 1].frequency_ghz;
    EXPECT_NEAR(low / high, 2.0, 1e-6) << "gap " << i;
  }
}

TEST_P(ExponentialSetProperty, DenserNearFmaxThanUniform) {
  const int n = GetParam();
  const GearSet exp_set = paper_exponential(n);
  const GearSet uni_set = paper_uniform(n);
  // Count gears in the top third of the range.
  const double cutoff = kPaperFminGhz + 2.0 / 3.0 *
                        (kPaperFmaxGhz - kPaperFminGhz);
  const auto count_above = [&](const GearSet& set) {
    std::size_t count = 0;
    for (const Gear& g : set.gears())
      if (g.frequency_ghz >= cutoff) ++count;
    return count;
  };
  EXPECT_GE(count_above(exp_set), count_above(uni_set));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExponentialSetProperty,
                         ::testing::Range(3, 8));

}  // namespace
}  // namespace pals
