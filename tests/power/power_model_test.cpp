#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

PowerModelConfig paper_config() { return PowerModelConfig{}; }

TEST(PowerModelConfig, ValidatesRanges) {
  PowerModelConfig c = paper_config();
  c.activity_ratio = 0.5;
  EXPECT_THROW(c.validate(), Error);
  c = paper_config();
  c.static_fraction = 1.0;
  EXPECT_THROW(c.validate(), Error);
  c = paper_config();
  c.beta = 1.5;
  EXPECT_THROW(c.validate(), Error);
  c = paper_config();
  c.reference = Gear{0.0, 1.5};
  EXPECT_THROW(c.validate(), Error);
}

TEST(PowerModel, StaticFractionCalibratesAtReference) {
  const PowerModel pm(paper_config());
  const Gear ref{2.3, 1.5};
  const double total = pm.total_power(ref, /*computing=*/true);
  EXPECT_NEAR(pm.static_power(ref) / total, 0.2, 1e-12);
}

TEST(PowerModel, ZeroStaticFraction) {
  PowerModelConfig c = paper_config();
  c.static_fraction = 0.0;
  const PowerModel pm(c);
  EXPECT_DOUBLE_EQ(pm.static_power(Gear{2.3, 1.5}), 0.0);
}

TEST(PowerModel, DynamicPowerFollowsFV2) {
  const PowerModel pm(paper_config());
  const double p1 = pm.dynamic_power(Gear{1.0, 1.0}, true);
  const double p2 = pm.dynamic_power(Gear{2.0, 1.0}, true);
  const double p3 = pm.dynamic_power(Gear{1.0, 2.0}, true);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-12);  // linear in f
  EXPECT_NEAR(p3 / p1, 4.0, 1e-12);  // quadratic in V
}

TEST(PowerModel, ActivityRatioSeparatesComputeAndComm) {
  const PowerModel pm(paper_config());
  const Gear g{2.3, 1.5};
  EXPECT_NEAR(pm.dynamic_power(g, true) / pm.dynamic_power(g, false), 1.5,
              1e-12);
}

TEST(PowerModel, StaticPowerScalesWithVoltageOnly) {
  const PowerModel pm(paper_config());
  EXPECT_NEAR(pm.static_power(Gear{0.8, 1.0}) / pm.static_power(Gear{2.3, 1.5}),
              1.0 / 1.5, 1e-12);
}

TEST(TimeScale, ReferenceFrequencyIsIdentity) {
  const PowerModel pm(paper_config());
  EXPECT_DOUBLE_EQ(pm.time_scale(2.3), 1.0);
}

TEST(TimeScale, BetaOneHalvingFrequencyDoublesTime) {
  PowerModelConfig c = paper_config();
  c.beta = 1.0;
  const PowerModel pm(c);
  EXPECT_NEAR(pm.time_scale(2.3 / 2.0), 2.0, 1e-12);
}

TEST(TimeScale, BetaZeroFrequencyIndependent) {
  PowerModelConfig c = paper_config();
  c.beta = 0.0;
  const PowerModel pm(c);
  EXPECT_DOUBLE_EQ(pm.time_scale(0.8), 1.0);
  EXPECT_DOUBLE_EQ(pm.time_scale(2.3), 1.0);
}

TEST(TimeScale, OverclockingShortensTime) {
  const PowerModel pm(paper_config());
  EXPECT_LT(pm.time_scale(2.6), 1.0);
  EXPECT_GT(pm.time_scale(2.6), 1.0 - 0.5);  // bounded by 1 - beta
}

TEST(TimeScale, ExplicitBetaOverride) {
  const PowerModel pm(paper_config());
  EXPECT_NEAR(pm.time_scale(1.15, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(pm.time_scale(1.15, 0.5), 1.5, 1e-12);
}

TEST(TimeScale, RejectsBadArguments) {
  const PowerModel pm(paper_config());
  EXPECT_THROW(pm.time_scale(0.0), Error);
  EXPECT_THROW(pm.time_scale(1.0, 2.0), Error);
}

Timeline uniform_timeline(Rank ranks, Seconds compute, Seconds wait) {
  Timeline tl(ranks);
  for (Rank r = 0; r < ranks; ++r) {
    tl.append(r, {0.0, compute, RankState::kCompute, -1});
    tl.append(r, {compute, compute + wait, RankState::kWait, -1});
  }
  return tl;
}

TEST(Energy, IntegratesPowerOverStates) {
  const PowerModel pm(paper_config());
  const Timeline tl = uniform_timeline(1, 2.0, 3.0);
  const Gear g{2.3, 1.5};
  const double expected =
      2.0 * pm.total_power(g, true) + 3.0 * pm.total_power(g, false);
  EXPECT_NEAR(pm.rank_energy(tl, 0, g), expected, 1e-12);
}

TEST(Energy, BaselineEqualsPerRankSum) {
  const PowerModel pm(paper_config());
  const Timeline tl = uniform_timeline(4, 1.0, 0.5);
  const std::vector<Gear> gears(4, paper_config().reference);
  EXPECT_NEAR(pm.baseline_energy(tl), pm.total_energy(tl, gears), 1e-12);
}

TEST(Energy, LowerGearUsesLessEnergyWhenTimeFixed) {
  // Same timeline (communication-only rank): lower gear strictly cheaper.
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 5.0, RankState::kWait, -1});
  const double high = pm.rank_energy(tl, 0, Gear{2.3, 1.5});
  const double low = pm.rank_energy(tl, 0, Gear{0.8, 1.0});
  EXPECT_LT(low, high);
}

TEST(Energy, ShortLaneChargedIdleTail) {
  const PowerModel pm(paper_config());
  Timeline tl(2);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1});
  tl.append(1, {0.0, 4.0, RankState::kCompute, -1});
  const Gear g = paper_config().reference;
  // Rank 0's missing 3 s tail is charged at communication activity.
  const double expected =
      1.0 * pm.total_power(g, true) + 3.0 * pm.total_power(g, false);
  EXPECT_NEAR(pm.rank_energy(tl, 0, g), expected, 1e-12);
}

TEST(Energy, GearCountMismatchThrows) {
  const PowerModel pm(paper_config());
  const Timeline tl = uniform_timeline(3, 1.0, 1.0);
  const std::vector<Gear> gears(2, paper_config().reference);
  EXPECT_THROW(pm.total_energy(tl, gears), Error);
}

TEST(Energy, ScheduledEnergyUsesPerIterationGears) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, 0});
  tl.append(0, {1.0, 2.0, RankState::kCompute, -1, 1});
  const Gear fast{2.3, 1.5};
  const Gear slow{0.8, 1.0};
  const std::vector<std::vector<Gear>> schedule{{fast}, {slow}};
  const std::vector<Gear> fallback{fast};
  const double expected = 1.0 * pm.total_power(fast, true) +
                          1.0 * pm.total_power(slow, true);
  EXPECT_NEAR(pm.scheduled_energy(tl, schedule, fallback), expected, 1e-12);
}

TEST(Energy, ScheduledEnergyFallsBackOutsideIterations) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, -1});  // prologue
  tl.append(0, {1.0, 2.0, RankState::kCompute, -1, 0});
  const Gear fast{2.3, 1.5};
  const Gear slow{0.8, 1.0};
  const std::vector<std::vector<Gear>> schedule{{slow}};
  const std::vector<Gear> fallback{fast};
  const double expected = 1.0 * pm.total_power(fast, true) +
                          1.0 * pm.total_power(slow, true);
  EXPECT_NEAR(pm.scheduled_energy(tl, schedule, fallback), expected, 1e-12);
}

TEST(Energy, ScheduledEnergyChargesIdleTailAtFallback) {
  const PowerModel pm(paper_config());
  Timeline tl(2);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, 0});
  tl.append(1, {0.0, 3.0, RankState::kCompute, -1, 0});
  const Gear ref{2.3, 1.5};
  const std::vector<std::vector<Gear>> schedule{{ref, ref}};
  const std::vector<Gear> fallback{ref, ref};
  const double expected = 1.0 * pm.total_power(ref, true) +
                          2.0 * pm.total_power(ref, false) +  // rank 0 tail
                          3.0 * pm.total_power(ref, true);
  EXPECT_NEAR(pm.scheduled_energy(tl, schedule, fallback), expected, 1e-12);
}

TEST(Energy, ScheduledEnergyValidatesShapes) {
  const PowerModel pm(paper_config());
  Timeline tl(2);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, 0});
  tl.append(1, {0.0, 1.0, RankState::kCompute, -1, 0});
  const Gear ref{2.3, 1.5};
  EXPECT_THROW(
      pm.scheduled_energy(tl, {{ref}}, std::vector<Gear>{ref, ref}),
      Error);
  EXPECT_THROW(
      pm.scheduled_energy(tl, {{ref, ref}}, std::vector<Gear>{ref}),
      Error);
}

TEST(PowerSeries, FlatForConstantActivity) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 4.0, RankState::kCompute, -1, -1});
  const std::vector<Gear> gears{{2.3, 1.5}};
  const auto series = pm.power_series(tl, gears, 1.0);
  ASSERT_EQ(series.size(), 4u);
  const double expected = pm.total_power(gears[0], true);
  for (const double p : series) EXPECT_NEAR(p, expected, 1e-12);
}

TEST(PowerSeries, StepsDownWhenComputeEnds) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 2.0, RankState::kCompute, -1, -1});
  tl.append(0, {2.0, 4.0, RankState::kWait, -1, -1});
  const std::vector<Gear> gears{{2.3, 1.5}};
  const auto series = pm.power_series(tl, gears, 1.0);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_GT(series[0], series[3]);
  EXPECT_NEAR(series[3], pm.total_power(gears[0], false), 1e-12);
}

TEST(PowerSeries, IntegratesBackToTotalEnergy) {
  const PowerModel pm(paper_config());
  Timeline tl(2);
  tl.append(0, {0.0, 1.3, RankState::kCompute, -1, -1});
  tl.append(0, {1.3, 2.1, RankState::kRecv, -1, -1});
  tl.append(1, {0.0, 3.7, RankState::kCompute, -1, -1});
  const std::vector<Gear> gears{{1.4, 1.2}, {2.0, 1.4}};
  const Seconds dt = 0.23;  // deliberately not dividing the makespan
  const auto series = pm.power_series(tl, gears, dt);
  double integrated = 0.0;
  for (const double p : series) integrated += p * dt;
  EXPECT_NEAR(integrated, pm.total_energy(tl, gears), 1e-9);
}

TEST(PowerSeries, SplitsIntervalsAcrossBins) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 1.5, RankState::kCompute, -1, -1});
  tl.append(0, {1.5, 2.0, RankState::kWait, -1, -1});
  const std::vector<Gear> gears{{2.3, 1.5}};
  const auto series = pm.power_series(tl, gears, 1.0);
  ASSERT_EQ(series.size(), 2u);
  // Bin 1 is half compute, half wait.
  const double expected = 0.5 * pm.total_power(gears[0], true) +
                          0.5 * pm.total_power(gears[0], false);
  EXPECT_NEAR(series[1], expected, 1e-12);
}

TEST(PowerSeries, RejectsBadArguments) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, -1, -1});
  const std::vector<Gear> gears{{2.3, 1.5}};
  EXPECT_THROW(pm.power_series(tl, gears, 0.0), Error);
  const std::vector<Gear> wrong(2, Gear{2.3, 1.5});
  EXPECT_THROW(pm.power_series(tl, wrong, 1.0), Error);
}

TEST(Energy, PhaseEnergyChargesPerPhaseGears) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, 0, -1});
  tl.append(0, {1.0, 2.0, RankState::kWait, -1, -1});
  tl.append(0, {2.0, 3.0, RankState::kCompute, 1, -1});
  const Gear fast{2.3, 1.5};
  const Gear slow{0.8, 1.0};
  const Gear mid{1.4, 1.2};
  const std::vector<std::int32_t> phases{0, 1};
  const std::vector<std::vector<Gear>> phase_gears{{slow}, {mid}};
  const std::vector<Gear> fallback{fast};
  const double expected = 1.0 * pm.total_power(slow, true) +
                          1.0 * pm.total_power(fast, false) +
                          1.0 * pm.total_power(mid, true);
  EXPECT_NEAR(pm.phase_energy(tl, phases, phase_gears, fallback), expected,
              1e-12);
}

TEST(Energy, PhaseEnergyRejectsUnknownPhaseLabel) {
  const PowerModel pm(paper_config());
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kCompute, 7, -1});
  const Gear ref{2.3, 1.5};
  const std::vector<std::int32_t> phases{0};
  const std::vector<std::vector<Gear>> phase_gears{{ref}};
  EXPECT_THROW(
      pm.phase_energy(tl, phases, phase_gears, std::vector<Gear>{ref}),
      Error);
}

TEST(Energy, PhaseEnergyMatchesTotalEnergyForUniformGears) {
  const PowerModel pm(paper_config());
  Timeline tl(2);
  tl.append(0, {0.0, 1.0, RankState::kCompute, 0, -1});
  tl.append(0, {1.0, 1.5, RankState::kWait, -1, -1});
  tl.append(1, {0.0, 1.5, RankState::kCompute, 0, -1});
  const std::vector<Gear> gears{{1.4, 1.2}, {2.0, 1.4}};
  const std::vector<std::int32_t> phases{0};
  const std::vector<std::vector<Gear>> phase_gears{gears};
  EXPECT_NEAR(pm.phase_energy(tl, phases, phase_gears, gears),
              pm.total_energy(tl, gears), 1e-12);
}

TEST(Energy, HigherStaticFractionFlattensFrequencySavings) {
  // With overwhelmingly static power, down-clocking saves much less.
  Timeline tl(1);
  tl.append(0, {0.0, 1.0, RankState::kWait, -1});
  PowerModelConfig low_static = paper_config();
  low_static.static_fraction = 0.0;
  PowerModelConfig high_static = paper_config();
  high_static.static_fraction = 0.9;
  const PowerModel pm_low(low_static);
  const PowerModel pm_high(high_static);
  const auto ratio = [&](const PowerModel& pm) {
    return pm.rank_energy(tl, 0, Gear{0.8, 1.0}) /
           pm.rank_energy(tl, 0, Gear{2.3, 1.5});
  };
  EXPECT_LT(ratio(pm_low), ratio(pm_high));
}

}  // namespace
}  // namespace pals
