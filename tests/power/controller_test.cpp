// Property battery for the online DVFS controllers (power/controller.hpp,
// core/controllers.hpp) and their replay hooks
// (core/controller_pipeline.hpp):
//
//  * static adapters reproduce the one-shot assigner gear-for-gear,
//  * no controller slows an iteration past the critical path on
//    stationary traces (the paper's time contract, generalized),
//  * zero-transition-cost dynamic re-solvers on a drift-free trace match
//    the static assignment exactly (schedule, time and energy),
//  * switch accounting (stalls, regulator energy) is exact,
//  * unmarked traces degrade to the static whole-run assignment,
//  * gear_stuck faults pin the schedule and the energy books balance,
//  * controller sweeps stay byte-identical across thread counts, and the
//    slack controller strictly dominates static AVG on a drifting
//    workload (the headline Pareto result, pinned as a test),
//  * fresh schedules on the committed drift4 fixture match the golden
//    CSV byte-for-byte (regenerate with tools/update_golden).
#include "core/controllers.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/controller_study.hpp"
#include "analysis/pareto.hpp"
#include "analysis/sweep.hpp"
#include "core/controller_pipeline.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

#ifndef PALS_SOURCE_DIR
#define PALS_SOURCE_DIR "."
#endif

namespace pals {
namespace {

/// Bulk-synchronous stationary trace: every iteration repeats the same
/// per-rank compute pattern (weights · base) plus a tiny allreduce.
Trace bsp_trace(const std::vector<double>& weights, int iterations = 5,
                double base = 0.1) {
  Trace t(static_cast<Rank>(weights.size()));
  for (Rank r = 0; r < t.n_ranks(); ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < iterations; ++i) {
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(base * weights[static_cast<std::size_t>(r)])
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

/// Rotating hotspot: the hot rank advances one position per iteration, so
/// per-iteration imbalance is large while whole-run totals balance out.
Trace drift_trace(Rank ranks = 4, int iterations = 8, double hot = 0.4,
                  double cold = 0.1) {
  Trace t(ranks);
  for (Rank r = 0; r < ranks; ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < iterations; ++i) {
      const bool is_hot = i % static_cast<int>(ranks) == static_cast<int>(r);
      b.marker(MarkerKind::kIterationBegin, i)
          .compute(is_hot ? hot : cold)
          .collective(CollectiveOp::kAllreduce, 8)
          .marker(MarkerKind::kIterationEnd, i);
    }
  }
  return t;
}

/// Same compute pattern as bsp_trace but without iteration markers — a
/// trace no per-iteration schedule can attach to.
Trace unmarked_trace(const std::vector<double>& weights, int repeats = 5,
                     double base = 0.1) {
  Trace t(static_cast<Rank>(weights.size()));
  for (Rank r = 0; r < t.n_ranks(); ++r) {
    TraceBuilder b(t, r);
    for (int i = 0; i < repeats; ++i) {
      b.compute(base * weights[static_cast<std::size_t>(r)])
          .collective(CollectiveOp::kAllreduce, 8);
    }
  }
  return t;
}

PipelineConfig controller_config(ControllerKind kind,
                                 Algorithm algorithm = Algorithm::kMax) {
  PipelineConfig c = default_pipeline_config(paper_uniform(6), algorithm);
  c.controller.kind = kind;
  return c;
}

void expect_gears_equal(std::span<const Gear> actual,
                        std::span<const Gear> expected,
                        const std::string& what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t r = 0; r < actual.size(); ++r) {
    EXPECT_DOUBLE_EQ(actual[r].frequency_ghz, expected[r].frequency_ghz)
        << what << ", rank " << r;
    EXPECT_DOUBLE_EQ(actual[r].voltage_v, expected[r].voltage_v)
        << what << ", rank " << r;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const std::vector<double> kImbalanced{0.2, 0.5, 0.8, 1.0};
const std::vector<double> kBalanced{1.0, 1.0, 1.0, 1.0};

TEST(ControllerNames, RoundTripThroughParser) {
  for (const std::string& name : controller_names())
    EXPECT_EQ(to_string(controller_by_name(name)), name);
  EXPECT_EQ(controller_names().size(), 5u);
}

TEST(ControllerNames, UnknownNameIsRejectedWithSuggestions) {
  try {
    controller_by_name("warp-speed");
    FAIL() << "unknown controller must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("warp-speed"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dynamic_max"), std::string::npos);
  }
}

TEST(ControllerNames, FactoryNamesMatchTheRegistry) {
  const AlgorithmConfig algorithm =
      default_pipeline_config(paper_uniform(6)).algorithm;
  const PowerModelConfig power = default_pipeline_config(paper_uniform(6)).power;
  for (const std::string& name : controller_names()) {
    ControllerOptions options;
    options.kind = controller_by_name(name);
    EXPECT_EQ(make_controller(options, algorithm, power)->name(), name);
  }
}

TEST(ControllerOptions, ValidationRejectsBadKnobs) {
  ControllerOptions bad;
  bad.transition_latency = -1.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControllerOptions{};
  bad.transition_energy = -0.1;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControllerOptions{};
  bad.slack_threshold = 0.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControllerOptions{};
  bad.slack_threshold = 1.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControllerOptions{};
  bad.hysteresis = 1.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControllerOptions{};
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(bad.validate(), Error);
  ControllerOptions good;
  EXPECT_NO_THROW(good.validate());
}

TEST(ControllerPipeline, PerPhaseAndControllerAreMutuallyExclusive) {
  PipelineConfig c = controller_config(ControllerKind::kDynamicMax);
  c.per_phase = true;
  EXPECT_THROW(run_pipeline(bsp_trace(kImbalanced), c), Error);
}

// The static adapter must reproduce the one-shot assigner gear-for-gear,
// for every algorithm, in every iteration of the schedule.
TEST(ControllerPipeline, StaticAdapterReproducesOneShotAssignment) {
  const Trace trace = bsp_trace(kImbalanced);
  for (const Algorithm algorithm :
       {Algorithm::kMax, Algorithm::kAvg, Algorithm::kEnergyOptimalMax}) {
    const PipelineConfig config =
        controller_config(ControllerKind::kStatic, algorithm);
    // kStatic routes run_pipeline through the classic one-shot path.
    const PipelineResult classic = run_pipeline(trace, config);
    const ControllerPipelineResult adapted =
        run_controller_pipeline(trace, config);
    ASSERT_EQ(adapted.controller.iterations, 5u);
    EXPECT_EQ(adapted.controller.switches, 0u);
    for (const std::vector<Gear>& row : adapted.controller.schedule)
      expect_gears_equal(row, classic.assignment.gears, "static adapter");
    EXPECT_NEAR(adapted.pipeline.scaled_time, classic.scaled_time,
                1e-12 * classic.scaled_time);
    EXPECT_NEAR(adapted.pipeline.scaled_energy, classic.scaled_energy,
                1e-9 * classic.scaled_energy);
  }
}

// The paper's time contract, generalized: on a stationary trace no
// controller may stretch the run beyond the baseline critical path (the
// MAX scenario algorithm never over-clocks, so faster is impossible too).
TEST(ControllerPipeline, TimeContractHoldsOnStationaryTraces) {
  for (const auto& weights : {kImbalanced, kBalanced}) {
    const Trace trace = bsp_trace(weights, 6);
    for (const std::string& name : controller_names()) {
      const ControllerPipelineResult result = run_controller_pipeline(
          trace, controller_config(controller_by_name(name)));
      EXPECT_LE(result.pipeline.normalized_time(), 1.0 + 1e-9)
          << name << " stretched a stationary trace";
      EXPECT_DOUBLE_EQ(result.pipeline.overclocked_fraction, 0.0) << name;
    }
  }
}

// With free switching and nothing drifting, the per-iteration MAX
// re-solver must land on the static MAX assignment every iteration —
// same schedule, same makespan, energy equal to round-trip precision.
// The EWMA predictor sees the same (constant) loads and must agree.
TEST(ControllerPipeline, ZeroCostDynamicMatchesStaticOnDriftFreeTrace) {
  const Trace trace = bsp_trace(kImbalanced, 6);
  const ControllerPipelineResult fixed =
      run_controller_pipeline(trace, controller_config(ControllerKind::kStatic));
  for (const ControllerKind kind :
       {ControllerKind::kDynamicMax, ControllerKind::kEwma}) {
    const ControllerPipelineResult dynamic =
        run_controller_pipeline(trace, controller_config(kind));
    EXPECT_EQ(dynamic.controller.switches, 0u) << to_string(kind);
    ASSERT_EQ(dynamic.controller.schedule.size(),
              fixed.controller.schedule.size());
    for (std::size_t i = 0; i < dynamic.controller.schedule.size(); ++i)
      expect_gears_equal(dynamic.controller.schedule[i],
                         fixed.controller.schedule[i],
                         to_string(kind) + " iteration " + std::to_string(i));
    EXPECT_DOUBLE_EQ(dynamic.pipeline.scaled_time, fixed.pipeline.scaled_time)
        << to_string(kind);
    EXPECT_NEAR(dynamic.pipeline.scaled_energy, fixed.pipeline.scaled_energy,
                1e-12 * fixed.pipeline.scaled_energy)
        << to_string(kind);
  }
}

// Transition accounting: identical schedules with and without costs (the
// observations don't change — stalls are outside the compute bursts), and
// the books must balance exactly: stall = switches · latency, regulator
// energy = switches · per-switch energy, both strictly slowing/costing.
TEST(ControllerPipeline, SwitchesAreCountedAndCosted) {
  const Trace trace = drift_trace();
  const PipelineConfig free = controller_config(ControllerKind::kDynamicMax);
  PipelineConfig priced = free;
  priced.controller.transition_latency = 0.01;
  priced.controller.transition_energy = 0.5;

  const ControllerPipelineResult cheap = run_controller_pipeline(trace, free);
  const ControllerPipelineResult costly =
      run_controller_pipeline(trace, priced);

  ASSERT_GT(costly.controller.switches, 0u);
  EXPECT_EQ(costly.controller.switches, cheap.controller.switches);
  ASSERT_EQ(costly.controller.schedule.size(),
            cheap.controller.schedule.size());
  for (std::size_t i = 0; i < costly.controller.schedule.size(); ++i)
    expect_gears_equal(costly.controller.schedule[i],
                       cheap.controller.schedule[i],
                       "iteration " + std::to_string(i));

  const double switches =
      static_cast<double>(costly.controller.switches);
  EXPECT_DOUBLE_EQ(costly.controller.transition_stall_seconds,
                   switches * 0.01);
  EXPECT_DOUBLE_EQ(costly.controller.transition_energy, switches * 0.5);
  EXPECT_GT(costly.pipeline.scaled_time, cheap.pipeline.scaled_time);
  EXPECT_GT(costly.pipeline.scaled_energy,
            cheap.pipeline.scaled_energy + switches * 0.5 - 1e-9);
}

// A trace without iteration markers cannot carry a per-iteration
// schedule: the run must degrade to the whole-run static assignment and
// say so, not throw.
TEST(ControllerPipeline, UnmarkedTraceFallsBackToStatic) {
  const Trace trace = unmarked_trace(kImbalanced);
  ASSERT_EQ(trace.iteration_count(), 0u);
  const PipelineConfig config = controller_config(ControllerKind::kDynamicMax);
  const ControllerPipelineResult result =
      run_controller_pipeline(trace, config);
  EXPECT_TRUE(result.controller.fell_back_static);
  EXPECT_TRUE(result.controller.schedule.empty());
  EXPECT_EQ(result.controller.iterations, 0u);

  PipelineConfig static_config = config;
  static_config.controller.kind = ControllerKind::kStatic;
  const PipelineResult classic = run_pipeline(trace, static_config);
  expect_gears_equal(result.pipeline.assignment.gears, classic.assignment.gears,
                     "fallback assignment");
  EXPECT_DOUBLE_EQ(result.pipeline.scaled_energy, classic.scaled_energy);
  EXPECT_DOUBLE_EQ(result.pipeline.scaled_time, classic.scaled_time);

  // run_pipeline dispatches through the same fallback for unmarked traces.
  const PipelineResult dispatched = run_pipeline(trace, config);
  EXPECT_DOUBLE_EQ(dispatched.scaled_energy, classic.scaled_energy);
}

// A stuck DVFS actuator overrides whatever the controller asks for, in
// every iteration — and the energy accounting must agree with an
// independent recomputation from the pinned schedule.
TEST(ControllerPipeline, GearStuckFaultPinsScheduleAndEnergyAgrees) {
  const fault::Injector injector(fault::FaultPlan::parse(
      "seed=1; gear_stuck:rank=0,gear=min; gear_stuck:rank=2,gear=max"));
  PipelineConfig config = controller_config(ControllerKind::kSlack);
  config.replay.faults = &injector;
  const Trace trace = drift_trace();
  const ControllerPipelineResult result =
      run_controller_pipeline(trace, config);

  const Gear pinned_min = config.algorithm.gear_set.min_gear();
  const Gear pinned_max = config.algorithm.gear_set.max_gear();
  ASSERT_FALSE(result.controller.schedule.empty());
  for (const std::vector<Gear>& row : result.controller.schedule) {
    EXPECT_DOUBLE_EQ(row[0].frequency_ghz, pinned_min.frequency_ghz);
    EXPECT_DOUBLE_EQ(row[0].voltage_v, pinned_min.voltage_v);
    EXPECT_DOUBLE_EQ(row[2].frequency_ghz, pinned_max.frequency_ghz);
    EXPECT_DOUBLE_EQ(row[2].voltage_v, pinned_max.voltage_v);
  }

  const PowerModel power(config.power);
  EXPECT_DOUBLE_EQ(
      result.pipeline.scaled_energy,
      power.scheduled_energy(result.pipeline.scaled_replay.timeline,
                             result.controller.schedule,
                             result.controller.schedule.front()) +
          result.controller.transition_energy);
}

TEST(GoldenSchedules, Drift4MatchesPinnedCsv) {
  const Trace drift = read_trace_auto(std::string(PALS_SOURCE_DIR) +
                                      "/tests/power/fixtures/drift4.palst");
  const std::string pinned =
      read_file(std::string(PALS_SOURCE_DIR) +
                "/golden/controller_schedules.csv");
  // Byte-for-byte: schedule regressions must show as reviewable diffs.
  // Regenerate intentionally with tools/update_golden.
  EXPECT_EQ(controller_schedules_csv(drift), pinned);
}

TEST(ControllerSweep, GridAxisExpandsInCanonicalOrder) {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.9:2"};
  grid.gear_sets = {"uniform-6"};
  grid.algorithms = {Algorithm::kAvg};
  grid.controllers = {"static", "slack"};
  grid.betas = {0.5};
  const std::vector<Scenario> scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].controller, "static");
  EXPECT_EQ(scenarios[1].controller, "slack");
  // Static keeps the classic label; dynamic variants lead with the policy.
  EXPECT_EQ(scenarios[0].variant_label().find("slack"), std::string::npos);
  EXPECT_EQ(scenarios[1].variant_label().rfind("slack", 0), 0u);
}

TEST(ControllerSweep, UnknownControllerInGridIsRejected) {
  SweepGrid grid;
  grid.workloads = {"cg:8:0.9:2"};
  grid.gear_sets = {"uniform-6"};
  grid.controllers = {"static", "turbo"};
  EXPECT_THROW(grid.validate(), Error);
}

TEST(ControllerSweep, RowsAreByteIdenticalAcrossJobCounts) {
  SweepGrid grid;
  grid.workloads = {"amr-drift:8:0.7:6"};
  grid.gear_sets = {"uniform-6"};
  grid.algorithms = {Algorithm::kAvg};
  grid.controllers = controller_names();
  grid.betas = {0.5};
  grid.iterations = 6;
  const std::vector<Scenario> scenarios = grid.expand();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const SweepResult a = run_sweep(scenarios, serial);
  const SweepResult b = run_sweep(scenarios, parallel);
  ASSERT_EQ(a.rows.size(), scenarios.size());
  EXPECT_EQ(rows_to_csv(a.rows), rows_to_csv(b.rows));
}

// The headline result of the controller study, pinned as a test: on a
// slowly drifting workload (balanced totals, migrating hotspot) the
// slack controller strictly dominates the static AVG assignment — less
// energy at equal-or-better time — so static falls off the Pareto front.
TEST(ControllerSweep, SlackDominatesStaticAvgOnDriftingWorkload) {
  SweepGrid grid;
  grid.workloads = {"amr-drift:16:0.7:48"};
  grid.gear_sets = {"uniform-6"};
  grid.algorithms = {Algorithm::kAvg};
  grid.controllers = {"static", "slack"};
  grid.betas = {0.5};
  const SweepResult result = run_sweep(grid.expand(), SweepOptions{});
  ASSERT_EQ(result.rows.size(), 2u);
  const ExperimentRow& fixed = result.rows[0];
  const ExperimentRow& slack = result.rows[1];
  ASSERT_EQ(slack.variant.rfind("slack", 0), 0u) << slack.variant;

  EXPECT_LE(slack.normalized_time, fixed.normalized_time + 1e-9);
  EXPECT_LT(slack.normalized_energy, fixed.normalized_energy - 0.15);

  const std::vector<ParetoEntry> front = pareto_front(result.rows);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_FALSE(front[0].on_front) << "static AVG must be dominated";
  EXPECT_TRUE(front[1].on_front);
}

}  // namespace
}  // namespace pals
