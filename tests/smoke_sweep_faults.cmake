# Fault-tolerant sweep end to end: a plan that degrades one rank's link
# 4x, retries flaky cells and crashes one cell must (a) complete with
# exit code 3 ("completed with quarantined cells"), (b) emit errors.csv,
# and (c) produce byte-identical results.csv/errors.csv for 1 and 8
# worker threads.
file(MAKE_DIRECTORY ${WORK_DIR})

set(PLAN "seed=42; link_degrade:rank=3,t=0.5s,factor=4x; \
scenario_flaky:rate=0.4,failures=2; scenario_crash:index=2")

function(run_fault_sweep jobs)
  execute_process(
    COMMAND ${PALS_SWEEP} --grid=${GRID} --jobs=${jobs} --quiet
            --keep-going --max-retries=3 "--faults=${PLAN}"
            --out=${WORK_DIR}/fault_j${jobs}.csv
            --errors=${WORK_DIR}/fault_errors_j${jobs}.csv
    RESULT_VARIABLE code)
  if(NOT code EQUAL 3)
    message(FATAL_ERROR
            "expected exit 3 (quarantined cells) from --jobs=${jobs}, "
            "got ${code}")
  endif()
endfunction()

run_fault_sweep(1)
run_fault_sweep(8)

foreach(artifact fault_j fault_errors_j)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/${artifact}1.csv ${WORK_DIR}/${artifact}8.csv
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "${artifact}*.csv differ between --jobs=1 and --jobs=8")
  endif()
endforeach()

# The crash cell must actually be quarantined: header plus >= 1 record.
file(STRINGS ${WORK_DIR}/fault_errors_j1.csv error_lines)
list(LENGTH error_lines n_lines)
if(n_lines LESS 2)
  message(FATAL_ERROR "errors.csv has no quarantined cells (${n_lines} lines)")
endif()

# A clean keep-going run exits 0 and leaves a header-only errors.csv.
execute_process(
  COMMAND ${PALS_SWEEP} --grid=${GRID} --jobs=2 --quiet --keep-going
          --out=${WORK_DIR}/clean.csv --errors=${WORK_DIR}/clean_errors.csv
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "clean keep-going sweep exited ${code}")
endif()
file(STRINGS ${WORK_DIR}/clean_errors.csv clean_lines)
list(LENGTH clean_lines n_clean)
if(NOT n_clean EQUAL 1)
  message(FATAL_ERROR
          "clean errors.csv should be header-only, has ${n_clean} lines")
endif()
