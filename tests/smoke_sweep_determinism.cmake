# End-to-end determinism check for pals_sweep: the same grid run with
# 1 and 8 worker threads must produce byte-identical CSVs.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}")
  endif()
endfunction()

run_step(${PALS_SWEEP} --grid=${GRID} --jobs=1 --quiet
         --out=${WORK_DIR}/sweep_j1.csv --summary=${WORK_DIR}/sweep_j1.kv)
run_step(${PALS_SWEEP} --grid=${GRID} --jobs=8 --quiet
         --out=${WORK_DIR}/sweep_j8.csv --summary=${WORK_DIR}/sweep_j8.kv)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/sweep_j1.csv ${WORK_DIR}/sweep_j8.csv
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "pals_sweep CSVs differ between --jobs=1 and --jobs=8")
endif()
