#include "workloads/imbalance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace pals {
namespace {

void check_n(Rank n) { PALS_CHECK_MSG(n > 0, "need at least one rank"); }

void normalize_max_to_one(std::vector<double>& w) {
  const double mx = *std::max_element(w.begin(), w.end());
  PALS_CHECK_MSG(mx > 0.0, "weights must contain a positive value");
  for (double& x : w) x /= mx;
}

}  // namespace

std::vector<double> shape_uniform_noise(Rank n, double spread, Rng& rng) {
  check_n(n);
  PALS_CHECK_MSG(spread >= 0.0 && spread < 1.0, "spread must lie in [0, 1)");
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& x : w) x = 1.0 - rng.uniform(0.0, spread);
  // Pin the heaviest rank to exactly 1 so LB == mean(w).
  const auto heaviest = std::max_element(w.begin(), w.end());
  *heaviest = 1.0;
  return w;
}

std::vector<double> shape_linear(Rank n, double min_ratio) {
  check_n(n);
  PALS_CHECK_MSG(min_ratio > 0.0 && min_ratio <= 1.0,
                 "min_ratio must lie in (0, 1]");
  std::vector<double> w(static_cast<std::size_t>(n));
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  for (Rank k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(n - 1);
    w[static_cast<std::size_t>(k)] = min_ratio + (1.0 - min_ratio) * t;
  }
  return w;
}

std::vector<double> shape_geometric(Rank n, double ratio) {
  check_n(n);
  PALS_CHECK_MSG(ratio > 0.0 && ratio < 1.0, "ratio must lie in (0, 1)");
  std::vector<double> w(static_cast<std::size_t>(n));
  for (Rank k = 0; k < n; ++k)
    w[static_cast<std::size_t>(k)] = std::pow(ratio, static_cast<double>(k));
  // Interleave heavy and light ranks: even ranks take the heavy half in
  // order, odd ranks the light half, so neighbours differ in load.
  std::vector<double> interleaved(w.size());
  std::size_t lo = 0;
  std::size_t hi = w.size() - 1;
  for (std::size_t k = 0; k < w.size(); ++k)
    interleaved[k] = (k % 2 == 0) ? w[lo++] : w[hi--];
  return interleaved;
}

std::vector<double> shape_zones(Rank n, Rank heavy_count, double light_ratio,
                                double jitter, Rng& rng) {
  check_n(n);
  PALS_CHECK_MSG(heavy_count > 0 && heavy_count <= n,
                 "heavy_count must lie in [1, n]");
  PALS_CHECK_MSG(light_ratio > 0.0 && light_ratio < 1.0,
                 "light_ratio must lie in (0, 1)");
  PALS_CHECK_MSG(jitter >= 0.0 && jitter < 1.0, "jitter must lie in [0, 1)");
  std::vector<double> w(static_cast<std::size_t>(n));
  // Spread the heavy ranks evenly through the rank space.
  const double stride = static_cast<double>(n) / static_cast<double>(heavy_count);
  std::vector<bool> heavy(static_cast<std::size_t>(n), false);
  for (Rank h = 0; h < heavy_count; ++h) {
    auto idx = static_cast<std::size_t>(std::floor(static_cast<double>(h) *
                                                   stride));
    while (heavy[idx]) idx = (idx + 1) % w.size();
    heavy[idx] = true;
  }
  for (std::size_t k = 0; k < w.size(); ++k) {
    const double base = heavy[k] ? 1.0 : light_ratio;
    w[k] = base * (1.0 - rng.uniform(0.0, jitter));
  }
  normalize_max_to_one(w);
  return w;
}

std::vector<double> shape_single_hot(Rank n, double base_ratio, double jitter,
                                     Rng& rng) {
  check_n(n);
  PALS_CHECK_MSG(base_ratio > 0.0 && base_ratio < 1.0,
                 "base_ratio must lie in (0, 1)");
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& x : w) x = base_ratio * (1.0 - rng.uniform(0.0, jitter));
  w[static_cast<std::size_t>(n) / 2] = 1.0;  // hot rank in the middle
  return w;
}

std::vector<double> calibrate_to_lb(std::span<const double> weights,
                                    double target_lb) {
  PALS_CHECK_MSG(!weights.empty(), "no weights");
  PALS_CHECK_MSG(target_lb > 0.0 && target_lb <= 1.0,
                 "target LB must lie in (0, 1]");
  for (double x : weights)
    PALS_CHECK_MSG(x > 0.0 && x <= 1.0 + 1e-12,
                   "weights must lie in (0, 1]; got " << x);

  const auto lb_at = [&](double gamma) {
    double total = 0.0;
    for (double x : weights) total += std::pow(x, gamma);
    return total / static_cast<double>(weights.size());
  };

  // mean(w^gamma) is continuous and decreasing in gamma (w <= 1); gamma=0
  // gives 1, gamma -> inf gives (#weights==1)/N.
  constexpr double kGammaMax = 200.0;
  const double lb_min = lb_at(kGammaMax);
  PALS_CHECK_MSG(target_lb >= lb_min,
                 "target LB " << target_lb
                              << " below the shape's achievable minimum "
                              << lb_min);
  double lo = 0.0;
  double hi = kGammaMax;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (lb_at(mid) > target_lb)
      lo = mid;
    else
      hi = mid;
  }
  const double gamma = 0.5 * (lo + hi);
  std::vector<double> out(weights.size());
  for (std::size_t k = 0; k < weights.size(); ++k)
    out[k] = std::pow(weights[k], gamma);
  return out;
}

double weights_load_balance(std::span<const double> weights) {
  PALS_CHECK_MSG(!weights.empty(), "no weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double mx = *std::max_element(weights.begin(), weights.end());
  PALS_CHECK_MSG(mx > 0.0, "weights must contain a positive value");
  return total / (static_cast<double>(weights.size()) * mx);
}

}  // namespace pals
