// The paper's benchmark set (Table 3) as ready-to-build instances.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "workloads/apps.hpp"

namespace pals {

/// One application instance from Table 3 of the paper.
struct BenchmarkInstance {
  std::string name;       ///< e.g. "CG-32"
  Rank ranks = 0;
  double paper_lb = 0.0;  ///< load balance reported in Table 3
  double paper_pe = 0.0;  ///< parallel efficiency reported in Table 3
  WorkloadConfig config;
  std::function<Trace(const WorkloadConfig&)> factory;

  Trace make() const { return factory(config); }
};

/// All 12 instances of Table 3, in the paper's order. `iterations`
/// controls trace length (default 10, enough for stable LB/PE).
std::vector<BenchmarkInstance> paper_benchmarks(int iterations = 10);

/// The five applications shown in Figure 2 (space-limited subset).
std::vector<BenchmarkInstance> figure2_benchmarks(int iterations = 10);

/// Look up one instance by name ("CG-32" etc.).
std::optional<BenchmarkInstance> benchmark_by_name(const std::string& name,
                                                   int iterations = 10);

/// Generic factory access by application family name
/// ("cg", "mg", "is", "bt-mz", "specfem3d", "wrf", "pepc").
std::function<Trace(const WorkloadConfig&)> workload_factory(
    const std::string& family);

}  // namespace pals
