// NAS BT-MZ skeleton: multi-zone block-tridiagonal solver. Zones of very
// different sizes are pinned to ranks, yielding the strongest imbalance in
// the paper's benchmark set (LB 35 %); communication is light boundary
// exchange, so parallel efficiency tracks load balance.
#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr double kBaseSeconds = 0.08;   // heaviest zone per iteration
constexpr double kBoundaryBytes = 60e3; // zone boundary exchange

}  // namespace

Trace make_bt_mz(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 3);
  const Rank heavy = std::max<Rank>(1, config.ranks / 16);
  const std::vector<double> weights = calibrate_to_lb(
      shape_zones(config.ranks, heavy, 0.3, 0.08, rng), config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Bytes boundary =
      static_cast<Bytes>(kBoundaryBytes * config.comm_scale);
  const double base = kBaseSeconds * config.compute_scale;
  const Rank n = config.ranks;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    const Rank left = (r - 1 + n) % n;
    const Rank right = (r + 1) % n;
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      mpi.compute(base * w * j);  // per-zone ADI sweeps
      if (n > 1) {
        // Zone border exchange with both ring neighbours.
        mpi.irecv(left, 300, boundary);
        if (right != left) mpi.irecv(right, 300, boundary);
        mpi.isend(left, 300, boundary);
        if (right != left) mpi.isend(right, 300, boundary);
        mpi.waitall();
      }
      mpi.allreduce(8);  // residual check
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"BT-MZ-" + std::to_string(config.ranks)});
}

}  // namespace pals
