// SPECFEM3D skeleton: spectral-element seismic wave propagation on a 2-D
// partition of the basin mesh. Compute-dominated halo stencil; mesh
// heterogeneity (sediment vs. bedrock elements) produces the imbalance.
#include <algorithm>
#include <vector>

#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr int kSubsteps = 3;            // Newmark time-scheme stages
constexpr double kBaseSeconds = 0.1;    // heaviest rank per iteration
constexpr double kHaloBytes = 100e3;    // per-face boundary data

Rank grid_neighbour(const Grid2D& g, Rank r, int dx, int dy) {
  const Rank x = r % g.px;
  const Rank y = r / g.px;
  const Rank nx = (x + dx + g.px) % g.px;
  const Rank ny = (y + dy + g.py) % g.py;
  return nx + g.px * ny;
}

}  // namespace

Trace make_specfem3d(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 4);
  const std::vector<double> weights =
      calibrate_to_lb(shape_uniform_noise(config.ranks, 0.4, rng),
                      config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Grid2D grid = factor_2d(config.ranks);
  const Bytes halo = static_cast<Bytes>(kHaloBytes * config.comm_scale);
  const double base = kBaseSeconds * config.compute_scale;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    std::vector<Rank> partners;
    const int dirs[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    for (const auto& d : dirs) {
      const Rank p = grid_neighbour(grid, r, d[0], d[1]);
      if (p != r &&
          std::find(partners.begin(), partners.end(), p) == partners.end())
        partners.push_back(p);
    }
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      for (int step = 0; step < kSubsteps; ++step) {
        mpi.compute(base * w * j / kSubsteps);  // element matrix products
        for (const Rank p : partners) mpi.irecv(p, 400 + step, halo);
        for (const Rank p : partners) mpi.isend(p, 400 + step, halo);
        mpi.waitall();
      }
      mpi.allreduce(8);  // seismogram norm
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"SPECFEM3D-" + std::to_string(config.ranks)});
}

}  // namespace pals
