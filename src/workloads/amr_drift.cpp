// AMR-drift skeleton: an adaptive-mesh-refinement-style code whose
// refined (hot) region moves through the rank space over the run — e.g. a
// shock front crossing the domain. Every single iteration is imbalanced
// (per-iteration LB equals the configured target), but the hot spot
// visits every rank, so the *total* per-rank computation is nearly
// balanced. Static whole-run algorithms (MAX/AVG) see balanced totals and
// save nothing; a dynamic per-iteration runtime (core/jitter.hpp) tracks
// the drift.
#include <cmath>
#include <vector>

#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr double kBaseSeconds = 0.05;  // hot rank per iteration
constexpr double kHaloBytes = 32e3;    // ring halo exchange
constexpr double kBumpWidthRanks = 3.0;

/// Gaussian bump on a ring, centred at `hot`, exponent-calibrated to the
/// target LB.
std::vector<double> bump_weights(Rank n, double hot, double target_lb) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (Rank k = 0; k < n; ++k) {
    double d = std::abs(static_cast<double>(k) - hot);
    d = std::min(d, static_cast<double>(n) - d);  // ring distance
    w[static_cast<std::size_t>(k)] =
        std::exp(-d * d / (2.0 * kBumpWidthRanks * kBumpWidthRanks));
  }
  // Keep a floor so calibration has room below the target.
  for (double& x : w) x = 0.05 + 0.95 * x;
  return calibrate_to_lb(w, target_lb);
}

}  // namespace

Trace make_amr_drift(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 7);
  // The hot spot advances one full revolution over the run.
  std::vector<std::vector<double>> weights;
  weights.reserve(static_cast<std::size_t>(config.iterations));
  for (int it = 0; it < config.iterations; ++it) {
    const double hot = static_cast<double>(it) /
                       static_cast<double>(config.iterations) *
                       static_cast<double>(config.ranks);
    weights.push_back(bump_weights(config.ranks, hot, config.target_lb));
  }
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Bytes halo = static_cast<Bytes>(kHaloBytes * config.comm_scale);
  const double base = kBaseSeconds * config.compute_scale;
  const Rank n = config.ranks;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const Rank next = (r + 1) % n;
    const Rank prev = (r - 1 + n) % n;
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const auto i = static_cast<std::size_t>(it);
      mpi.compute(base * weights[i][static_cast<std::size_t>(r)] *
                  jitter[i][static_cast<std::size_t>(r)]);
      if (n > 1) {
        mpi.irecv(prev, 600, halo);
        if (next != prev) mpi.irecv(next, 601, halo);
        mpi.isend(next, 600, halo);
        if (next != prev) mpi.isend(prev, 601, halo);
        mpi.waitall();
      }
      mpi.allreduce(8);  // regridding decision
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"AMR-DRIFT-" + std::to_string(config.ranks)});
}

}  // namespace pals
