// NAS LU skeleton: SSOR solver with pipelined wavefront sweeps over a 2-D
// decomposition. Rank (i, j) waits for its north and west neighbours,
// computes its block, then forwards to south and east; the reverse sweep
// runs the opposite diagonal. Exercises long blocking dependency chains
// (every other generator is bulk-synchronous).
#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

// Heaviest rank per iteration at 32 ranks; class C strong-scales.
constexpr double kBaseSeconds32 = 0.07;
constexpr double kPencilBytes = 20e3;  // per-slab face exchange
constexpr int kSweepsPerIteration = 2; // lower + upper triangular
// The wave pipelines k-slabs: each rank forwards after every slab, so
// successive diagonals overlap (whole-block forwarding would serialize
// the grid and collapse parallel efficiency).
constexpr int kSlabs = 16;

}  // namespace

Trace make_lu(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 8);
  const std::vector<double> weights =
      calibrate_to_lb(shape_uniform_noise(config.ranks, 0.3, rng),
                      config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Grid2D grid = factor_2d(config.ranks);
  const Bytes pencil = static_cast<Bytes>(kPencilBytes * config.comm_scale);
  const double base = kBaseSeconds32 * 32.0 /
                      static_cast<double>(config.ranks) *
                      config.compute_scale /
                      static_cast<double>(kSweepsPerIteration);

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    const Rank x = r % grid.px;
    const Rank y = r / grid.px;
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      // Forward sweep: the wave travels from (0,0) to (px-1,py-1),
      // pipelined one k-slab at a time.
      for (int slab = 0; slab < kSlabs; ++slab) {
        if (x > 0) mpi.recv(r - 1, 700 + slab, pencil);
        if (y > 0) mpi.recv(r - grid.px, 720 + slab, pencil);
        mpi.compute(base * w * j / kSlabs);
        if (x + 1 < grid.px) mpi.send(r + 1, 700 + slab, pencil);
        if (y + 1 < grid.py) mpi.send(r + grid.px, 720 + slab, pencil);
      }
      // Backward sweep: the wave returns from (px-1,py-1) to (0,0).
      for (int slab = 0; slab < kSlabs; ++slab) {
        if (x + 1 < grid.px) mpi.recv(r + 1, 740 + slab, pencil);
        if (y + 1 < grid.py) mpi.recv(r + grid.px, 760 + slab, pencil);
        mpi.compute(base * w * j / kSlabs);
        if (x > 0) mpi.send(r - 1, 740 + slab, pencil);
        if (y > 0) mpi.send(r - grid.px, 760 + slab, pencil);
      }
      mpi.allreduce(40);  // five residual norms
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"LU-" + std::to_string(config.ranks)});
}

}  // namespace pals
