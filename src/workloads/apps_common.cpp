#include "workloads/apps.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace pals {

void WorkloadConfig::validate() const {
  PALS_CHECK_MSG(ranks > 0, "workload needs at least one rank");
  PALS_CHECK_MSG(iterations > 0, "workload needs at least one iteration");
  PALS_CHECK_MSG(target_lb > 0.0 && target_lb <= 1.0,
                 "target LB must lie in (0, 1]");
  PALS_CHECK_MSG(compute_scale > 0.0, "compute_scale must be positive");
  PALS_CHECK_MSG(comm_scale > 0.0, "comm_scale must be positive");
  PALS_CHECK_MSG(jitter >= 0.0 && jitter < 0.5, "jitter must lie in [0, 0.5)");
}

Grid3D factor_3d(Rank n) {
  PALS_CHECK_MSG(n > 0, "cannot factor zero ranks");
  Grid3D best{n, 1, 1};
  double best_surface = std::numeric_limits<double>::infinity();
  for (Rank pz = 1; pz * pz * pz <= n; ++pz) {
    if (n % pz != 0) continue;
    const Rank rest = n / pz;
    for (Rank py = pz; py * py <= rest; ++py) {
      if (rest % py != 0) continue;
      const Rank px = rest / py;
      // Prefer the most cubic decomposition (minimal surface/volume).
      const double surface = static_cast<double>(px) * py + //
                             static_cast<double>(py) * pz +
                             static_cast<double>(px) * pz;
      if (surface < best_surface) {
        best_surface = surface;
        best = Grid3D{px, py, pz};
      }
    }
  }
  return best;
}

Grid2D factor_2d(Rank n) {
  PALS_CHECK_MSG(n > 0, "cannot factor zero ranks");
  Grid2D best{n, 1};
  for (Rank py = 1; py * py <= n; ++py) {
    if (n % py == 0) best = Grid2D{n / py, py};
  }
  return best;
}

}  // namespace pals
