// Per-rank load profiles with exact load-balance calibration.
//
// The paper characterizes each application by its load balance
// LB = Σ T_k / (N · max T_k) (Table 3). Our synthetic workloads reproduce
// those values by construction: a shape function produces relative weights
// (max = 1), and calibrate_to_lb() exponent-warps the shape so that
// mean(weights) equals the target LB exactly while preserving max = 1 and
// the shape's rank ordering.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/types.hpp"
#include "util/rng.hpp"

namespace pals {

/// Weight shapes; every function returns `n` weights in (0, 1] with at
/// least one weight equal to 1.

/// Nearly balanced: 1 − U(0, spread) per rank (one rank pinned at 1).
std::vector<double> shape_uniform_noise(Rank n, double spread, Rng& rng);

/// Linear ramp from `min_ratio` (rank 0) to 1 (last rank).
std::vector<double> shape_linear(Rank n, double min_ratio);

/// Geometric decay: rank k gets ratio^k, re-sorted so the heavy ranks are
/// interleaved (avoids a pathological all-heavy-first layout).
std::vector<double> shape_geometric(Rank n, double ratio);

/// Two-level zones (BT-MZ style): `heavy_count` ranks at 1, the rest at
/// `light_ratio` (with multiplicative jitter).
std::vector<double> shape_zones(Rank n, Rank heavy_count, double light_ratio,
                                double jitter, Rng& rng);

/// One hot rank at 1, the rest near `base_ratio`.
std::vector<double> shape_single_hot(Rank n, double base_ratio, double jitter,
                                     Rng& rng);

/// Exponent-warp `weights` (each in (0,1], max = 1) so that
/// mean(w^gamma) == target_lb. Monotone in gamma, solved by bisection.
/// Requires target_lb in (min achievable, 1]; throws otherwise.
std::vector<double> calibrate_to_lb(std::span<const double> weights,
                                    double target_lb);

/// Load balance of a weight/time vector: mean/max.
double weights_load_balance(std::span<const double> weights);

}  // namespace pals
