// Synthetic application skeletons (stand-ins for the paper's benchmarks).
//
// Each generator emits, via the virtual MPI runtime, the communication
// structure and per-rank computation profile of one application:
//
//   CG        NAS CG: inner-iteration halo exchanges + dot-product
//             allreduces; nearly balanced.
//   MG        NAS MG: V-cycle over grid levels, 3-D halo exchanges whose
//             message sizes shrink with level; well balanced.
//   IS        NAS IS: bucket-sort alltoall dominated; strongly imbalanced
//             key distribution, very low parallel efficiency.
//   BT-MZ     NAS multi-zone BT: zones of very different sizes pinned to
//             ranks; the most imbalanced code in the paper.
//   SPECFEM3D seismic wave propagation: 2-D partition halo stencil,
//             compute-dominated.
//   WRF       weather prediction: multi-substep 2-D halo stencil.
//   PEPC      plasma tree code: two computation phases per iteration with
//             *different* imbalance patterns (the paper's explanation for
//             PEPC's poor behaviour under a single DVFS setting).
//
// Per-rank load profiles are calibrated (workloads/imbalance.hpp) so each
// instance's load balance matches Table 3 of the paper; message sizes are
// tuned so the replayed parallel efficiency lands near Table 3 as well.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace pals {

struct WorkloadConfig {
  Rank ranks = 32;
  int iterations = 10;
  std::uint64_t seed = 0x5EED;
  /// Target load balance (mean/max computation time), (0, 1].
  double target_lb = 0.9;
  /// Multiplier on every computation burst.
  double compute_scale = 1.0;
  /// Multiplier on every message size (parallel-efficiency tuning knob).
  double comm_scale = 1.0;
  /// Relative per-iteration noise on burst durations (iterative codes are
  /// regular but not exact).
  double jitter = 0.01;

  void validate() const;
};

Trace make_cg(const WorkloadConfig& config);
Trace make_mg(const WorkloadConfig& config);
Trace make_is(const WorkloadConfig& config);
Trace make_bt_mz(const WorkloadConfig& config);
Trace make_specfem3d(const WorkloadConfig& config);
Trace make_wrf(const WorkloadConfig& config);
Trace make_pepc(const WorkloadConfig& config);
/// AMR-style code whose hot region drifts across ranks over the run;
/// every iteration hits `target_lb`, the totals are nearly balanced.
/// Not part of the paper's Table 3 — used by the dynamic-runtime
/// extension study (core/jitter.hpp).
Trace make_amr_drift(const WorkloadConfig& config);
/// NAS LU: pipelined wavefront sweeps (blocking dependency chains).
/// Suite extension beyond the paper's benchmark subset.
Trace make_lu(const WorkloadConfig& config);
/// NAS FT: transpose-based 3-D FFT (all-to-all dominated, balanced).
/// Suite extension beyond the paper's benchmark subset.
Trace make_ft(const WorkloadConfig& config);

/// Near-cubic 3-D factorization of `n` ranks (px >= py >= pz, px·py·pz == n).
struct Grid3D {
  Rank px = 1, py = 1, pz = 1;
};
Grid3D factor_3d(Rank n);

/// Near-square 2-D factorization (px >= py, px·py == n).
struct Grid2D {
  Rank px = 1, py = 1;
};
Grid2D factor_2d(Rank n);

}  // namespace pals
