#include "workloads/registry.hpp"

#include "util/error.hpp"

namespace pals {
namespace {

struct InstanceSpec {
  const char* name;
  const char* family;
  Rank ranks;
  double lb;        // Table 3 load balance
  double pe;        // Table 3 parallel efficiency
  double comm_scale;
  double compute_scale;
};

// Communication/computation scales are calibrated so the replayed parallel
// efficiency matches Table 3 on the default platform model; load balance is
// matched by construction.
// comm_scale values produced by tools/calibrate_workloads (bisection on
// the replayed parallel efficiency against the paper's Table 3 values on
// the default platform model).
constexpr InstanceSpec kInstances[] = {
    {"BT-MZ-32", "bt-mz", 32, 0.3521, 0.3507, 0.02, 1.0},
    {"CG-32", "cg", 32, 0.9782, 0.7855, 1.80, 1.0},
    {"MG-32", "mg", 32, 0.9455, 0.8728, 4.88, 1.0},
    {"IS-32", "is", 32, 0.4377, 0.0821, 0.99, 1.0},
    {"SPECFEM3D-32", "specfem3d", 32, 0.9280, 0.9261, 0.02, 1.0},
    {"WRF-32", "wrf", 32, 0.9060, 0.8953, 0.0302, 1.0},
    {"CG-64", "cg", 64, 0.9346, 0.6336, 2.91, 1.0},
    {"MG-64", "mg", 64, 0.9150, 0.8560, 3.06, 1.0},
    {"IS-64", "is", 64, 0.4959, 0.1700, 0.41, 1.0},
    {"SPECFEM3D-96", "specfem3d", 96, 0.7907, 0.7865, 0.375, 1.0},
    {"PEPC-128", "pepc", 128, 0.7612, 0.6778, 0.02, 1.0},
    {"WRF-128", "wrf", 128, 0.9365, 0.8527, 0.41, 1.0},
};

BenchmarkInstance make_instance(const InstanceSpec& spec, int iterations) {
  BenchmarkInstance inst;
  inst.name = spec.name;
  inst.ranks = spec.ranks;
  inst.paper_lb = spec.lb;
  inst.paper_pe = spec.pe;
  inst.config.ranks = spec.ranks;
  inst.config.iterations = iterations;
  inst.config.target_lb = spec.lb;
  inst.config.comm_scale = spec.comm_scale;
  inst.config.compute_scale = spec.compute_scale;
  inst.factory = workload_factory(spec.family);
  return inst;
}

}  // namespace

std::vector<BenchmarkInstance> paper_benchmarks(int iterations) {
  std::vector<BenchmarkInstance> out;
  out.reserve(std::size(kInstances));
  for (const InstanceSpec& spec : kInstances)
    out.push_back(make_instance(spec, iterations));
  return out;
}

std::vector<BenchmarkInstance> figure2_benchmarks(int iterations) {
  std::vector<BenchmarkInstance> out;
  for (const char* name :
       {"BT-MZ-32", "CG-64", "SPECFEM3D-96", "PEPC-128", "WRF-128"}) {
    auto inst = benchmark_by_name(name, iterations);
    PALS_CHECK(inst.has_value());
    out.push_back(std::move(*inst));
  }
  return out;
}

std::optional<BenchmarkInstance> benchmark_by_name(const std::string& name,
                                                   int iterations) {
  for (const InstanceSpec& spec : kInstances)
    if (name == spec.name) return make_instance(spec, iterations);
  return std::nullopt;
}

std::function<Trace(const WorkloadConfig&)> workload_factory(
    const std::string& family) {
  if (family == "cg") return make_cg;
  if (family == "mg") return make_mg;
  if (family == "is") return make_is;
  if (family == "bt-mz") return make_bt_mz;
  if (family == "specfem3d") return make_specfem3d;
  if (family == "wrf") return make_wrf;
  if (family == "pepc") return make_pepc;
  if (family == "amr-drift") return make_amr_drift;
  if (family == "lu") return make_lu;
  if (family == "ft") return make_ft;
  throw Error("unknown workload family: " + family);
}

}  // namespace pals
