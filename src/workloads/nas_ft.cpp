// NAS FT skeleton: 3-D FFT via local transforms and global transposes.
// Almost perfectly balanced computation; performance is dominated by two
// large all-to-all transposes per iteration, making it the most
// bandwidth-bound pattern in the suite.
#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

// Heaviest rank per iteration at 32 ranks; class C strong-scales.
constexpr double kBaseSeconds32 = 0.12;
// Class C grid 512x512x512 complex doubles spread over n^2 peer pairs.
constexpr double kGridBytes = 512.0 * 512.0 * 512.0 * 16.0;

}  // namespace

Trace make_ft(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 9);
  const std::vector<double> weights =
      calibrate_to_lb(shape_uniform_noise(config.ranks, 0.1, rng),
                      config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const double n = static_cast<double>(config.ranks);
  const Bytes transpose_bytes =
      static_cast<Bytes>(kGridBytes / (n * n) * config.comm_scale);
  const double base =
      kBaseSeconds32 * 32.0 / n * config.compute_scale;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      mpi.compute(base * 0.4 * w * j);     // FFTs along local dimensions
      mpi.alltoall(transpose_bytes);       // first global transpose
      mpi.compute(base * 0.4 * w * j);     // FFT along the exchanged axis
      mpi.alltoall(transpose_bytes);       // transpose back
      mpi.compute(base * 0.2 * w * j);     // evolve + checksum prep
      mpi.allreduce(16);                   // complex checksum
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"FT-" + std::to_string(config.ranks)});
}

}  // namespace pals
