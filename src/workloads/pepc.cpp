// PEPC skeleton: parallel tree code for plasma physics. Each iteration has
// two major computation phases with *different*, negatively correlated
// imbalance patterns (tree construction vs. force summation). A single
// per-rank DVFS setting cannot balance both phases — the paper observes up
// to 20 % slowdown for PEPC under the MAX algorithm because of this.
#include <algorithm>
#include <cmath>
#include <vector>

#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr double kBaseSeconds = 0.09;    // heaviest rank per iteration
constexpr double kPhase0Fraction = 0.35; // tree build share of total work
constexpr double kBranchBytes = 4096;    // allgathered branch nodes
constexpr double kShapeSpread = 0.95;  // phase-0 ramp depth
// Phase 1 (force summation) decays from 1 at rank 0 onto this floor at the
// last rank. The floor keeps the combined per-rank maximum close to the
// sum of the per-phase maxima, reproducing the paper's PEPC-128
// characterization (PE 67.8 % at LB 76.1 %), while mid ranks — light in
// total but heavy in phase 1 — produce the single-setting DVFS slowdown
// the paper reports (up to 20 %).
constexpr double kPhase1Floor = 0.85;

/// Build the two phase-weight vectors: an ascending ramp (phase 0, heavy
/// at the last rank) warped by an exponent chosen so the *combined*
/// per-rank load hits `target_lb`, and a fixed descending curve (phase 1,
/// heavy at rank 0). Returns {phase0, phase1}.
std::pair<std::vector<double>, std::vector<double>> two_phase_weights(
    Rank n, double target_lb) {
  PALS_CHECK_MSG(n >= 2, "PEPC needs at least two ranks");
  const auto ramps_at = [&](double gamma) {
    std::vector<double> w0(static_cast<std::size_t>(n));
    std::vector<double> w1(static_cast<std::size_t>(n));
    for (Rank k = 0; k < n; ++k) {
      const double t = static_cast<double>(k) / static_cast<double>(n - 1);
      w0[static_cast<std::size_t>(k)] =
          std::pow(1.0 - kShapeSpread + kShapeSpread * t, gamma);
      w1[static_cast<std::size_t>(k)] =
          kPhase1Floor + (1.0 - kPhase1Floor) * (1.0 - t) * (1.0 - t);
    }
    return std::make_pair(w0, w1);
  };
  const auto combined_lb = [&](double gamma) {
    const auto [w0, w1] = ramps_at(gamma);
    std::vector<double> total(w0.size());
    for (std::size_t k = 0; k < w0.size(); ++k)
      total[k] = kPhase0Fraction * w0[k] + (1.0 - kPhase0Fraction) * w1[k];
    return weights_load_balance(total);
  };
  // combined_lb is monotone decreasing in gamma (gamma=0 -> 1).
  double lo = 0.0;
  double hi = 60.0;
  PALS_CHECK_MSG(combined_lb(hi) <= target_lb,
                 "PEPC target LB " << target_lb << " below achievable range");
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (combined_lb(mid) > target_lb)
      lo = mid;
    else
      hi = mid;
  }
  return ramps_at(0.5 * (lo + hi));
}

}  // namespace

Trace make_pepc(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 6);
  const auto [w0, w1] = two_phase_weights(config.ranks, config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Bytes branch = static_cast<Bytes>(kBranchBytes * config.comm_scale);
  const double base = kBaseSeconds * config.compute_scale;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double a = w0[static_cast<std::size_t>(r)];
    const double b = w1[static_cast<std::size_t>(r)];
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      // Phase 0: domain decomposition + tree construction.
      mpi.phase_begin(0);
      mpi.compute(base * kPhase0Fraction * a * j, /*phase=*/0);
      mpi.allgather(branch);  // exchange branch nodes
      mpi.phase_end(0);
      // Phase 1: tree walks + force summation.
      mpi.phase_begin(1);
      mpi.compute(base * (1.0 - kPhase0Fraction) * b * j, /*phase=*/1);
      mpi.allreduce(8);  // total energy diagnostic
      mpi.phase_end(1);
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"PEPC-" + std::to_string(config.ranks)});
}

}  // namespace pals
