// NAS IS skeleton: bucket sort dominated by a large all-to-all key
// exchange. The skewed key distribution makes computation strongly
// imbalanced and parallel efficiency very low (Table 3: 8-17 %).
#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

// Heaviest rank per iteration at 32 ranks; class C strong-scales.
constexpr double kBaseSeconds32 = 0.015;
constexpr double kTotalKeyBytes = 134217728.0 * 4.0;  // 2^27 class C keys

}  // namespace

Trace make_is(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 2);
  const std::vector<double> weights = calibrate_to_lb(
      shape_geometric(config.ranks, 0.93), config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  // Per-peer chunk of the key exchange: total keys spread over n^2 pairs.
  const double n = static_cast<double>(config.ranks);
  const Bytes alltoall_bytes =
      static_cast<Bytes>(kTotalKeyBytes / (n * n) * config.comm_scale);
  const double base = kBaseSeconds32 * 32.0 / n * config.compute_scale;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      mpi.compute(base * 0.35 * w * j);    // local key ranking
      mpi.allreduce(1024);                 // bucket size exchange
      mpi.alltoall(alltoall_bytes);        // key redistribution
      mpi.compute(base * 0.65 * w * j);    // local permutation
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"IS-" + std::to_string(config.ranks)});
}

}  // namespace pals
