// NAS MG skeleton: V-cycle multigrid with 3-D halo exchanges whose message
// sizes shrink by 4x (and computation by 8x) per coarser level.
#include <algorithm>
#include <cmath>

#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr int kLevels = 5;  // grid levels in the V-cycle
// Heaviest rank, finest level, at 32 ranks; class C strong-scales.
constexpr double kBaseSeconds32 = 0.06;
constexpr double kGridPoints = 512.0 * 512.0 * 512.0;  // class C

/// 3-D neighbour in direction (dx, dy, dz) with periodic wrap.
Rank neighbour(const Grid3D& g, Rank r, int dx, int dy, int dz) {
  const Rank x = r % g.px;
  const Rank y = (r / g.px) % g.py;
  const Rank z = r / (g.px * g.py);
  const Rank nx = (x + dx + g.px) % g.px;
  const Rank ny = (y + dy + g.py) % g.py;
  const Rank nz = (z + dz + g.pz) % g.pz;
  return nx + g.px * (ny + g.py * nz);
}

}  // namespace

Trace make_mg(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 1);
  const std::vector<double> weights =
      calibrate_to_lb(shape_uniform_noise(config.ranks, 0.3, rng),
                      config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Grid3D grid = factor_3d(config.ranks);
  // Face size of the finest-level local block.
  const double local_points = kGridPoints / static_cast<double>(config.ranks);
  const double face_points = std::pow(local_points, 2.0 / 3.0);
  const double fine_face_bytes = face_points * 8.0 * config.comm_scale;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    // Unique neighbours in the 6 axis directions (duplicates collapse on
    // small grid dimensions).
    std::vector<Rank> partners;
    const int dirs[6][3] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                            {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
    for (const auto& d : dirs) {
      const Rank p = neighbour(grid, r, d[0], d[1], d[2]);
      if (p != r &&
          std::find(partners.begin(), partners.end(), p) == partners.end())
        partners.push_back(p);
    }

    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      // Down-sweep (restriction) and up-sweep (prolongation + smoothing).
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (int level = 0; level < kLevels; ++level) {
          const int l = (sweep == 0) ? level : kLevels - 1 - level;
          const double level_compute =
              kBaseSeconds32 * 32.0 / static_cast<double>(config.ranks) *
              config.compute_scale * w * j /
              std::pow(8.0, static_cast<double>(l));
          const Bytes level_bytes = static_cast<Bytes>(
              fine_face_bytes / std::pow(4.0, static_cast<double>(l)));
          mpi.compute(level_compute);
          // One tag per level; the partner relation is symmetric, so each
          // pair exchanges exactly one message per level and sweep.
          for (const Rank p : partners) mpi.irecv(p, 200 + l, level_bytes);
          for (const Rank p : partners) mpi.isend(p, 200 + l, level_bytes);
          mpi.waitall();
        }
      }
      mpi.allreduce(8);  // residual norm
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"MG-" + std::to_string(config.ranks)});
}

}  // namespace pals
