// WRF skeleton: numerical weather prediction, multi-substep dynamics +
// physics on a 2-D domain decomposition. Uses *blocking* sends/receives in
// parity order (even columns send first), exercising the rendezvous path
// of the replay simulator.
#include <algorithm>
#include <vector>

#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr int kSubsteps = 5;           // acoustic + advection + physics
constexpr double kBaseSeconds = 0.06;  // heaviest rank per iteration
constexpr double kHaloBytes = 80e3;

Rank grid_neighbour(const Grid2D& g, Rank r, int dx, int dy) {
  const Rank x = r % g.px;
  const Rank y = r / g.px;
  const Rank nx = (x + dx + g.px) % g.px;
  const Rank ny = (y + dy + g.py) % g.py;
  return nx + g.px * ny;
}

}  // namespace

Trace make_wrf(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed + 5);
  const std::vector<double> weights =
      calibrate_to_lb(shape_uniform_noise(config.ranks, 0.35, rng),
                      config.target_lb);
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Grid2D grid = factor_2d(config.ranks);
  const Bytes halo = static_cast<Bytes>(kHaloBytes * config.comm_scale);
  const double base = kBaseSeconds * config.compute_scale;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    const Rank x = r % grid.px;
    // Exchange partners along each axis (skip degenerate dimensions).
    const Rank east = grid_neighbour(grid, r, 1, 0);
    const Rank west = grid_neighbour(grid, r, -1, 0);
    const Rank north = grid_neighbour(grid, r, 0, 1);
    const Rank south = grid_neighbour(grid, r, 0, -1);

    // Blocking shift along one axis with parity ordering (deadlock-free
    // for even extents; odd extents fall back to non-blocking since parity
    // alternation breaks across the periodic seam).
    const auto shift = [&](Rank fwd, Rank bwd, Rank extent, bool even,
                           std::int32_t tag) {
      if (fwd == r) return;  // dimension of extent 1
      if (extent % 2 != 0) {
        mpi.irecv(bwd, tag, halo);
        mpi.irecv(fwd, tag + 1, halo);
        mpi.isend(fwd, tag, halo);
        mpi.isend(bwd, tag + 1, halo);
        mpi.waitall();
        return;
      }
      if (fwd == bwd) {
        // Two-rank dimension: a single paired exchange.
        if (even) {
          mpi.send(fwd, tag, halo);
          mpi.recv(fwd, tag, halo);
        } else {
          mpi.recv(fwd, tag, halo);
          mpi.send(fwd, tag, halo);
        }
        return;
      }
      if (even) {
        mpi.send(fwd, tag, halo);
        mpi.recv(bwd, tag, halo);
        mpi.send(bwd, tag + 1, halo);
        mpi.recv(fwd, tag + 1, halo);
      } else {
        mpi.recv(bwd, tag, halo);
        mpi.send(fwd, tag, halo);
        mpi.recv(fwd, tag + 1, halo);
        mpi.send(bwd, tag + 1, halo);
      }
    };

    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      for (int step = 0; step < kSubsteps; ++step) {
        mpi.compute(base * w * j / kSubsteps);
        shift(east, west, grid.px, x % 2 == 0, 500 + 4 * step);
        shift(north, south, grid.py, (r / grid.px) % 2 == 0, 502 + 4 * step);
      }
      mpi.allreduce(8);  // CFL stability check
      mpi.iteration_end(it);
    }
  };

  return run_spmd(config.ranks, program,
                  SpmdOptions{"WRF-" + std::to_string(config.ranks)});
}

}  // namespace pals
