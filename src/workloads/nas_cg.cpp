// NAS CG skeleton: conjugate-gradient inner iterations with partner
// exchanges and dot-product allreduces. Nearly balanced computation.
#include "workloads/apps.hpp"
#include "workloads/imbalance.hpp"

#include "mpisim/vmpi.hpp"
#include "util/rng.hpp"

namespace pals {
namespace {

constexpr int kInnerSteps = 25;       // CG inner iterations per outer step
// Heaviest rank per outer iteration at 32 ranks; class C is a fixed-size
// problem, so computation strong-scales with the rank count.
constexpr double kBaseSeconds32 = 0.05;
constexpr double kMatrixRows = 150000.0;  // class C problem size

}  // namespace

Trace make_cg(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed);
  const std::vector<double> weights =
      calibrate_to_lb(shape_uniform_noise(config.ranks, 0.35, rng),
                      config.target_lb);

  // Per (iteration, rank) multiplicative jitter, fixed up front so every
  // rank program sees the same schedule.
  std::vector<std::vector<double>> jitter(
      static_cast<std::size_t>(config.iterations),
      std::vector<double>(static_cast<std::size_t>(config.ranks), 1.0));
  for (auto& row : jitter)
    for (double& j : row) j = 1.0 + rng.uniform(-config.jitter, config.jitter);

  const Bytes exchange_bytes = static_cast<Bytes>(
      kMatrixRows / static_cast<double>(config.ranks) * 8.0 *
      config.comm_scale);
  const double burst = kBaseSeconds32 * 32.0 /
                       static_cast<double>(config.ranks) *
                       config.compute_scale / static_cast<double>(kInnerSteps);
  const Rank n = config.ranks;

  const RankProgram program = [&](VirtualMpi& mpi) {
    const Rank r = mpi.rank();
    const double w = weights[static_cast<std::size_t>(r)];
    // Partner set: nearest neighbour plus the transpose partner, the two
    // dominant exchanges in NPB CG's 2-D layout.
    const Rank near = (n > 1) ? ((r % 2 == 0) ? (r + 1) % n : (r - 1 + n) % n)
                              : r;
    const Rank far = (r + n / 2) % n;
    for (int it = 0; it < config.iterations; ++it) {
      mpi.iteration_begin(it);
      const double j =
          jitter[static_cast<std::size_t>(it)][static_cast<std::size_t>(r)];
      for (int step = 0; step < kInnerSteps; ++step) {
        mpi.compute(burst * w * j);
        if (n > 1) {
          const VRequest rn = mpi.irecv(near, 100, exchange_bytes);
          const VRequest rf =
              (far != r && far != near) ? mpi.irecv(far, 101, exchange_bytes)
                                        : VRequest{};
          mpi.isend(near, 100, exchange_bytes);
          if (rf.valid()) mpi.isend(far, 101, exchange_bytes);
          (void)rn;
          mpi.waitall();
        }
        mpi.allreduce(8);   // rho = r·z
        mpi.allreduce(8);   // p·q
      }
      mpi.iteration_end(it);
    }
  };

  Trace trace = run_spmd(config.ranks, program,
                         SpmdOptions{"CG-" + std::to_string(config.ranks)});
  return trace;
}

}  // namespace pals
