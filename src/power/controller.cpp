#include "power/controller.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace pals {

Controller::~Controller() = default;

std::string schedules_to_csv(
    const std::vector<
        std::pair<std::string, std::vector<std::vector<Gear>>>>& schedules) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"controller", "iteration", "rank", "frequency_ghz", "voltage_v"});
  for (const auto& [name, schedule] : schedules) {
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      for (std::size_t r = 0; r < schedule[i].size(); ++r) {
        csv.field(name)
            .field(i)
            .field(r)
            .field(format_roundtrip(schedule[i][r].frequency_ghz))
            .field(format_roundtrip(schedule[i][r].voltage_v));
        csv.end_row();
      }
    }
  }
  return out.str();
}

}  // namespace pals
