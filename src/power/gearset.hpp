// DVFS gear sets and the linear voltage-frequency model (paper §3.3).
//
// Voltage is a linear function of frequency through the two anchor points
// (0.8 GHz, 1.0 V) and (2.3 GHz, 1.5 V); over-clocked gears extrapolate the
// same line (the paper's extra discrete gear (2.6 GHz, 1.6 V) lies on it).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace pals {

/// One frequency-voltage operating point.
struct Gear {
  double frequency_ghz = 0.0;
  double voltage_v = 0.0;

  bool operator==(const Gear&) const = default;
};

/// Linear V(f) determined by two anchor points.
class VoltageModel {
public:
  VoltageModel(double f1_ghz, double v1, double f2_ghz, double v2);

  /// Voltage at `f_ghz`, extrapolating outside the anchor range.
  double voltage(double f_ghz) const;

  Gear gear(double f_ghz) const { return Gear{f_ghz, voltage(f_ghz)}; }

  /// The paper's model: (0.8 GHz, 1.0 V) – (2.3 GHz, 1.5 V).
  static VoltageModel paper_default();

private:
  double slope_;
  double intercept_;
};

/// A set of allowed CPU operating points. Continuous sets allow any
/// frequency in [fmin, fmax]; discrete sets restrict to enumerated gears.
///
/// The paper's assignment rule is implemented by snap_up(): the lowest
/// available frequency that is >= the ideal frequency (never slower than
/// the target computation time allows).
class GearSet {
public:
  /// Continuous range [fmin, fmax] (paper: "unlimited" uses fmin ~ 0).
  static GearSet continuous(double fmin_ghz, double fmax_ghz,
                            const VoltageModel& vm);
  /// `n` evenly spaced gears spanning [fmin, fmax] inclusive (Table 1).
  static GearSet uniform(int n, double fmin_ghz, double fmax_ghz,
                         const VoltageModel& vm);
  /// `n` gears where each gap going down doubles (Table 2): denser near
  /// fmax, favouring well-balanced applications.
  static GearSet exponential(int n, double fmin_ghz, double fmax_ghz,
                             const VoltageModel& vm);

  bool is_continuous() const { return continuous_; }
  double fmin() const { return fmin_; }
  double fmax() const { return fmax_; }
  std::size_t size() const;  ///< gear count; 0 for continuous sets

  /// Discrete gears sorted ascending; empty for continuous sets.
  std::span<const Gear> gears() const { return gears_; }

  /// Lowest admissible frequency >= `f_ghz`; clamps to [fmin, fmax].
  double snap_up(double f_ghz) const;
  /// Closest admissible frequency (used by the snap-policy ablation; may
  /// violate the target computation time by rounding down).
  double snap_nearest(double f_ghz) const;
  /// snap_up plus the model voltage.
  Gear operating_point(double f_ghz) const;
  /// snap_nearest plus the model voltage.
  Gear operating_point_nearest(double f_ghz) const;
  /// Slowest admissible operating point (fmin for continuous sets); used
  /// by the gear_stuck fault to pin a rank to an extreme gear.
  Gear min_gear() const;
  /// Fastest admissible operating point (fmax for continuous sets).
  Gear max_gear() const;

  /// Extend a discrete set with an over-clock gear (e.g. 2.6 GHz, 1.6 V);
  /// fmax becomes the new gear's frequency.
  GearSet with_extra_gear(const Gear& gear) const;
  /// Raise a continuous set's fmax by `factor` (e.g. 1.1 = +10 % OC).
  GearSet with_fmax_scaled(double factor) const;

  /// For reports.
  std::string describe() const;

private:
  GearSet() = default;

  bool continuous_ = false;
  double fmin_ = 0.0;
  double fmax_ = 0.0;
  std::vector<Gear> gears_;  // ascending; empty iff continuous
  VoltageModel vm_ = VoltageModel::paper_default();
  std::string label_;
};

/// Paper constants.
inline constexpr double kPaperFminGhz = 0.8;
inline constexpr double kPaperFmaxGhz = 2.3;
/// Lower bound used for the "unlimited" continuous set; the paper says
/// "from 0", which we approximate with a small positive floor so the time
/// model stays finite.
inline constexpr double kUnlimitedFloorGhz = 0.01;

/// The paper's named sets.
GearSet paper_unlimited_continuous();
GearSet paper_limited_continuous();
GearSet paper_uniform(int n_gears);
GearSet paper_exponential(int n_gears);
/// Uniform 6-gear set + (2.6 GHz, 1.6 V) used by the discrete AVG study.
GearSet paper_avg_discrete();

/// Look up a gear set by the CLI/grid-file name: unlimited, limited,
/// uniform-N, exponential-N, avg-discrete (continuous-unlimited and
/// continuous-limited are accepted as aliases of the first two). Throws
/// pals::Error listing the options for unknown names.
GearSet gear_set_by_name(const std::string& name);

}  // namespace pals
