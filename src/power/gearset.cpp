#include "power/gearset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {

VoltageModel::VoltageModel(double f1_ghz, double v1, double f2_ghz,
                           double v2) {
  PALS_CHECK_MSG(f1_ghz != f2_ghz, "voltage anchors need distinct frequencies");
  slope_ = (v2 - v1) / (f2_ghz - f1_ghz);
  intercept_ = v1 - slope_ * f1_ghz;
}

double VoltageModel::voltage(double f_ghz) const {
  PALS_CHECK_MSG(f_ghz > 0.0, "voltage model requires positive frequency");
  const double v = slope_ * f_ghz + intercept_;
  PALS_CHECK_MSG(v > 0.0, "voltage model yields non-positive voltage at "
                              << f_ghz << " GHz");
  return v;
}

VoltageModel VoltageModel::paper_default() {
  return VoltageModel(kPaperFminGhz, 1.0, kPaperFmaxGhz, 1.5);
}

GearSet GearSet::continuous(double fmin_ghz, double fmax_ghz,
                            const VoltageModel& vm) {
  PALS_CHECK_MSG(fmin_ghz > 0.0 && fmin_ghz <= fmax_ghz,
                 "continuous set needs 0 < fmin <= fmax");
  GearSet set;
  set.continuous_ = true;
  set.fmin_ = fmin_ghz;
  set.fmax_ = fmax_ghz;
  set.vm_ = vm;
  std::ostringstream os;
  os << "continuous[" << format_fixed(fmin_ghz, 2) << ", "
     << format_fixed(fmax_ghz, 2) << "]";
  set.label_ = os.str();
  return set;
}

GearSet GearSet::uniform(int n, double fmin_ghz, double fmax_ghz,
                         const VoltageModel& vm) {
  PALS_CHECK_MSG(n >= 2, "uniform set needs >= 2 gears");
  PALS_CHECK_MSG(fmin_ghz > 0.0 && fmin_ghz < fmax_ghz,
                 "uniform set needs 0 < fmin < fmax");
  GearSet set;
  set.continuous_ = false;
  set.fmin_ = fmin_ghz;
  set.fmax_ = fmax_ghz;
  set.vm_ = vm;
  const double step = (fmax_ghz - fmin_ghz) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) {
    const double f = fmin_ghz + step * static_cast<double>(i);
    set.gears_.push_back(vm.gear(f));
  }
  set.gears_.back().frequency_ghz = fmax_ghz;  // avoid FP drift on the top gear
  set.label_ = "uniform-" + std::to_string(n);
  return set;
}

GearSet GearSet::exponential(int n, double fmin_ghz, double fmax_ghz,
                             const VoltageModel& vm) {
  PALS_CHECK_MSG(n >= 2, "exponential set needs >= 2 gears");
  PALS_CHECK_MSG(fmin_ghz > 0.0 && fmin_ghz < fmax_ghz,
                 "exponential set needs 0 < fmin < fmax");
  GearSet set;
  set.continuous_ = false;
  set.fmin_ = fmin_ghz;
  set.fmax_ = fmax_ghz;
  set.vm_ = vm;
  // Gaps from the top double on the way down: g, 2g, 4g, ... (n-1 gaps).
  const double range = fmax_ghz - fmin_ghz;
  const double unit = range / (std::pow(2.0, n - 1) - 1.0);
  double f = fmax_ghz;
  std::vector<double> freqs{f};
  for (int i = 0; i < n - 1; ++i) {
    f -= unit * std::pow(2.0, i);
    freqs.push_back(f);
  }
  std::reverse(freqs.begin(), freqs.end());
  freqs.front() = fmin_ghz;  // absorb FP drift at the bottom gear
  for (double fr : freqs) set.gears_.push_back(vm.gear(fr));
  set.label_ = "exponential-" + std::to_string(n);
  return set;
}

std::size_t GearSet::size() const { return gears_.size(); }

double GearSet::snap_up(double f_ghz) const {
  PALS_CHECK_MSG(f_ghz > 0.0, "snap_up requires positive frequency");
  if (f_ghz >= fmax_) return fmax_;
  if (continuous_) return std::max(f_ghz, fmin_);
  const double target = std::max(f_ghz, fmin_);
  for (const Gear& g : gears_) {
    // Tiny tolerance so an ideal frequency equal to a gear picks that gear.
    if (g.frequency_ghz >= target - 1e-12) return g.frequency_ghz;
  }
  return fmax_;
}

double GearSet::snap_nearest(double f_ghz) const {
  PALS_CHECK_MSG(f_ghz > 0.0, "snap_nearest requires positive frequency");
  if (f_ghz >= fmax_) return fmax_;
  if (continuous_) return std::max(f_ghz, fmin_);
  double best = fmax_;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const Gear& g : gears_) {
    const double distance = std::abs(g.frequency_ghz - f_ghz);
    if (distance < best_distance) {
      best_distance = distance;
      best = g.frequency_ghz;
    }
  }
  return best;
}

namespace {

Gear stored_or_modeled(const std::vector<Gear>& gears, double f,
                       const VoltageModel& vm) {
  // Return the stored gear so callers see the exact tabulated voltage.
  for (const Gear& g : gears)
    if (std::abs(g.frequency_ghz - f) <= 1e-12) return g;
  return vm.gear(f);
}

}  // namespace

Gear GearSet::operating_point(double f_ghz) const {
  const double f = snap_up(f_ghz);
  if (!continuous_) return stored_or_modeled(gears_, f, vm_);
  return vm_.gear(f);
}

Gear GearSet::operating_point_nearest(double f_ghz) const {
  const double f = snap_nearest(f_ghz);
  if (!continuous_) return stored_or_modeled(gears_, f, vm_);
  return vm_.gear(f);
}

Gear GearSet::min_gear() const {
  if (!continuous_) return gears_.front();
  return vm_.gear(fmin_);
}

Gear GearSet::max_gear() const {
  if (!continuous_) return gears_.back();
  return vm_.gear(fmax_);
}

GearSet GearSet::with_extra_gear(const Gear& gear) const {
  PALS_CHECK_MSG(!continuous_,
                 "with_extra_gear applies to discrete sets; use "
                 "with_fmax_scaled for continuous sets");
  PALS_CHECK_MSG(gear.frequency_ghz > 0.0 && gear.voltage_v > 0.0,
                 "extra gear must have positive frequency and voltage");
  GearSet set = *this;
  set.gears_.push_back(gear);
  std::sort(set.gears_.begin(), set.gears_.end(),
            [](const Gear& a, const Gear& b) {
              return a.frequency_ghz < b.frequency_ghz;
            });
  set.fmin_ = set.gears_.front().frequency_ghz;
  set.fmax_ = set.gears_.back().frequency_ghz;
  set.label_ += "+oc" + format_fixed(gear.frequency_ghz, 2);
  return set;
}

GearSet GearSet::with_fmax_scaled(double factor) const {
  PALS_CHECK_MSG(continuous_,
                 "with_fmax_scaled applies to continuous sets; use "
                 "with_extra_gear for discrete sets");
  PALS_CHECK_MSG(factor >= 1.0, "over-clock factor must be >= 1");
  GearSet set = *this;
  set.fmax_ = fmax_ * factor;
  std::ostringstream os;
  os << label_ << "+oc" << format_fixed((factor - 1.0) * 100.0, 0) << "%";
  set.label_ = os.str();
  return set;
}

std::string GearSet::describe() const {
  if (continuous_) return label_;
  std::ostringstream os;
  os << label_ << " {";
  for (std::size_t i = 0; i < gears_.size(); ++i) {
    if (i) os << ", ";
    os << format_fixed(gears_[i].frequency_ghz, 2);
  }
  os << "} GHz";
  return os.str();
}

GearSet paper_unlimited_continuous() {
  return GearSet::continuous(kUnlimitedFloorGhz, kPaperFmaxGhz,
                             VoltageModel::paper_default());
}

GearSet paper_limited_continuous() {
  return GearSet::continuous(kPaperFminGhz, kPaperFmaxGhz,
                             VoltageModel::paper_default());
}

GearSet paper_uniform(int n_gears) {
  return GearSet::uniform(n_gears, kPaperFminGhz, kPaperFmaxGhz,
                          VoltageModel::paper_default());
}

GearSet paper_exponential(int n_gears) {
  return GearSet::exponential(n_gears, kPaperFminGhz, kPaperFmaxGhz,
                              VoltageModel::paper_default());
}

GearSet paper_avg_discrete() {
  return paper_uniform(6).with_extra_gear(Gear{2.6, 1.6});
}

GearSet gear_set_by_name(const std::string& name) {
  if (name == "unlimited" || name == "continuous-unlimited")
    return paper_unlimited_continuous();
  if (name == "limited" || name == "continuous-limited")
    return paper_limited_continuous();
  if (name == "avg-discrete") return paper_avg_discrete();
  if (starts_with(name, "uniform-"))
    return paper_uniform(static_cast<int>(parse_int(name.substr(8))));
  if (starts_with(name, "exponential-"))
    return paper_exponential(static_cast<int>(parse_int(name.substr(12))));
  throw Error("unknown gear set '" + name +
              "' (try unlimited, limited, uniform-N, exponential-N, "
              "avg-discrete)");
}

}  // namespace pals
