// CPU power and execution-time models (paper §3.2).
//
//   P_dynamic = A · C · f · V²     (A differs between compute and comm)
//   P_static  = α · V              (α calibrated from a static fraction)
//   T(f)/T(fmax) = β · (fmax/f − 1) + 1
//
// Units are internal: A_compute·C is normalized to 1 energy-unit/(GHz·V²·s).
// All reported results are normalized ratios (energy, EDP), so the absolute
// unit cancels — exactly as in the paper.
#pragma once

#include "power/gearset.hpp"
#include "trace/timeline.hpp"

namespace pals {

struct PowerModelConfig {
  /// Ratio of computation to communication activity factor (paper: 1.5,
  /// swept 1.5–3.0 in Fig. 7).
  double activity_ratio = 1.5;
  /// Fraction of static power in total CPU power when loaded at
  /// (fmax, Vmax) (paper: 0.2, swept 0.0–0.9 in Fig. 6).
  double static_fraction = 0.2;
  /// Memory-boundedness of computation (paper: 0.5, swept 0.3–1.0 Fig. 5).
  double beta = 0.5;
  /// Reference (manufacturer top) operating point; durations in traces are
  /// measured at this frequency.
  Gear reference = Gear{kPaperFmaxGhz, 1.5};
  /// Power multiplier applied while NOT computing (waiting in MPI or
  /// idle). 1.0 reproduces the paper's model (the CPU stays fully powered
  /// at the communication activity factor); < 1 models C-states / clock
  /// gating during waits. With deep idle states, "race-to-idle" becomes
  /// competitive and MAX's lowest-feasible-gear rule stops being
  /// energy-optimal (see assign_frequencies_energy_optimal).
  double idle_scale = 1.0;

  void validate() const;
};

/// Evaluates power at operating points and integrates energy over
/// timelines.
class PowerModel {
public:
  explicit PowerModel(const PowerModelConfig& config);

  const PowerModelConfig& config() const { return config_; }

  /// Dynamic power at `gear` (energy-units/s). `computing` selects the
  /// activity factor.
  double dynamic_power(const Gear& gear, bool computing) const;
  /// Static (leakage) power at `gear`'s voltage.
  double static_power(const Gear& gear) const;
  /// dynamic + static.
  double total_power(const Gear& gear, bool computing) const;

  /// Multiplier for a compute burst executed at `f_ghz` instead of the
  /// reference frequency: β(fref/f − 1) + 1. Over-clocked frequencies give
  /// factors < 1 (speed-up).
  double time_scale(double f_ghz) const;
  /// time_scale with an explicit beta (per-phase sensitivity studies).
  double time_scale(double f_ghz, double beta) const;

  /// Energy of rank `rank` over its timeline lane, with the rank's CPU
  /// pinned at `gear` for the entire execution (the paper assigns one
  /// frequency per process).
  double rank_energy(const Timeline& timeline, Rank rank,
                     const Gear& gear) const;

  /// Total CPU energy with per-rank gears (`gears.size()` == rank count).
  double total_energy(const Timeline& timeline,
                      std::span<const Gear> gears) const;

  /// Baseline energy: every rank at the reference gear.
  double baseline_energy(const Timeline& timeline) const;

  /// Energy under a per-iteration DVFS schedule: intervals labelled with
  /// iteration i are charged at `schedule[i][rank]`; unlabelled intervals
  /// (before the first iteration, idle padding) use `fallback[rank]`.
  /// Used by dynamic runtimes that re-assign gears every iteration.
  double scheduled_energy(const Timeline& timeline,
                          const std::vector<std::vector<Gear>>& schedule,
                          std::span<const Gear> fallback) const;

  /// Energy under a per-phase DVFS assignment: compute intervals labelled
  /// with phase p are charged at `phase_gears[p][rank]` (p indexes into
  /// `phases`, the sorted list of labels); all other intervals use
  /// `fallback[rank]`. Used by the per-phase pipeline ablation.
  double phase_energy(const Timeline& timeline,
                      std::span<const std::int32_t> phases,
                      const std::vector<std::vector<Gear>>& phase_gears,
                      std::span<const Gear> fallback) const;

  /// Aggregate power profile: sample k holds the average total power of
  /// all ranks over [k·dt, (k+1)·dt). Interval energy is split exactly
  /// across bins, so sum(series)·dt equals total_energy(). Lanes shorter
  /// than the makespan are charged their idle tail at communication
  /// activity, matching the energy accounting.
  std::vector<double> power_series(const Timeline& timeline,
                                   std::span<const Gear> gears,
                                   Seconds dt) const;

private:
  PowerModelConfig config_;
  double activity_compute_ = 1.0;  ///< A·C lumped, normalized
  double activity_comm_ = 1.0;
  double alpha_ = 0.0;  ///< static-power coefficient
};

}  // namespace pals
