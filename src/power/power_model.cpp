#include "power/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace pals {

void PowerModelConfig::validate() const {
  PALS_CHECK_MSG(activity_ratio >= 1.0,
                 "activity ratio must be >= 1 (compute at least as active "
                 "as communication)");
  PALS_CHECK_MSG(static_fraction >= 0.0 && static_fraction < 1.0,
                 "static fraction must lie in [0, 1)");
  PALS_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta must lie in [0, 1]");
  PALS_CHECK_MSG(reference.frequency_ghz > 0.0 && reference.voltage_v > 0.0,
                 "reference gear must be positive");
  PALS_CHECK_MSG(idle_scale > 0.0 && idle_scale <= 1.0,
                 "idle power scale must lie in (0, 1]");
}

PowerModel::PowerModel(const PowerModelConfig& config) : config_(config) {
  config_.validate();
  activity_compute_ = 1.0;
  activity_comm_ = 1.0 / config_.activity_ratio;
  // Calibrate alpha so that static power is `static_fraction` of total CPU
  // power when computing at the reference gear:
  //   alpha*V = sf * (A*C*f*V^2 + alpha*V)  =>
  //   alpha = sf/(1-sf) * A*C*f*V
  const double f = config_.reference.frequency_ghz;
  const double v = config_.reference.voltage_v;
  alpha_ = config_.static_fraction / (1.0 - config_.static_fraction) *
           activity_compute_ * f * v;
}

double PowerModel::dynamic_power(const Gear& gear, bool computing) const {
  const double a = computing ? activity_compute_ : activity_comm_;
  return a * gear.frequency_ghz * gear.voltage_v * gear.voltage_v;
}

double PowerModel::static_power(const Gear& gear) const {
  return alpha_ * gear.voltage_v;
}

double PowerModel::total_power(const Gear& gear, bool computing) const {
  const double power = dynamic_power(gear, computing) + static_power(gear);
  return computing ? power : power * config_.idle_scale;
}

double PowerModel::time_scale(double f_ghz) const {
  return time_scale(f_ghz, config_.beta);
}

double PowerModel::time_scale(double f_ghz, double beta) const {
  PALS_CHECK_MSG(f_ghz > 0.0, "time_scale requires positive frequency");
  PALS_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta must lie in [0, 1]");
  return beta * (config_.reference.frequency_ghz / f_ghz - 1.0) + 1.0;
}

double PowerModel::rank_energy(const Timeline& timeline, Rank rank,
                               const Gear& gear) const {
  double energy = 0.0;
  for (const StateInterval& iv : timeline.intervals(rank)) {
    const bool computing = iv.state == RankState::kCompute;
    energy += iv.duration() * total_power(gear, computing);
  }
  // Lanes may be shorter than the makespan if not padded; treat the missing
  // tail as idle (communication activity).
  const auto lane = timeline.intervals(rank);
  const Seconds lane_end = lane.empty() ? 0.0 : lane.back().end;
  const Seconds tail = timeline.makespan() - lane_end;
  if (tail > 0.0) energy += tail * total_power(gear, /*computing=*/false);
  return energy;
}

double PowerModel::total_energy(const Timeline& timeline,
                                std::span<const Gear> gears) const {
  PALS_CHECK_MSG(gears.size() == static_cast<std::size_t>(timeline.n_ranks()),
                 "gear count " << gears.size() << " != rank count "
                               << timeline.n_ranks());
  double energy = 0.0;
  for (Rank r = 0; r < timeline.n_ranks(); ++r)
    energy += rank_energy(timeline, r, gears[static_cast<std::size_t>(r)]);
  return energy;
}

double PowerModel::baseline_energy(const Timeline& timeline) const {
  const std::vector<Gear> gears(static_cast<std::size_t>(timeline.n_ranks()),
                                config_.reference);
  return total_energy(timeline, gears);
}

double PowerModel::phase_energy(
    const Timeline& timeline, std::span<const std::int32_t> phases,
    const std::vector<std::vector<Gear>>& phase_gears,
    std::span<const Gear> fallback) const {
  PALS_CHECK_MSG(
      fallback.size() == static_cast<std::size_t>(timeline.n_ranks()),
      "fallback gear count mismatch");
  PALS_CHECK_MSG(phases.size() == phase_gears.size(),
                 "phase label/gear table size mismatch");
  for (const auto& gears : phase_gears)
    PALS_CHECK_MSG(
        gears.size() == static_cast<std::size_t>(timeline.n_ranks()),
        "phase gear rank count mismatch");
  // Dense lookup from phase label to table row.
  std::unordered_map<std::int32_t, std::size_t> row_of;
  for (std::size_t i = 0; i < phases.size(); ++i) row_of[phases[i]] = i;

  double energy = 0.0;
  for (Rank r = 0; r < timeline.n_ranks(); ++r) {
    const auto rank_index = static_cast<std::size_t>(r);
    Seconds covered = 0.0;
    for (const StateInterval& iv : timeline.intervals(r)) {
      const Gear* gear = &fallback[rank_index];
      if (iv.phase >= 0) {
        const auto it = row_of.find(iv.phase);
        PALS_CHECK_MSG(it != row_of.end(),
                       "timeline phase " << iv.phase << " has no gear row");
        gear = &phase_gears[it->second][rank_index];
      }
      energy += iv.duration() *
                total_power(*gear, iv.state == RankState::kCompute);
      covered = iv.end;
    }
    const Seconds tail = timeline.makespan() - covered;
    if (tail > 0.0)
      energy += tail * total_power(fallback[rank_index], /*computing=*/false);
  }
  return energy;
}

std::vector<double> PowerModel::power_series(const Timeline& timeline,
                                             std::span<const Gear> gears,
                                             Seconds dt) const {
  PALS_CHECK_MSG(dt > 0.0, "sample interval must be positive");
  PALS_CHECK_MSG(gears.size() == static_cast<std::size_t>(timeline.n_ranks()),
                 "gear count mismatch");
  const Seconds makespan = timeline.makespan();
  const auto bins =
      static_cast<std::size_t>(std::ceil(makespan / dt - 1e-12));
  std::vector<double> energy(std::max<std::size_t>(bins, 1), 0.0);

  const auto deposit = [&](Seconds begin, Seconds end, double power) {
    Seconds t = begin;
    while (t < end - 1e-15) {
      const auto bin = std::min(
          energy.size() - 1, static_cast<std::size_t>(t / dt + 1e-12));
      const Seconds bin_end = static_cast<double>(bin + 1) * dt;
      const Seconds slice_end = std::min(end, bin_end);
      energy[bin] += (slice_end - t) * power;
      t = slice_end;
    }
  };

  for (Rank r = 0; r < timeline.n_ranks(); ++r) {
    const Gear& gear = gears[static_cast<std::size_t>(r)];
    Seconds covered = 0.0;
    for (const StateInterval& iv : timeline.intervals(r)) {
      deposit(iv.begin, iv.end,
              total_power(gear, iv.state == RankState::kCompute));
      covered = iv.end;
    }
    if (covered < makespan)
      deposit(covered, makespan, total_power(gear, /*computing=*/false));
  }
  for (double& e : energy) e /= dt;
  return energy;
}

double PowerModel::scheduled_energy(
    const Timeline& timeline, const std::vector<std::vector<Gear>>& schedule,
    std::span<const Gear> fallback) const {
  PALS_CHECK_MSG(
      fallback.size() == static_cast<std::size_t>(timeline.n_ranks()),
      "fallback gear count mismatch");
  for (const auto& iteration_gears : schedule)
    PALS_CHECK_MSG(
        iteration_gears.size() == static_cast<std::size_t>(timeline.n_ranks()),
        "schedule rank count mismatch");
  double energy = 0.0;
  for (Rank r = 0; r < timeline.n_ranks(); ++r) {
    const auto rank_index = static_cast<std::size_t>(r);
    Seconds covered = 0.0;
    for (const StateInterval& iv : timeline.intervals(r)) {
      const Gear& gear =
          (iv.iteration >= 0 &&
           static_cast<std::size_t>(iv.iteration) < schedule.size())
              ? schedule[static_cast<std::size_t>(iv.iteration)][rank_index]
              : fallback[rank_index];
      const bool computing = iv.state == RankState::kCompute;
      energy += iv.duration() * total_power(gear, computing);
      covered = iv.end;
    }
    const Seconds tail = timeline.makespan() - covered;
    if (tail > 0.0)
      energy += tail * total_power(fallback[rank_index], /*computing=*/false);
  }
  return energy;
}

}  // namespace pals
