// Online DVFS controllers: the pluggable generalization of the paper's
// one-shot frequency assignment.
//
// The paper (§3.1) picks one gear per rank for the whole run. COUNTDOWN
// Slack (arXiv:1909.12684) and Guermouche et al. (arXiv:1502.06733) show
// the larger wins come from reacting to per-iteration slack at runtime.
// A Controller is that runtime's decision loop, factored out of the
// simulator: it is seeded with the whole-run profile, then observes each
// iteration's per-rank compute times (under the gears that actually ran)
// and returns the gears for the next iteration.
//
// The interface is deliberately minimal and pure — no clocks, no I/O, no
// hidden randomness — so controller-driven sweeps inherit the engine's
// byte-identical determinism across thread counts and resumes. Concrete
// controllers (static adapters, per-iteration re-solvers, the slack
// tracker, the EWMA predictor) live in core/controllers.hpp; the replay
// hooks that apply schedules at iteration boundaries live in
// core/controller_pipeline.hpp. See docs/controllers.md.
#pragma once

#include <string>
#include <vector>

#include "power/gearset.hpp"
#include "trace/types.hpp"

namespace pals {

/// Whole-run profile handed to a controller before the first iteration.
/// Simulated studies always have it (the baseline replay ran already);
/// a profile-guided production runtime would get it from a pilot run.
struct ControllerSeed {
  std::size_t n_ranks = 0;
  /// Total iterations the run will execute (0 when unknown).
  std::size_t iterations = 0;
  /// Whole-run computation time per rank at the reference frequency —
  /// exactly what the paper's one-shot assigner sees.
  std::vector<Seconds> total_compute;
};

/// What a controller observes after iteration k finished executing.
struct IterationObservation {
  /// 0-based index of the iteration that just ran.
  std::size_t iteration = 0;
  /// Wall-clock computation time each rank spent in that iteration under
  /// the gears that were actually applied (what a runtime's per-process
  /// timers would measure; DVFS-stretched, not reference-frequency).
  std::vector<Seconds> observed_compute;
  /// The gears that were applied during that iteration. With fault
  /// injection these are the *effective* gears (a stuck actuator shows
  /// its pinned gear, not what the controller asked for).
  std::vector<Gear> applied_gears;
};

/// An online per-iteration DVFS policy: observe(iteration k) -> gears for
/// k+1. Implementations must be deterministic functions of their
/// construction parameters and the observation sequence.
class Controller {
public:
  virtual ~Controller();

  /// Stable policy name ("static", "dynamic_max", ...), used in labels,
  /// golden schedule files and the sweep grid axis.
  virtual std::string name() const = 0;

  /// Gears for iteration 0, given the whole-run profile. Called exactly
  /// once, before any observe().
  virtual std::vector<Gear> start(const ControllerSeed& seed) = 0;

  /// Observe iteration k and return the gears for iteration k+1. Called
  /// once per executed iteration except the last, in order.
  virtual std::vector<Gear> observe(const IterationObservation& obs) = 0;
};

/// Deterministic CSV rendering of named per-iteration gear schedules
/// (columns: controller, iteration, rank, frequency_ghz, voltage_v;
/// round-trip float precision). The golden fixtures under golden/ pin
/// this for the committed drift fixture so schedule regressions diff.
std::string schedules_to_csv(
    const std::vector<
        std::pair<std::string, std::vector<std::vector<Gear>>>>& schedules);

}  // namespace pals
