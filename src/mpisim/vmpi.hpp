// Virtual MPI runtime — the "cluster" that produces traces.
//
// The paper traced real applications on a PowerPC/Myrinet cluster. Here,
// skeleton mini-apps written against this MPI-like API are executed in a
// deterministic SPMD harness that records a logical trace. Only structure
// and cost matter downstream (burst durations, message sizes, operation
// order), so rank programs run without exchanging payload data.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "trace/trace.hpp"

namespace pals {

/// Handle returned by non-blocking operations.
struct VRequest {
  RequestId id = -1;
  bool valid() const { return id >= 0; }
};

/// Per-rank tracing context; mirrors the MPI subset the replay simulator
/// understands. All byte counts are payload sizes.
class VirtualMpi {
public:
  VirtualMpi(Trace& trace, Rank rank, double flops_per_second);

  Rank rank() const { return rank_; }
  Rank size() const { return trace_->n_ranks(); }

  /// Record a computation burst of `duration` seconds (reference-frequency
  /// time). `phase` labels the computation phase (-1 = unphased).
  void compute(Seconds duration, std::int32_t phase = -1);
  /// Computation expressed in floating-point operations; converted to
  /// seconds via the machine's flops rate.
  void compute_flops(double flops, std::int32_t phase = -1);

  void send(Rank peer, std::int32_t tag, Bytes bytes);
  void recv(Rank peer, std::int32_t tag, Bytes bytes);
  VRequest isend(Rank peer, std::int32_t tag, Bytes bytes);
  VRequest irecv(Rank peer, std::int32_t tag, Bytes bytes);
  void wait(VRequest request);
  void waitall();

  void barrier();
  void bcast(Bytes bytes, Rank root = 0);
  void reduce(Bytes bytes, Rank root = 0);
  void allreduce(Bytes bytes);
  void gather(Bytes bytes, Rank root = 0);
  void allgather(Bytes bytes);
  void scatter(Bytes bytes, Rank root = 0);
  void alltoall(Bytes bytes);
  void reduce_scatter(Bytes bytes);

  void iteration_begin(std::int32_t id);
  void iteration_end(std::int32_t id);
  void phase_begin(std::int32_t id);
  void phase_end(std::int32_t id);

  double flops_per_second() const { return flops_per_second_; }

private:
  Trace* trace_;
  Rank rank_;
  double flops_per_second_;
  RequestId next_request_ = 0;
};

/// An SPMD rank program.
using RankProgram = std::function<void(VirtualMpi&)>;

struct SpmdOptions {
  std::string name;
  /// Simulated per-rank compute speed at the reference frequency.
  double flops_per_second = 4.6e9;
};

/// Run `program` once per rank (deterministically, rank 0 first) and
/// return the validated trace.
Trace run_spmd(Rank n_ranks, const RankProgram& program,
               const SpmdOptions& options = {});

}  // namespace pals
