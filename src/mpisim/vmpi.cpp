#include "mpisim/vmpi.hpp"

#include "util/error.hpp"

namespace pals {

VirtualMpi::VirtualMpi(Trace& trace, Rank rank, double flops_per_second)
    : trace_(&trace), rank_(rank), flops_per_second_(flops_per_second) {
  PALS_CHECK_MSG(rank >= 0 && rank < trace.n_ranks(),
                 "rank " << rank << " out of range");
  PALS_CHECK_MSG(flops_per_second > 0.0, "flops rate must be positive");
}

void VirtualMpi::compute(Seconds duration, std::int32_t phase) {
  PALS_CHECK_MSG(duration >= 0.0, "negative compute duration");
  trace_->append(rank_, ComputeEvent{duration, phase});
}

void VirtualMpi::compute_flops(double flops, std::int32_t phase) {
  PALS_CHECK_MSG(flops >= 0.0, "negative flop count");
  compute(flops / flops_per_second_, phase);
}

void VirtualMpi::send(Rank peer, std::int32_t tag, Bytes bytes) {
  trace_->append(rank_, SendEvent{peer, tag, bytes});
}

void VirtualMpi::recv(Rank peer, std::int32_t tag, Bytes bytes) {
  trace_->append(rank_, RecvEvent{peer, tag, bytes});
}

VRequest VirtualMpi::isend(Rank peer, std::int32_t tag, Bytes bytes) {
  const RequestId id = next_request_++;
  trace_->append(rank_, IsendEvent{peer, tag, bytes, id});
  return VRequest{id};
}

VRequest VirtualMpi::irecv(Rank peer, std::int32_t tag, Bytes bytes) {
  const RequestId id = next_request_++;
  trace_->append(rank_, IrecvEvent{peer, tag, bytes, id});
  return VRequest{id};
}

void VirtualMpi::wait(VRequest request) {
  PALS_CHECK_MSG(request.valid(), "wait on invalid request");
  trace_->append(rank_, WaitEvent{request.id});
}

void VirtualMpi::waitall() { trace_->append(rank_, WaitAllEvent{}); }

void VirtualMpi::barrier() {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kBarrier, 0, 0});
}

void VirtualMpi::bcast(Bytes bytes, Rank root) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kBcast, bytes, root});
}

void VirtualMpi::reduce(Bytes bytes, Rank root) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kReduce, bytes, root});
}

void VirtualMpi::allreduce(Bytes bytes) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kAllreduce, bytes, 0});
}

void VirtualMpi::gather(Bytes bytes, Rank root) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kGather, bytes, root});
}

void VirtualMpi::allgather(Bytes bytes) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kAllgather, bytes, 0});
}

void VirtualMpi::scatter(Bytes bytes, Rank root) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kScatter, bytes, root});
}

void VirtualMpi::alltoall(Bytes bytes) {
  trace_->append(rank_, CollectiveEvent{CollectiveOp::kAlltoall, bytes, 0});
}

void VirtualMpi::reduce_scatter(Bytes bytes) {
  trace_->append(rank_,
                 CollectiveEvent{CollectiveOp::kReduceScatter, bytes, 0});
}

void VirtualMpi::iteration_begin(std::int32_t id) {
  trace_->append(rank_, MarkerEvent{MarkerKind::kIterationBegin, id});
}

void VirtualMpi::iteration_end(std::int32_t id) {
  trace_->append(rank_, MarkerEvent{MarkerKind::kIterationEnd, id});
}

void VirtualMpi::phase_begin(std::int32_t id) {
  trace_->append(rank_, MarkerEvent{MarkerKind::kPhaseBegin, id});
}

void VirtualMpi::phase_end(std::int32_t id) {
  trace_->append(rank_, MarkerEvent{MarkerKind::kPhaseEnd, id});
}

Trace run_spmd(Rank n_ranks, const RankProgram& program,
               const SpmdOptions& options) {
  PALS_CHECK_MSG(n_ranks > 0, "run_spmd requires at least one rank");
  PALS_CHECK_MSG(program != nullptr, "run_spmd requires a program");
  Trace trace(n_ranks);
  trace.set_name(options.name);
  for (Rank r = 0; r < n_ranks; ++r) {
    VirtualMpi mpi(trace, r, options.flops_per_second);
    program(mpi);
  }
  trace.validate();
  return trace;
}

}  // namespace pals
