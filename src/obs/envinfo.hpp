// pals::obs — environment fingerprint for benchmark reports.
//
// A benchmark number is meaningless without the environment it was
// measured in: the same suite on the same commit produces different
// wall-clock on a Debug build, under a sanitizer, or on a different
// core count. EnvInfo pins the facts a reader needs to judge whether
// two BENCH_*.json files are comparable — git SHA, compiler + flags,
// build type, sanitizer state and CPU count.
//
// The build-side fields (SHA, flags, build type, sanitizers) are baked
// in at CMake configure time via compile definitions on envinfo.cpp
// only, so touching the SHA never rebuilds the rest of the library;
// the runtime fields (CPU count) are sampled by collect_env_info().
#pragma once

#include <string>

namespace pals {
namespace obs {

struct EnvInfo {
  std::string git_sha;         ///< "a1b2c3d4e5f6" (configure-time; "unknown"
                               ///< outside a git checkout)
  std::string compiler;        ///< "GNU 13.2.0" / "Clang 17.0.1"
  std::string compiler_flags;  ///< CMAKE_CXX_FLAGS + per-build-type flags
  std::string build_type;      ///< "RelWithDebInfo", "Debug", ...
  std::string sanitizers;      ///< "none" or the PALS_SANITIZE list
  int cpu_count = 0;           ///< hardware_concurrency at run time

  bool operator==(const EnvInfo&) const = default;

  /// {"git_sha":...,"compiler":...,...} — one line, no trailing newline.
  std::string to_json() const;
};

/// Sample the current process environment (build facts from the baked-in
/// definitions, CPU count from the runtime).
EnvInfo collect_env_info();

}  // namespace obs
}  // namespace pals
