#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace obs {

namespace {

/// Microsecond timestamps with fixed precision: equal values, equal bytes.
std::string format_us(double us) { return format_fixed(us, 3); }

std::string render_args(const ChromeTraceWriter::Args& args) {
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(args[i].first) + "\":\"" +
           json_escape(args[i].second) + '"';
  }
  out += '}';
  return out;
}

}  // namespace

void ChromeTraceWriter::process_name(int pid, const std::string& name) {
  events_.push_back(
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid) +
      ",\"tid\":0,\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
}

void ChromeTraceWriter::thread_name(int pid, int tid, const std::string& name) {
  events_.push_back(
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(pid) +
      ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"" +
      json_escape(name) + "\"}}");
}

void ChromeTraceWriter::complete_event(int pid, int tid,
                                       const std::string& name, double ts_us,
                                       double dur_us, const Args& args) {
  std::string event =
      "{\"ph\":\"X\",\"name\":\"" + json_escape(name) +
      "\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
      ",\"ts\":" + format_us(ts_us) + ",\"dur\":" + format_us(dur_us);
  if (!args.empty()) event += ",\"args\":" + render_args(args);
  event += '}';
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::flow_begin(int pid, int tid, const std::string& name,
                                   double ts_us, std::uint64_t id) {
  events_.push_back("{\"ph\":\"s\",\"name\":\"" + json_escape(name) +
                    "\",\"cat\":\"flow\",\"id\":" + std::to_string(id) +
                    ",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"ts\":" + format_us(ts_us) + "}");
}

void ChromeTraceWriter::flow_end(int pid, int tid, const std::string& name,
                                 double ts_us, std::uint64_t id) {
  events_.push_back("{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"" +
                    json_escape(name) +
                    "\",\"cat\":\"flow\",\"id\":" + std::to_string(id) +
                    ",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"ts\":" + format_us(ts_us) + "}");
}

std::string ChromeTraceWriter::to_json() const {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += events_[i];
  }
  out += "\n]}\n";
  return out;
}

void ChromeTraceWriter::write_file(const std::string& path) const {
  atomic_write_file(path, to_json());
}

void append_host_spans(ChromeTraceWriter& writer, const Registry& registry,
                       int pid, const std::string& process_name) {
  const std::vector<SpanRecord> spans = registry.spans();
  writer.process_name(pid, process_name);
  std::set<int> threads;
  for (const SpanRecord& s : spans) threads.insert(s.thread);
  for (const int tid : threads)
    writer.thread_name(pid, tid, "thread-" + std::to_string(tid));
  for (const SpanRecord& s : spans) {
    ChromeTraceWriter::Args args;
    if (!s.detail.empty()) args.emplace_back("detail", s.detail);
    writer.complete_event(pid, s.thread, s.name,
                          static_cast<double>(s.begin_ns) / 1e3,
                          static_cast<double>(s.end_ns - s.begin_ns) / 1e3,
                          args);
  }
}

void append_simulated_replay(ChromeTraceWriter& writer,
                             const ReplayResult& result,
                             const SimulatedTraceOptions& options) {
  writer.process_name(options.pid, options.process_name);
  const Rank n_ranks = result.timeline.n_ranks();
  for (Rank rank = 0; rank < n_ranks; ++rank)
    writer.thread_name(options.pid, rank, "rank " + std::to_string(rank));
  for (Rank rank = 0; rank < n_ranks; ++rank) {
    for (const StateInterval& interval : result.timeline.intervals(rank)) {
      if (interval.state == RankState::kIdle && !options.include_idle) continue;
      ChromeTraceWriter::Args args;
      if (interval.phase >= 0)
        args.emplace_back("phase", std::to_string(interval.phase));
      if (interval.iteration >= 0)
        args.emplace_back("iteration", std::to_string(interval.iteration));
      writer.complete_event(options.pid, rank, to_string(interval.state),
                            interval.begin * 1e6, interval.duration() * 1e6,
                            args);
    }
  }
  if (!options.flows) return;
  // Namespace flow ids by pid so baseline and scaled replays can coexist
  // in one file without cross-linking arrows.
  const std::uint64_t id_base = static_cast<std::uint64_t>(options.pid) << 32;
  for (std::size_t i = 0; i < result.messages.size(); ++i) {
    const MessageRecord& m = result.messages[i];
    const std::uint64_t id = id_base | static_cast<std::uint64_t>(i);
    writer.flow_begin(options.pid, m.src, "p2p", m.send_time * 1e6, id);
    writer.flow_end(options.pid, m.dst, "p2p", m.recv_time * 1e6, id);
  }
}

}  // namespace obs
}  // namespace pals
