// pals::obs::bench — unified benchmark-run subsystem.
//
// Every benchmark in this repo used to roll its own timing loop and its
// own output format; nothing could compare two runs, and nothing failed
// when a PR regressed the hot path. This layer fixes the methodology
// once:
//
//  * A benchmark *case* is a callable run `warmup` times (discarded) and
//    then `repetitions` times, each repetition timed individually.
//    Per-metric statistics — median, MAD, p95, mean, min/max and the
//    coefficient of variation — summarize the noisy wall-clock side;
//    a CV above `unstable_cv` flags the metric (and its case) unstable.
//  * Alongside the noisy timings, every repetition snapshots the
//    *deterministic work counters* from an obs::Registry (simulation
//    metrics only — see obs::is_host_metric): simulated events, messages
//    matched, bytes read, queue peak, scenarios completed, ... The
//    registry is reset before each repetition, so the recorded values
//    are per-repetition and must be identical across repetitions — the
//    runner verifies this (`counters_deterministic`) and compare gates
//    on them byte-exactly, independent of machine speed.
//  * A Report serializes to a schema-versioned JSON document
//    (BENCH_suite.json) carrying the methodology, the environment
//    fingerprint (obs/envinfo.hpp) and the per-case results; the
//    deterministic section alone serializes via counters_json() for
//    byte-comparison in CI.
//  * compare_reports() gates a candidate report against a baseline:
//    hard (byte-exact) on counters, relative-threshold on timing
//    medians ("*_seconds" lower-better, "*_per_second" higher-better).
//
// The framework lives in pals_obs (it needs only util + the registry);
// the macro-benchmark suite that feeds it lives in tools/pals_bench.cpp.
// See docs/bench.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/envinfo.hpp"
#include "obs/metrics.hpp"

namespace pals {

struct JsonValue;  // util/json.hpp

namespace obs {
namespace bench {

/// Bumped whenever the report layout changes incompatibly; compare
/// refuses to gate across versions.
inline constexpr int kSchemaVersion = 1;

/// Measurement methodology, pinned into every report so a reader can
/// judge how trustworthy the numbers are.
struct Methodology {
  int warmup = 1;           ///< discarded repetitions before measurement
  int repetitions = 5;      ///< measured repetitions per case
  double unstable_cv = 0.10;  ///< CV above this flags a metric unstable

  bool operator==(const Methodology&) const = default;
};

/// One timing-style metric summarized over the repetitions. All raw
/// samples are kept (repetition order) so trajectories stay re-analyzable.
struct MetricStats {
  std::string name;  ///< "wall_seconds", "events_per_second", ...
  std::vector<double> samples;
  double median = 0.0;
  double mad = 0.0;  ///< median absolute deviation from the median
  double p95 = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double cv = 0.0;        ///< coefficient of variation (stddev / mean)
  bool unstable = false;  ///< cv > methodology.unstable_cv

  bool operator==(const MetricStats&) const = default;
};

/// Compute the full statistics block over `samples` (throws on empty).
MetricStats summarize_metric(std::string name, std::vector<double> samples,
                             double unstable_cv);

/// One deterministic work counter (registry counter delta or gauge value
/// over a repetition).
struct CounterValue {
  std::string name;
  std::int64_t value = 0;

  bool operator==(const CounterValue&) const = default;
};

/// One benchmark case's results.
struct CaseResult {
  std::string name;
  std::vector<MetricStats> timing;     ///< sorted by metric name
  std::vector<CounterValue> counters;  ///< sorted by name; the byte-exact
                                       ///< deterministic section
  /// False when the per-repetition counter snapshots disagreed — a
  /// determinism bug in the measured code path, reported hard by the
  /// driver.
  bool counters_deterministic = true;
  bool unstable = false;  ///< any timing metric unstable

  const MetricStats* find_timing(std::string_view metric) const;
  const CounterValue* find_counter(std::string_view counter) const;
};

/// A full suite run: methodology + environment + per-case results.
struct Report {
  int schema_version = kSchemaVersion;
  std::string suite;  ///< "macro", "replay", "micro", ...
  Methodology methodology;
  EnvInfo env;
  std::uint64_t peak_rss_bytes = 0;  ///< getrusage high-water mark
  std::vector<CaseResult> cases;     ///< suite registration order

  const CaseResult* find(std::string_view case_name) const;
  bool counters_deterministic() const;

  /// The schema-versioned BENCH_suite.json document. Doubles are
  /// rendered with format_roundtrip, so from_json() recovers them
  /// bit-exactly.
  std::string to_json() const;
  /// Deterministic section only — schema, suite and per-case counters.
  /// Byte-identical across repeated runs and --jobs values whenever the
  /// measured code paths honour the obs determinism contract.
  std::string counters_json() const;
  /// One-line trajectory record for --history files: git SHA, suite and
  /// per-case wall_seconds medians. Newline-terminated.
  std::string history_line() const;
};

/// Parse a report (full or counters-only) back from its JSON document.
/// Throws pals::Error naming the offending key on structural problems —
/// pals_json_check --bench exposes this as a validator.
Report report_from_json(const JsonValue& document);
Report report_from_file(const std::string& path);

/// Per-repetition sample sink handed to case bodies: sample() records an
/// extra timing-style metric for this repetition (e.g. a derived
/// events_per_second). Every repetition must sample the same metric set.
class Sink {
 public:
  void sample(const std::string& metric, double value);

  const std::map<std::string, double>& samples() const { return samples_; }

 private:
  std::map<std::string, double> samples_;
};

/// One registered benchmark case. The body runs `warmup + repetitions`
/// times; the runner times it, snapshots the registry around it, and
/// collects Sink samples.
struct Case {
  std::string name;
  std::function<void(Sink&)> body;
};

struct RunOptions {
  Methodology methodology;
  /// Registry the measured code writes its work counters to; null means
  /// obs::default_registry(). The runner reset()s it before every
  /// repetition, so per-repetition values are absolute.
  Registry* registry = nullptr;
  /// Optional per-case progress callback ("case replay.throughput: ...").
  std::function<void(const std::string&)> log;
};

/// Run every case under the methodology and assemble the report
/// (environment fingerprint and peak RSS included). Throws pals::Error
/// on malformed suites (no cases, duplicate names, inconsistent Sink
/// metric sets across repetitions).
Report run_suite(const std::string& suite_name, const std::vector<Case>& cases,
                 const RunOptions& options = {});

struct CompareOptions {
  /// Allowed relative timing drift on medians: a "*_seconds" metric
  /// regresses when candidate > baseline * (1 + threshold); a
  /// "*_per_second" metric when candidate < baseline / (1 + threshold).
  /// 0.5 tolerates 50% noise but still catches a 2x regression.
  double timing_threshold = 0.5;
  /// Gate only the deterministic counter sections (CI mode: byte-exact,
  /// machine-independent).
  bool counters_only = false;
};

struct CompareFailure {
  std::string case_name;  ///< empty for report-level failures
  std::string what;
};

struct CompareResult {
  bool ok = true;
  std::vector<CompareFailure> failures;
  std::vector<std::string> notes;  ///< non-gating observations

  /// Human-readable multi-line verdict.
  std::string to_text() const;
};

/// Gate `candidate` against `baseline`: schema versions must match, the
/// case sets must agree, every shared counter must be byte-exact, and
/// (unless counters_only) timing medians must stay inside the threshold.
CompareResult compare_reports(const Report& baseline, const Report& candidate,
                              const CompareOptions& options = {});

}  // namespace bench
}  // namespace obs
}  // namespace pals
