// pals::obs — metrics registry (counters, gauges, fixed-bucket histograms).
//
// The observability spine of the pipeline: every layer that wants to
// report "how much work happened" registers a named metric here and bumps
// it with relaxed atomics. A Registry snapshot is a deterministic,
// key-sorted value list renderable as JSON, CSV or aligned text.
//
// Determinism contract (what makes `--jobs 1` vs `--jobs 8` snapshots
// byte-identical):
//  * Counters and gauges hold integers only. Quantities measured in
//    simulated seconds are stored as integer nanoseconds
//    (obs::to_nanos), so concurrent accumulation is commutative — no
//    floating-point reassociation across thread schedules.
//  * Metrics that measure *host* behaviour (wall-clock spans, thread-pool
//    scheduling) are inherently nondeterministic; they live in reserved
//    namespaces (is_host_metric) and MetricsSnapshot::simulation_only()
//    drops them, leaving the byte-stable simulation view.
//
// A process-global default_registry() serves the common case; scoped
// Registry instances back per-trace statistics (pals_trace_info --stats)
// and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pals {
namespace obs {

/// Simulated (or wall) seconds → integer nanoseconds, the unit all
/// duration metrics use so that concurrent sums stay order-independent.
std::int64_t to_nanos(double seconds);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write or running-extremum integer value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if larger (commutative, hence deterministic
  /// under concurrency).
  void update_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; an
/// implicit overflow bucket catches everything above the last bound.
/// The sum is a double accumulated with a CAS loop — deterministic only
/// when observations happen on one thread (all current users do).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string to_string(MetricKind kind);

/// One metric's value at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;   ///< counter value, or histogram observation count
  std::int64_t gauge = 0;    ///< gauge value
  double sum = 0.0;          ///< histogram sum
  std::vector<double> bounds;          ///< histogram bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< histogram counts (incl. overflow)

  bool operator==(const MetricValue&) const = default;
};

/// True for metrics in the host-side (wall-clock / scheduling) namespaces,
/// which are excluded from determinism comparisons and goldens:
/// "span.*", "pool.*", "host.*", and any "*.wall_ns" / "*.wall_seconds".
bool is_host_metric(std::string_view name);

/// Key-sorted value list; all renderers are byte-deterministic given equal
/// metric values.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  ///< sorted by name

  const MetricValue* find(std::string_view name) const;
  /// Counter value (or gauge value) of `name`; 0 when absent.
  std::uint64_t value_of(std::string_view name) const;

  /// Copy without host metrics (see is_host_metric) — the byte-stable
  /// simulation view compared across --jobs counts.
  MetricsSnapshot simulation_only() const;

  /// {"metrics":[{"name":...,"kind":...,...},...]} with \n separators.
  std::string to_json() const;
  /// "name,kind,value,count,sum" (histograms render bucket columns as
  /// "le=BOUND:N" pairs joined by ';').
  std::string to_csv() const;
  /// Aligned "name  value" lines for terminal output.
  std::string to_text() const;
};

/// One recorded host-side span (see span.hpp). Times are nanoseconds
/// since the owning registry's epoch; `thread` is the small sequential
/// ordinal from thread_ordinal().
struct SpanRecord {
  std::string name;
  std::string detail;  ///< optional free-form label (trace args)
  int thread = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Thread-safe name → metric registry with an attached span log.
class Registry {
 public:
  Registry();

  /// Find-or-create by name. Throws pals::Error if `name` already exists
  /// with a different kind (or, for histograms, different bounds).
  /// Returned references stay valid for the registry's lifetime (reset()
  /// zeroes values in place, it does not deallocate).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Append a span and bump its "span.<name>.count" / ".wall_ns" metrics.
  void record_span(SpanRecord span);
  std::vector<SpanRecord> spans() const;
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  MetricsSnapshot snapshot() const;

  /// Zero every metric and drop recorded spans. References returned by
  /// counter()/gauge()/histogram() remain valid.
  void reset();

 private:
  struct Slot {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
  std::vector<SpanRecord> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// The process-global registry the instrumented libraries write to.
Registry& default_registry();

/// Small sequential per-thread ordinal (0, 1, 2, ... in first-use order);
/// used as the Chrome-trace tid for host spans.
int thread_ordinal();

}  // namespace obs
}  // namespace pals
