// pals::obs — Chrome trace_event JSON export (loadable in Perfetto or
// chrome://tracing).
//
// One writer, two producers:
//  * append_host_spans — the wall-clock spans recorded in a Registry
//    become duration events on a "host" process (pid 1 by default), one
//    track per worker thread. Host timings are nondeterministic and are
//    never part of golden files.
//  * append_simulated_replay — the simulated execution from a
//    ReplayResult: each MPI rank is a track, every timeline state
//    interval a duration event, and every matched point-to-point message
//    a flow arrow from sender to receiver. Simulated time is
//    deterministic, so this export is byte-stable and golden-tested.
//
// All timestamps are microseconds (the trace_event unit) rendered with
// fixed 3-decimal precision so equal inputs give equal bytes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "replay/replay.hpp"

namespace pals {
namespace obs {

/// Accumulates trace_event records; serialization happens at append time
/// so the output byte order is exactly the append order.
class ChromeTraceWriter {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Metadata: name the process `pid`.
  void process_name(int pid, const std::string& name);
  /// Metadata: name thread `tid` of process `pid` (its track label).
  void thread_name(int pid, int tid, const std::string& name);

  /// Complete event ("ph":"X"): a span of `dur_us` starting at `ts_us`.
  /// `args` values are emitted as JSON strings.
  void complete_event(int pid, int tid, const std::string& name, double ts_us,
                      double dur_us, const Args& args = {});

  /// Flow start ("ph":"s") / flow end ("ph":"f", binding "e"). Events with
  /// the same `id` and name are drawn as one arrow.
  void flow_begin(int pid, int tid, const std::string& name, double ts_us,
                  std::uint64_t id);
  void flow_end(int pid, int tid, const std::string& name, double ts_us,
                std::uint64_t id);

  std::size_t event_count() const { return events_.size(); }

  /// {"traceEvents":[...]} — the standard JSON Object Format wrapper.
  std::string to_json() const;
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> events_;
};

/// Export the spans recorded in `registry` as duration events on process
/// `pid` (track per thread ordinal). Span details become an "detail" arg.
void append_host_spans(ChromeTraceWriter& writer, const Registry& registry,
                       int pid = 1, const std::string& process_name = "host");

struct SimulatedTraceOptions {
  int pid = 2;                           ///< process id for the rank tracks
  std::string process_name = "simulation";
  bool include_idle = false;  ///< emit kIdle intervals (off: gaps instead)
  bool flows = true;          ///< draw point-to-point messages as arrows
};

/// Export the simulated timeline + messages of `result` (byte-stable).
/// Flow ids are namespaced by pid so several replays can share a file.
void append_simulated_replay(ChromeTraceWriter& writer,
                             const ReplayResult& result,
                             const SimulatedTraceOptions& options = {});

}  // namespace obs
}  // namespace pals
