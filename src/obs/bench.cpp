#include "obs/bench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "obs/record.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace pals {
namespace obs {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

/// Timing direction for the compare gate, inferred from the metric name.
enum class Direction { kLowerBetter, kHigherBetter, kUngated };

Direction metric_direction(std::string_view name) {
  if (ends_with(name, "_per_second")) return Direction::kHigherBetter;
  if (ends_with(name, "_seconds")) return Direction::kLowerBetter;
  return Direction::kUngated;
}

/// The member `key` of `object`, or a structural error naming `where`.
const JsonValue& require_member(const JsonValue& object, const char* key,
                                const std::string& where) {
  PALS_CHECK_MSG(object.is_object(),
                 "bench report: " << where << " is not an object");
  const JsonValue* value = object.find(key);
  PALS_CHECK_MSG(value != nullptr,
                 "bench report: " << where << " is missing '" << key << "'");
  return *value;
}

double require_number(const JsonValue& object, const char* key,
                      const std::string& where) {
  const JsonValue& value = require_member(object, key, where);
  PALS_CHECK_MSG(value.is_number(),
                 "bench report: " << where << "." << key << " is not a number");
  return value.number;
}

std::string require_string(const JsonValue& object, const char* key,
                           const std::string& where) {
  const JsonValue& value = require_member(object, key, where);
  PALS_CHECK_MSG(value.is_string(),
                 "bench report: " << where << "." << key << " is not a string");
  return value.string;
}

bool require_bool(const JsonValue& object, const char* key,
                  const std::string& where) {
  const JsonValue& value = require_member(object, key, where);
  PALS_CHECK_MSG(value.is_bool(),
                 "bench report: " << where << "." << key << " is not a bool");
  return value.boolean;
}

MetricStats metric_from_json(const std::string& name, const JsonValue& value,
                             const std::string& where) {
  MetricStats stats;
  stats.name = name;
  stats.median = require_number(value, "median", where);
  stats.mad = require_number(value, "mad", where);
  stats.p95 = require_number(value, "p95", where);
  stats.mean = require_number(value, "mean", where);
  stats.min = require_number(value, "min", where);
  stats.max = require_number(value, "max", where);
  stats.cv = require_number(value, "cv", where);
  stats.unstable = require_bool(value, "unstable", where);
  const JsonValue& samples = require_member(value, "samples", where);
  PALS_CHECK_MSG(samples.is_array(),
                 "bench report: " << where << ".samples is not an array");
  for (const JsonValue& sample : samples.array) {
    PALS_CHECK_MSG(sample.is_number(),
                   "bench report: " << where << ".samples holds a non-number");
    stats.samples.push_back(sample.number);
  }
  return stats;
}

std::vector<CounterValue> counters_from_json(const JsonValue& value,
                                             const std::string& where) {
  PALS_CHECK_MSG(value.is_object(),
                 "bench report: " << where << ".counters is not an object");
  std::vector<CounterValue> counters;
  for (const auto& [name, member] : value.object) {
    PALS_CHECK_MSG(member.is_number(), "bench report: " << where
                                                        << ".counters." << name
                                                        << " is not a number");
    counters.push_back(
        {name, static_cast<std::int64_t>(std::llround(member.number))});
  }
  std::sort(counters.begin(), counters.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  return counters;
}

void render_counters(const std::vector<CounterValue>& counters,
                     std::string& out) {
  out += "{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += quoted(counters[i].name) + ":" + std::to_string(counters[i].value);
  }
  out += "}";
}

void render_metric(const MetricStats& m, std::string& out) {
  out += "{";
  out += "\"median\":" + format_roundtrip(m.median);
  out += ",\"mad\":" + format_roundtrip(m.mad);
  out += ",\"p95\":" + format_roundtrip(m.p95);
  out += ",\"mean\":" + format_roundtrip(m.mean);
  out += ",\"min\":" + format_roundtrip(m.min);
  out += ",\"max\":" + format_roundtrip(m.max);
  out += ",\"cv\":" + format_roundtrip(m.cv);
  out += std::string(",\"unstable\":") + (m.unstable ? "true" : "false");
  out += ",\"samples\":[";
  for (std::size_t i = 0; i < m.samples.size(); ++i) {
    if (i > 0) out += ",";
    out += format_roundtrip(m.samples[i]);
  }
  out += "]}";
}

/// The per-repetition deterministic work record: counter values and
/// gauge values from the simulation-only view of a freshly reset
/// registry (so every value is absolute per repetition). Histograms are
/// skipped — their sums are doubles and not byte-stable by contract.
std::vector<CounterValue> collect_counters(const Registry& registry) {
  const MetricsSnapshot snap =
      registry.snapshot().simulation_only();
  std::vector<CounterValue> counters;
  for (const MetricValue& m : snap.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        if (m.count > 0)
          counters.push_back({m.name, static_cast<std::int64_t>(m.count)});
        break;
      case MetricKind::kGauge:
        if (m.gauge != 0) counters.push_back({m.name, m.gauge});
        break;
      case MetricKind::kHistogram:
        break;
    }
  }
  return counters;  // snapshot is key-sorted, so counters already are
}

}  // namespace

MetricStats summarize_metric(std::string name, std::vector<double> samples,
                             double unstable_cv) {
  PALS_CHECK_MSG(!samples.empty(),
                 "benchmark metric '" << name << "' has no samples");
  MetricStats stats;
  stats.name = std::move(name);
  const StatsSummary summary = summarize(samples);
  stats.mean = summary.mean;
  stats.min = summary.min;
  stats.max = summary.max;
  stats.median = percentile(samples, 50.0);
  stats.p95 = percentile(samples, 95.0);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double s : samples) deviations.push_back(std::abs(s - stats.median));
  stats.mad = percentile(deviations, 50.0);
  stats.cv = coefficient_of_variation(samples);
  stats.unstable = stats.cv > unstable_cv;
  stats.samples = std::move(samples);
  return stats;
}

const MetricStats* CaseResult::find_timing(std::string_view metric) const {
  for (const MetricStats& m : timing)
    if (m.name == metric) return &m;
  return nullptr;
}

const CounterValue* CaseResult::find_counter(std::string_view counter) const {
  for (const CounterValue& c : counters)
    if (c.name == counter) return &c;
  return nullptr;
}

const CaseResult* Report::find(std::string_view case_name) const {
  for (const CaseResult& c : cases)
    if (c.name == case_name) return &c;
  return nullptr;
}

bool Report::counters_deterministic() const {
  return std::all_of(cases.begin(), cases.end(), [](const CaseResult& c) {
    return c.counters_deterministic;
  });
}

std::string Report::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"pals-bench\",\n";
  out += "  \"schema_version\": " + std::to_string(schema_version) + ",\n";
  out += "  \"suite\": " + quoted(suite) + ",\n";
  out += "  \"methodology\": {\"warmup\": " +
         std::to_string(methodology.warmup) +
         ", \"repetitions\": " + std::to_string(methodology.repetitions) +
         ", \"unstable_cv\": " + format_roundtrip(methodology.unstable_cv) +
         "},\n";
  out += "  \"env\": " + env.to_json() + ",\n";
  out += "  \"peak_rss_bytes\": " + std::to_string(peak_rss_bytes) + ",\n";
  out += "  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + quoted(c.name) + ",\n";
    out += std::string("     \"unstable\": ") +
           (c.unstable ? "true" : "false") + ",\n";
    out += std::string("     \"counters_deterministic\": ") +
           (c.counters_deterministic ? "true" : "false") + ",\n";
    out += "     \"timing\": {";
    for (std::size_t t = 0; t < c.timing.size(); ++t) {
      if (t > 0) out += ",";
      out += "\n      " + quoted(c.timing[t].name) + ": ";
      render_metric(c.timing[t], out);
    }
    if (!c.timing.empty()) out += "\n     ";
    out += "},\n";
    out += "     \"counters\": ";
    render_counters(c.counters, out);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Report::counters_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"pals-bench-counters\",\n";
  out += "  \"schema_version\": " + std::to_string(schema_version) + ",\n";
  out += "  \"suite\": " + quoted(suite) + ",\n";
  out += "  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + quoted(cases[i].name) + ", \"counters\": ";
    render_counters(cases[i].counters, out);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Report::history_line() const {
  std::string out = "{\"schema\":\"pals-bench-history\",\"schema_version\":" +
                    std::to_string(schema_version) +
                    ",\"git_sha\":" + quoted(env.git_sha) +
                    ",\"suite\":" + quoted(suite) + ",\"cases\":{";
  bool first = true;
  for (const CaseResult& c : cases) {
    const MetricStats* wall = c.find_timing("wall_seconds");
    if (wall == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += quoted(c.name) + ":{\"wall_seconds_median\":" +
           format_roundtrip(wall->median) +
           ",\"unstable\":" + (c.unstable ? "true" : "false") + "}";
  }
  out += "}}\n";
  return out;
}

Report report_from_json(const JsonValue& document) {
  PALS_CHECK_MSG(document.is_object(), "bench report: document is not an object");
  const std::string schema = require_string(document, "schema", "document");
  PALS_CHECK_MSG(schema == "pals-bench" || schema == "pals-bench-counters",
                 "bench report: unknown schema '" << schema << "'");
  const bool counters_only = schema == "pals-bench-counters";

  Report report;
  report.schema_version = static_cast<int>(
      std::llround(require_number(document, "schema_version", "document")));
  report.suite = require_string(document, "suite", "document");

  if (!counters_only) {
    const JsonValue& methodology =
        require_member(document, "methodology", "document");
    report.methodology.warmup = static_cast<int>(
        std::llround(require_number(methodology, "warmup", "methodology")));
    report.methodology.repetitions = static_cast<int>(std::llround(
        require_number(methodology, "repetitions", "methodology")));
    report.methodology.unstable_cv =
        require_number(methodology, "unstable_cv", "methodology");

    const JsonValue& env = require_member(document, "env", "document");
    report.env.git_sha = require_string(env, "git_sha", "env");
    report.env.compiler = require_string(env, "compiler", "env");
    report.env.compiler_flags = require_string(env, "compiler_flags", "env");
    report.env.build_type = require_string(env, "build_type", "env");
    report.env.sanitizers = require_string(env, "sanitizers", "env");
    report.env.cpu_count = static_cast<int>(
        std::llround(require_number(env, "cpu_count", "env")));
    report.peak_rss_bytes = static_cast<std::uint64_t>(
        std::llround(require_number(document, "peak_rss_bytes", "document")));
  }

  const JsonValue& cases = require_member(document, "cases", "document");
  PALS_CHECK_MSG(cases.is_array(), "bench report: cases is not an array");
  std::set<std::string> seen;
  for (const JsonValue& entry : cases.array) {
    CaseResult result;
    const std::string where_base = "cases[" + std::to_string(seen.size()) + "]";
    result.name = require_string(entry, "name", where_base);
    const std::string where = "case " + result.name;
    PALS_CHECK_MSG(seen.insert(result.name).second,
                   "bench report: duplicate case '" << result.name << "'");
    result.counters =
        counters_from_json(require_member(entry, "counters", where), where);
    if (!counters_only) {
      result.unstable = require_bool(entry, "unstable", where);
      result.counters_deterministic =
          require_bool(entry, "counters_deterministic", where);
      const JsonValue& timing = require_member(entry, "timing", where);
      PALS_CHECK_MSG(timing.is_object(),
                     "bench report: " << where << ".timing is not an object");
      for (const auto& [metric, value] : timing.object)
        result.timing.push_back(
            metric_from_json(metric, value, where + ".timing." + metric));
      std::sort(result.timing.begin(), result.timing.end(),
                [](const MetricStats& a, const MetricStats& b) {
                  return a.name < b.name;
                });
    }
    report.cases.push_back(std::move(result));
  }
  return report;
}

Report report_from_file(const std::string& path) {
  return report_from_json(json_parse_file(path));
}

void Sink::sample(const std::string& metric, double value) {
  PALS_CHECK_MSG(metric != "wall_seconds",
                 "benchmark bodies may not sample 'wall_seconds' "
                 "(the runner measures it)");
  PALS_CHECK_MSG(samples_.emplace(metric, value).second,
                 "benchmark metric '" << metric
                                      << "' sampled twice in one repetition");
}

Report run_suite(const std::string& suite_name, const std::vector<Case>& cases,
                 const RunOptions& options) {
  PALS_CHECK_MSG(!cases.empty(), "benchmark suite '" << suite_name
                                                     << "' has no cases");
  {
    std::set<std::string> names;
    for (const Case& c : cases)
      PALS_CHECK_MSG(names.insert(c.name).second,
                     "duplicate benchmark case '" << c.name << "'");
  }
  Registry& registry =
      options.registry != nullptr ? *options.registry : default_registry();
  const Methodology& method = options.methodology;
  PALS_CHECK_MSG(method.warmup >= 0, "bench warmup must be >= 0");
  PALS_CHECK_MSG(method.repetitions > 0, "bench repetitions must be > 0");

  Report report;
  report.suite = suite_name;
  report.methodology = method;
  report.env = collect_env_info();

  for (const Case& c : cases) {
    if (options.log) options.log("case " + c.name);
    for (int w = 0; w < method.warmup; ++w) {
      registry.reset();
      Sink sink;
      c.body(sink);
    }
    std::map<std::string, std::vector<double>> samples;
    std::vector<std::vector<CounterValue>> rep_counters;
    for (int r = 0; r < method.repetitions; ++r) {
      registry.reset();
      Sink sink;
      const auto start = Clock::now();
      c.body(sink);
      const double wall =
          std::chrono::duration<double>(Clock::now() - start).count();
      rep_counters.push_back(collect_counters(registry));
      samples["wall_seconds"].push_back(wall);
      for (const auto& [metric, value] : sink.samples())
        samples[metric].push_back(value);
    }
    // Every repetition must contribute every metric, or the statistics
    // would silently mix sample counts.
    for (const auto& [metric, values] : samples)
      PALS_CHECK_MSG(
          values.size() == static_cast<std::size_t>(method.repetitions),
          "benchmark case '" << c.name << "' sampled metric '" << metric
                             << "' in only " << values.size() << "/"
                             << method.repetitions << " repetitions");

    CaseResult result;
    result.name = c.name;
    for (auto& [metric, values] : samples)
      result.timing.push_back(
          summarize_metric(metric, std::move(values), method.unstable_cv));
    result.counters = rep_counters.front();
    result.counters_deterministic =
        std::all_of(rep_counters.begin(), rep_counters.end(),
                    [&](const std::vector<CounterValue>& reps) {
                      return reps == rep_counters.front();
                    });
    result.unstable =
        std::any_of(result.timing.begin(), result.timing.end(),
                    [](const MetricStats& m) { return m.unstable; });
    report.cases.push_back(std::move(result));
  }
  report.peak_rss_bytes = peak_rss_bytes();
  return report;
}

std::string CompareResult::to_text() const {
  std::string out;
  if (ok) {
    out = "bench compare: OK\n";
  } else {
    out = "bench compare: FAIL (" + std::to_string(failures.size()) +
          " failure" + (failures.size() == 1 ? "" : "s") + ")\n";
  }
  for (const CompareFailure& f : failures) {
    out += "  FAIL ";
    if (!f.case_name.empty()) out += "[" + f.case_name + "] ";
    out += f.what + "\n";
  }
  for (const std::string& note : notes) out += "  note " + note + "\n";
  return out;
}

CompareResult compare_reports(const Report& baseline, const Report& candidate,
                              const CompareOptions& options) {
  CompareResult result;
  const auto fail = [&](const std::string& case_name, std::string what) {
    result.ok = false;
    result.failures.push_back({case_name, std::move(what)});
  };

  if (baseline.schema_version != candidate.schema_version) {
    fail("", "schema_version mismatch: baseline " +
                 std::to_string(baseline.schema_version) + " vs candidate " +
                 std::to_string(candidate.schema_version));
    return result;
  }
  if (baseline.suite != candidate.suite)
    result.notes.push_back("suite name differs: '" + baseline.suite +
                           "' vs '" + candidate.suite + "'");

  for (const CaseResult& b : baseline.cases)
    if (candidate.find(b.name) == nullptr)
      fail(b.name, "case missing from candidate");
  for (const CaseResult& c : candidate.cases)
    if (baseline.find(c.name) == nullptr)
      fail(c.name, "case missing from baseline (refresh the baseline)");

  for (const CaseResult& b : baseline.cases) {
    const CaseResult* c = candidate.find(b.name);
    if (c == nullptr) continue;

    // Hard gate: the deterministic section must agree byte-exactly.
    if (!b.counters_deterministic || !c->counters_deterministic)
      fail(b.name, "counters were not deterministic across repetitions");
    for (const CounterValue& counter : b.counters) {
      const CounterValue* other = c->find_counter(counter.name);
      if (other == nullptr) {
        fail(b.name, "counter '" + counter.name + "' missing from candidate");
      } else if (other->value != counter.value) {
        fail(b.name, "counter '" + counter.name + "' drifted: " +
                         std::to_string(counter.value) + " -> " +
                         std::to_string(other->value));
      }
    }
    for (const CounterValue& counter : c->counters)
      if (b.find_counter(counter.name) == nullptr)
        fail(b.name, "counter '" + counter.name + "' missing from baseline");

    if (options.counters_only) continue;

    // Soft gate: timing medians within the relative threshold.
    for (const MetricStats& bm : b.timing) {
      const MetricStats* cm = c->find_timing(bm.name);
      if (cm == nullptr) {
        fail(b.name, "timing metric '" + bm.name + "' missing from candidate");
        continue;
      }
      const Direction direction = metric_direction(bm.name);
      if (direction == Direction::kUngated) continue;
      if (bm.median <= 0.0) {
        result.notes.push_back("[" + b.name + "] baseline median of '" +
                               bm.name + "' is not positive; not gated");
        continue;
      }
      if (bm.unstable || cm->unstable)
        result.notes.push_back("[" + b.name + "] metric '" + bm.name +
                               "' flagged unstable (CV " +
                               format_fixed(bm.cv, 3) + " vs " +
                               format_fixed(cm->cv, 3) + ")");
      const double ratio = cm->median / bm.median;
      const double limit = 1.0 + options.timing_threshold;
      const bool regressed = direction == Direction::kLowerBetter
                                 ? ratio > limit
                                 : ratio < 1.0 / limit;
      if (regressed)
        fail(b.name, "timing regression on '" + bm.name + "': median " +
                         format_roundtrip(bm.median) + " -> " +
                         format_roundtrip(cm->median) + " (" +
                         format_fixed(ratio, 3) + "x, limit " +
                         format_fixed(limit, 3) + "x)");
    }
  }
  return result;
}

}  // namespace bench
}  // namespace obs
}  // namespace pals
