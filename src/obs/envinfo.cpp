#include "obs/envinfo.hpp"

#include <thread>

#include "util/json.hpp"

// Configure-time facts, attached to this translation unit only (see
// src/obs/CMakeLists.txt). Fallbacks keep non-CMake builds compiling.
#ifndef PALS_GIT_SHA
#define PALS_GIT_SHA "unknown"
#endif
#ifndef PALS_BUILD_TYPE
#define PALS_BUILD_TYPE "unknown"
#endif
#ifndef PALS_CXX_FLAGS
#define PALS_CXX_FLAGS ""
#endif
#ifndef PALS_SANITIZERS
#define PALS_SANITIZERS "none"
#endif

namespace pals {
namespace obs {
namespace {

std::string compiler_id() {
#if defined(__clang__)
  return "Clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "GNU " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
  return "MSVC " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

}  // namespace

std::string EnvInfo::to_json() const {
  std::string out = "{";
  out += "\"git_sha\":\"" + json_escape(git_sha) + "\"";
  out += ",\"compiler\":\"" + json_escape(compiler) + "\"";
  out += ",\"compiler_flags\":\"" + json_escape(compiler_flags) + "\"";
  out += ",\"build_type\":\"" + json_escape(build_type) + "\"";
  out += ",\"sanitizers\":\"" + json_escape(sanitizers) + "\"";
  out += ",\"cpu_count\":" + std::to_string(cpu_count);
  out += "}";
  return out;
}

EnvInfo collect_env_info() {
  EnvInfo env;
  env.git_sha = PALS_GIT_SHA;
  env.compiler = compiler_id();
  env.compiler_flags = PALS_CXX_FLAGS;
  env.build_type = PALS_BUILD_TYPE;
  env.sanitizers = PALS_SANITIZERS;
  env.cpu_count = static_cast<int>(std::thread::hardware_concurrency());
  return env;
}

}  // namespace obs
}  // namespace pals
