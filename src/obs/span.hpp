// pals::obs — RAII host-side span timing.
//
// A SpanTimer measures the wall-clock extent of a scope with
// steady_clock and records it into a Registry as a SpanRecord (plus the
// derived "span.<name>.count" / "span.<name>.wall_ns" counters). Spans
// are host metrics: they never appear in simulation-only snapshots or
// golden files, but they drive the host-side track of the Chrome-trace
// export and the per-phase breakdowns reported by run_pipeline and the
// sweep.
//
// The registry pointer may be null, making the timer a no-op; callers
// gate instrumentation on a config flag without branching at every site:
//
//   PALS_SPAN("pipeline.scaled_replay", observe ? &obs::default_registry()
//                                               : nullptr);
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace pals {
namespace obs {

/// Times the enclosing scope; records into `registry` on destruction.
/// A null registry disables the timer entirely.
class SpanTimer {
 public:
  SpanTimer(Registry* registry, std::string name, std::string detail = {})
      : registry_(registry), name_(std::move(name)), detail_(std::move(detail)) {
    if (registry_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }

  SpanTimer(Registry& registry, std::string name, std::string detail = {})
      : SpanTimer(&registry, std::move(name), std::move(detail)) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    if (registry_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    SpanRecord record;
    record.name = std::move(name_);
    record.detail = std::move(detail_);
    record.thread = thread_ordinal();
    record.begin_ns = elapsed_ns(begin_);
    record.end_ns = elapsed_ns(end);
    registry_->record_span(std::move(record));
  }

 private:
  std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t) const {
    const auto d = t - registry_->epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  Registry* registry_;
  std::string name_;
  std::string detail_;
  std::chrono::steady_clock::time_point begin_;
};

#define PALS_SPAN_CONCAT_INNER(a, b) a##b
#define PALS_SPAN_CONCAT(a, b) PALS_SPAN_CONCAT_INNER(a, b)

/// Time the current scope as span `name` in `registry` (Registry&,
/// Registry*, or nullptr to disable).
#define PALS_SPAN(name, registry) \
  ::pals::obs::SpanTimer PALS_SPAN_CONCAT(pals_span_, __LINE__)(registry, name)

/// PALS_SPAN with a free-form detail string (becomes trace args).
#define PALS_SPAN_DETAIL(name, registry, detail)                          \
  ::pals::obs::SpanTimer PALS_SPAN_CONCAT(pals_span_, __LINE__)(registry, \
                                                                name, detail)

}  // namespace obs
}  // namespace pals
