// pals::obs — bridges from layers that sit below the obs library.
//
// The trace library and the thread pool cannot link pals_obs (it links
// pals_trace, and pals_util sits below everything), so they expose plain
// stats structs; these helpers mirror those structs into a Registry as
// gauges right before a snapshot is taken.
#pragma once

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace obs {

/// Mirror the process-wide trace I/O counters (pals::trace_io_stats) into
/// `registry` as gauges "trace.io.bytes_read" / "trace.io.traces_parsed".
void record_trace_io(Registry& registry);

/// Mirror a ThreadPool's scheduling counters into `registry` under
/// "pool.*" (host metrics: excluded from determinism comparisons).
void record_thread_pool(const ThreadPoolStats& stats, Registry& registry);

/// The process's peak resident set size in bytes (getrusage high-water
/// mark), or 0 where the platform offers no equivalent.
std::uint64_t peak_rss_bytes();

/// Record peak_rss_bytes() into `registry` as the "host.peak_rss_bytes"
/// gauge (host metric: excluded from determinism comparisons).
void record_peak_rss(Registry& registry);

}  // namespace obs
}  // namespace pals
