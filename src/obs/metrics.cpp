#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace obs {

std::int64_t to_nanos(double seconds) {
  return std::llround(seconds * 1e9);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PALS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  PALS_CHECK_MSG(
      std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
      "histogram bounds must be distinct");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

bool is_host_metric(std::string_view name) {
  // "serve." counts host-side daemon traffic (admission, shedding, cache
  // churn) — timing- and client-dependent, so excluded like the rest.
  return starts_with(name, "span.") || starts_with(name, "pool.") ||
         starts_with(name, "host.") || starts_with(name, "serve.") ||
         ends_with(name, ".wall_ns") || ends_with(name, ".wall_seconds");
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::uint64_t MetricsSnapshot::value_of(std::string_view name) const {
  const MetricValue* m = find(name);
  if (!m) return 0;
  if (m->kind == MetricKind::kGauge)
    return static_cast<std::uint64_t>(m->gauge);
  return m->count;
}

MetricsSnapshot MetricsSnapshot::simulation_only() const {
  MetricsSnapshot out;
  for (const MetricValue& m : metrics)
    if (!is_host_metric(m.name)) out.metrics.push_back(m);
  return out;
}

namespace {

/// Histogram sums/bounds rendered with fixed precision so equal values
/// always yield equal bytes.
std::string format_number(double v) { return format_fixed(v, 9); }

void render_json(const MetricValue& m, std::string& out) {
  out += "{\"name\":\"" + json_escape(m.name) + "\",\"kind\":\"" +
         to_string(m.kind) + "\"";
  switch (m.kind) {
    case MetricKind::kCounter:
      out += ",\"value\":" + std::to_string(m.count);
      break;
    case MetricKind::kGauge:
      out += ",\"value\":" + std::to_string(m.gauge);
      break;
    case MetricKind::kHistogram: {
      out += ",\"count\":" + std::to_string(m.count) +
             ",\"sum\":" + format_number(m.sum) + ",\"buckets\":[";
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"le\":";
        out += i < m.bounds.size() ? format_number(m.bounds[i])
                                   : std::string("\"inf\"");
        out += ",\"count\":" + std::to_string(m.buckets[i]) + "}";
      }
      out += "]";
      break;
    }
  }
  out += "}";
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    render_json(metrics[i], out);
  }
  out += "\n]}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "name,kind,value,count,sum,buckets\n";
  for (const MetricValue& m : metrics) {
    out += m.name + ',' + to_string(m.kind) + ',';
    switch (m.kind) {
      case MetricKind::kCounter: out += std::to_string(m.count); break;
      case MetricKind::kGauge: out += std::to_string(m.gauge); break;
      case MetricKind::kHistogram: break;  // value column empty
    }
    out += ',';
    if (m.kind == MetricKind::kHistogram) out += std::to_string(m.count);
    out += ',';
    if (m.kind == MetricKind::kHistogram) out += format_number(m.sum);
    out += ',';
    if (m.kind == MetricKind::kHistogram) {
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) out += ';';
        out += "le=";
        out += i < m.bounds.size() ? format_number(m.bounds[i])
                                   : std::string("inf");
        out += ':' + std::to_string(m.buckets[i]);
      }
    }
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::size_t width = 0;
  for (const MetricValue& m : metrics) width = std::max(width, m.name.size());
  std::string out;
  for (const MetricValue& m : metrics) {
    out += m.name;
    out.append(width - m.name.size() + 2, ' ');
    switch (m.kind) {
      case MetricKind::kCounter: out += std::to_string(m.count); break;
      case MetricKind::kGauge: out += std::to_string(m.gauge); break;
      case MetricKind::kHistogram:
        out += "count=" + std::to_string(m.count) +
               " sum=" + format_number(m.sum);
        break;
    }
    out += '\n';
  }
  return out;
}

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[name];
  if (!slot.counter) {
    PALS_CHECK_MSG(!slot.gauge && !slot.histogram,
                   "metric '" << name << "' already registered as a "
                              << to_string(slot.kind));
    slot.kind = MetricKind::kCounter;
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[name];
  if (!slot.gauge) {
    PALS_CHECK_MSG(!slot.counter && !slot.histogram,
                   "metric '" << name << "' already registered as a "
                              << to_string(slot.kind));
    slot.kind = MetricKind::kGauge;
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[name];
  if (!slot.histogram) {
    PALS_CHECK_MSG(!slot.counter && !slot.gauge,
                   "metric '" << name << "' already registered as a "
                              << to_string(slot.kind));
    slot.kind = MetricKind::kHistogram;
    slot.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else {
    PALS_CHECK_MSG(slot.histogram->bounds() == bounds,
                   "histogram '" << name
                                 << "' re-registered with different bounds");
  }
  return *slot.histogram;
}

void Registry::record_span(SpanRecord span) {
  counter("span." + span.name + ".count").add(1);
  counter("span." + span.name + ".wall_ns")
      .add(span.end_ns - span.begin_ns);
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.metrics.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {  // std::map: already key-sorted
    MetricValue value;
    value.name = name;
    value.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        value.count = slot.counter->value();
        break;
      case MetricKind::kGauge:
        value.gauge = slot.gauge->value();
        break;
      case MetricKind::kHistogram:
        value.count = slot.histogram->count();
        value.sum = slot.histogram->sum();
        value.bounds = slot.histogram->bounds();
        value.buckets = slot.histogram->bucket_counts();
        break;
    }
    snap.metrics.push_back(std::move(value));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case MetricKind::kCounter: slot.counter->reset(); break;
      case MetricKind::kGauge: slot.gauge->reset(); break;
      case MetricKind::kHistogram: slot.histogram->reset(); break;
    }
  }
  spans_.clear();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace obs
}  // namespace pals
