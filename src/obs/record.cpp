#include "obs/record.hpp"

#include "trace/io.hpp"

#ifndef _WIN32
#include <sys/resource.h>
#endif

namespace pals {
namespace obs {

void record_trace_io(Registry& registry) {
  const TraceIoStats stats = trace_io_stats();
  registry.gauge("trace.io.bytes_read")
      .set(static_cast<std::int64_t>(stats.bytes_read));
  registry.gauge("trace.io.traces_parsed")
      .set(static_cast<std::int64_t>(stats.traces_parsed));
}

void record_thread_pool(const ThreadPoolStats& stats, Registry& registry) {
  registry.gauge("pool.workers").set(stats.workers);
  registry.gauge("pool.tasks_submitted")
      .set(static_cast<std::int64_t>(stats.tasks_submitted));
  registry.gauge("pool.tasks_executed")
      .set(static_cast<std::int64_t>(stats.tasks_executed));
  registry.gauge("pool.tasks_stolen")
      .set(static_cast<std::int64_t>(stats.tasks_stolen));
  registry.gauge("pool.busy_ns").set(static_cast<std::int64_t>(stats.busy_ns));
  for (std::size_t i = 0; i < stats.worker_busy_ns.size(); ++i)
    registry.gauge("pool.worker." + std::to_string(i) + ".busy_ns")
        .set(static_cast<std::int64_t>(stats.worker_busy_ns[i]));
}

std::uint64_t peak_rss_bytes() {
#ifdef _WIN32
  return 0;
#else
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#endif
}

void record_peak_rss(Registry& registry) {
  registry.gauge("host.peak_rss_bytes")
      .set(static_cast<std::int64_t>(peak_rss_bytes()));
}

}  // namespace obs
}  // namespace pals
