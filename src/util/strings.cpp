#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace pals {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw Error("cannot parse floating-point value from '" + std::string(s) +
                "'");
  }
  return value;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw Error("cannot parse integer from '" + std::string(s) + "'");
  }
  return value;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_percent(double ratio, int digits) {
  return format_fixed(ratio * 100.0, digits) + "%";
}

std::string format_roundtrip(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace pals
