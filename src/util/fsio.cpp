#include "util/fsio.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace pals {
namespace {

#ifndef _WIN32

[[noreturn]] void throw_errno(const std::string& action,
                              const std::string& path) {
  throw Error(action + " '" + path + "' failed: " + std::strerror(errno));
}

int open_checked(const std::string& path, int flags) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  while (size > 0) {
    const ::ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write to", path);
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void fsync_checked(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("fsync", path);
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// that published an artifact is itself durable. Failures are ignored:
/// some filesystems refuse directory fds, and the data fsync already
/// happened.
void sync_parent_directory(const std::string& path) {
  const std::size_t cut = path.find_last_of('/');
  const std::string dir = cut == std::string::npos ? "." : path.substr(0, cut);
  const int fd = open_checked(dir.empty() ? "/" : dir, O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

#endif  // !_WIN32

}  // namespace

void atomic_write_file(const std::string& path, std::string_view content) {
  PALS_CHECK_MSG(!path.empty(), "atomic_write_file: empty path");
#ifndef _WIN32
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = open_checked(tmp, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
  if (fd < 0) throw_errno("open temporary", tmp);
  try {
    write_all(fd, content.data(), content.size(), tmp);
    fsync_checked(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename '" + tmp + "' to", path);
  }
  sync_parent_directory(path);
#else
  // No POSIX rename-over semantics: plain replace, still via a temporary
  // so a crash mid-write cannot tear an existing artifact.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  PALS_CHECK_MSG(f != nullptr, "cannot open '" << tmp << "' for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != content.size() || !flushed) {
    std::remove(tmp.c_str());
    throw Error("write failure on '" + tmp + "'");
  }
  std::remove(path.c_str());
  PALS_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot rename '" << tmp << "' to '" << path << "'");
#endif
}

#ifndef _WIN32

DurableFile DurableFile::create(const std::string& path) {
  const int fd = open_checked(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
  if (fd < 0) throw_errno("create", path);
  return DurableFile(fd, path);
}

DurableFile DurableFile::open_append(const std::string& path) {
  const int fd = open_checked(path, O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) throw_errno("open for append", path);
  return DurableFile(fd, path);
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableFile::append(std::string_view data) {
  PALS_CHECK_MSG(fd_ >= 0, "append on closed DurableFile '" << path_ << "'");
  write_all(fd_, data.data(), data.size(), path_);
}

void DurableFile::sync() {
  PALS_CHECK_MSG(fd_ >= 0, "sync on closed DurableFile '" << path_ << "'");
  fsync_checked(fd_, path_);
}

void DurableFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // _WIN32: FILE*-backed fallback; fflush is the best durability
       // available without platform-specific APIs.

DurableFile DurableFile::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  PALS_CHECK_MSG(f != nullptr, "cannot create '" << path << "'");
  return DurableFile(static_cast<int>(_fileno(f)), path);
}

DurableFile DurableFile::open_append(const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  PALS_CHECK_MSG(probe != nullptr, "cannot open '" << path << "' for append");
  std::fclose(probe);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  PALS_CHECK_MSG(f != nullptr, "cannot open '" << path << "' for append");
  return DurableFile(static_cast<int>(_fileno(f)), path);
}

DurableFile::~DurableFile() { close(); }

void DurableFile::append(std::string_view data) {
  PALS_CHECK_MSG(fd_ >= 0, "append on closed DurableFile '" << path_ << "'");
  PALS_CHECK_MSG(_write(fd_, data.data(),
                        static_cast<unsigned>(data.size())) ==
                     static_cast<int>(data.size()),
                 "write failure on '" << path_ << "'");
}

void DurableFile::sync() { _commit(fd_); }

void DurableFile::close() {
  if (fd_ >= 0) {
    _close(fd_);
    fd_ = -1;
  }
}

#endif

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFU] ^ (crc >> 8U);
  return crc ^ 0xFFFFFFFFU;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : data) {
    hash ^= static_cast<std::uint8_t>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string to_hex(std::uint64_t value, int width) {
  static const char* digits = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = width - 1; i >= 0 && value != 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xFU];
    value >>= 4U;
  }
  return out;
}

}  // namespace pals
