#include "util/socketio.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "util/error.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace pals {

void ignore_sigpipe() {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);
#endif
}

#ifdef _WIN32

UnixStream UnixStream::connect(const std::string&) {
  throw Error("unix-domain sockets require a POSIX host");
}
UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}
UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  buffer_ = std::move(other.buffer_);
  return *this;
}
UnixStream::~UnixStream() = default;
bool UnixStream::write_all(const std::string&) {
  throw Error("unix-domain sockets require a POSIX host");
}
ReadLineStatus UnixStream::read_line(std::string&, std::size_t, double) {
  throw Error("unix-domain sockets require a POSIX host");
}
void UnixStream::close() {}

UnixListener UnixListener::bind_or_replace(const std::string&, int) {
  throw Error("unix-domain sockets require a POSIX host");
}
UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}
UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  path_ = std::move(other.path_);
  return *this;
}
UnixListener::~UnixListener() = default;
UnixStream UnixListener::accept(double) {
  throw Error("unix-domain sockets require a POSIX host");
}
void UnixListener::close() {}

#else

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  PALS_CHECK_MSG(path.size() < sizeof(address.sun_path),
                 "socket path '" << path << "' exceeds the AF_UNIX limit of "
                                 << sizeof(address.sun_path) - 1 << " bytes");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// poll() one fd for readability; true when readable, false on timeout.
/// A timeout <= 0 blocks indefinitely.
bool wait_readable(int fd, double timeout_seconds) {
  pollfd pfd{fd, POLLIN, 0};
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? -1
          : static_cast<int>(timeout_seconds * 1000.0) + 1;
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll failed");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// UnixStream

UnixStream UnixStream::connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket failed");
  const sockaddr_un address = make_address(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to '" + path + "' failed");
  }
  return UnixStream(fd);
}

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

UnixStream::~UnixStream() { close(); }

void UnixStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool UnixStream::write_all(const std::string& data) {
  PALS_CHECK_MSG(fd_ >= 0, "write on a closed stream");
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n >= 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return false;
    throw_errno("socket write failed");
  }
  return true;
}

ReadLineStatus UnixStream::read_line(std::string& line, std::size_t max_bytes,
                                     double timeout_seconds) {
  PALS_CHECK_MSG(fd_ >= 0, "read on a closed stream");
  line.clear();
  char chunk[4096];
  while (true) {
    // Serve a complete line straight from the buffer first.
    if (const std::size_t eol = buffer_.find('\n');
        eol != std::string::npos) {
      line.assign(buffer_, 0, eol);
      buffer_.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return ReadLineStatus::kLine;
    }
    if (buffer_.size() > max_bytes) return ReadLineStatus::kOversize;
    if (!wait_readable(fd_, timeout_seconds)) return ReadLineStatus::kTimeout;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      line = buffer_;  // expose the mid-line remainder for diagnostics
      buffer_.clear();
      return ReadLineStatus::kEof;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      line = buffer_;
      buffer_.clear();
      return ReadLineStatus::kEof;
    }
    throw_errno("socket read failed");
  }
}

// ---------------------------------------------------------------------------
// UnixListener

UnixListener UnixListener::bind_or_replace(const std::string& path,
                                           int backlog) {
  PALS_CHECK_MSG(!path.empty(), "socket path is empty");
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    PALS_CHECK_MSG(S_ISSOCK(st.st_mode),
                   "'" << path << "' exists and is not a socket; refusing "
                       << "to replace it");
    // Live daemon or stale crash leftover? Only a connect() can tell.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) throw_errno("socket failed");
    const sockaddr_un address = make_address(path);
    const int connected = ::connect(
        probe, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
    ::close(probe);
    PALS_CHECK_MSG(connected != 0, "a daemon is already serving on '"
                                       << path << "'");
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
      throw_errno("unlink stale socket '" + path + "' failed");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket failed");
  const sockaddr_un address = make_address(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind '" + path + "' failed");
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_errno("listen on '" + path + "' failed");
  }
  return UnixListener(fd, path);
}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

UnixStream UnixListener::accept(double timeout_seconds) {
  PALS_CHECK_MSG(fd_ >= 0, "accept on a closed listener");
  if (!wait_readable(fd_, timeout_seconds)) return UnixStream();
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      return UnixStream();
    throw_errno("accept failed");
  }
  return UnixStream(fd);
}

#endif  // _WIN32

}  // namespace pals
