// Minimal leveled logger.
//
// The simulator libraries log sparingly (warnings on suspicious traces,
// info on experiment progress). Level is controlled programmatically or via
// the PALS_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace pals {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level; defaults to kWarn, overridable by PALS_LOG_LEVEL.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name ("info", "warn", ...). Throws pals::Error on bad input.
LogLevel parse_log_level(const std::string& name);
std::string to_string(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

}  // namespace pals

#define PALS_LOG(level, expr)                                          \
  do {                                                                 \
    if (static_cast<int>(level) >= static_cast<int>(::pals::log_level())) { \
      std::ostringstream pals_log_os_;                                 \
      pals_log_os_ << expr;                                            \
      ::pals::detail::log_line(level, pals_log_os_.str());             \
    }                                                                  \
  } while (0)

#define PALS_TRACE(expr) PALS_LOG(::pals::LogLevel::kTrace, expr)
#define PALS_DEBUG(expr) PALS_LOG(::pals::LogLevel::kDebug, expr)
#define PALS_INFO(expr) PALS_LOG(::pals::LogLevel::kInfo, expr)
#define PALS_WARN(expr) PALS_LOG(::pals::LogLevel::kWarn, expr)
#define PALS_ERROR(expr) PALS_LOG(::pals::LogLevel::kError, expr)
