// Unix-domain socket primitives for the serve daemon and its clients.
//
// Thin RAII wrappers over the POSIX socket calls with the failure
// discipline the rest of the tree uses (pals::Error with errno text) and
// the robustness properties a long-lived daemon needs:
//
//  * every send uses MSG_NOSIGNAL (plus ignore_sigpipe() for belt and
//    braces), so a client that vanished mid-reply produces a structured
//    error instead of killing the process with SIGPIPE;
//  * reads are line-oriented and bounded: read_line() enforces a maximum
//    line length so a malicious or broken peer cannot grow a buffer
//    without limit, and takes a poll timeout so a drain can interrupt an
//    idle connection;
//  * UnixListener::bind_or_replace implements the crash-only restart
//    contract — a stale socket file left by a SIGKILLed daemon is
//    detected (connect() refused) and replaced, while a live daemon on
//    the same path is refused.
//
// Windows has no AF_UNIX in our toolchain baseline; the implementation
// throws on every entry point there (mirrors shard/supervisor.cpp).
#pragma once

#include <cstddef>
#include <string>

namespace pals {

/// Ignore SIGPIPE process-wide. Long-running tools call this first thing
/// so writing into a closed pipe (| head, a dead client socket) surfaces
/// as an EPIPE write error instead of killing the process. No-op on
/// platforms without SIGPIPE.
void ignore_sigpipe();

/// Outcome of a bounded line read.
enum class ReadLineStatus {
  kLine,      ///< a complete '\n'-terminated line was read (without the \n)
  kEof,       ///< orderly shutdown by the peer (partial data, if any, is
              ///< reported in `line` so callers can diagnose mid-line cuts)
  kTimeout,   ///< the poll deadline elapsed with no complete line
  kOversize,  ///< the line exceeded the configured bound; the connection
              ///< cannot be resynchronized and should be closed
};

/// A connected stream socket (one end of an accepted or dialed
/// connection). Move-only; the destructor closes.
class UnixStream {
 public:
  UnixStream() = default;
  /// Adopt an already-connected descriptor (UnixListener::accept).
  explicit UnixStream(int fd) : fd_(fd) {}
  /// Dial `path`; throws pals::Error (with errno text) when nothing
  /// listens there.
  static UnixStream connect(const std::string& path);

  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;
  ~UnixStream();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write all of `data`, retrying short writes, with MSG_NOSIGNAL.
  /// Returns false (instead of throwing) when the peer is gone (EPIPE /
  /// ECONNRESET) — the daemon treats that as "client disconnected
  /// mid-reply", a survivable event, not an error. Throws on any other
  /// failure.
  bool write_all(const std::string& data);

  /// Read one '\n'-terminated line into `line` (the '\n' is stripped; a
  /// '\r' before it too). At most `max_bytes` are buffered; crossing the
  /// bound returns kOversize. `timeout_seconds` bounds the wait for
  /// *progress* (each poll slice); <= 0 waits indefinitely. Data read
  /// beyond the first newline is retained for the next call.
  ReadLineStatus read_line(std::string& line, std::size_t max_bytes,
                           double timeout_seconds);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last returned line
};

/// A listening Unix-domain socket bound to a filesystem path. Move-only;
/// the destructor closes and unlinks the path.
class UnixListener {
 public:
  /// Bind and listen on `path`. When the path is occupied by a *stale*
  /// socket (a previous daemon died without unlinking — the crash-only
  /// signature), it is unlinked and rebound; when a live daemon answers
  /// on it, throws "already serving". A non-socket file at the path is
  /// never touched (throws).
  static UnixListener bind_or_replace(const std::string& path,
                                      int backlog = 64);

  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Wait up to `timeout_seconds` for a connection; returns an invalid
  /// stream on timeout (the accept loop's poll slice). Throws on
  /// listener failure.
  UnixStream accept(double timeout_seconds);

  /// Stop accepting: close the descriptor and unlink the path (new
  /// connects fail with ECONNREFUSED/ENOENT immediately, which is the
  /// drain contract). Idempotent.
  void close();

 private:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace pals
