#include "util/binio.hpp"

#include <cstring>

#include "util/error.hpp"

namespace pals {

void ByteWriter::put_u8(std::uint8_t value) { buffer_.push_back(value); }

void ByteWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void ByteWriter::put_svarint(std::int64_t value) {
  // Zig-zag: interleave negatives so small magnitudes stay short.
  put_varint((static_cast<std::uint64_t>(value) << 1) ^
             static_cast<std::uint64_t>(value >> 63));
}

void ByteWriter::put_f64(double value) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, 8);
  for (int i = 0; i < 8; ++i)
    buffer_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void ByteWriter::put_string(const std::string& value) {
  put_varint(value.size());
  put_raw(value.data(), value.size());
}

void ByteWriter::put_raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

std::uint8_t ByteReader::get_u8() {
  PALS_CHECK_MSG(offset_ < size_, "binary input truncated at offset "
                                      << offset_
                                      << ": need 1 more byte, have 0 of "
                                      << size_ << " total");
  return data_[offset_++];
}

std::uint64_t ByteReader::get_varint() {
  const std::size_t start = offset_;
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    PALS_CHECK_MSG(shift < 64, "varint at offset "
                                   << start
                                   << " too long: exceeds 10 bytes (64 bits)");
    const std::uint8_t byte = get_u8();
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::int64_t ByteReader::get_svarint() {
  const std::uint64_t raw = get_varint();
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

double ByteReader::get_f64() {
  PALS_CHECK_MSG(offset_ + 8 <= size_, "binary input truncated at offset "
                                           << offset_ << ": need 8 bytes, have "
                                           << (size_ - offset_));
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(data_[offset_ + static_cast<std::size_t>(i)])
            << (8 * i);
  offset_ += 8;
  double value = 0.0;
  std::memcpy(&value, &bits, 8);
  return value;
}

std::string ByteReader::get_string() {
  const std::size_t start = offset_;
  const std::uint64_t length = get_varint();
  PALS_CHECK_MSG(length <= remaining(),
                 "binary string at offset " << start << " truncated: length "
                                            << length << " exceeds remaining "
                                            << remaining() << " bytes");
  std::string out(reinterpret_cast<const char*>(data_ + offset_),
                  static_cast<std::size_t>(length));
  offset_ += static_cast<std::size_t>(length);
  return out;
}

}  // namespace pals
