// Work-stealing thread pool for embarrassingly parallel sweeps.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from the other workers when empty, so uneven task costs —
// scenario replays vary by an order of magnitude — balance automatically.
// Determinism is the caller's job: tasks must write to disjoint,
// pre-allocated slots (see analysis/sweep.cpp) so results are independent
// of execution order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pals {

/// Scheduling counters for observability (obs::record_thread_pool). Steal
/// counts and busy times depend on the OS schedule, so these are host
/// metrics — never part of determinism comparisons.
struct ThreadPoolStats {
  int workers = 0;
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_stolen = 0;       ///< executed tasks taken from a victim
  std::uint64_t busy_ns = 0;            ///< summed task wall-clock, all workers
  std::vector<std::uint64_t> worker_busy_ns;  ///< per-worker task wall-clock
};

class ThreadPool {
public:
  /// Spawns `threads` workers; 0 picks the hardware concurrency.
  explicit ThreadPool(int threads = 0);
  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueue one task. Thread-safe. Tasks must not throw; use
  /// parallel_for for exception propagation.
  void submit(std::function<void()> task);

  /// Run body(0) .. body(n-1) across the pool and block until all have
  /// finished. The first exception thrown by any invocation is rethrown
  /// here (remaining iterations still run to completion). Must not be
  /// called from inside a pool task.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Worker count a `jobs` option resolves to (0 = hardware concurrency,
  /// floored at 1).
  static int resolve_jobs(int jobs);

  /// Snapshot of the scheduling counters. Thread-safe; callable while
  /// tasks run (counters are relaxed atomics, values may lag in-flight
  /// work by one task).
  ThreadPoolStats stats() const;

private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void worker_loop(std::size_t self);
  /// Pop from own queue (back) or steal from a victim (front); sets
  /// `stolen` when the task came from another worker's queue.
  std::function<void()> find_task(std::size_t self, bool& stolen);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  /// Guards pending_/stop_ and backs the sleep/wake protocol.
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::size_t pending_ = 0;  ///< queued-but-not-started tasks
  bool stop_ = false;

  std::size_t next_queue_ = 0;  ///< round-robin submit target

  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
};

}  // namespace pals
