// Process exit codes of the pals tools, in one place.
//
// pals_sweep's exit status is multi-valued — scripts and CI branch on it
// — so the values are a documented contract shared by the tool and the
// tests instead of scattered integer literals. See docs/resume.md.
#pragma once

namespace pals {

enum class ToolExit : int {
  /// Completed; every requested cell produced a result.
  kOk = 0,
  /// Aborted on an unrecoverable error (bad input, I/O failure, a failing
  /// cell without --keep-going).
  kError = 1,
  /// Command-line usage error.
  kUsage = 2,
  /// Completed, but one or more cells were quarantined into errors.csv
  /// (--keep-going).
  kQuarantined = 3,
  /// Interrupted (SIGINT/SIGTERM) after a graceful drain: in-flight cells
  /// finished and were journaled, pending cells were skipped. The run is
  /// resumable with --resume.
  kInterrupted = 4,
  /// Completed degraded: a supervised shard exhausted its restart budget
  /// and its remaining cells were quarantined into errors.csv with the
  /// "shard-lost" class (pals_shepherd; docs/sharding.md). Every other
  /// cell produced its normal result — the artifacts are complete but
  /// partial-by-quarantine, never silently missing rows.
  kDegraded = 5,
  /// The service is unreachable or refusing work: pals_query found no
  /// daemon on the socket, or every retry of an `overloaded` /
  /// `shutting-down` rejection was shed again (docs/serve.md). Retryable
  /// from the caller's point of view — distinct from kError so scripts
  /// can back off instead of failing the run.
  kUnavailable = 6,
};

constexpr int exit_code(ToolExit code) { return static_cast<int>(code); }

}  // namespace pals
