// Byte-level encoding primitives for the binary trace format:
// LEB128 varints (zig-zag for signed), little-endian doubles, and
// length-prefixed strings, over growable buffers / bounded readers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pals {

class ByteWriter {
public:
  void put_u8(std::uint8_t value);
  /// LEB128 unsigned varint.
  void put_varint(std::uint64_t value);
  /// Zig-zag signed varint.
  void put_svarint(std::int64_t value);
  /// IEEE-754 double, little endian.
  void put_f64(double value);
  /// Varint length + raw bytes.
  void put_string(const std::string& value);
  void put_raw(const void* data, std::size_t size);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounded reader; every accessor throws pals::Error on truncation or
/// malformed varints instead of reading out of bounds.
class ByteReader {
public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  std::int64_t get_svarint();
  double get_f64();
  std::string get_string();

  std::size_t remaining() const { return size_ - offset_; }
  bool exhausted() const { return offset_ == size_; }
  /// Current read position — lets format readers report where a
  /// structural check failed, not just that it failed.
  std::size_t offset() const { return offset_; }

private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace pals
