// Error handling primitives shared by all pals libraries.
//
// Invariant violations throw pals::Error (derived from std::runtime_error)
// so that tests can assert on failure and tools can print a clean message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pals {

/// Exception type thrown for all precondition/invariant violations in pals.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pals

/// PALS_CHECK(cond) / PALS_CHECK_MSG(cond, "context") — always-on invariant
/// checks. These guard API misuse; they are not disabled in release builds
/// because all hot loops in the simulator are check-free by construction.
#define PALS_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::pals::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define PALS_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream pals_check_os_;                                     \
      pals_check_os_ << msg;                                                 \
      ::pals::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                          pals_check_os_.str());             \
    }                                                                        \
  } while (0)
