// CSV emission and aligned console tables for experiment reports.
//
// Every bench binary prints (a) a human-readable aligned table mirroring the
// paper's figure/table, and (b) machine-readable CSV for plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace pals {

/// Parse one CSV line into fields, honouring RFC-4180 quoting ("" escapes
/// a quote inside a quoted field). Throws pals::Error on unterminated
/// quotes or garbage after a closing quote.
std::vector<std::string> parse_csv_line(const std::string& line);

/// Streams RFC-4180-ish CSV: fields containing comma/quote/newline are quoted.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  CsvWriter& field(const std::string& value);
  CsvWriter& field(double value, int digits = 6);
  CsvWriter& field(long long value);
  CsvWriter& field(std::size_t value);
  /// Terminate the current row.
  void end_row();

  void row(std::initializer_list<std::string> fields);

private:
  std::ostream* out_;
  bool row_started_ = false;
};

/// Collects rows and renders them column-aligned with a header rule,
/// e.g. for the paper's Table 3.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with two-space column gaps; numeric-looking cells right-aligned.
  void print(std::ostream& out) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pals
