// Tiny command-line option parser for the bench and example binaries.
//
// Supports --key=value, --key value, and boolean --flag forms. Unknown
// options throw so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pals {

class CliParser {
public:
  /// Declare options up front; `help` is printed by usage().
  void add_option(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws pals::Error on unknown or malformed options.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name,
                     const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::optional<std::string> default_value;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pals
