// Capped exponential backoff, shared by every retry loop in the tree.
//
// Three subsystems re-derive the same delay schedule — fault::RetryPolicy
// (simulated-seconds cell retries), the shard supervisor (host-side
// worker restarts) and pals_query (client-side retry on `overloaded`
// replies) — so the arithmetic lives here once. The policy is a pure
// function of the attempt number: delay(k) = min(base * multiplier^(k-1),
// cap), which keeps every caller exactly as deterministic as its inputs
// (the fault guard accounts the delays in simulated seconds and never
// sleeps; the supervisor and the query client sleep for real).
#pragma once

#include <algorithm>

namespace pals {

struct BackoffPolicy {
  /// Delay before the first retry. Units are the caller's (simulated or
  /// host seconds); <= 0 disables backoff entirely (every delay is 0).
  double base = 0.5;
  /// Per-retry growth factor (>= 1 for a sane schedule; 1 = constant).
  double multiplier = 2.0;
  /// Upper bound on any single delay.
  double cap = 8.0;

  /// Delay before retry number `retry` (1-based): capped
  /// base * multiplier^(retry-1). Pure, hence deterministic. Retry
  /// numbers < 1 yield the base delay (capped), matching the historic
  /// behaviour of the extracted call sites.
  double delay(int retry) const {
    if (base <= 0.0) return 0.0;
    double value = base;
    for (int i = 1; i < retry; ++i) {
      value *= multiplier;
      if (value >= cap) break;  // monotone beyond the cap; stop early
    }
    return std::min(value, cap);
  }

  /// Total delay accrued by retries 1..n (the budget a caller commits to
  /// when it configures `n` retries).
  double total(int retries) const {
    double sum = 0.0;
    for (int retry = 1; retry <= retries; ++retry) sum += delay(retry);
    return sum;
  }
};

}  // namespace pals
