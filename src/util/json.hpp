// Minimal JSON support for the observability layer.
//
// Two halves:
//  * json_escape — string escaping for the deterministic JSON renderers
//    (metrics snapshots, Chrome trace_event export). Writers in this repo
//    emit JSON by string concatenation with fixed number formatting so the
//    output is byte-stable; they only need escaping, not a DOM.
//  * JsonValue/json_parse — a small recursive-descent parser used by the
//    structural checkers (tests, tools/pals_json_check) to verify that the
//    emitted artifacts are well-formed and contain the required keys. It
//    parses standard JSON into an insertion-ordered DOM; it is not a
//    performance-oriented parser and keeps no source locations beyond the
//    byte offset in error messages.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pals {

/// Escape `s` for inclusion inside a JSON string literal (quotes are not
/// added). Control characters are emitted as \u00XX.
std::string json_escape(std::string_view s);

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order (duplicate keys are kept as-is).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
/// Throws pals::Error with a byte offset on malformed input.
JsonValue json_parse(std::string_view text);

/// Parse the file at `path` (convenience wrapper; throws pals::Error on
/// I/O failure or malformed JSON).
JsonValue json_parse_file(const std::string& path);

}  // namespace pals
