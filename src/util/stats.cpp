#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pals {

StatsSummary summarize(std::span<const double> values) {
  StatsSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  OnlineStats acc;
  for (double v : values) acc.add(v);
  s.sum = acc.sum();
  s.mean = acc.mean();
  s.min = acc.min();
  s.max = acc.max();
  s.stddev = acc.stddev();
  return s;
}

double mean(std::span<const double> values) { return summarize(values).mean; }
double sum(std::span<const double> values) { return summarize(values).sum; }

double min_value(std::span<const double> values) {
  PALS_CHECK_MSG(!values.empty(), "min_value of empty sample");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  PALS_CHECK_MSG(!values.empty(), "max_value of empty sample");
  return *std::max_element(values.begin(), values.end());
}

double stddev(std::span<const double> values) {
  return summarize(values).stddev;
}

double coefficient_of_variation(std::span<const double> values) {
  const StatsSummary s = summarize(values);
  return s.mean == 0.0 ? 0.0 : s.stddev / s.mean;
}

double percentile(std::span<const double> values, double p) {
  PALS_CHECK_MSG(!values.empty(), "percentile of empty sample");
  PALS_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double gini(std::span<const double> values) {
  PALS_CHECK_MSG(!values.empty(), "gini of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    PALS_CHECK_MSG(sorted[i] >= 0.0, "gini requires non-negative values");
    total += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  PALS_CHECK_MSG(total > 0.0, "gini requires a positive sum");
  const auto n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace pals
