#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream os;
    os << "JSON parse error at byte " << pos_ << ": " << why;
    throw Error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8; surrogate pairs are passed through unpaired
          // (the checkers never need them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = parse_double(text_.substr(start, pos_ - start));
    } catch (const Error&) {
      fail("malformed number '" +
           std::string(text_.substr(start, pos_ - start)) + "'");
    }
    if (!std::isfinite(v.number)) fail("non-finite number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  PALS_CHECK_MSG(!in.bad(), "read failure on '" << path << "'");
  return json_parse(buffer.str());
}

}  // namespace pals
