#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace pals {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PALS_CHECK_MSG(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  PALS_CHECK_MSG(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t range = hi - lo;
  if (range == ~std::uint64_t{0}) return next();
  const std::uint64_t bound = range + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % bound;
  std::uint64_t draw = 0;
  do {
    draw = next();
  } while (draw >= limit);
  return lo + draw % bound;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0, 1] to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  PALS_CHECK_MSG(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  PALS_CHECK_MSG(rate > 0.0, "exponential() requires rate > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace pals
