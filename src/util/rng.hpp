// Deterministic pseudo-random number generation.
//
// The workload generators must be bit-reproducible across platforms and
// standard-library versions, so we ship our own xoshiro256** engine and
// our own distribution transforms instead of <random> distributions
// (whose output is implementation-defined).
#pragma once

#include <cstdint>

namespace pals {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded through SplitMix64.
/// Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  /// Standard normal via Box–Muller (deterministic, cached second value).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with the given rate (lambda).
  double exponential(double rate);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Fork a statistically independent stream (e.g. one per MPI rank).
  Rng fork();

private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pals
