// Small string utilities used by trace parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pals {

/// Split `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split on arbitrary whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse helpers that throw pals::Error with the offending text on failure.
double parse_double(std::string_view s);
long long parse_int(std::string_view s);

/// Format a double with `digits` significant decimal places, no trailing
/// exponent noise ("0.6123" not "6.123e-01").
std::string format_fixed(double value, int digits);

/// "12.34%" style percentage of a 0..1 ratio.
std::string format_percent(double ratio, int digits = 2);

/// Shortest "%.17g" rendering that parse_double() recovers bit-exactly —
/// the serialization the sweep journal uses so resumed runs re-render
/// byte-identical CSVs.
std::string format_roundtrip(double value);

}  // namespace pals
