// Minimal key = value configuration files (platform/power descriptions
// for the CLI tools, in the spirit of Dimemas .cfg files).
//
//   # myrinet cluster
//   latency = 1e-5
//   bandwidth = 250e6
//
// '#' starts a comment; keys are unique; values are free text (typed
// accessors parse on demand).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pals {

class KvConfig {
public:
  /// Parse from a stream/file. Throws pals::Error on malformed lines or
  /// duplicate keys, with line numbers.
  static KvConfig parse(std::istream& in);
  static KvConfig parse_file(const std::string& path);

  bool has(const std::string& key) const;
  /// Typed accessors; throw on missing key or unparsable value.
  std::string get_string(const std::string& key) const;
  double get_double(const std::string& key) const;
  long long get_int(const std::string& key) const;

  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  long long get_int_or(const std::string& key, long long fallback) const;

  /// All keys in file order.
  const std::vector<std::string>& keys() const { return order_; }

  /// Throws listing any key not in `known` (typo detection).
  void require_known_keys(const std::vector<std::string>& known) const;

private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace pals
