// Descriptive statistics over spans of doubles plus a streaming accumulator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pals {

/// Summary of a sample; all fields are 0 for an empty sample except
/// count.
struct StatsSummary {
  std::size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< population standard deviation
};

StatsSummary summarize(std::span<const double> values);

double mean(std::span<const double> values);
double sum(std::span<const double> values);
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Population standard deviation (divide by N).
double stddev(std::span<const double> values);

/// Coefficient of variation: stddev/mean; 0 if mean is 0.
double coefficient_of_variation(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
double percentile(std::span<const double> values, double p);

/// Gini coefficient of a non-negative sample (inequality of per-rank load),
/// in [0, 1). Throws if any value is negative or the sum is 0.
double gini(std::span<const double> values);

/// Welford streaming mean/variance accumulator.
class OnlineStats {
public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace pals
