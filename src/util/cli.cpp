#include "util/cli.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {

void CliParser::add_option(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  PALS_CHECK_MSG(!specs_.count(name), "duplicate option --" << name);
  specs_[name] = Spec{help, /*is_flag=*/false, std::move(default_value)};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  PALS_CHECK_MSG(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = Spec{help, /*is_flag=*/true, std::nullopt};
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) throw Error("unknown option --" + name);
    if (it->second.is_flag) {
      PALS_CHECK_MSG(!inline_value, "flag --" << name << " takes no value");
      values_[name] = "1";
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) throw Error("option --" + name + " expects a value");
      values_[name] = argv[++i];
    }
  }
}

bool CliParser::has(const std::string& name) const {
  if (values_.count(name)) return true;
  const auto it = specs_.find(name);
  return it != specs_.end() && it->second.default_value.has_value();
}

std::string CliParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end())
    return it->second;
  const auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.default_value)
    return *spec->second.default_value;
  throw Error("missing required option --" + name);
}

std::string CliParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  return has(name) ? get(name) : fallback;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  return has(name) ? parse_double(get(name)) : fallback;
}

long long CliParser::get_int(const std::string& name,
                             long long fallback) const {
  return has(name) ? parse_int(get(name)) : fallback;
}

bool CliParser::get_flag(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second == "1";
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) {
      os << "=<value>";
      if (spec.default_value) os << " (default: " << *spec.default_value << ")";
    }
    os << "\n      " << spec.help << '\n';
  }
  return os.str();
}

}  // namespace pals
