#include "util/kvconfig.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {

KvConfig KvConfig::parse(std::istream& in) {
  KvConfig config;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments before splitting.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    PALS_CHECK_MSG(eq != std::string_view::npos,
                   "config line " << line_no << ": expected key = value");
    const std::string key{trim(trimmed.substr(0, eq))};
    const std::string value{trim(trimmed.substr(eq + 1))};
    PALS_CHECK_MSG(!key.empty(), "config line " << line_no << ": empty key");
    PALS_CHECK_MSG(!config.values_.count(key),
                   "config line " << line_no << ": duplicate key '" << key
                                  << "'");
    config.values_[key] = value;
    config.order_.push_back(key);
  }
  return config;
}

KvConfig KvConfig::parse_file(const std::string& path) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open config file '" << path << "'");
  return parse(in);
}

bool KvConfig::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string KvConfig::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  PALS_CHECK_MSG(it != values_.end(), "missing config key '" << key << "'");
  return it->second;
}

double KvConfig::get_double(const std::string& key) const {
  return parse_double(get_string(key));
}

long long KvConfig::get_int(const std::string& key) const {
  return parse_int(get_string(key));
}

std::string KvConfig::get_string_or(const std::string& key,
                                    const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}

double KvConfig::get_double_or(const std::string& key,
                               double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long KvConfig::get_int_or(const std::string& key,
                               long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

void KvConfig::require_known_keys(
    const std::vector<std::string>& known) const {
  std::ostringstream unknown;
  bool any = false;
  for (const std::string& key : order_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown << (any ? ", " : "") << '\'' << key << '\'';
      any = true;
    }
  }
  PALS_CHECK_MSG(!any, "unknown config key(s): " << unknown.str());
}

}  // namespace pals
