// Crash-safe filesystem primitives.
//
// Every artifact the toolchain emits (results CSVs, traces, Chrome
// traces, SVGs, goldens) must never be observable in a torn state: a
// SIGKILL or power loss mid-write may lose the *new* file, but it must
// not corrupt an existing one or leave a half-written final path. Two
// durability disciplines cover all writers:
//
//  * atomic_write_file — whole-artifact replacement: write to a
//    temporary sibling, fsync, rename over the final path. Readers see
//    either the complete old content or the complete new content.
//  * DurableFile — append-only records (the sweep run journal): every
//    append is written fully and fsync'd before the caller continues,
//    so a record reported as durable survives an immediate SIGKILL.
//
// Plus the integrity hashes the journal uses: CRC-32 (per-record
// checksums) and FNV-1a 64 (configuration fingerprints).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pals {

/// Atomically replace `path` with `content`: write `path.tmp.<pid>`,
/// fsync it, then rename over `path`. Throws pals::Error (with errno
/// text) on any failure; the temporary is unlinked on error, so no
/// partial artifact is ever left at the final path.
void atomic_write_file(const std::string& path, std::string_view content);

/// Append-only file handle with explicit durability: append() writes the
/// whole buffer (retrying short writes) and sync() forces it to stable
/// storage. Move-only; the destructor closes without syncing.
class DurableFile {
 public:
  /// Create/truncate `path` (0644).
  static DurableFile create(const std::string& path);
  /// Open an existing `path` for appending; throws if it does not exist.
  static DurableFile open_append(const std::string& path);

  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  ~DurableFile();

  /// Write all of `data` at the end of the file (throws on failure).
  void append(std::string_view data);
  /// fsync (throws on failure). A no-op on platforms without fsync.
  void sync();
  void close();

  const std::string& path() const { return path_; }

 private:
  DurableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320). crc32("123456789") ==
/// 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// FNV-1a 64-bit. fnv1a64("") == 0xcbf29ce484222325.
std::uint64_t fnv1a64(std::string_view data);

/// Lower-case fixed-width hex ("00c0ffee").
std::string to_hex(std::uint64_t value, int width);

}  // namespace pals
