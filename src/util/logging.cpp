#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "util/error.hpp"

namespace pals {
namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{[] {
    if (const char* env = std::getenv("PALS_LOG_LEVEL")) {
      try {
        return parse_log_level(env);
      } catch (const Error&) {
        // Ignore malformed environment values; fall through to default.
      }
    }
    return LogLevel::kWarn;
  }()};
  return level;
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw Error("unknown log level: " + name);
}

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  // Compose the full line first and emit it with one locked write so
  // concurrent loggers can never interleave within a line (operator<<
  // chains are separate stream operations even under the mutex).
  std::string line;
  line.reserve(message.size() + 16);
  line += "[pals:";
  line += to_string(level);
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

}  // namespace detail
}  // namespace pals
