#include "util/csv.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '%' && c != 'e' && c != 'E' && c != '-' &&
               c != '+') {
      return false;
    }
  }
  return digit;
}

}  // namespace

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  std::size_t i = 0;
  while (i <= line.size()) {
    const bool at_end = i == line.size();
    const char c = at_end ? ',' : line[i];
    if (quoted) {
      PALS_CHECK_MSG(!at_end, "unterminated quote in csv line: " << line);
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      PALS_CHECK_MSG(current.empty(),
                     "quote inside unquoted csv field: " << line);
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
    ++i;
  }
  return fields;
}

CsvWriter& CsvWriter::field(const std::string& value) {
  if (row_started_) *out_ << ',';
  row_started_ = true;
  *out_ << (needs_quoting(value) ? quote(value) : value);
  return *this;
}

CsvWriter& CsvWriter::field(double value, int digits) {
  return field(format_fixed(value, digits));
}

CsvWriter& CsvWriter::field(long long value) {
  return field(std::to_string(value));
}

CsvWriter& CsvWriter::field(std::size_t value) {
  return field(std::to_string(value));
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_started_ = false;
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  for (const auto& f : fields) field(f);
  end_row();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PALS_CHECK_MSG(!header_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  PALS_CHECK_MSG(row.size() == header_.size(),
                 "row width " << row.size() << " != header width "
                              << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << (c + 1 == row.size() ? "" : "  ");
    }
    out << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 == width.size() ? 0 : 2);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace pals
