#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "util/error.hpp"

namespace pals {

int ThreadPool::resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_jobs(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    // pending_ is bumped before the task becomes stealable so a worker can
    // never decrement it below zero between push and wake-up.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++pending_;
    target = next_queue_++ % workers_.size();
  }
  {
    Worker& w = *workers_[target];
    std::lock_guard<std::mutex> lock(w.mutex);
    w.tasks.push_back(std::move(task));
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  wake_.notify_one();
}

std::function<void()> ThreadPool::find_task(std::size_t self, bool& stolen) {
  stolen = false;
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      stolen = true;
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    bool stolen = false;
    std::function<void()> task = find_task(self, stolen);
    if (!task) {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (stop_ && pending_ == 0) return;
      continue;  // retry the queues; another worker may have raced us
    }
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      --pending_;
    }
    if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
    const auto begin = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    workers_[self]->busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.workers = size();
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.worker_busy_ns.reserve(workers_.size());
  for (const auto& w : workers_) {
    const std::uint64_t ns = w->busy_ns.load(std::memory_order_relaxed);
    s.worker_busy_ns.push_back(ns);
    s.busy_ns += ns;
  }
  return s;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  struct Sync {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  Sync sync;
  sync.remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    submit([&sync, &body, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sync.mutex);
        if (!sync.error) sync.error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync.mutex);
      if (--sync.remaining == 0) sync.done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(sync.mutex);
  sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
  if (sync.error) std::rethrow_exception(sync.error);
}

}  // namespace pals
