// Query execution: one serve request -> one byte-exact sweep cell.
//
// The engine replicates the sweep engine's cell path exactly —
// resolve_workload, gear/algorithm/controller lookup, the same
// PipelineConfig composition as analysis/sweep.cpp make_config, a shared
// baseline replay, run_pipeline, flatten_result with
// Scenario::variant_label — so a served row is byte-identical to the row
// `pals_sweep --jobs=1` writes for the same cell. Any divergence here is
// a determinism bug, and tests/serve/serve_torture_test.cpp pins it.
#pragma once

#include "analysis/experiments.hpp"
#include "core/pipeline.hpp"
#include "power/gearset.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace pals {
namespace serve {

struct QueryEngineOptions {
  /// Daemon-wide base configuration (defaults + --config overlay); each
  /// query overlays its own cell axes and platform overrides on a copy.
  PipelineConfig base = default_pipeline_config(paper_uniform(6));
  /// Iterations for workloads without an explicit count when the request
  /// does not set `iterations`.
  int default_iterations = 10;
};

class QueryEngine {
 public:
  QueryEngine(QueryEngineOptions options, WarmCache& cache)
      : options_(std::move(options)), cache_(cache) {}

  /// Execute one query under a remaining wall budget of
  /// `deadline_seconds` (0 = unlimited; threaded into the replay
  /// engine's wall watchdog). Throws ProtocolError:
  ///  * kNotFound for an unknown workload/gear set/algorithm/controller,
  ///  * kBadRequest for platform overrides the models reject,
  ///  * kDeadlineExceeded when the watchdog expires mid-replay.
  /// Anything else escapes as pals::Error (the server answers kInternal).
  ExperimentRow execute(const Request& request, double deadline_seconds);

 private:
  QueryEngineOptions options_;
  WarmCache& cache_;
};

}  // namespace serve
}  // namespace pals
