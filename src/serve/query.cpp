#include "serve/query.hpp"

#include <cmath>
#include <optional>

#include "analysis/sweep.hpp"
#include "fault/guard.hpp"
#include "fault/injector.hpp"
#include "power/gearset.hpp"

namespace pals {
namespace serve {

namespace {

/// Apply one platform/power override by key — the request-borne twin of
/// analysis/experiments.cpp apply_config_file, restricted to the numeric
/// platform/power knobs (the parser already rejects unknown keys).
void apply_override(PipelineConfig& config, const std::string& key,
                    double value, const std::string& id) {
  const auto integral = [&](const char* what) {
    if (value != std::floor(value) || value < 0.0)
      throw ProtocolError(ErrorCode::kBadRequest,
                          std::string("platform override '") + what +
                              "' must be a non-negative integer",
                          id);
    return static_cast<long long>(value);
  };
  PlatformModel& platform = config.replay.platform;
  if (key == "latency") platform.latency = value;
  else if (key == "bandwidth") platform.bandwidth = value;
  else if (key == "eager_threshold")
    platform.eager_threshold = static_cast<Bytes>(integral("eager_threshold"));
  else if (key == "buses")
    platform.buses = static_cast<std::int32_t>(integral("buses"));
  else if (key == "links_per_node")
    platform.links_per_node =
        static_cast<std::int32_t>(integral("links_per_node"));
  else if (key == "collective_scale") platform.collective_scale = value;
  else if (key == "static_fraction") config.power.static_fraction = value;
  else if (key == "activity_ratio") config.power.activity_ratio = value;
  else if (key == "idle_scale") config.power.idle_scale = value;
  else
    throw ProtocolError(ErrorCode::kBadRequest,
                        "unknown platform override '" + key + "'", id);
}

}  // namespace

ExperimentRow QueryEngine::execute(const Request& request,
                                   double deadline_seconds) {
  // Resolve every name first: an unknown workload / gear set / algorithm /
  // controller is the caller's typo, answered not-found without touching
  // the cache or burning any replay time.
  std::optional<WorkloadRef> workload;
  std::optional<GearSet> gear_set;
  Algorithm algorithm = Algorithm::kMax;
  ControllerKind controller = ControllerKind::kStatic;
  const int iterations = request.iterations > 0 ? request.iterations
                                                : options_.default_iterations;
  try {
    workload = resolve_workload(request.workload, iterations);
    gear_set = gear_set_by_name(request.gear_set);
    algorithm = algorithm_by_name(request.algorithm);
    controller = request.controller.empty()
                     ? ControllerKind::kStatic
                     : controller_by_name(request.controller);
  } catch (const Error& e) {
    throw ProtocolError(ErrorCode::kNotFound, e.what(), request.id);
  }

  // Per-request fault plan; the injector must outlive both the baseline
  // build and the scenario replay (ReplayConfig::faults is non-owning).
  std::optional<fault::Injector> injector;
  if (!request.faults.empty()) {
    try {
      fault::FaultPlan plan = fault::FaultPlan::parse(request.faults);
      plan.validate();
      injector.emplace(std::move(plan));
    } catch (const Error& e) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          std::string("bad fault plan: ") + e.what(),
                          request.id);
    }
  }

  // Compose the cell's configuration exactly like the sweep engine's
  // make_config: base + cell axes; platform overrides mirror what a
  // --config overlay would have done to the batch run.
  PipelineConfig config = options_.base;
  for (const auto& [key, value] : request.platform)
    apply_override(config, key, value, request.id);
  config.algorithm.algorithm = algorithm;
  config.algorithm.gear_set = *gear_set;
  config.controller.kind = controller;
  config.lint = false;
  config.replay.faults = injector ? &*injector : nullptr;
  config.replay.max_wall_seconds = deadline_seconds;
  set_beta(config, request.beta);
  try {
    config.validate();
  } catch (const Error& e) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        std::string("configuration rejected: ") + e.what(),
                        request.id);
  }

  try {
    // Baseline (trace build + reference replay) from the warm cache,
    // keyed by everything that changes it: workload, platform overrides,
    // fault plan. The wall watchdog is armed during a cold build too — a
    // deadline that expires there throws, the cache drops the key, and a
    // later, more patient query rebuilds it.
    const std::shared_ptr<const WarmEntry> warm = cache_.get(
        request.baseline_key(workload->key), [&]() {
          WarmEntry entry;
          entry.trace = workload->build();
          entry.baseline = replay(entry.trace, config.replay);
          return entry;
        });

    const PipelineResult pipeline =
        run_pipeline(warm->trace, config, warm->baseline);

    Scenario scenario;
    scenario.workload = request.workload;
    scenario.gear_set = request.gear_set;
    scenario.algorithm = algorithm;
    scenario.beta = request.beta;
    scenario.controller = request.controller;
    return flatten_result(pipeline, workload->display,
                          scenario.variant_label());
  } catch (const ProtocolError&) {
    throw;
  } catch (const Error& e) {
    if (fault::classify(e) == fault::ErrorClass::kTimeout)
      throw ProtocolError(ErrorCode::kDeadlineExceeded, e.what(), request.id);
    throw;  // the server answers kInternal
  }
}

}  // namespace serve
}  // namespace pals
