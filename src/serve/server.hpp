// The pals::serve daemon core — accept loop, admission control, workers.
//
// A single-process, multi-threaded query server over a Unix-domain
// socket. Design properties (docs/serve.md):
//
//  * Admission control: at most `queue_limit` connections are admitted
//    concurrently; excess connections are shed at accept time with a
//    structured `overloaded` response (serve.shed counts them) instead
//    of queuing unboundedly. Clients retry with capped exponential
//    backoff (util/backoff.hpp).
//  * Deadlines: every query runs under a wall-clock budget (request
//    deadline_ms, capped by the server maximum; server default when
//    absent) threaded into the replay engine's watchdog
//    (ReplayConfig::max_wall_seconds), so a pathological what-if answers
//    `deadline-exceeded` instead of wedging a worker.
//  * Crash-only lifecycle: SIGTERM/SIGINT (via ServerOptions::stop) or a
//    `shutdown` request starts a cooperative drain — the listener closes
//    (and unlinks its socket), in-flight requests finish, idle
//    connections are told `shutting-down` — and a daemon killed hard
//    instead leaves only a stale socket file the next start replaces
//    (UnixListener::bind_or_replace).
//  * Determinism: query rows come from serve::QueryEngine, which
//    replicates the batch sweep's cell path byte-for-byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/cache.hpp"
#include "serve/query.hpp"
#include "util/socketio.hpp"

namespace pals {
namespace serve {

struct ServerOptions {
  std::string socket_path;
  /// Worker threads (util/thread_pool.hpp); 0 = hardware concurrency.
  int jobs = 0;
  /// Maximum concurrently admitted connections; connection `n+1` is shed
  /// with an `overloaded` response. One request is in flight per
  /// connection, so this bounds queued work too.
  int queue_limit = 32;
  /// WarmCache budget (bytes); 0 = unlimited.
  std::size_t cache_bytes = 256 * 1024 * 1024;
  /// Wall budget of a query that does not set deadline_ms (seconds;
  /// 0 = unlimited).
  double default_deadline_seconds = 30.0;
  /// Hard cap on any requested deadline (seconds; 0 = uncapped).
  double max_deadline_seconds = 300.0;
  /// Close a connection after this long without a complete request line.
  double idle_timeout_seconds = 30.0;
  /// Accept-/read-loop poll slice; small so a drain is noticed promptly.
  double poll_seconds = 0.2;
  /// Test hook: stall this long inside the worker before answering each
  /// query — makes overload and deadline expiry reproducible on a fast
  /// machine (pals_serve --debug-stall-ms).
  double debug_stall_seconds = 0.0;
  /// Query execution (base config + default iterations).
  QueryEngineOptions query;
  /// Daemon log lines ("serving on ...", final stats); null = silent.
  std::ostream* log = nullptr;
  /// External stop flag (set from a signal handler); polled every slice.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked once the socket is bound and listening, before the first
  /// accept — pals_serve writes its --ready-file here so scripts can wait
  /// for readiness instead of polling the socket.
  std::function<void()> on_ready;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Bind the socket and serve until a drain is requested (stop flag or
  /// `shutdown` request), then finish in-flight work and return. Throws
  /// pals::Error when the socket cannot be bound (e.g. a live daemon
  /// already serves on the path).
  void run();

  /// Begin a cooperative drain from another thread (tests); idempotent.
  void request_drain() { drain_.store(true, std::memory_order_relaxed); }

  bool draining() const { return drain_.load(std::memory_order_relaxed); }

  /// Key-sorted serve.* counter values plus cache stats and peak RSS —
  /// the payload of a `stats` response, also usable in-process by tests.
  std::vector<std::pair<std::string, std::uint64_t>> stats_rows() const;

  WarmCache& cache() { return cache_; }

 private:
  /// Serve one admitted connection to completion (worker thread). Shared
  /// ownership because ThreadPool tasks are copyable std::functions.
  void handle_connection(const std::shared_ptr<UnixStream>& stream);
  /// Process one request line into a response line (no trailing '\n').
  std::string process_line(const std::string& line);

  ServerOptions options_;
  WarmCache cache_;
  QueryEngine engine_;
  std::atomic<bool> drain_{false};
  std::atomic<int> active_{0};

  // Lifetime counters (mirrored into obs::default_registry as serve.*).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> query_ok_{0};
  std::atomic<std::uint64_t> query_errors_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> client_disconnects_{0};
};

}  // namespace serve
}  // namespace pals
