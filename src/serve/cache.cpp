#include "serve/cache.hpp"

#include "obs/metrics.hpp"
#include "trace/event.hpp"

namespace pals {
namespace serve {

std::size_t approx_entry_bytes(const WarmEntry& entry) {
  std::size_t bytes = sizeof(WarmEntry);
  for (Rank rank = 0; rank < entry.trace.n_ranks(); ++rank)
    bytes += entry.trace.events(rank).size() * sizeof(Event) +
             sizeof(std::vector<Event>);
  const ReplayResult& baseline = entry.baseline;
  for (Rank rank = 0; rank < baseline.timeline.n_ranks(); ++rank)
    bytes += baseline.timeline.intervals(rank).size() * sizeof(StateInterval) +
             sizeof(std::vector<StateInterval>);
  bytes += baseline.messages.size() * sizeof(MessageRecord);
  bytes += baseline.collectives.size() * sizeof(CollectiveRecord);
  for (const CollectiveRecord& record : baseline.collectives)
    bytes += record.arrivals.size() * sizeof(std::pair<Rank, Seconds>);
  bytes += (baseline.compute_time.size() + baseline.communication_time.size()) *
           sizeof(Seconds);
  return bytes;
}

WarmCache::WarmCache(std::size_t budget_bytes) : budget_bytes_(budget_bytes) {}

std::shared_ptr<const WarmEntry> WarmCache::get(
    const std::string& key, const std::function<WarmEntry()>& build) {
  std::shared_ptr<Slot> slot;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_shared<Slot>()).first;
      created = true;
    }
    slot = it->second;
    if (slot->entry != nullptr) {
      // Hit: refresh recency and hand the entry out under the map lock.
      stats_.hits += 1;
      obs::default_registry().counter("serve.cache_hits").add();
      if (slot->resident) lru_.splice(lru_.begin(), lru_, slot->lru);
      return slot->entry;
    }
    if (created) {
      stats_.misses += 1;
      obs::default_registry().counter("serve.cache_misses").add();
    }
  }

  // Build (or wait for the racing builder) outside the map lock.
  std::lock_guard<std::mutex> build_lock(slot->build_mutex);
  if (slot->entry != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.hits += 1;
    obs::default_registry().counter("serve.cache_hits").add();
    if (slot->resident) lru_.splice(lru_.begin(), lru_, slot->lru);
    return slot->entry;
  }
  std::shared_ptr<WarmEntry> entry;
  try {
    entry = std::make_shared<WarmEntry>(build());
  } catch (...) {
    // Drop the key so a later query retries with a clean slate; racing
    // waiters of this attempt see the exception via their own build call
    // finding the slot gone from the map.
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.failed_builds += 1;
    auto it = slots_.find(key);
    if (it != slots_.end() && it->second == slot) slots_.erase(it);
    throw;
  }
  entry->bytes = approx_entry_bytes(*entry);

  std::lock_guard<std::mutex> lock(mutex_);
  slot->entry = entry;
  // The slot may have been evicted (erased from the map) while building;
  // only map-resident slots join the LRU/budget accounting — an orphan
  // entry just serves its waiters and dies with them.
  if (auto it = slots_.find(key); it != slots_.end() && it->second == slot) {
    lru_.push_front(key);
    slot->lru = lru_.begin();
    slot->resident = true;
    resident_bytes_ += entry->bytes;
    obs::default_registry().gauge("serve.cache_bytes").set(
        static_cast<std::int64_t>(resident_bytes_));
    evict_over_budget(key);
  }
  return entry;
}

void WarmCache::evict_over_budget(const std::string& keep) {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_ && !lru_.empty()) {
    // Walk from the least-recent end, skipping the protected key.
    auto victim = lru_.end();
    do {
      --victim;
    } while (*victim == keep && victim != lru_.begin());
    if (*victim == keep) break;  // only the protected entry remains
    auto it = slots_.find(*victim);
    if (it != slots_.end() && it->second->resident) {
      resident_bytes_ -= it->second->entry->bytes;
      slots_.erase(it);
    }
    lru_.erase(victim);
    stats_.evictions += 1;
    obs::default_registry().counter("serve.evictions").add();
  }
  obs::default_registry().gauge("serve.cache_bytes").set(
      static_cast<std::int64_t>(resident_bytes_));
}

WarmCacheStats WarmCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WarmCacheStats out = stats_;
  out.entries = lru_.size();
  out.resident_bytes = resident_bytes_;
  return out;
}

}  // namespace serve
}  // namespace pals
