// Memory-budgeted warm cache of parsed traces + memoized baseline replays.
//
// The serve daemon's whole point is answering queries against warm state:
// building a workload trace and replaying its baseline dominate a query's
// cost, and both depend only on (workload, platform, fault plan) — never
// on the gear/controller/beta axes — so they are shared across every
// query of the same baseline key (serve/protocol.hpp
// Request::baseline_key).
//
// A daemon that lives for days cannot let that cache grow without bound:
// entries are LRU-evicted once the approximate resident bytes exceed the
// --cache-bytes budget (observable as the serve.evictions counter and
// the serve.cache_bytes gauge). Entries are handed out as shared_ptr, so
// an eviction never invalidates an entry a worker is still replaying
// against — memory is reclaimed when the last in-flight query drops it.
//
// Concurrency: a global map lock plus a per-entry build mutex, so two
// queries racing on a cold key build it once (the second blocks until
// the first finishes) while builds of *different* keys proceed in
// parallel and never hold the map lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "replay/replay.hpp"
#include "trace/trace.hpp"

namespace pals {
namespace serve {

/// One warm entry: the parsed trace and its baseline replay.
struct WarmEntry {
  Trace trace;
  ReplayResult baseline;
  std::size_t bytes = 0;  ///< approximate resident footprint (see below)
};

/// Approximate resident bytes of an entry: events, timeline intervals,
/// message/collective records and per-rank vectors at sizeof() cost.
/// Deliberately an estimate — the budget is an ops guardrail, not an
/// allocator ledger.
std::size_t approx_entry_bytes(const WarmEntry& entry);

struct WarmCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t failed_builds = 0;
  std::size_t entries = 0;
  std::size_t resident_bytes = 0;
};

class WarmCache {
 public:
  /// `budget_bytes` caps the summed WarmEntry::bytes; 0 = unlimited. A
  /// single entry larger than the whole budget is still admitted (the
  /// query must be answerable) — everything else is evicted around it.
  explicit WarmCache(std::size_t budget_bytes);

  WarmCache(const WarmCache&) = delete;
  WarmCache& operator=(const WarmCache&) = delete;

  /// Return the entry under `key`, building it via `build` on a miss.
  /// `build` runs outside the map lock (concurrent queries on other keys
  /// are not blocked) but inside the entry's own lock (racing queries on
  /// the same key build once). A throwing build propagates to every
  /// waiter of that attempt and leaves the cache without the key, so a
  /// later query retries cleanly (e.g. a deadline that expired during
  /// the baseline replay must not poison the key).
  std::shared_ptr<const WarmEntry> get(
      const std::string& key, const std::function<WarmEntry()>& build);

  WarmCacheStats stats() const;
  std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Slot {
    std::mutex build_mutex;
    std::shared_ptr<const WarmEntry> entry;  ///< null while building
    std::list<std::string>::iterator lru;    ///< valid once entry is set
    bool resident = false;
  };

  /// Pre: mutex_ held. Evict LRU entries until the budget holds (never
  /// the just-inserted `keep`).
  void evict_over_budget(const std::string& keep);

  const std::size_t budget_bytes_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  std::list<std::string> lru_;  ///< most-recent at the front
  WarmCacheStats stats_;
  std::size_t resident_bytes_ = 0;
};

}  // namespace serve
}  // namespace pals
